// Small string utilities shared by the expression parser, tracing, and the
// benchmark table printers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sa::util {

/// Splits on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Strict numeric parsers for command-line flags: the whole string must be a
/// valid number (no trailing junk, no leading whitespace), otherwise nullopt.
/// Unlike std::stod/std::stoul they never throw and never accept "0.5x".
std::optional<double> parse_double(std::string_view text);
std::optional<std::uint64_t> parse_u64(std::string_view text);

}  // namespace sa::util
