// Small string utilities shared by the expression parser, tracing, and the
// benchmark table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sa::util {

/// Splits on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace sa::util
