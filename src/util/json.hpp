// Minimal JSON reader shared by the replayable-artifact formats (the model
// checker's counterexample schedules, the fault-injection campaign's
// reproducer files) and any other tool that consumes its own JSON output.
//
// This is deliberately not a general-purpose JSON library: it parses the
// subset the repository emits (objects, arrays, strings, numbers, bools,
// null), preserves object key order, and reports malformed input as
// std::runtime_error with a byte offset. Writers stay hand-rolled at each
// call site (obs/export.hpp has json_escape); only parsing is shared, so the
// artifact formats cannot drift apart on what "valid" means.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sa::util {

struct JsonValue {
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First value under `key` (objects preserve insertion order); null when
  /// absent or when this value is not an object.
  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses `text` as a single JSON value (trailing garbage is an error).
/// `what` names the document kind in error messages ("schedule JSON",
/// "fault plan JSON", ...). Throws std::runtime_error on malformed input.
JsonValue parse_json(const std::string& text, std::string_view what = "JSON");

}  // namespace sa::util
