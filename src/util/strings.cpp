#include "util/strings.hpp"

#include <cctype>
#include <charconv>

namespace sa::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::optional<double> parse_double(std::string_view text) {
  double value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end || text.empty()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end || text.empty()) return std::nullopt;
  return value;
}

}  // namespace sa::util
