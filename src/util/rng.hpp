// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (channel loss, jitter, workload
// generation) draws from an explicitly seeded Rng so that test runs and
// benchmark runs are exactly reproducible.  The generator is xoshiro256**,
// seeded through splitmix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <limits>

namespace sa::util {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (bound must be > 0).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p (p clamped to [0,1]).
  bool next_bool(double p);

  /// Uniform integer in [lo, hi] inclusive (requires lo <= hi).
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  // UniformRandomBitGenerator interface so std::shuffle et al. work.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t state_[4];
};

}  // namespace sa::util
