// IdSet64: a tiny ordered set of small integer ids backed by one
// std::uint64_t bitmask.
//
// The protocol cores and the interleaving explorer track per-step process
// sets (resets sent, adapt-dones delivered, acks collected). Processes are
// dense small ids, the sets hold at most a few members, and the explorer
// copies them at every Model fork — a std::set pays a node allocation per
// member per fork, this is a register. Iteration yields ids in ascending
// order, matching the std::set iteration the callers were written against.
//
// Ids must be < 64; insert() enforces it. The paper-scale scenarios use a
// handful of processes, and the adaptation protocol's fan-out per step is
// bounded by the action's involved set, so 64 is generous.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace sa::util {

class IdSet64 {
 public:
  class const_iterator {
   public:
    explicit const_iterator(std::uint64_t remaining) : remaining_(remaining) {}
    std::uint32_t operator*() const {
      return static_cast<std::uint32_t>(__builtin_ctzll(remaining_));
    }
    const_iterator& operator++() {
      remaining_ &= remaining_ - 1;  // clear lowest set bit
      return *this;
    }
    bool operator!=(const const_iterator& other) const {
      return remaining_ != other.remaining_;
    }

   private:
    std::uint64_t remaining_;
  };

  IdSet64() = default;

  /// True iff `id` was not already present.
  bool insert(std::uint32_t id) {
    assert(id < 64 && "IdSet64 holds ids < 64");
    const std::uint64_t bit = std::uint64_t{1} << id;
    const bool fresh = (mask_ & bit) == 0;
    mask_ |= bit;
    return fresh;
  }

  bool contains(std::uint32_t id) const {
    return id < 64 && ((mask_ >> id) & 1U) != 0;
  }

  void clear() { mask_ = 0; }
  bool empty() const { return mask_ == 0; }
  std::size_t size() const { return static_cast<std::size_t>(__builtin_popcountll(mask_)); }
  std::uint64_t mask() const { return mask_; }

  const_iterator begin() const { return const_iterator(mask_); }
  const_iterator end() const { return const_iterator(0); }

  bool operator==(const IdSet64&) const = default;

 private:
  std::uint64_t mask_ = 0;
};

}  // namespace sa::util
