// Concurrent deduplication sets for 64-bit state fingerprints.
//
// The interleaving explorer inserts one fingerprint per generated state —
// hundreds of thousands per second — and only ever asks "was this value seen
// before?". A node-based std::unordered_set pays one allocation per insert
// and chases a pointer per probe; these sets instead use open addressing over
// a flat power-of-two std::uint64_t array (no per-insert allocation, one
// cache line per probe in the common case).
//
//   FingerprintSet          single-threaded, used per shard
//   ShardedFingerprintSet   N power-of-two shards, one mutex per shard, for
//                           the parallel explorer. High bits of the mixed
//                           fingerprint pick the shard, so a lock is only
//                           contended when two workers insert into the same
//                           1/Nth of the space simultaneously.
//
// Both sets treat the value 0 as the empty-slot sentinel: an incoming 0 is
// remapped to a fixed non-zero constant. Fingerprints are already hashes, so
// this adds one more (astronomically unlikely) collision to the existing
// 64-bit birthday bound — the explorer's dedup is probabilistic either way.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace sa::util {

class FingerprintSet {
 public:
  /// Reserves capacity for `expected` values up-front (rounded up to the next
  /// power of two over the load-factor headroom); the set still grows by
  /// doubling if the estimate was low.
  explicit FingerprintSet(std::size_t expected = 0);

  /// True iff `value` was not present (and is now).
  bool insert(std::uint64_t value);
  bool contains(std::uint64_t value) const;

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  void grow();

  std::vector<std::uint64_t> slots_;  ///< power-of-two; 0 = empty
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

class ShardedFingerprintSet {
 public:
  /// `shards` is rounded up to a power of two (at least 1). `expected` is the
  /// total expected value count, split evenly across shards. Capacity
  /// pre-reservation is capped so a huge --max-states budget does not
  /// allocate the whole budget eagerly; shards grow on demand past the cap.
  explicit ShardedFingerprintSet(std::size_t expected, std::size_t shards);

  /// True iff `value` was not present. Thread-safe.
  bool insert(std::uint64_t value);

  /// Exact once all writers are quiescent; monotonically fresh during
  /// concurrent inserts (a relaxed atomic counter).
  std::size_t size() const { return total_.load(std::memory_order_relaxed); }

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    std::mutex mu;
    FingerprintSet set;
  };

  std::vector<Shard> shards_;
  std::size_t shard_shift_ = 0;  ///< 64 - log2(shard count)
  std::atomic<std::size_t> total_{0};
};

}  // namespace sa::util
