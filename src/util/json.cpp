#include "util/json.hpp"

#include <cctype>
#include <stdexcept>

namespace sa::util {

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string_view what) : text_(text), what_(what) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(std::string(what_) + ": " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::String;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.type = JsonValue::Type::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.type = JsonValue::Type::Bool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type = JsonValue::Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type = JsonValue::Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          // Artifact files never emit non-ASCII; pass the sequence through.
          out += "\\u";
          break;
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::Number;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::string_view what_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text, std::string_view what) {
  return Parser(text, what).parse();
}

}  // namespace sa::util
