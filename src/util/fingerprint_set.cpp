#include "util/fingerprint_set.hpp"

namespace sa::util {

namespace {

constexpr std::uint64_t kZeroSentinel = 0x9e3779b97f4a7c15ULL;
constexpr std::size_t kMinCapacity = 64;
/// Eager pre-reservation cap: 2^22 slots = 32 MiB across all shards. A
/// --max-states budget above this still works, the table just doubles on
/// demand instead of being allocated up-front.
constexpr std::size_t kMaxReserveSlots = std::size_t{1} << 22;

/// Finalizing mixer (splitmix64): fingerprints are already hashes, but their
/// low bits come from a weak xor-shift combine — spread them before masking.
inline std::uint64_t remix(std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return v ^ (v >> 31);
}

inline std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

FingerprintSet::FingerprintSet(std::size_t expected) {
  // Load factor <= 0.5 at the expected size keeps probe chains short.
  std::size_t capacity = next_pow2(expected * 2);
  if (capacity < kMinCapacity) capacity = kMinCapacity;
  if (capacity > kMaxReserveSlots) capacity = kMaxReserveSlots;
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;
}

bool FingerprintSet::insert(std::uint64_t value) {
  if (value == 0) value = kZeroSentinel;
  if ((size_ + 1) * 4 > slots_.size() * 3) grow();  // load factor 0.75
  std::size_t idx = static_cast<std::size_t>(remix(value)) & mask_;
  while (true) {
    const std::uint64_t slot = slots_[idx];
    if (slot == value) return false;
    if (slot == 0) {
      slots_[idx] = value;
      ++size_;
      return true;
    }
    idx = (idx + 1) & mask_;
  }
}

bool FingerprintSet::contains(std::uint64_t value) const {
  if (value == 0) value = kZeroSentinel;
  std::size_t idx = static_cast<std::size_t>(remix(value)) & mask_;
  while (true) {
    const std::uint64_t slot = slots_[idx];
    if (slot == value) return true;
    if (slot == 0) return false;
    idx = (idx + 1) & mask_;
  }
}

void FingerprintSet::grow() {
  std::vector<std::uint64_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, 0);
  mask_ = slots_.size() - 1;
  for (const std::uint64_t value : old) {
    if (value == 0) continue;
    std::size_t idx = static_cast<std::size_t>(remix(value)) & mask_;
    while (slots_[idx] != 0) idx = (idx + 1) & mask_;
    slots_[idx] = value;
  }
}

ShardedFingerprintSet::ShardedFingerprintSet(std::size_t expected, std::size_t shards) {
  const std::size_t count = next_pow2(shards == 0 ? 1 : shards);
  std::size_t log2 = 0;
  while ((std::size_t{1} << log2) < count) ++log2;
  shard_shift_ = 64 - log2;
  shards_ = std::vector<Shard>(count);
  const std::size_t per_shard = expected / count + 1;
  for (Shard& shard : shards_) shard.set = FingerprintSet(per_shard);
}

bool ShardedFingerprintSet::insert(std::uint64_t value) {
  // Shard index from the *remixed* top bits: the in-shard probe position uses
  // the low bits of the same mix, so shard choice and slot stay decorrelated
  // enough, and raw fingerprints with skewed top bits still spread evenly.
  const std::size_t shard_idx =
      shard_shift_ >= 64 ? 0 : static_cast<std::size_t>(remix(value) >> shard_shift_);
  Shard& shard = shards_[shard_idx];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (!shard.set.insert(value)) return false;
  total_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace sa::util
