// Lightweight leveled logging used across the safe-adaptation libraries.
//
// The logger is intentionally minimal: a global level, a pluggable sink, and
// printf-free formatting via operator<< streaming.  Benchmarks set the level
// to Off so that logging cost never pollutes measurements; protocol tests
// install a capturing sink to assert on emitted traces.
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace sa::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Returns the printable name of a level ("TRACE", "DEBUG", ...).
std::string_view to_string(LogLevel level);

/// Global minimum level; messages below it are discarded before formatting.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Sink invoked for every emitted record. Defaults to stderr.
using LogSink = std::function<void(LogLevel, std::string_view component, std::string_view message)>;
void set_log_sink(LogSink sink);
void reset_log_sink();

namespace detail {
void emit(LogLevel level, std::string_view component, std::string_view message);
}

/// Streaming log record: `LogRecord(LogLevel::Info, "manager") << "x=" << x;`
/// The message is emitted when the record goes out of scope.
///
/// A disabled record (level below the global threshold) does no work at all:
/// the component stays a borrowed string_view (callers pass literals that
/// outlive the statement) and the ostringstream is only constructed on the
/// first streamed value, so `SA_DEBUG(...) << ...` costs two stores and a
/// branch when debug logging is off. bench_protocol guards this with
/// BM_DisabledLogging.
class LogRecord {
 public:
  LogRecord(LogLevel level, std::string_view component)
      : level_(level), component_(component), enabled_(level >= log_level()) {}
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;
  ~LogRecord() {
    if (enabled_) detail::emit(level_, component_, stream_ ? stream_->str() : std::string());
  }

  template <typename T>
  LogRecord& operator<<(const T& value) {
    if (enabled_) {
      if (!stream_) stream_.emplace();
      *stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  bool enabled_;
  std::optional<std::ostringstream> stream_;  ///< constructed on first <<
};

}  // namespace sa::util

#define SA_LOG(level, component) ::sa::util::LogRecord(level, component)
#define SA_TRACE(component) SA_LOG(::sa::util::LogLevel::Trace, component)
#define SA_DEBUG(component) SA_LOG(::sa::util::LogLevel::Debug, component)
#define SA_INFO(component) SA_LOG(::sa::util::LogLevel::Info, component)
#define SA_WARN(component) SA_LOG(::sa::util::LogLevel::Warn, component)
#define SA_ERROR(component) SA_LOG(::sa::util::LogLevel::Error, component)
