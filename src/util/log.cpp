#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sa::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_sink_mutex;
LogSink g_sink;  // empty => default stderr sink

void default_sink(LogLevel level, std::string_view component, std::string_view message) {
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n", static_cast<int>(to_string(level).size()),
               to_string(level).data(), static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  std::scoped_lock lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void reset_log_sink() {
  std::scoped_lock lock(g_sink_mutex);
  g_sink = nullptr;
}

namespace detail {

void emit(LogLevel level, std::string_view component, std::string_view message) {
  std::scoped_lock lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, component, message);
  } else {
    default_sink(level, component, message);
  }
}

}  // namespace detail

}  // namespace sa::util
