// SmallVector<T, N>: a vector with N elements of inline storage.
//
// The interleaving explorer forks its Model at every branch point; the
// model's hot containers (in-flight channel messages, per-step property
// bookkeeping) almost always hold a handful of elements, so a std::vector
// pays a heap allocation per fork for a few dozen bytes of payload. This
// container keeps up to N elements in the object itself and only spills to
// the heap beyond that.
//
// Deliberately minimal: the subset of the std::vector interface the model
// needs (push_back/emplace_back, erase, clear, iteration, indexing, copy and
// move). Not exception-safe against throwing element copies mid-operation
// beyond the basic guarantee, which is fine for the value types it holds.
#pragma once

#include <algorithm>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sa::util {

template <typename T, std::size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(const SmallVector& other) { append_from(other.begin(), other.end()); }

  SmallVector(SmallVector&& other) noexcept(std::is_nothrow_move_constructible_v<T>) {
    take_from(std::move(other));
  }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      reserve(other.size());
      append_from(other.begin(), other.end());
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      destroy_all();
      take_from(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { destroy_all(); }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool inline_storage() const { return data_ == inline_data(); }

  void reserve(std::size_t wanted) {
    if (wanted > capacity_) relocate(wanted);
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) relocate(capacity_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  iterator erase(const_iterator pos) {
    const std::size_t index = static_cast<std::size_t>(pos - data_);
    std::move(data_ + index + 1, data_ + size_, data_ + index);
    pop_back();
    return data_ + index;
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

 private:
  T* inline_data() { return reinterpret_cast<T*>(inline_storage_); }
  const T* inline_data() const { return reinterpret_cast<const T*>(inline_storage_); }

  void append_from(const T* first, const T* last) {
    reserve(static_cast<std::size_t>(last - first));
    for (; first != last; ++first) emplace_back(*first);
  }

  /// Steals `other`'s heap buffer when it has one; element-wise moves
  /// otherwise. `*this` must be empty/destroyed storage beforehand.
  void take_from(SmallVector&& other) {
    if (other.inline_storage()) {
      data_ = inline_data();
      capacity_ = N;
      size_ = 0;
      for (T& value : other) emplace_back(std::move(value));
      other.clear();
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
      other.size_ = 0;
    }
  }

  void destroy_all() {
    clear();
    if (!inline_storage()) {
      ::operator delete(static_cast<void*>(data_), std::align_val_t{alignof(T)});
    }
    data_ = inline_data();
    capacity_ = N;
  }

  void relocate(std::size_t wanted) {
    const std::size_t new_capacity = std::max<std::size_t>(wanted, capacity_ * 2);
    T* fresh = static_cast<T*>(
        ::operator new(new_capacity * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!inline_storage()) {
      ::operator delete(static_cast<void*>(data_), std::align_val_t{alignof(T)});
    }
    data_ = fresh;
    capacity_ = new_capacity;
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace sa::util
