// Decision-making: the third of the paper's four adaptive-software tasks
// ("Decision-making determines when and how the program should be adapted",
// §1). The paper's own contribution is task four — process management — and
// it relies on earlier RAPIDware work for this layer; this module provides a
// self-contained rule engine so the repository exercises the full loop:
//
//   monitoring -> decision-making -> (this paper's) safe adaptation process.
//
// A DecisionEngine periodically samples environment metrics (loss rate,
// battery, threat level, ... — whatever the provider reports), evaluates
// prioritized condition->target rules, and submits adaptation requests to the
// AdaptationManager. Guard rails prevent flapping: a cooldown after every
// completed request, suppression while the manager is busy, and automatic
// disabling of rules whose requests keep failing.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "proto/manager.hpp"
#include "runtime/clock.hpp"

namespace sa::decision {

/// Snapshot of monitored environment metrics, keyed by name.
using Metrics = std::map<std::string, double>;
using MetricsProvider = std::function<Metrics()>;

struct Rule {
  std::string name;
  std::function<bool(const Metrics&)> condition;
  config::Configuration target;
  int priority = 0;  ///< higher wins when several rules fire at once
};

struct EngineConfig {
  runtime::Time evaluation_interval = runtime::ms(500);
  runtime::Time cooldown = runtime::seconds(2);  ///< quiet period after each request
  int max_consecutive_failures = 3;      ///< then the rule is disabled
};

struct TriggerRecord {
  runtime::Time time = 0;
  std::string rule;
  std::optional<proto::AdaptationOutcome> outcome;  ///< empty while in flight
};

struct EngineStats {
  std::uint64_t evaluations = 0;
  std::uint64_t triggers = 0;
  std::uint64_t suppressed_busy = 0;
  std::uint64_t suppressed_cooldown = 0;
  std::uint64_t rules_disabled = 0;
};

class DecisionEngine {
 public:
  DecisionEngine(runtime::Clock& clock, proto::AdaptationManager& manager,
                 MetricsProvider provider, EngineConfig config = {});

  /// Rules may be added at any time; duplicates by name are rejected.
  void add_rule(Rule rule);

  /// Begins periodic evaluation; idempotent.
  void start();
  void stop();
  bool running() const { return running_; }

  /// Re-enables a rule disabled after repeated failures.
  void reenable_rule(const std::string& name);
  bool rule_enabled(const std::string& name) const;

  const EngineStats& stats() const { return stats_; }
  const std::vector<TriggerRecord>& log() const { return log_; }

 private:
  struct RuleState {
    Rule rule;
    bool enabled = true;
    int consecutive_failures = 0;
  };

  void evaluate();
  void schedule_next();

  runtime::Clock* clock_;
  proto::AdaptationManager* manager_;
  MetricsProvider provider_;
  EngineConfig config_;

  std::vector<RuleState> rules_;
  bool running_ = false;
  bool request_in_flight_ = false;
  runtime::TimerId tick_ = 0;
  runtime::Time quiet_until_ = 0;
  EngineStats stats_;
  std::vector<TriggerRecord> log_;
};

}  // namespace sa::decision
