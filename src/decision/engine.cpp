#include "decision/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace sa::decision {

DecisionEngine::DecisionEngine(runtime::Clock& clock, proto::AdaptationManager& manager,
                               MetricsProvider provider, EngineConfig config)
    : clock_(&clock), manager_(&manager), provider_(std::move(provider)), config_(config) {
  if (!provider_) throw std::invalid_argument("DecisionEngine needs a metrics provider");
}

void DecisionEngine::add_rule(Rule rule) {
  if (rule.name.empty() || !rule.condition) {
    throw std::invalid_argument("rule needs a name and a condition");
  }
  for (const RuleState& existing : rules_) {
    if (existing.rule.name == rule.name) {
      throw std::invalid_argument("duplicate rule name: " + rule.name);
    }
  }
  rules_.push_back(RuleState{std::move(rule), true, 0});
  // Highest priority first; stable so insertion order breaks ties.
  std::stable_sort(rules_.begin(), rules_.end(), [](const RuleState& a, const RuleState& b) {
    return a.rule.priority > b.rule.priority;
  });
}

void DecisionEngine::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void DecisionEngine::stop() {
  running_ = false;
  if (tick_ != 0) {
    clock_->cancel(tick_);
    tick_ = 0;
  }
}

void DecisionEngine::reenable_rule(const std::string& name) {
  for (RuleState& state : rules_) {
    if (state.rule.name == name) {
      state.enabled = true;
      state.consecutive_failures = 0;
    }
  }
}

bool DecisionEngine::rule_enabled(const std::string& name) const {
  for (const RuleState& state : rules_) {
    if (state.rule.name == name) return state.enabled;
  }
  return false;
}

void DecisionEngine::schedule_next() {
  if (!running_) return;
  tick_ = clock_->schedule_after(config_.evaluation_interval, [this] {
    tick_ = 0;
    evaluate();
    schedule_next();
  });
}

void DecisionEngine::evaluate() {
  ++stats_.evaluations;
  const Metrics metrics = provider_();

  for (RuleState& state : rules_) {
    if (!state.enabled) continue;
    if (!state.rule.condition(metrics)) continue;
    if (state.rule.target == manager_->current_configuration()) continue;  // satisfied

    if (request_in_flight_ || manager_->busy()) {
      ++stats_.suppressed_busy;
      return;
    }
    if (clock_->now() < quiet_until_) {
      ++stats_.suppressed_cooldown;
      return;
    }

    ++stats_.triggers;
    log_.push_back(TriggerRecord{clock_->now(), state.rule.name, std::nullopt});
    const std::size_t record_index = log_.size() - 1;
    const std::string rule_name = state.rule.name;
    SA_INFO("decision") << "rule '" << rule_name << "' fired; requesting adaptation";

    request_in_flight_ = true;
    manager_->request_adaptation(
        state.rule.target, [this, record_index, rule_name](const proto::AdaptationResult& r) {
          request_in_flight_ = false;
          quiet_until_ = clock_->now() + config_.cooldown;
          log_[record_index].outcome = r.outcome;
          for (RuleState& rs : rules_) {
            if (rs.rule.name != rule_name) continue;
            if (r.outcome == proto::AdaptationOutcome::Success) {
              rs.consecutive_failures = 0;
            } else if (++rs.consecutive_failures >= config_.max_consecutive_failures) {
              rs.enabled = false;
              ++stats_.rules_disabled;
              SA_WARN("decision") << "rule '" << rule_name << "' disabled after "
                                  << rs.consecutive_failures << " consecutive failures";
            }
          }
        });
    return;  // at most one trigger per evaluation
  }
}

}  // namespace sa::decision
