// DES codec filters: the paper's E1/E2 encoders and D1..D5 decoders (§5).
//
// Encoders encrypt the payload and push their scheme tag onto the packet's
// encoding stack; decoders pop a matching tag and decrypt, or *bypass* —
// "when it receives a packet not encoded by the corresponding encoder, it
// simply forwards the packet to the next filter in the chain."
//
// The hand-held's D2 is the 128/64-bit *compatible* decoder: it accepts both
// schemes, which is exactly what makes the paper's intermediate safe
// configurations (e.g. D5,D4,D2,E1 and D5,D4,D2,E2) possible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "components/filter.hpp"
#include "crypto/des.hpp"

namespace sa::crypto {

inline constexpr const char* kTagDes64 = "des64";
inline constexpr const char* kTagDes128 = "des128";

/// Default key material shared by the case-study server and clients.
inline constexpr std::uint64_t kDefaultKey64 = 0x133457799BBCDFF1ULL;
inline constexpr std::uint64_t kDefaultKey128a = 0x0123456789ABCDEFULL;
inline constexpr std::uint64_t kDefaultKey128b = 0xFEDCBA9876543210ULL;

enum class Scheme { Des64, Des128 };

std::string_view scheme_tag(Scheme scheme);

struct DesKeys {
  std::uint64_t key64 = kDefaultKey64;
  std::uint64_t key128a = kDefaultKey128a;
  std::uint64_t key128b = kDefaultKey128b;
};

/// Encrypts payloads under one scheme; pushes the scheme tag.
class DesEncoderFilter final : public components::Filter {
 public:
  DesEncoderFilter(std::string name, Scheme scheme, DesKeys keys = {},
                   runtime::Time processing_time = runtime::us(80));

  Scheme scheme() const { return scheme_; }
  std::optional<components::Packet> process(components::Packet packet) override;

  /// Batched path: pads + encrypts each payload into a fresh arena buffer
  /// (one pass, no intermediate vector) and rebinds the ref to it.
  void process_span(std::span<components::PacketRef> batch,
                    components::PacketSink& sink) override;

  components::StateSnapshot refract() const override;

 private:
  Scheme scheme_;
  Des64Cipher des64_;
  Des128Cipher des128_;
};

/// Decrypts payloads whose top encoding tag matches an accepted scheme;
/// bypasses everything else.
class DesDecoderFilter final : public components::Filter {
 public:
  /// `accept64` / `accept128` select the accepted schemes; the paper's D2 is
  /// the decoder with both set.
  DesDecoderFilter(std::string name, bool accept64, bool accept128, DesKeys keys = {},
                   runtime::Time processing_time = runtime::us(80));

  bool accepts64() const { return accept64_; }
  bool accepts128() const { return accept128_; }
  std::optional<components::Packet> process(components::Packet packet) override;

  /// Batched path: decrypts each accepted payload IN PLACE in the arena and
  /// truncates the ref past the stripped padding; bypasses zero-copy.
  void process_span(std::span<components::PacketRef> batch,
                    components::PacketSink& sink) override;

  components::StateSnapshot refract() const override;

 private:
  bool accept64_;
  bool accept128_;
  Des64Cipher des64_;
  Des128Cipher des128_;
};

// Convenience factories matching the paper's component names.
components::FilterPtr make_encoder_e1(DesKeys keys = {});  ///< DES 64-bit encoder
components::FilterPtr make_encoder_e2(DesKeys keys = {});  ///< DES 128-bit encoder
components::FilterPtr make_decoder(const std::string& name, bool accept64, bool accept128,
                                   DesKeys keys = {});

}  // namespace sa::crypto
