#include "crypto/des.hpp"

#include <stdexcept>

namespace sa::crypto {

namespace {

// FIPS 46-3 tables. Entries are 1-based bit positions counted from the MSB of
// the input word, as the standard writes them.

constexpr std::uint8_t kIP[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr std::uint8_t kFP[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr std::uint8_t kE[48] = {32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
                                 8,  9,  10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
                                 16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
                                 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr std::uint8_t kP[32] = {16, 7,  20, 21, 29, 12, 28, 17, 1,  15, 23,
                                 26, 5,  18, 31, 10, 2,  8,  24, 14, 32, 27,
                                 3,  9,  19, 13, 30, 6,  22, 11, 4,  25};

constexpr std::uint8_t kPC1[56] = {57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
                                   10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
                                   63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
                                   14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

constexpr std::uint8_t kPC2[48] = {14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10,
                                   23, 19, 12, 4,  26, 8,  16, 7,  27, 20, 13, 2,
                                   41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
                                   44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr std::uint8_t kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1};

constexpr std::uint8_t kSBox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8, 4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4, 1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

/// Applies a 1-based-from-MSB permutation table: output bit i (MSB-first)
/// takes input bit table[i] of an `in_width`-bit word.
template <std::size_t OutWidth, std::size_t TableSize>
std::uint64_t permute(std::uint64_t input, std::size_t in_width,
                      const std::uint8_t (&table)[TableSize]) {
  static_assert(OutWidth == TableSize);
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < TableSize; ++i) {
    const std::uint64_t bit = (input >> (in_width - table[i])) & 1ULL;
    out = (out << 1) | bit;
  }
  return out;
}

std::uint32_t rotate_left28(std::uint32_t value, int count) {
  return ((value << count) | (value >> (28 - count))) & 0x0FFFFFFFU;
}

std::uint32_t feistel(std::uint32_t right, std::uint64_t subkey) {
  const std::uint64_t expanded = permute<48>(right, 32, kE) ^ subkey;
  std::uint32_t substituted = 0;
  for (int box = 0; box < 8; ++box) {
    const std::uint32_t chunk =
        static_cast<std::uint32_t>((expanded >> (42 - 6 * box)) & 0x3FU);
    // Row = outer bits, column = middle four bits.
    const std::uint32_t row = ((chunk & 0x20U) >> 4) | (chunk & 1U);
    const std::uint32_t col = (chunk >> 1) & 0xFU;
    substituted = (substituted << 4) | kSBox[box][row * 16 + col];
  }
  return static_cast<std::uint32_t>(permute<32>(substituted, 32, kP));
}

std::uint64_t des_rounds(std::uint64_t block, const DesKeySchedule& schedule, bool decrypt) {
  const std::uint64_t permuted = permute<64>(block, 64, kIP);
  std::uint32_t left = static_cast<std::uint32_t>(permuted >> 32);
  std::uint32_t right = static_cast<std::uint32_t>(permuted & 0xFFFFFFFFULL);
  for (int round = 0; round < 16; ++round) {
    const std::uint64_t subkey = schedule.subkeys[decrypt ? 15 - round : round];
    const std::uint32_t next_right = left ^ feistel(right, subkey);
    left = right;
    right = next_right;
  }
  // Pre-output block is R16 || L16 (the final swap).
  const std::uint64_t preoutput = (static_cast<std::uint64_t>(right) << 32) | left;
  return permute<64>(preoutput, 64, kFP);
}

}  // namespace

DesKeySchedule des_key_schedule(std::uint64_t key) {
  DesKeySchedule schedule;
  const std::uint64_t permuted = permute<56>(key, 64, kPC1);
  std::uint32_t c = static_cast<std::uint32_t>(permuted >> 28) & 0x0FFFFFFFU;
  std::uint32_t d = static_cast<std::uint32_t>(permuted) & 0x0FFFFFFFU;
  for (int round = 0; round < 16; ++round) {
    c = rotate_left28(c, kShifts[round]);
    d = rotate_left28(d, kShifts[round]);
    const std::uint64_t cd = (static_cast<std::uint64_t>(c) << 28) | d;
    schedule.subkeys[round] = permute<48>(cd, 56, kPC2);
  }
  return schedule;
}

std::uint64_t des_encrypt_block(std::uint64_t block, const DesKeySchedule& schedule) {
  return des_rounds(block, schedule, /*decrypt=*/false);
}

std::uint64_t des_decrypt_block(std::uint64_t block, const DesKeySchedule& schedule) {
  return des_rounds(block, schedule, /*decrypt=*/true);
}

std::uint64_t des_ede_encrypt_block(std::uint64_t block, const DesKeySchedule& k1,
                                    const DesKeySchedule& k2) {
  return des_encrypt_block(des_decrypt_block(des_encrypt_block(block, k1), k2), k1);
}

std::uint64_t des_ede_decrypt_block(std::uint64_t block, const DesKeySchedule& k1,
                                    const DesKeySchedule& k2) {
  return des_decrypt_block(des_encrypt_block(des_decrypt_block(block, k1), k2), k1);
}

namespace {

std::uint64_t load_block(const Bytes& bytes, std::size_t offset) {
  std::uint64_t block = 0;
  for (std::size_t i = 0; i < 8; ++i) block = (block << 8) | bytes[offset + i];
  return block;
}

void store_block(Bytes& bytes, std::size_t offset, std::uint64_t block) {
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[offset + i] = static_cast<std::uint8_t>(block >> (56 - 8 * i));
  }
}

Bytes pad_pkcs7(const Bytes& input) {
  const std::size_t pad = 8 - input.size() % 8;
  Bytes out = input;
  out.insert(out.end(), pad, static_cast<std::uint8_t>(pad));
  return out;
}

/// Strips valid PKCS#7 padding; leaves the buffer untouched when invalid so
/// wrong-key corruption is delivered to the integrity check, not thrown away.
Bytes strip_pkcs7(Bytes decrypted) {
  if (decrypted.empty() || decrypted.size() % 8 != 0) return decrypted;
  const std::uint8_t pad = decrypted.back();
  if (pad == 0 || pad > 8 || pad > decrypted.size()) return decrypted;
  for (std::size_t i = decrypted.size() - pad; i < decrypted.size(); ++i) {
    if (decrypted[i] != pad) return decrypted;
  }
  decrypted.resize(decrypted.size() - pad);
  return decrypted;
}

template <typename BlockFn>
Bytes map_blocks(const Bytes& input, BlockFn&& fn) {
  if (input.size() % 8 != 0) {
    throw std::invalid_argument("ciphertext length must be a multiple of 8");
  }
  Bytes out(input.size());
  for (std::size_t offset = 0; offset < input.size(); offset += 8) {
    store_block(out, offset, fn(load_block(input, offset)));
  }
  return out;
}

}  // namespace

Bytes Des64Cipher::encrypt(const Bytes& plaintext) const {
  return map_blocks(pad_pkcs7(plaintext),
                    [this](std::uint64_t b) { return des_encrypt_block(b, schedule_); });
}

Bytes Des64Cipher::decrypt(const Bytes& ciphertext) const {
  return strip_pkcs7(map_blocks(
      ciphertext, [this](std::uint64_t b) { return des_decrypt_block(b, schedule_); }));
}

Bytes Des128Cipher::encrypt(const Bytes& plaintext) const {
  return map_blocks(pad_pkcs7(plaintext),
                    [this](std::uint64_t b) { return des_ede_encrypt_block(b, k1_, k2_); });
}

Bytes Des128Cipher::decrypt(const Bytes& ciphertext) const {
  return strip_pkcs7(map_blocks(
      ciphertext, [this](std::uint64_t b) { return des_ede_decrypt_block(b, k1_, k2_); }));
}

}  // namespace sa::crypto
