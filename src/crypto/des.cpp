#include "crypto/des.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace sa::crypto {

namespace {

// FIPS 46-3 tables. Entries are 1-based bit positions counted from the MSB of
// the input word, as the standard writes them.

constexpr std::uint8_t kIP[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr std::uint8_t kFP[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr std::uint8_t kE[48] = {32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
                                 8,  9,  10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
                                 16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
                                 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr std::uint8_t kP[32] = {16, 7,  20, 21, 29, 12, 28, 17, 1,  15, 23,
                                 26, 5,  18, 31, 10, 2,  8,  24, 14, 32, 27,
                                 3,  9,  19, 13, 30, 6,  22, 11, 4,  25};

constexpr std::uint8_t kPC1[56] = {57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
                                   10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
                                   63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
                                   14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

constexpr std::uint8_t kPC2[48] = {14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10,
                                   23, 19, 12, 4,  26, 8,  16, 7,  27, 20, 13, 2,
                                   41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
                                   44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr std::uint8_t kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1};

constexpr std::uint8_t kSBox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8, 4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4, 1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

/// Applies a 1-based-from-MSB permutation table: output bit i (MSB-first)
/// takes input bit table[i] of an `in_width`-bit word.
template <std::size_t OutWidth, std::size_t TableSize>
std::uint64_t permute(std::uint64_t input, std::size_t in_width,
                      const std::uint8_t (&table)[TableSize]) {
  static_assert(OutWidth == TableSize);
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < TableSize; ++i) {
    const std::uint64_t bit = (input >> (in_width - table[i])) & 1ULL;
    out = (out << 1) | bit;
  }
  return out;
}

std::uint32_t rotate_left28(std::uint32_t value, int count) {
  return ((value << count) | (value >> (28 - count))) & 0x0FFFFFFFU;
}

// --- bit-by-bit reference (the seed implementation, kept verbatim) ------------

std::uint32_t feistel_reference(std::uint32_t right, std::uint64_t subkey) {
  const std::uint64_t expanded = permute<48>(right, 32, kE) ^ subkey;
  std::uint32_t substituted = 0;
  for (int box = 0; box < 8; ++box) {
    const std::uint32_t chunk =
        static_cast<std::uint32_t>((expanded >> (42 - 6 * box)) & 0x3FU);
    // Row = outer bits, column = middle four bits.
    const std::uint32_t row = ((chunk & 0x20U) >> 4) | (chunk & 1U);
    const std::uint32_t col = (chunk >> 1) & 0xFU;
    substituted = (substituted << 4) | kSBox[box][row * 16 + col];
  }
  return static_cast<std::uint32_t>(permute<32>(substituted, 32, kP));
}

std::uint64_t des_rounds_reference(std::uint64_t block, const DesKeySchedule& schedule,
                                   bool decrypt) {
  const std::uint64_t permuted = permute<64>(block, 64, kIP);
  std::uint32_t left = static_cast<std::uint32_t>(permuted >> 32);
  std::uint32_t right = static_cast<std::uint32_t>(permuted & 0xFFFFFFFFULL);
  for (int round = 0; round < 16; ++round) {
    const std::uint64_t subkey = schedule.subkeys[decrypt ? 15 - round : round];
    const std::uint32_t next_right = left ^ feistel_reference(right, subkey);
    left = right;
    right = next_right;
  }
  // Pre-output block is R16 || L16 (the final swap).
  const std::uint64_t preoutput = (static_cast<std::uint64_t>(right) << 32) | left;
  return permute<64>(preoutput, 64, kFP);
}

// --- table-driven fast path ---------------------------------------------------

// Combined SP-boxes: sp[b][v] is the P-permuted contribution of S-box b
// producing output nibble b from 6-bit input v. The Feistel function then is
// eight table lookups XORed together — no per-bit work. IP and FP become
// per-input-byte lookups (each input byte contributes a disjoint set of
// output bits, so OR of 8 lookups equals the full 64-bit permutation). All
// derived from the FIPS tables above at first use, once per process.
struct DesTables {
  std::uint32_t sp[8][64];
  std::uint64_t ip[8][256];
  std::uint64_t fp[8][256];
};

DesTables build_tables() {
  DesTables t;
  for (int box = 0; box < 8; ++box) {
    for (std::uint32_t v = 0; v < 64; ++v) {
      const std::uint32_t row = ((v & 0x20U) >> 4) | (v & 1U);
      const std::uint32_t col = (v >> 1) & 0xFU;
      const std::uint32_t nibble = kSBox[box][row * 16 + col];
      const std::uint32_t placed = nibble << (28 - 4 * box);
      t.sp[box][v] = static_cast<std::uint32_t>(permute<32>(placed, 32, kP));
    }
  }
  for (int byte = 0; byte < 8; ++byte) {
    for (std::uint32_t v = 0; v < 256; ++v) {
      const std::uint64_t word = static_cast<std::uint64_t>(v) << (56 - 8 * byte);
      t.ip[byte][v] = permute<64>(word, 64, kIP);
      t.fp[byte][v] = permute<64>(word, 64, kFP);
    }
  }
  return t;
}

const DesTables& tables() {
  static const DesTables t = build_tables();
  return t;
}

inline std::uint64_t apply_byte_tables(const std::uint64_t (&tab)[8][256], std::uint64_t x) {
  return tab[0][(x >> 56) & 0xFF] | tab[1][(x >> 48) & 0xFF] | tab[2][(x >> 40) & 0xFF] |
         tab[3][(x >> 32) & 0xFF] | tab[4][(x >> 24) & 0xFF] | tab[5][(x >> 16) & 0xFF] |
         tab[6][(x >> 8) & 0xFF] | tab[7][x & 0xFF];
}

inline std::uint32_t feistel_fast(const DesTables& t, std::uint32_t right, std::uint64_t subkey) {
  // E-expansion by shifting: X holds R's 32 bits shifted up one with the two
  // wraparound bits (bit 32 above, bit 1 below); each S-box's 6-bit input is
  // then a contiguous window (X >> (28 - 4*box)) & 0x3F.
  const std::uint64_t x = (static_cast<std::uint64_t>(right & 1U) << 33) |
                          (static_cast<std::uint64_t>(right) << 1) | (right >> 31);
  std::uint32_t f = 0;
  f ^= t.sp[0][((x >> 28) ^ (subkey >> 42)) & 0x3F];
  f ^= t.sp[1][((x >> 24) ^ (subkey >> 36)) & 0x3F];
  f ^= t.sp[2][((x >> 20) ^ (subkey >> 30)) & 0x3F];
  f ^= t.sp[3][((x >> 16) ^ (subkey >> 24)) & 0x3F];
  f ^= t.sp[4][((x >> 12) ^ (subkey >> 18)) & 0x3F];
  f ^= t.sp[5][((x >> 8) ^ (subkey >> 12)) & 0x3F];
  f ^= t.sp[6][((x >> 4) ^ (subkey >> 6)) & 0x3F];
  f ^= t.sp[7][(x ^ subkey) & 0x3F];
  return f;
}

template <bool Decrypt>
inline std::uint64_t des_rounds_fast(const DesTables& t, std::uint64_t block,
                                     const DesKeySchedule& schedule) {
  const std::uint64_t permuted = apply_byte_tables(t.ip, block);
  std::uint32_t left = static_cast<std::uint32_t>(permuted >> 32);
  std::uint32_t right = static_cast<std::uint32_t>(permuted);
  for (int round = 0; round < 16; ++round) {
    const std::uint64_t subkey = schedule.subkeys[Decrypt ? 15 - round : round];
    const std::uint32_t next_right = left ^ feistel_fast(t, right, subkey);
    left = right;
    right = next_right;
  }
  const std::uint64_t preoutput = (static_cast<std::uint64_t>(right) << 32) | left;
  return apply_byte_tables(t.fp, preoutput);
}

// Two independent ECB blocks run through the rounds together: each round's
// eight SP-table loads are latency-bound on a single dependent chain, so a
// second in-flight chain nearly doubles block throughput on one core.
template <bool Decrypt>
inline void des_rounds_fast_x2(const DesTables& t, std::uint64_t& a, std::uint64_t& b,
                               const DesKeySchedule& schedule) {
  const std::uint64_t pa = apply_byte_tables(t.ip, a);
  const std::uint64_t pb = apply_byte_tables(t.ip, b);
  std::uint32_t la = static_cast<std::uint32_t>(pa >> 32);
  std::uint32_t ra = static_cast<std::uint32_t>(pa);
  std::uint32_t lb = static_cast<std::uint32_t>(pb >> 32);
  std::uint32_t rb = static_cast<std::uint32_t>(pb);
  for (int round = 0; round < 16; ++round) {
    const std::uint64_t subkey = schedule.subkeys[Decrypt ? 15 - round : round];
    const std::uint32_t na = la ^ feistel_fast(t, ra, subkey);
    const std::uint32_t nb = lb ^ feistel_fast(t, rb, subkey);
    la = ra;
    ra = na;
    lb = rb;
    rb = nb;
  }
  a = apply_byte_tables(t.fp, (static_cast<std::uint64_t>(ra) << 32) | la);
  b = apply_byte_tables(t.fp, (static_cast<std::uint64_t>(rb) << 32) | lb);
}

template <bool Decrypt>
void des_blocks_fast(std::uint64_t* blocks, std::size_t count, const DesKeySchedule& schedule) {
  const DesTables& t = tables();
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    des_rounds_fast_x2<Decrypt>(t, blocks[i], blocks[i + 1], schedule);
  }
  if (i < count) blocks[i] = des_rounds_fast<Decrypt>(t, blocks[i], schedule);
}

}  // namespace

DesKeySchedule des_key_schedule(std::uint64_t key) {
  DesKeySchedule schedule;
  const std::uint64_t permuted = permute<56>(key, 64, kPC1);
  std::uint32_t c = static_cast<std::uint32_t>(permuted >> 28) & 0x0FFFFFFFU;
  std::uint32_t d = static_cast<std::uint32_t>(permuted) & 0x0FFFFFFFU;
  for (int round = 0; round < 16; ++round) {
    c = rotate_left28(c, kShifts[round]);
    d = rotate_left28(d, kShifts[round]);
    const std::uint64_t cd = (static_cast<std::uint64_t>(c) << 28) | d;
    schedule.subkeys[round] = permute<48>(cd, 56, kPC2);
  }
  return schedule;
}

const DesKeySchedule& shared_key_schedule(std::uint64_t key) {
  static std::mutex mutex;
  static std::map<std::uint64_t, std::unique_ptr<DesKeySchedule>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto& entry = cache[key];
  if (!entry) entry = std::make_unique<DesKeySchedule>(des_key_schedule(key));
  return *entry;
}

std::uint64_t des_encrypt_block(std::uint64_t block, const DesKeySchedule& schedule) {
  return des_rounds_fast<false>(tables(), block, schedule);
}

std::uint64_t des_decrypt_block(std::uint64_t block, const DesKeySchedule& schedule) {
  return des_rounds_fast<true>(tables(), block, schedule);
}

std::uint64_t des_ede_encrypt_block(std::uint64_t block, const DesKeySchedule& k1,
                                    const DesKeySchedule& k2) {
  return des_encrypt_block(des_decrypt_block(des_encrypt_block(block, k1), k2), k1);
}

std::uint64_t des_ede_decrypt_block(std::uint64_t block, const DesKeySchedule& k1,
                                    const DesKeySchedule& k2) {
  return des_decrypt_block(des_encrypt_block(des_decrypt_block(block, k1), k2), k1);
}

void des_encrypt_blocks(std::uint64_t* blocks, std::size_t count,
                        const DesKeySchedule& schedule) {
  des_blocks_fast<false>(blocks, count, schedule);
}

void des_decrypt_blocks(std::uint64_t* blocks, std::size_t count,
                        const DesKeySchedule& schedule) {
  des_blocks_fast<true>(blocks, count, schedule);
}

void des_ede_encrypt_blocks(std::uint64_t* blocks, std::size_t count, const DesKeySchedule& k1,
                            const DesKeySchedule& k2) {
  des_blocks_fast<false>(blocks, count, k1);
  des_blocks_fast<true>(blocks, count, k2);
  des_blocks_fast<false>(blocks, count, k1);
}

void des_ede_decrypt_blocks(std::uint64_t* blocks, std::size_t count, const DesKeySchedule& k1,
                            const DesKeySchedule& k2) {
  des_blocks_fast<true>(blocks, count, k1);
  des_blocks_fast<false>(blocks, count, k2);
  des_blocks_fast<true>(blocks, count, k1);
}

std::uint64_t des_encrypt_block_reference(std::uint64_t block, const DesKeySchedule& schedule) {
  return des_rounds_reference(block, schedule, /*decrypt=*/false);
}

std::uint64_t des_decrypt_block_reference(std::uint64_t block, const DesKeySchedule& schedule) {
  return des_rounds_reference(block, schedule, /*decrypt=*/true);
}

std::uint64_t des_ede_encrypt_block_reference(std::uint64_t block, const DesKeySchedule& k1,
                                              const DesKeySchedule& k2) {
  return des_encrypt_block_reference(
      des_decrypt_block_reference(des_encrypt_block_reference(block, k1), k2), k1);
}

std::uint64_t des_ede_decrypt_block_reference(std::uint64_t block, const DesKeySchedule& k1,
                                              const DesKeySchedule& k2) {
  return des_decrypt_block_reference(
      des_encrypt_block_reference(des_decrypt_block_reference(block, k1), k2), k1);
}

namespace {

std::uint64_t load_block(const std::uint8_t* bytes) {
  std::uint64_t block = 0;
  for (std::size_t i = 0; i < 8; ++i) block = (block << 8) | bytes[i];
  return block;
}

void store_block(std::uint8_t* bytes, std::uint64_t block) {
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(block >> (56 - 8 * i));
  }
}

Bytes pad_pkcs7(const Bytes& input) {
  const std::size_t pad = 8 - input.size() % 8;
  Bytes out = input;
  out.insert(out.end(), pad, static_cast<std::uint8_t>(pad));
  return out;
}

/// Writes `src` plus PKCS#7 padding into `dst` (padded_size(src) bytes).
void pad_pkcs7_into(std::span<const std::uint8_t> src, std::uint8_t* dst) {
  if (!src.empty()) std::memcpy(dst, src.data(), src.size());
  const std::size_t pad = 8 - src.size() % 8;
  std::memset(dst + src.size(), static_cast<int>(pad), pad);
}

/// Valid-padding length of `[data, data+n)`, or `n` when padding is invalid —
/// the garbage-tolerant contract (see Des64Cipher::decrypt).
std::size_t stripped_size(const std::uint8_t* data, std::size_t n) {
  if (n == 0 || n % 8 != 0) return n;
  const std::uint8_t pad = data[n - 1];
  if (pad == 0 || pad > 8 || pad > n) return n;
  for (std::size_t i = n - pad; i < n; ++i) {
    if (data[i] != pad) return n;
  }
  return n - pad;
}

Bytes strip_pkcs7(Bytes decrypted) {
  const std::size_t keep = stripped_size(decrypted.data(), decrypted.size());
  if (keep < decrypted.size()) decrypted.resize(keep);
  return decrypted;
}

void require_block_aligned(std::size_t n) {
  if (n % 8 != 0) {
    throw std::invalid_argument("ciphertext length must be a multiple of 8");
  }
}

/// Runs a batched block function over a byte buffer in place (big-endian
/// block order, as the byte-stream format prescribes).
template <typename BlocksFn>
void crypt_bytes_inplace(std::uint8_t* data, std::size_t n, BlocksFn&& fn) {
  require_block_aligned(n);
  // Work in a small stack batch to keep block loads/stores and the cipher
  // rounds cache-friendly without allocating.
  constexpr std::size_t kBatch = 64;
  std::uint64_t blocks[kBatch];
  std::size_t offset = 0;
  while (offset < n) {
    const std::size_t take = std::min(kBatch, (n - offset) / 8);
    for (std::size_t i = 0; i < take; ++i) blocks[i] = load_block(data + offset + 8 * i);
    fn(blocks, take);
    for (std::size_t i = 0; i < take; ++i) store_block(data + offset + 8 * i, blocks[i]);
    offset += take * 8;
  }
}

template <typename BlockFn>
Bytes map_blocks(const Bytes& input, BlockFn&& fn) {
  require_block_aligned(input.size());
  Bytes out(input.size());
  for (std::size_t offset = 0; offset < input.size(); offset += 8) {
    store_block(out.data() + offset, fn(load_block(input.data() + offset)));
  }
  return out;
}

}  // namespace

Bytes Des64Cipher::encrypt(const Bytes& plaintext) const {
  return map_blocks(pad_pkcs7(plaintext),
                    [this](std::uint64_t b) { return des_encrypt_block(b, schedule_); });
}

Bytes Des64Cipher::decrypt(const Bytes& ciphertext) const {
  return strip_pkcs7(map_blocks(
      ciphertext, [this](std::uint64_t b) { return des_decrypt_block(b, schedule_); }));
}

void Des64Cipher::encrypt_into(std::span<const std::uint8_t> src, std::uint8_t* dst) const {
  pad_pkcs7_into(src, dst);
  crypt_bytes_inplace(dst, padded_size(src.size()), [this](std::uint64_t* blocks, std::size_t n) {
    des_encrypt_blocks(blocks, n, schedule_);
  });
}

std::size_t Des64Cipher::decrypt_inplace(std::uint8_t* data, std::size_t n) const {
  crypt_bytes_inplace(data, n, [this](std::uint64_t* blocks, std::size_t count) {
    des_decrypt_blocks(blocks, count, schedule_);
  });
  return stripped_size(data, n);
}

Bytes Des128Cipher::encrypt(const Bytes& plaintext) const {
  return map_blocks(pad_pkcs7(plaintext),
                    [this](std::uint64_t b) { return des_ede_encrypt_block(b, k1_, k2_); });
}

Bytes Des128Cipher::decrypt(const Bytes& ciphertext) const {
  return strip_pkcs7(map_blocks(
      ciphertext, [this](std::uint64_t b) { return des_ede_decrypt_block(b, k1_, k2_); }));
}

void Des128Cipher::encrypt_into(std::span<const std::uint8_t> src, std::uint8_t* dst) const {
  pad_pkcs7_into(src, dst);
  crypt_bytes_inplace(dst, padded_size(src.size()), [this](std::uint64_t* blocks, std::size_t n) {
    des_ede_encrypt_blocks(blocks, n, k1_, k2_);
  });
}

std::size_t Des128Cipher::decrypt_inplace(std::uint8_t* data, std::size_t n) const {
  crypt_bytes_inplace(data, n, [this](std::uint64_t* blocks, std::size_t count) {
    des_ede_decrypt_blocks(blocks, count, k1_, k2_);
  });
  return stripped_size(data, n);
}

}  // namespace sa::crypto
