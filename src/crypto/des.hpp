// DES block cipher, implemented from the FIPS 46-3 tables.
//
// The paper's case study hardens a video stream from DES 64-bit to DES
// 128-bit encoding.  We implement single DES for the 64-bit scheme and
// two-key EDE (encrypt-decrypt-encrypt, as in two-key Triple DES) for the
// "128-bit" scheme, so both codecs perform real keyed transformations: a
// decoder holding the wrong keys produces garbage that downstream checksum
// verification catches — exactly the corruption unsafe adaptation causes.
//
// Two implementations coexist:
//   * the table-driven fast path (the default): combined SP-boxes (S-box
//     substitution and P-permutation folded into eight 64-entry uint32
//     tables), the E-expansion done with one shift trick instead of a 48-bit
//     permutation, and IP/FP as per-byte table lookups. Tables are built once
//     per process and shared by every stream. Batched entry points
//     (des_*_blocks, encrypt_into / decrypt_inplace) amortize call overhead
//     across a span of packets and avoid intermediate buffers.
//   * the bit-by-bit reference (`*_reference`): the original straight-from-
//     the-standard permutation walk, kept as ground truth for equivalence
//     tests and as the honest "seed path" in throughput comparisons.
//
// This is a simulation codec, not hardened crypto (ECB mode, no timing
// defenses); DES itself is long obsolete for security purposes.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace sa::crypto {

/// 16 48-bit round keys (stored right-aligned in uint64).
struct DesKeySchedule {
  std::array<std::uint64_t, 16> subkeys{};
};

/// Expands a 64-bit key (parity bits ignored per PC-1) into round keys.
DesKeySchedule des_key_schedule(std::uint64_t key);

/// Process-wide schedule cache: N streams encrypting under the same key share
/// one schedule instead of each expanding it. The returned reference is
/// stable for the process lifetime. Thread-safe.
const DesKeySchedule& shared_key_schedule(std::uint64_t key);

// --- table-driven fast path (the default) -------------------------------------

std::uint64_t des_encrypt_block(std::uint64_t block, const DesKeySchedule& schedule);
std::uint64_t des_decrypt_block(std::uint64_t block, const DesKeySchedule& schedule);

/// Two-key EDE: E_{k1}(D_{k2}(E_{k1}(block))) — the "DES 128-bit" scheme.
std::uint64_t des_ede_encrypt_block(std::uint64_t block, const DesKeySchedule& k1,
                                    const DesKeySchedule& k2);
std::uint64_t des_ede_decrypt_block(std::uint64_t block, const DesKeySchedule& k1,
                                    const DesKeySchedule& k2);

/// Batched block APIs: transform `count` blocks in place. One table fetch and
/// one call for the whole span — the per-span cost the batched data plane pays
/// per packet batch, not per block.
void des_encrypt_blocks(std::uint64_t* blocks, std::size_t count, const DesKeySchedule& schedule);
void des_decrypt_blocks(std::uint64_t* blocks, std::size_t count, const DesKeySchedule& schedule);
void des_ede_encrypt_blocks(std::uint64_t* blocks, std::size_t count, const DesKeySchedule& k1,
                            const DesKeySchedule& k2);
void des_ede_decrypt_blocks(std::uint64_t* blocks, std::size_t count, const DesKeySchedule& k1,
                            const DesKeySchedule& k2);

// --- bit-by-bit reference (seed implementation, kept as ground truth) ---------

std::uint64_t des_encrypt_block_reference(std::uint64_t block, const DesKeySchedule& schedule);
std::uint64_t des_decrypt_block_reference(std::uint64_t block, const DesKeySchedule& schedule);
std::uint64_t des_ede_encrypt_block_reference(std::uint64_t block, const DesKeySchedule& k1,
                                              const DesKeySchedule& k2);
std::uint64_t des_ede_decrypt_block_reference(std::uint64_t block, const DesKeySchedule& k1,
                                              const DesKeySchedule& k2);

using Bytes = std::vector<std::uint8_t>;

/// Byte-stream DES in ECB mode with PKCS#7 padding.
class Des64Cipher {
 public:
  explicit Des64Cipher(std::uint64_t key) : schedule_(des_key_schedule(key)) {}

  Bytes encrypt(const Bytes& plaintext) const;

  /// Decrypts and strips padding. A wrong key produces garbage: if the
  /// padding is invalid the raw decrypted bytes are returned unstripped, so
  /// the corruption survives to the integrity check instead of throwing.
  Bytes decrypt(const Bytes& ciphertext) const;

  /// Ciphertext size for an `n`-byte plaintext (PKCS#7 always pads).
  static std::size_t padded_size(std::size_t n) { return n + 8 - n % 8; }

  /// Zero-intermediate encrypt: pads `src` into `dst` (which must hold
  /// padded_size(src.size()) bytes) and encrypts the blocks in place there.
  void encrypt_into(std::span<const std::uint8_t> src, std::uint8_t* dst) const;

  /// In-place decrypt of `n` bytes (n % 8 == 0; throws otherwise). Returns
  /// the payload size after PKCS#7 strip — `n` unchanged when the padding is
  /// invalid, same garbage-tolerant contract as decrypt().
  std::size_t decrypt_inplace(std::uint8_t* data, std::size_t n) const;

 private:
  DesKeySchedule schedule_;
};

/// Two-key EDE variant ("DES 128-bit" in the paper's case study).
class Des128Cipher {
 public:
  Des128Cipher(std::uint64_t key1, std::uint64_t key2)
      : k1_(des_key_schedule(key1)), k2_(des_key_schedule(key2)) {}

  Bytes encrypt(const Bytes& plaintext) const;
  Bytes decrypt(const Bytes& ciphertext) const;

  static std::size_t padded_size(std::size_t n) { return n + 8 - n % 8; }
  void encrypt_into(std::span<const std::uint8_t> src, std::uint8_t* dst) const;
  std::size_t decrypt_inplace(std::uint8_t* data, std::size_t n) const;

 private:
  DesKeySchedule k1_;
  DesKeySchedule k2_;
};

}  // namespace sa::crypto
