// DES block cipher, implemented from the FIPS 46-3 tables.
//
// The paper's case study hardens a video stream from DES 64-bit to DES
// 128-bit encoding.  We implement single DES for the 64-bit scheme and
// two-key EDE (encrypt-decrypt-encrypt, as in two-key Triple DES) for the
// "128-bit" scheme, so both codecs perform real keyed transformations: a
// decoder holding the wrong keys produces garbage that downstream checksum
// verification catches — exactly the corruption unsafe adaptation causes.
//
// This is a simulation codec, not hardened crypto (ECB mode, no timing
// defenses); DES itself is long obsolete for security purposes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace sa::crypto {

/// 16 48-bit round keys (stored right-aligned in uint64).
struct DesKeySchedule {
  std::array<std::uint64_t, 16> subkeys{};
};

/// Expands a 64-bit key (parity bits ignored per PC-1) into round keys.
DesKeySchedule des_key_schedule(std::uint64_t key);

std::uint64_t des_encrypt_block(std::uint64_t block, const DesKeySchedule& schedule);
std::uint64_t des_decrypt_block(std::uint64_t block, const DesKeySchedule& schedule);

/// Two-key EDE: E_{k1}(D_{k2}(E_{k1}(block))) — the "DES 128-bit" scheme.
std::uint64_t des_ede_encrypt_block(std::uint64_t block, const DesKeySchedule& k1,
                                    const DesKeySchedule& k2);
std::uint64_t des_ede_decrypt_block(std::uint64_t block, const DesKeySchedule& k1,
                                    const DesKeySchedule& k2);

using Bytes = std::vector<std::uint8_t>;

/// Byte-stream DES in ECB mode with PKCS#7 padding.
class Des64Cipher {
 public:
  explicit Des64Cipher(std::uint64_t key) : schedule_(des_key_schedule(key)) {}

  Bytes encrypt(const Bytes& plaintext) const;

  /// Decrypts and strips padding. A wrong key produces garbage: if the
  /// padding is invalid the raw decrypted bytes are returned unstripped, so
  /// the corruption survives to the integrity check instead of throwing.
  Bytes decrypt(const Bytes& ciphertext) const;

 private:
  DesKeySchedule schedule_;
};

/// Two-key EDE variant ("DES 128-bit" in the paper's case study).
class Des128Cipher {
 public:
  Des128Cipher(std::uint64_t key1, std::uint64_t key2)
      : k1_(des_key_schedule(key1)), k2_(des_key_schedule(key2)) {}

  Bytes encrypt(const Bytes& plaintext) const;
  Bytes decrypt(const Bytes& ciphertext) const;

 private:
  DesKeySchedule k1_;
  DesKeySchedule k2_;
};

}  // namespace sa::crypto
