#include "crypto/codec_filters.hpp"

namespace sa::crypto {

std::string_view scheme_tag(Scheme scheme) {
  return scheme == Scheme::Des64 ? kTagDes64 : kTagDes128;
}

DesEncoderFilter::DesEncoderFilter(std::string name, Scheme scheme, DesKeys keys,
                                   runtime::Time processing_time)
    : Filter(std::move(name), processing_time),
      scheme_(scheme),
      des64_(keys.key64),
      des128_(keys.key128a, keys.key128b) {}

std::optional<components::Packet> DesEncoderFilter::process(components::Packet packet) {
  packet.payload = scheme_ == Scheme::Des64 ? des64_.encrypt(packet.payload)
                                            : des128_.encrypt(packet.payload);
  packet.encoding_stack.emplace_back(scheme_tag(scheme_));
  note_processed();
  return packet;
}

components::StateSnapshot DesEncoderFilter::refract() const {
  auto snapshot = Filter::refract();
  snapshot["scheme"] = std::string(scheme_tag(scheme_));
  snapshot["role"] = "encoder";
  return snapshot;
}

DesDecoderFilter::DesDecoderFilter(std::string name, bool accept64, bool accept128, DesKeys keys,
                                   runtime::Time processing_time)
    : Filter(std::move(name), processing_time),
      accept64_(accept64),
      accept128_(accept128),
      des64_(keys.key64),
      des128_(keys.key128a, keys.key128b) {}

std::optional<components::Packet> DesDecoderFilter::process(components::Packet packet) {
  if (packet.encoding_stack.empty()) {
    note_bypassed();
    return packet;
  }
  const std::string& tag = packet.encoding_stack.back();
  if (tag == kTagDes64 && accept64_) {
    packet.payload = des64_.decrypt(packet.payload);
  } else if (tag == kTagDes128 && accept128_) {
    packet.payload = des128_.decrypt(packet.payload);
  } else {
    note_bypassed();
    return packet;
  }
  packet.encoding_stack.pop_back();
  note_processed();
  return packet;
}

components::StateSnapshot DesDecoderFilter::refract() const {
  auto snapshot = Filter::refract();
  snapshot["accepts"] = std::string(accept64_ ? kTagDes64 : "") +
                        (accept64_ && accept128_ ? "," : "") +
                        std::string(accept128_ ? kTagDes128 : "");
  snapshot["role"] = "decoder";
  return snapshot;
}

components::FilterPtr make_encoder_e1(DesKeys keys) {
  return std::make_shared<DesEncoderFilter>("E1", Scheme::Des64, keys);
}

components::FilterPtr make_encoder_e2(DesKeys keys) {
  return std::make_shared<DesEncoderFilter>("E2", Scheme::Des128, keys);
}

components::FilterPtr make_decoder(const std::string& name, bool accept64, bool accept128,
                                   DesKeys keys) {
  return std::make_shared<DesDecoderFilter>(name, accept64, accept128, keys);
}

}  // namespace sa::crypto
