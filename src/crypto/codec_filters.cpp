#include "crypto/codec_filters.hpp"

namespace sa::crypto {

std::string_view scheme_tag(Scheme scheme) {
  return scheme == Scheme::Des64 ? kTagDes64 : kTagDes128;
}

DesEncoderFilter::DesEncoderFilter(std::string name, Scheme scheme, DesKeys keys,
                                   runtime::Time processing_time)
    : Filter(std::move(name), processing_time),
      scheme_(scheme),
      des64_(keys.key64),
      des128_(keys.key128a, keys.key128b) {}

std::optional<components::Packet> DesEncoderFilter::process(components::Packet packet) {
  packet.payload = scheme_ == Scheme::Des64 ? des64_.encrypt(packet.payload)
                                            : des128_.encrypt(packet.payload);
  packet.encoding_stack.emplace_back(scheme_tag(scheme_));
  note_processed();
  return packet;
}

void DesEncoderFilter::process_span(std::span<components::PacketRef> batch,
                                    components::PacketSink& sink) {
  const std::string_view tag = scheme_tag(scheme_);
  for (components::PacketRef& ref : batch) {
    // Pad + encrypt straight into a fresh arena buffer; the old plaintext
    // bytes are left behind in the arena (reclaimed at the next reset).
    if (scheme_ == Scheme::Des64) {
      const std::size_t out_size = Des64Cipher::padded_size(ref.size());
      std::uint8_t* out = sink.arena().alloc(out_size);
      des64_.encrypt_into(ref.payload(), out);
      ref.rebind(out, static_cast<std::uint32_t>(out_size));
    } else {
      const std::size_t out_size = Des128Cipher::padded_size(ref.size());
      std::uint8_t* out = sink.arena().alloc(out_size);
      des128_.encrypt_into(ref.payload(), out);
      ref.rebind(out, static_cast<std::uint32_t>(out_size));
    }
    ref.tags().push_back(tag);
    note_processed();
    sink.emit(ref);
  }
}

components::StateSnapshot DesEncoderFilter::refract() const {
  auto snapshot = Filter::refract();
  snapshot["scheme"] = std::string(scheme_tag(scheme_));
  snapshot["role"] = "encoder";
  return snapshot;
}

DesDecoderFilter::DesDecoderFilter(std::string name, bool accept64, bool accept128, DesKeys keys,
                                   runtime::Time processing_time)
    : Filter(std::move(name), processing_time),
      accept64_(accept64),
      accept128_(accept128),
      des64_(keys.key64),
      des128_(keys.key128a, keys.key128b) {}

std::optional<components::Packet> DesDecoderFilter::process(components::Packet packet) {
  if (packet.encoding_stack.empty()) {
    note_bypassed();
    return packet;
  }
  const std::string_view tag = packet.encoding_stack.back();
  if (tag == kTagDes64 && accept64_) {
    packet.payload = des64_.decrypt(packet.payload);
  } else if (tag == kTagDes128 && accept128_) {
    packet.payload = des128_.decrypt(packet.payload);
  } else {
    note_bypassed();
    return packet;
  }
  packet.encoding_stack.pop_back();
  note_processed();
  return packet;
}

void DesDecoderFilter::process_span(std::span<components::PacketRef> batch,
                                    components::PacketSink& sink) {
  for (components::PacketRef& ref : batch) {
    if (!ref.tags().empty()) {
      const std::string_view tag = ref.tags().back();
      // Ciphertext is block-aligned by construction; decrypt in place and
      // truncate past the stripped padding — zero allocation, zero copy.
      if (tag == kTagDes64 && accept64_ && ref.size() % 8 == 0) {
        const std::size_t stripped = des64_.decrypt_inplace(ref.data(), ref.size());
        ref.truncate(static_cast<std::uint32_t>(stripped));
        ref.tags().pop_back();
        note_processed();
        sink.emit(ref);
        continue;
      }
      if (tag == kTagDes128 && accept128_ && ref.size() % 8 == 0) {
        const std::size_t stripped = des128_.decrypt_inplace(ref.data(), ref.size());
        ref.truncate(static_cast<std::uint32_t>(stripped));
        ref.tags().pop_back();
        note_processed();
        sink.emit(ref);
        continue;
      }
    }
    note_bypassed();
    sink.emit(ref);
  }
}

components::StateSnapshot DesDecoderFilter::refract() const {
  auto snapshot = Filter::refract();
  snapshot["accepts"] = std::string(accept64_ ? kTagDes64 : "") +
                        (accept64_ && accept128_ ? "," : "") +
                        std::string(accept128_ ? kTagDes128 : "");
  snapshot["role"] = "decoder";
  return snapshot;
}

components::FilterPtr make_encoder_e1(DesKeys keys) {
  return std::make_shared<DesEncoderFilter>("E1", Scheme::Des64, keys);
}

components::FilterPtr make_encoder_e2(DesKeys keys) {
  return std::make_shared<DesEncoderFilter>("E2", Scheme::Des128, keys);
}

components::FilterPtr make_decoder(const std::string& name, bool accept64, bool accept128,
                                   DesKeys keys) {
  return std::make_shared<DesDecoderFilter>(name, accept64, accept128, keys);
}

}  // namespace sa::crypto
