#include "spec/monitor.hpp"

#include <stdexcept>

namespace sa::spec {

void SafeStateMonitor::declare_segment(SegmentSpec spec) {
  if (spec.name.empty() || spec.begin_event.empty() || spec.end_event.empty()) {
    throw std::invalid_argument("segment spec fields must be non-empty");
  }
  if (spec.begin_event == spec.end_event) {
    throw std::invalid_argument("segment begin and end events must differ");
  }
  for (const SegmentState& existing : segments_) {
    if (existing.spec.name == spec.name) {
      throw std::invalid_argument("duplicate segment name: " + spec.name);
    }
  }
  if (begin_index_.contains(spec.begin_event) || end_index_.contains(spec.begin_event) ||
      begin_index_.contains(spec.end_event) || end_index_.contains(spec.end_event)) {
    throw std::invalid_argument("event already bound to another segment");
  }
  const std::size_t index = segments_.size();
  begin_index_.emplace(spec.begin_event, index);
  end_index_.emplace(spec.end_event, index);
  segments_.push_back(SegmentState{std::move(spec), {}, 0});
}

void SafeStateMonitor::add_obligation(std::string name, FormulaPtr formula) {
  if (!formula) throw std::invalid_argument("null obligation formula");
  obligations_.push_back(Obligation{std::move(name), std::move(formula), true});
}

void SafeStateMonitor::add_obligation(std::string name, std::string_view ptltl_text) {
  add_obligation(std::move(name), parse_ptltl(ptltl_text));
}

void SafeStateMonitor::on_event(const std::string& event, std::uint64_t key) {
  ++events_observed_;
  if (const auto it = begin_index_.find(event); it != begin_index_.end()) {
    SegmentState& segment = segments_[it->second];
    if (segment.spec.keyed) {
      segment.open_keys.insert(key);
    } else {
      ++segment.open_depth;
    }
  } else if (const auto end = end_index_.find(event); end != end_index_.end()) {
    SegmentState& segment = segments_[end->second];
    if (segment.spec.keyed) {
      segment.open_keys.erase(key);
    } else if (segment.open_depth > 0) {
      --segment.open_depth;
    }
  }
  // Obligations see every event: atom `e` is true exactly when the event
  // being processed is `e`.
  const auto valuation = [&event](const std::string& name) { return name == event; };
  for (Obligation& obligation : obligations_) {
    obligation.satisfied = obligation.formula->step(valuation);
  }
  check_safe_transition();
}

bool SafeStateMonitor::safe() const {
  for (const SegmentState& segment : segments_) {
    if (segment.open()) return false;
  }
  for (const Obligation& obligation : obligations_) {
    if (!obligation.satisfied) return false;
  }
  return true;
}

std::vector<std::string> SafeStateMonitor::open_obligations() const {
  std::vector<std::string> reasons;
  for (const SegmentState& segment : segments_) {
    if (segment.open()) {
      const std::uint64_t instances =
          segment.spec.keyed ? segment.open_keys.size() : segment.open_depth;
      reasons.push_back("segment '" + segment.spec.name + "' open (" +
                        std::to_string(instances) + " instance(s))");
    }
  }
  for (const Obligation& obligation : obligations_) {
    if (!obligation.satisfied) {
      reasons.push_back("obligation '" + obligation.name + "' unsatisfied");
    }
  }
  return reasons;
}

void SafeStateMonitor::notify_when_safe(std::function<void()> callback) {
  if (!callback) return;
  if (safe()) {
    callback();
    return;
  }
  waiting_.push_back(std::move(callback));
}

void SafeStateMonitor::check_safe_transition() {
  if (waiting_.empty() || !safe()) return;
  std::vector<std::function<void()>> to_fire;
  to_fire.swap(waiting_);
  for (auto& callback : to_fire) callback();
}

void SafeStateMonitor::reset() {
  for (SegmentState& segment : segments_) {
    segment.open_keys.clear();
    segment.open_depth = 0;
  }
  for (Obligation& obligation : obligations_) {
    obligation.formula->reset();
    obligation.satisfied = true;
  }
  events_observed_ = 0;
}

}  // namespace sa::spec
