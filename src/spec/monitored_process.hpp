// Glue between the §7 safe-state monitor and the adaptation protocol: an
// AdaptableProcess decorator whose local safe state is *derived* from a
// SafeStateMonitor instead of being hand-identified by the developer.
//
// reach_safe_state() first waits until the monitor reports no open critical
// communication segments / unsatisfied obligations, and only then drives the
// underlying process to its (mechanical) quiescent state. The video example
// uses this to align adaptation with frame boundaries: a frame's packets form
// a keyed segment, so a decoder is never swapped mid-frame even though the
// chain itself is packet-quiescent between any two packets.
#pragma once

#include "proto/adaptable_process.hpp"
#include "spec/monitor.hpp"

namespace sa::spec {

class MonitoredProcess : public proto::AdaptableProcess {
 public:
  /// Neither reference is owned; both must outlive the decorator.
  MonitoredProcess(proto::AdaptableProcess& inner, SafeStateMonitor& monitor)
      : inner_(&inner), monitor_(&monitor) {}

  bool prepare(const proto::LocalCommand& command) override { return inner_->prepare(command); }

  void reach_safe_state(bool drain, std::function<void()> reached) override {
    monitor_->notify_when_safe(
        [this, drain, reached = std::move(reached)]() mutable {
          inner_->reach_safe_state(drain, std::move(reached));
        });
  }

  void abort_safe_state() override {
    monitor_->cancel_pending_notifications();
    inner_->abort_safe_state();
  }

  bool apply(const proto::LocalCommand& command) override { return inner_->apply(command); }
  bool undo(const proto::LocalCommand& command) override { return inner_->undo(command); }
  void resume() override { inner_->resume(); }
  void cleanup(const proto::LocalCommand& command) override { inner_->cleanup(command); }

  SafeStateMonitor& monitor() { return *monitor_; }

 private:
  proto::AdaptableProcess* inner_;
  SafeStateMonitor* monitor_;
};

}  // namespace sa::spec
