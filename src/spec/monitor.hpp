// Runtime safe-state monitor (paper §7): derives a component's safe states
// automatically from declared critical communication segments and/or ptLTL
// obligations, instead of hand-coding them into the agent.
//
// Two specification layers share one event stream:
//
//  * Segment declarations — a critical communication segment is the interval
//    between a `begin` event and its matching `end` event (optionally keyed,
//    so overlapping instances such as interleaved frames are tracked
//    independently). The component is in a safe state iff no segment instance
//    is currently open — the §3.2 condition "the adaptation does not
//    interrupt any critical communication segments".
//
//  * ptLTL obligations — arbitrary past-time formulas over event atoms; each
//    must currently hold for the state to be safe. At each event, atom
//    `e` is true iff the event being processed is `e`.
//
// Usage:
//    SafeStateMonitor monitor;
//    monitor.declare_segment({"frame", "frame_start", "frame_end", true});
//    monitor.add_obligation("no torn handshake", "!(O(syn) & !O(ack))"); ...
//    monitor.on_event("frame_start", seq); ... monitor.safe() ...
//    monitor.notify_when_safe([&]{ ... });   // fires immediately if safe
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "spec/ptltl.hpp"

namespace sa::spec {

struct SegmentSpec {
  std::string name;         ///< label, e.g. "frame transmission"
  std::string begin_event;  ///< event opening an instance
  std::string end_event;    ///< event discharging it
  bool keyed = false;       ///< track instances per key (else a depth counter)
};

class SafeStateMonitor {
 public:
  /// Declares a critical-communication-segment shape. Throws on duplicate
  /// names or events already used as a begin/end of another segment.
  void declare_segment(SegmentSpec spec);

  /// Adds a ptLTL obligation that must hold for the state to be safe.
  void add_obligation(std::string name, FormulaPtr formula);
  void add_obligation(std::string name, std::string_view ptltl_text);

  /// Feeds one runtime event. `key` distinguishes concurrent instances of a
  /// keyed segment (e.g. the frame number).
  void on_event(const std::string& event, std::uint64_t key = 0);

  /// Safe iff no segment instance is open and every obligation holds.
  bool safe() const;

  /// Human-readable reasons the state is currently unsafe (empty iff safe).
  std::vector<std::string> open_obligations() const;

  /// Invokes `callback` as soon as the monitor is (or becomes) safe; one-shot.
  void notify_when_safe(std::function<void()> callback);

  /// Drops all pending notify_when_safe callbacks (rollback path).
  void cancel_pending_notifications() { waiting_.clear(); }

  std::uint64_t events_observed() const { return events_observed_; }

  /// Clears all temporal state (obligations keep their formulas).
  void reset();

 private:
  struct SegmentState {
    SegmentSpec spec;
    std::set<std::uint64_t> open_keys;  // keyed instances
    std::uint64_t open_depth = 0;       // unkeyed nesting depth
    bool open() const { return !open_keys.empty() || open_depth > 0; }
  };
  struct Obligation {
    std::string name;
    FormulaPtr formula;
    bool satisfied = true;  // vacuously true before the first event
  };

  void check_safe_transition();

  std::vector<SegmentState> segments_;
  std::map<std::string, std::size_t> begin_index_;
  std::map<std::string, std::size_t> end_index_;
  std::vector<Obligation> obligations_;
  std::vector<std::function<void()>> waiting_;
  std::uint64_t events_observed_ = 0;
};

}  // namespace sa::spec
