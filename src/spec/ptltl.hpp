// Past-time linear temporal logic (ptLTL) for runtime safe-state detection.
//
// Paper §7: "One promising approach is to use a temporal logic formula to
// specify the set of critical communication segments of a component. The
// run-time component states can be monitored and the formula can then be
// dynamically evaluated. If all the obligations of the formula are fulfilled
// in a state, then the state can be automatically identified as a safe
// state."
//
// Past-time operators admit constant-space incremental evaluation: each node
// stores one bit of history and is updated once per observation step, so the
// monitor costs O(|formula|) per event regardless of trace length.
//
// Syntax (precedence low -> high; Y/O/H bind like '!'):
//   formula := or ( "->" formula )?
//   or      := and ( "|" and )*
//   and     := since ( "&" since )*
//   since   := unary ( "S" unary )*        left-assoc: p S q S r = (p S q) S r
//   unary   := "!" unary | "Y" unary | "O" unary | "H" unary | primary
//   primary := ident | "true" | "false" | "(" formula ")"
//
// Semantics at step i over a trace of atom valuations:
//   Y p  — p held at step i-1 (false at i = 0)            "yesterday"
//   O p  — p held at some step <= i                        "once"
//   H p  — p held at every step <= i                       "historically"
//   p S q — q held at some past step j and p held at all steps in (j, i]
//                                                          "since"
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace sa::spec {

/// Truth assignment for atoms at the current observation step.
using AtomValuation = std::function<bool(const std::string&)>;

class Formula;
using FormulaPtr = std::shared_ptr<Formula>;

enum class FormulaKind { Constant, Atom, Not, And, Or, Implies, Yesterday, Once, Historically, Since };

/// A ptLTL formula node. Stateful: step() must be called exactly once per
/// observation, in order, on the ROOT only (it recurses). reset() restarts
/// the trace.
class Formula {
 public:
  virtual ~Formula() = default;
  FormulaKind kind() const { return kind_; }

  /// Advances one observation step and returns the formula's truth at it.
  virtual bool step(const AtomValuation& atoms) = 0;

  /// Truth at the most recent step (false before the first step).
  bool current() const { return current_; }

  /// Clears all temporal state, restarting the trace.
  virtual void reset() = 0;

  virtual std::string to_string() const = 0;
  virtual void collect_atoms(std::set<std::string>& out) const = 0;
  std::vector<std::string> atoms() const;

 protected:
  explicit Formula(FormulaKind kind) : kind_(kind) {}
  bool current_ = false;

 private:
  FormulaKind kind_;
};

// Factories.
FormulaPtr constant(bool value);
FormulaPtr atom(std::string name);
FormulaPtr negation(FormulaPtr operand);
FormulaPtr conjunction(FormulaPtr lhs, FormulaPtr rhs);
FormulaPtr disjunction(FormulaPtr lhs, FormulaPtr rhs);
FormulaPtr implication(FormulaPtr lhs, FormulaPtr rhs);
FormulaPtr yesterday(FormulaPtr operand);
FormulaPtr once(FormulaPtr operand);
FormulaPtr historically(FormulaPtr operand);
FormulaPtr since(FormulaPtr lhs, FormulaPtr rhs);

/// Parses the syntax documented above. Throws std::invalid_argument with an
/// offset-bearing message on malformed input.
FormulaPtr parse_ptltl(std::string_view text);

}  // namespace sa::spec
