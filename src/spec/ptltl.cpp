#include "spec/ptltl.hpp"

#include <cctype>
#include <stdexcept>

namespace sa::spec {

std::vector<std::string> Formula::atoms() const {
  std::set<std::string> names;
  collect_atoms(names);
  return {names.begin(), names.end()};
}

namespace {

class ConstantFormula final : public Formula {
 public:
  explicit ConstantFormula(bool value) : Formula(FormulaKind::Constant), value_(value) {}
  bool step(const AtomValuation&) override { return current_ = value_; }
  void reset() override { current_ = false; }
  std::string to_string() const override { return value_ ? "true" : "false"; }
  void collect_atoms(std::set<std::string>&) const override {}

 private:
  bool value_;
};

class AtomFormula final : public Formula {
 public:
  explicit AtomFormula(std::string name) : Formula(FormulaKind::Atom), name_(std::move(name)) {}
  bool step(const AtomValuation& atoms) override { return current_ = atoms(name_); }
  void reset() override { current_ = false; }
  std::string to_string() const override { return name_; }
  void collect_atoms(std::set<std::string>& out) const override { out.insert(name_); }

 private:
  std::string name_;
};

class UnaryFormula : public Formula {
 protected:
  UnaryFormula(FormulaKind kind, FormulaPtr operand)
      : Formula(kind), operand_(std::move(operand)) {
    if (!operand_) throw std::invalid_argument("null ptLTL operand");
  }
  FormulaPtr operand_;

 public:
  void collect_atoms(std::set<std::string>& out) const override {
    operand_->collect_atoms(out);
  }
};

class NotFormula final : public UnaryFormula {
 public:
  explicit NotFormula(FormulaPtr operand) : UnaryFormula(FormulaKind::Not, std::move(operand)) {}
  bool step(const AtomValuation& atoms) override { return current_ = !operand_->step(atoms); }
  void reset() override {
    current_ = false;
    operand_->reset();
  }
  std::string to_string() const override { return "!(" + operand_->to_string() + ")"; }
};

class YesterdayFormula final : public UnaryFormula {
 public:
  explicit YesterdayFormula(FormulaPtr operand)
      : UnaryFormula(FormulaKind::Yesterday, std::move(operand)) {}
  bool step(const AtomValuation& atoms) override {
    const bool result = previous_;
    previous_ = operand_->step(atoms);
    return current_ = result;
  }
  void reset() override {
    current_ = previous_ = false;
    operand_->reset();
  }
  std::string to_string() const override { return "Y(" + operand_->to_string() + ")"; }

 private:
  bool previous_ = false;
};

class OnceFormula final : public UnaryFormula {
 public:
  explicit OnceFormula(FormulaPtr operand) : UnaryFormula(FormulaKind::Once, std::move(operand)) {}
  bool step(const AtomValuation& atoms) override {
    seen_ = seen_ || operand_->step(atoms);
    return current_ = seen_;
  }
  void reset() override {
    current_ = seen_ = false;
    operand_->reset();
  }
  std::string to_string() const override { return "O(" + operand_->to_string() + ")"; }

 private:
  bool seen_ = false;
};

class HistoricallyFormula final : public UnaryFormula {
 public:
  explicit HistoricallyFormula(FormulaPtr operand)
      : UnaryFormula(FormulaKind::Historically, std::move(operand)) {}
  bool step(const AtomValuation& atoms) override {
    always_ = always_ && operand_->step(atoms);
    return current_ = always_;
  }
  void reset() override {
    current_ = false;
    always_ = true;
    operand_->reset();
  }
  std::string to_string() const override { return "H(" + operand_->to_string() + ")"; }

 private:
  bool always_ = true;
};

class BinaryFormula : public Formula {
 protected:
  BinaryFormula(FormulaKind kind, FormulaPtr lhs, FormulaPtr rhs)
      : Formula(kind), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {
    if (!lhs_ || !rhs_) throw std::invalid_argument("null ptLTL operand");
  }
  FormulaPtr lhs_;
  FormulaPtr rhs_;

 public:
  void collect_atoms(std::set<std::string>& out) const override {
    lhs_->collect_atoms(out);
    rhs_->collect_atoms(out);
  }
  void reset() override {
    current_ = false;
    lhs_->reset();
    rhs_->reset();
  }
};

class AndFormula final : public BinaryFormula {
 public:
  AndFormula(FormulaPtr lhs, FormulaPtr rhs)
      : BinaryFormula(FormulaKind::And, std::move(lhs), std::move(rhs)) {}
  bool step(const AtomValuation& atoms) override {
    // Evaluate both sides unconditionally: temporal sub-formulas must observe
    // every step even when the other side already decides the connective.
    const bool a = lhs_->step(atoms);
    const bool b = rhs_->step(atoms);
    return current_ = a && b;
  }
  std::string to_string() const override {
    return "(" + lhs_->to_string() + " & " + rhs_->to_string() + ")";
  }
};

class OrFormula final : public BinaryFormula {
 public:
  OrFormula(FormulaPtr lhs, FormulaPtr rhs)
      : BinaryFormula(FormulaKind::Or, std::move(lhs), std::move(rhs)) {}
  bool step(const AtomValuation& atoms) override {
    const bool a = lhs_->step(atoms);
    const bool b = rhs_->step(atoms);
    return current_ = a || b;
  }
  std::string to_string() const override {
    return "(" + lhs_->to_string() + " | " + rhs_->to_string() + ")";
  }
};

class ImpliesFormula final : public BinaryFormula {
 public:
  ImpliesFormula(FormulaPtr lhs, FormulaPtr rhs)
      : BinaryFormula(FormulaKind::Implies, std::move(lhs), std::move(rhs)) {}
  bool step(const AtomValuation& atoms) override {
    const bool a = lhs_->step(atoms);
    const bool b = rhs_->step(atoms);
    return current_ = !a || b;
  }
  std::string to_string() const override {
    return "(" + lhs_->to_string() + " -> " + rhs_->to_string() + ")";
  }
};

class SinceFormula final : public BinaryFormula {
 public:
  SinceFormula(FormulaPtr lhs, FormulaPtr rhs)
      : BinaryFormula(FormulaKind::Since, std::move(lhs), std::move(rhs)) {}
  bool step(const AtomValuation& atoms) override {
    const bool p = lhs_->step(atoms);
    const bool q = rhs_->step(atoms);
    // p S q  <=>  q | (p & Y(p S q))
    holds_ = q || (p && holds_);
    return current_ = holds_;
  }
  void reset() override {
    BinaryFormula::reset();
    holds_ = false;
  }
  std::string to_string() const override {
    return "(" + lhs_->to_string() + " S " + rhs_->to_string() + ")";
  }

 private:
  bool holds_ = false;
};

}  // namespace

FormulaPtr constant(bool value) { return std::make_shared<ConstantFormula>(value); }
FormulaPtr atom(std::string name) {
  if (name.empty()) throw std::invalid_argument("atom name must be non-empty");
  return std::make_shared<AtomFormula>(std::move(name));
}
FormulaPtr negation(FormulaPtr operand) { return std::make_shared<NotFormula>(std::move(operand)); }
FormulaPtr conjunction(FormulaPtr lhs, FormulaPtr rhs) {
  return std::make_shared<AndFormula>(std::move(lhs), std::move(rhs));
}
FormulaPtr disjunction(FormulaPtr lhs, FormulaPtr rhs) {
  return std::make_shared<OrFormula>(std::move(lhs), std::move(rhs));
}
FormulaPtr implication(FormulaPtr lhs, FormulaPtr rhs) {
  return std::make_shared<ImpliesFormula>(std::move(lhs), std::move(rhs));
}
FormulaPtr yesterday(FormulaPtr operand) {
  return std::make_shared<YesterdayFormula>(std::move(operand));
}
FormulaPtr once(FormulaPtr operand) { return std::make_shared<OnceFormula>(std::move(operand)); }
FormulaPtr historically(FormulaPtr operand) {
  return std::make_shared<HistoricallyFormula>(std::move(operand));
}
FormulaPtr since(FormulaPtr lhs, FormulaPtr rhs) {
  return std::make_shared<SinceFormula>(std::move(lhs), std::move(rhs));
}

// --- parser -------------------------------------------------------------------

namespace {

class PtltlParser {
 public:
  explicit PtltlParser(std::string_view input) : input_(input) {}

  FormulaPtr parse() {
    FormulaPtr result = parse_formula();
    skip_whitespace();
    if (offset_ != input_.size()) {
      throw std::invalid_argument("trailing input in ptLTL formula at offset " +
                                  std::to_string(offset_));
    }
    return result;
  }

 private:
  FormulaPtr parse_formula() {
    FormulaPtr lhs = parse_or();
    skip_whitespace();
    if (match("->")) return implication(std::move(lhs), parse_formula());
    return lhs;
  }

  FormulaPtr parse_or() {
    FormulaPtr lhs = parse_and();
    for (;;) {
      skip_whitespace();
      if (!match("|")) return lhs;
      lhs = disjunction(std::move(lhs), parse_and());
    }
  }

  FormulaPtr parse_and() {
    FormulaPtr lhs = parse_since();
    for (;;) {
      skip_whitespace();
      if (!match("&")) return lhs;
      lhs = conjunction(std::move(lhs), parse_since());
    }
  }

  FormulaPtr parse_since() {
    FormulaPtr lhs = parse_unary();
    for (;;) {
      skip_whitespace();
      if (!match_keyword("S")) return lhs;
      lhs = since(std::move(lhs), parse_unary());
    }
  }

  FormulaPtr parse_unary() {
    skip_whitespace();
    if (match("!")) return negation(parse_unary());
    if (match_keyword("Y")) return yesterday(parse_unary());
    if (match_keyword("O")) return once(parse_unary());
    if (match_keyword("H")) return historically(parse_unary());
    return parse_primary();
  }

  FormulaPtr parse_primary() {
    skip_whitespace();
    if (match("(")) {
      FormulaPtr inner = parse_formula();
      skip_whitespace();
      if (!match(")")) {
        throw std::invalid_argument("expected ')' at offset " + std::to_string(offset_));
      }
      return inner;
    }
    const std::string name = parse_identifier();
    if (name == "true") return constant(true);
    if (name == "false") return constant(false);
    return atom(name);
  }

  std::string parse_identifier() {
    skip_whitespace();
    const std::size_t start = offset_;
    while (offset_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[offset_])) || input_[offset_] == '_')) {
      ++offset_;
    }
    if (offset_ == start) {
      throw std::invalid_argument("expected identifier at offset " + std::to_string(start));
    }
    return std::string(input_.substr(start, offset_ - start));
  }

  /// Matches an operator token literally.
  bool match(std::string_view token) {
    if (input_.substr(offset_).substr(0, token.size()) != token) return false;
    offset_ += token.size();
    return true;
  }

  /// Matches a single-letter keyword operator (Y/O/H/S) only when it is not
  /// the prefix of a longer identifier — "Once_done" is an atom, not "O".
  bool match_keyword(std::string_view keyword) {
    if (input_.substr(offset_).substr(0, keyword.size()) != keyword) return false;
    const std::size_t next = offset_ + keyword.size();
    if (next < input_.size() &&
        (std::isalnum(static_cast<unsigned char>(input_[next])) || input_[next] == '_')) {
      return false;
    }
    offset_ = next;
    return true;
  }

  void skip_whitespace() {
    while (offset_ < input_.size() && std::isspace(static_cast<unsigned char>(input_[offset_]))) {
      ++offset_;
    }
  }

  std::string_view input_;
  std::size_t offset_ = 0;
};

}  // namespace

FormulaPtr parse_ptltl(std::string_view text) { return PtltlParser(text).parse(); }

}  // namespace sa::spec
