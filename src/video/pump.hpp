// DataPlanePump: N concurrent packet streams driven through encode/decode
// filter chains by real threads — the loaded data plane the batched
// (arena + span) path exists for.
//
// Per lane (stream):
//   * a PRODUCER thread runs a real-time loop generating payload batches
//     straight into per-slot arenas (one rng fill, zero copies);
//   * a lock-free SPSC ring of slots hands batches to the lane's PUMP thread
//     (atomic produced/consumed counters, acquire/release — no locks on the
//     hot path);
//   * the pump thread moves each batch through the lane's encode chain and
//     then its decode chain via FilterChain::process_batch, verifies
//     integrity, records the batch's hand-off + processing delay, recycles
//     the slot's arena, and releases the slot.
//
// Quiescence stays PER CHAIN, exactly as in §5.2: an adaptation request makes
// the pump thread park at the next batch boundary — the batch is the critical
// communication segment — after driving both chains through the ordinary
// request_quiescence/blocked protocol. The caller then swaps filters on the
// blocked chains and resume()s them. Blocked-window count and duration are
// reported per lane, so loaded adaptation disruption is directly measurable.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "components/arena.hpp"
#include "components/filter_chain.hpp"

namespace sa::video {

struct PumpConfig {
  std::size_t streams = 1;
  std::size_t batch_size = 64;        ///< packets per batch
  std::size_t ring_slots = 8;         ///< SPSC ring depth (per lane)
  std::size_t payload_bytes = 256;
  std::uint64_t packets_per_stream = 1'000'000;  ///< producer stops after this many
  double producer_pps = 0;            ///< real-time pacing; 0 = as fast as possible
  std::uint64_t seed = 7;
};

/// Builds each lane's chains. Called once per lane at start(); chains must be
/// constructed against the provided clock.
using ChainBuilder = std::function<void(std::size_t lane, runtime::Clock& clock,
                                        components::FilterChain& encode,
                                        components::FilterChain& decode)>;

struct LaneReport {
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t intact = 0;
  std::uint64_t corrupted = 0;    ///< checksum mismatch after full decode
  std::uint64_t undecodable = 0;  ///< left the decode chain still tagged
  std::uint64_t batches = 0;
  double elapsed_s = 0;
  double pps = 0;                 ///< delivered packets / elapsed wall time
  double p50_delay_us = 0;        ///< batch hand-off + processing delay
  double p99_delay_us = 0;
  double max_delay_us = 0;
  std::uint64_t blocked_windows = 0;
  double blocked_us = 0;          ///< total wall time lanes spent parked
};

class DataPlanePump {
 public:
  explicit DataPlanePump(PumpConfig config);
  ~DataPlanePump();

  DataPlanePump(const DataPlanePump&) = delete;
  DataPlanePump& operator=(const DataPlanePump&) = delete;

  /// Builds lanes (chains via `builder`; default: E1 encoder / D1 decoder
  /// with the case-study keys) and starts 2·streams threads.
  void start(ChainBuilder builder = {});

  /// Asks producers to stop early, drains the rings, joins all threads.
  /// Idempotent.
  void stop_and_join();

  /// Blocks until every producer has emitted its packets_per_stream quota and
  /// the rings have drained, then joins.
  void run_to_completion();

  bool running() const { return running_; }
  std::size_t streams() const { return config_.streams; }

  /// §5.2 handshake against a running lane: parks the lane's pump thread at
  /// the next batch boundary with both chains blocked, runs `adapt` from the
  /// calling thread, then resumes. Safe to call concurrently for different
  /// lanes. After the pump has finished, `adapt` runs directly (chains idle).
  void adapt_lane(std::size_t lane,
                  const std::function<void(components::FilterChain& encode,
                                           components::FilterChain& decode)>& adapt);

  LaneReport lane_report(std::size_t lane) const;
  /// Sum over lanes; delay percentiles are the worst lane's.
  LaneReport total_report() const;

 private:
  struct Slot {
    components::PacketArena arena{64 * 1024};
    std::vector<components::PacketRef> refs;
    std::chrono::steady_clock::time_point produced_at;
  };

  struct Lane;

  void producer_loop(Lane& lane);
  void pump_loop(Lane& lane);
  void park_lane(Lane& lane);
  void process_slot(Lane& lane, Slot& slot);

  void join_all();

  PumpConfig config_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<bool> stop_requested_{false};
  bool running_ = false;
};

}  // namespace sa::video
