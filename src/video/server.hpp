// Video server: camera + video processor + sending MetaSocket (paper Fig. 3).
//
// The synthetic StreamSource feeds packets into a FilterChain holding the
// encoder filter(s); the chain's output is multicast to every subscribed
// client's data node.  The server exposes a FilterChainProcess so an
// adaptation agent can reset / adapt / resume its MetaSocket.
#pragma once

#include <memory>
#include <vector>

#include "components/filter_chain.hpp"
#include "proto/adaptable_process.hpp"
#include "runtime/transport.hpp"
#include "video/stream.hpp"

namespace sa::video {

/// Network message wrapping one stream packet.
struct PacketMsg final : runtime::Message {
  components::Packet packet;
  std::string type_name() const override { return "video-packet"; }
  std::size_t size_bytes() const override {
    return packet.payload.size() + 24;  // payload + header
  }
};

class VideoServer {
 public:
  /// `data_node` must already exist in `transport`; data channels to client
  /// nodes are created by the caller before subscribe().
  VideoServer(runtime::Clock& clock, runtime::Transport& transport, runtime::NodeId data_node,
              StreamConfig config = {}, proto::FilterFactory factory = nullptr);

  /// Adds a client data node to the multicast set.
  void subscribe(runtime::NodeId client_data_node);

  void start() { source_.start([this](components::Packet p) { chain_.submit(std::move(p)); }); }
  void stop() { source_.stop(); }

  components::FilterChain& chain() { return chain_; }
  proto::AdaptableProcess& process() { return process_; }
  StreamSource& source() { return source_; }

  std::uint64_t packets_emitted() const { return source_.packets_emitted(); }

 private:
  runtime::Transport* transport_;
  runtime::NodeId data_node_;
  components::FilterChain chain_;
  proto::FilterChainProcess process_;
  StreamSource source_;
  std::vector<runtime::NodeId> subscribers_;
};

}  // namespace sa::video
