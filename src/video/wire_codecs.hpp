// Wire codec for the data-plane PacketMsg (video stream packets), so a
// distributed deployment can push real stream traffic through a
// SocketTransport. Large payloads exceed the UDP datagram budget and ride
// the transport's TCP fallback transparently. Idempotent.
#pragma once

namespace sa::video {

void register_wire_codecs();

}  // namespace sa::video
