// Synthetic video stream: frame generation, packetization, and integrity
// checking.
//
// Substitutes for the paper's web camera + video processor (§5, Figure 3).
// Frames are pseudo-random payloads split into fixed-size packets; every
// packet carries a plaintext checksum, so the receiving player can tell
// intact packets from ones corrupted by key mismatch or an interrupted
// critical communication segment — the observable difference between safe
// and unsafe adaptation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "components/packet.hpp"
#include "runtime/clock.hpp"
#include "util/rng.hpp"

namespace sa::video {

struct StreamConfig {
  std::uint64_t stream_id = 1;
  std::uint32_t frames_per_second = 25;
  std::uint32_t packets_per_frame = 4;
  std::size_t packet_payload_bytes = 256;
};

/// Produces the packetized stream on a virtual-time schedule.
class StreamSource {
 public:
  using PacketHandler = std::function<void(components::Packet)>;

  StreamSource(runtime::Clock& clock, StreamConfig config, std::uint64_t seed = 7);

  /// Starts emitting packets to `sink` (one per inter-packet interval).
  void start(PacketHandler sink);
  void stop();
  bool running() const { return running_; }

  std::uint64_t packets_emitted() const { return next_sequence_; }
  runtime::Time packet_interval() const;

 private:
  void emit_next();

  runtime::Clock* clock_;
  StreamConfig config_;
  util::Rng rng_;
  PacketHandler sink_;
  bool running_ = false;
  std::uint64_t next_sequence_ = 0;
  runtime::TimerId pending_ = 0;
};

/// Receiving-side player: consumes decoded packets and keeps integrity and
/// disruption statistics.
struct PlayerStats {
  std::uint64_t received = 0;
  std::uint64_t intact = 0;
  std::uint64_t corrupted = 0;       ///< checksum mismatch after full decode
  std::uint64_t undecodable = 0;     ///< arrived still carrying encoding tags
  std::uint64_t duplicates = 0;
  std::uint64_t reordered = 0;
  runtime::Time max_interarrival_gap = 0;  ///< longest silence between intact packets
  runtime::Time last_intact_at = -1;
};

class StreamSink {
 public:
  explicit StreamSink(runtime::Clock& clock) : clock_(&clock) {}

  void accept(const components::Packet& packet);

  const PlayerStats& stats() const { return stats_; }

  /// Sequences never seen, assuming the source emitted [0, emitted) packets.
  std::uint64_t missing(std::uint64_t emitted) const;

 private:
  runtime::Clock* clock_;
  PlayerStats stats_;
  std::vector<bool> seen_;
  std::uint64_t highest_seen_ = 0;
};

}  // namespace sa::video
