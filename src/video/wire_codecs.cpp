#include "video/wire_codecs.hpp"

#include <memory>

#include "components/packet.hpp"
#include "runtime/wire.hpp"
#include "video/server.hpp"

namespace sa::video {

namespace {

constexpr std::uint16_t kIdVideoPacket = 16;

}  // namespace

void register_wire_codecs() {
  runtime::register_wire_codec(
      kIdVideoPacket, "video-packet",
      [](const runtime::Message& m, runtime::WireWriter& w) {
        const components::Packet& p = static_cast<const PacketMsg&>(m).packet;
        w.u64(p.stream_id);
        w.u64(p.sequence);
        w.u64(p.plaintext_checksum);
        w.u8(static_cast<std::uint8_t>(p.encoding_stack.size()));
        for (std::size_t i = 0; i < p.encoding_stack.size(); ++i) {
          w.str(p.encoding_stack[i]);
        }
        w.u32(static_cast<std::uint32_t>(p.payload.size()));
        w.bytes(p.payload.data(), p.payload.size());
      },
      [](runtime::WireReader& r) -> runtime::MessagePtr {
        auto msg = std::make_shared<PacketMsg>();
        components::Packet& p = msg->packet;
        p.stream_id = r.u64();
        p.sequence = r.u64();
        p.plaintext_checksum = r.u64();
        const std::uint8_t depth = r.u8();
        if (depth > components::TagStack::kMaxTags) {
          throw runtime::WireError("wire: encoding stack too deep");
        }
        for (std::uint8_t i = 0; i < depth; ++i) {
          const std::string tag = r.str();
          if (tag.size() > components::TagStack::kMaxTagLength) {
            throw runtime::WireError("wire: encoding tag too long");
          }
          p.encoding_stack.push_back(tag);
        }
        const std::size_t size = r.vec_len(/*min_element_bytes=*/1, "packet payload");
        p.payload.resize(size);
        r.bytes(p.payload.data(), size);
        return msg;
      });
}

}  // namespace sa::video
