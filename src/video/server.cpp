#include "video/server.hpp"

namespace sa::video {

VideoServer::VideoServer(runtime::Clock& clock, runtime::Transport& transport,
                         runtime::NodeId data_node, StreamConfig config,
                         proto::FilterFactory factory)
    : transport_(&transport),
      data_node_(data_node),
      chain_(clock, "server-metasocket"),
      process_(chain_, std::move(factory)),
      source_(clock, config) {
  chain_.set_output([this](components::Packet packet) {
    auto msg = std::make_shared<PacketMsg>();
    msg->packet = std::move(packet);
    for (const runtime::NodeId subscriber : subscribers_) {
      transport_->send(data_node_, subscriber, msg);
    }
  });
}

void VideoServer::subscribe(runtime::NodeId client_data_node) {
  subscribers_.push_back(client_data_node);
}

}  // namespace sa::video
