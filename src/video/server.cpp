#include "video/server.hpp"

namespace sa::video {

VideoServer::VideoServer(sim::Network& network, sim::NodeId data_node, StreamConfig config,
                         proto::FilterFactory factory)
    : network_(&network),
      data_node_(data_node),
      chain_(network.simulator(), "server-metasocket"),
      process_(chain_, std::move(factory)),
      source_(network.simulator(), config) {
  chain_.set_output([this](components::Packet packet) {
    auto msg = std::make_shared<PacketMsg>();
    msg->packet = std::move(packet);
    for (const sim::NodeId subscriber : subscribers_) {
      network_->send(data_node_, subscriber, msg);
    }
  });
}

void VideoServer::subscribe(sim::NodeId client_data_node) {
  subscribers_.push_back(client_data_node);
}

}  // namespace sa::video
