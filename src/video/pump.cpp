#include "video/pump.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/codec_filters.hpp"
#include "util/rng.hpp"

namespace sa::video {

namespace {

/// The batched path never schedules clock events (process_batch is
/// synchronous and quiescence fires inline), so pump lanes run their chains
/// against a null clock rather than dragging in a simulator or timer wheel.
class NullClock final : public runtime::Clock {
 public:
  runtime::Time now() const override { return 0; }
  runtime::TimerId schedule_at(runtime::Time, std::function<void()>) override { return 0; }
  runtime::TimerId schedule_after(runtime::Time, std::function<void()>) override { return 0; }
  bool cancel(runtime::TimerId) override { return false; }
};

double elapsed_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

double percentile(std::vector<double> sorted_or_not, double p) {
  if (sorted_or_not.empty()) return 0;
  std::sort(sorted_or_not.begin(), sorted_or_not.end());
  const std::size_t idx = std::min(
      sorted_or_not.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_or_not.size())));
  return sorted_or_not[idx];
}

}  // namespace

struct DataPlanePump::Lane {
  explicit Lane(std::size_t index_, const PumpConfig& config)
      : index(index_),
        encode(clock, "pump-encode-" + std::to_string(index_)),
        decode(clock, "pump-decode-" + std::to_string(index_)),
        slots(config.ring_slots) {}

  std::size_t index;
  NullClock clock;
  components::FilterChain encode;
  components::FilterChain decode;

  // SPSC ring: producer advances `produced`, pump thread advances `consumed`.
  std::vector<Slot> slots;
  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> producer_done{false};

  // Adaptation handshake (cold path).
  std::atomic<bool> adapt_requested{false};
  std::mutex mutex;
  std::condition_variable cv;
  bool parked = false;
  bool resume_requested = false;
  bool pump_exited = false;

  // Counters (written by the pump thread, read by reporters).
  std::atomic<std::uint64_t> generated{0};
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> intact{0};
  std::atomic<std::uint64_t> corrupted{0};
  std::atomic<std::uint64_t> undecodable{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> blocked_windows{0};
  std::atomic<std::uint64_t> blocked_ns{0};

  // Pump-thread-private; read only after join.
  std::vector<double> batch_delays_us;
  std::vector<components::PacketRef> scratch_mid;
  std::vector<components::PacketRef> scratch_out;

  std::chrono::steady_clock::time_point started_at;
  std::chrono::steady_clock::time_point finished_at;

  std::thread producer_thread;
  std::thread pump_thread;
};

DataPlanePump::DataPlanePump(PumpConfig config) : config_(config) {
  if (config_.streams == 0) throw std::invalid_argument("pump: streams must be > 0");
  if (config_.batch_size == 0) throw std::invalid_argument("pump: batch_size must be > 0");
  if (config_.ring_slots < 2) throw std::invalid_argument("pump: ring_slots must be >= 2");
}

DataPlanePump::~DataPlanePump() { stop_and_join(); }

void DataPlanePump::start(ChainBuilder builder) {
  if (running_) throw std::logic_error("pump already started");
  stop_requested_ = false;
  lanes_.clear();
  for (std::size_t i = 0; i < config_.streams; ++i) {
    lanes_.push_back(std::make_unique<Lane>(i, config_));
    Lane& lane = *lanes_.back();
    if (builder) {
      builder(i, lane.clock, lane.encode, lane.decode);
    } else {
      // Case-study default: DES-64 encode on the way out, decode on the way in.
      lane.encode.append_filter(crypto::make_encoder_e1());
      lane.decode.append_filter(crypto::make_decoder("D1", true, false));
    }
  }
  for (auto& lane : lanes_) {
    lane->started_at = std::chrono::steady_clock::now();
    lane->pump_thread = std::thread([this, &lane = *lane] { pump_loop(lane); });
    lane->producer_thread = std::thread([this, &lane = *lane] { producer_loop(lane); });
  }
  running_ = true;
}

void DataPlanePump::join_all() {
  for (auto& lane : lanes_) {
    if (lane->producer_thread.joinable()) lane->producer_thread.join();
    if (lane->pump_thread.joinable()) lane->pump_thread.join();
  }
  running_ = false;
}

void DataPlanePump::stop_and_join() {
  if (!running_) return;
  stop_requested_.store(true, std::memory_order_release);
  join_all();
}

void DataPlanePump::run_to_completion() {
  if (!running_) return;
  join_all();
}

void DataPlanePump::producer_loop(Lane& lane) {
  util::Rng rng(config_.seed * 0x9e3779b97f4a7c15ULL + lane.index + 1);
  const std::size_t payload_words = (config_.payload_bytes + 7) / 8;
  std::uint64_t sequence = 0;

  using clock = std::chrono::steady_clock;
  const bool paced = config_.producer_pps > 0;
  const auto batch_interval =
      paced ? std::chrono::duration_cast<clock::duration>(std::chrono::duration<double>(
                  static_cast<double>(config_.batch_size) / config_.producer_pps))
            : clock::duration::zero();
  auto next_deadline = clock::now();

  while (!stop_requested_.load(std::memory_order_acquire) &&
         sequence < config_.packets_per_stream) {
    // Wait for a free slot (the ring is full when produced - consumed == slots).
    const std::uint64_t produced = lane.produced.load(std::memory_order_relaxed);
    if (produced - lane.consumed.load(std::memory_order_acquire) >= lane.slots.size()) {
      std::this_thread::yield();
      continue;
    }

    Slot& slot = lane.slots[produced % lane.slots.size()];
    slot.refs.clear();
    const std::size_t batch =
        static_cast<std::size_t>(std::min<std::uint64_t>(
            config_.batch_size, config_.packets_per_stream - sequence));
    for (std::size_t i = 0; i < batch; ++i) {
      // Generate the payload directly in the arena: one pass, no staging
      // buffer, checksum stamped in place.
      components::PacketRef ref =
          slot.arena.make_blank(lane.index + 1, sequence++, config_.payload_bytes);
      std::uint8_t* data = ref.data();
      for (std::size_t w = 0; w < payload_words; ++w) {
        std::uint64_t word = rng.next_u64();
        const std::size_t offset = w * 8;
        const std::size_t take = std::min<std::size_t>(8, config_.payload_bytes - offset);
        for (std::size_t b = 0; b < take; ++b) {
          data[offset + b] = static_cast<std::uint8_t>(word >> (8 * b));
        }
      }
      ref.set_plaintext_checksum(components::payload_checksum(ref.data(), ref.size()));
      slot.refs.push_back(ref);
    }
    lane.generated.fetch_add(batch, std::memory_order_relaxed);
    slot.produced_at = clock::now();
    lane.produced.store(produced + 1, std::memory_order_release);

    if (paced) {
      next_deadline += batch_interval;
      std::this_thread::sleep_until(next_deadline);
    }
  }
  lane.producer_done.store(true, std::memory_order_release);
}

void DataPlanePump::pump_loop(Lane& lane) {
  while (true) {
    if (lane.adapt_requested.load(std::memory_order_acquire)) park_lane(lane);

    const std::uint64_t consumed = lane.consumed.load(std::memory_order_relaxed);
    if (consumed == lane.produced.load(std::memory_order_acquire)) {
      if (lane.producer_done.load(std::memory_order_acquire) &&
          consumed == lane.produced.load(std::memory_order_acquire)) {
        break;
      }
      std::this_thread::yield();
      continue;
    }

    Slot& slot = lane.slots[consumed % lane.slots.size()];
    process_slot(lane, slot);
    // reset() before release so the producer reuses a clean arena.
    slot.arena.reset();
    lane.consumed.store(consumed + 1, std::memory_order_release);
  }

  lane.finished_at = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(lane.mutex);
  lane.pump_exited = true;
  lane.cv.notify_all();
}

void DataPlanePump::process_slot(Lane& lane, Slot& slot) {
  // Encode chain, then decode chain, all within the slot's arena: transformed
  // payloads land in the same arena the producer filled, and everything is
  // recycled together once the batch has been verified.
  lane.scratch_mid.clear();
  components::VectorSink mid(slot.arena, lane.scratch_mid);
  lane.encode.process_batch(slot.refs, mid);

  lane.scratch_out.clear();
  components::VectorSink out(slot.arena, lane.scratch_out);
  lane.decode.process_batch(lane.scratch_mid, out);

  std::uint64_t intact = 0, corrupted = 0, undecodable = 0;
  for (const components::PacketRef& ref : lane.scratch_out) {
    if (!ref.tags().empty()) {
      ++undecodable;
    } else if (ref.intact()) {
      ++intact;
    } else {
      ++corrupted;
    }
  }
  lane.delivered.fetch_add(lane.scratch_out.size(), std::memory_order_relaxed);
  lane.intact.fetch_add(intact, std::memory_order_relaxed);
  lane.corrupted.fetch_add(corrupted, std::memory_order_relaxed);
  lane.undecodable.fetch_add(undecodable, std::memory_order_relaxed);
  lane.batches.fetch_add(1, std::memory_order_relaxed);
  lane.batch_delays_us.push_back(
      elapsed_us(slot.produced_at, std::chrono::steady_clock::now()));
}

void DataPlanePump::park_lane(Lane& lane) {
  const auto blocked_from = std::chrono::steady_clock::now();
  // Drive both chains through the ordinary §5.2 protocol. Between batches the
  // chains are idle, so quiescence fires inline and they block immediately.
  lane.encode.request_quiescence([] {});
  lane.decode.request_quiescence([] {});

  std::unique_lock<std::mutex> lock(lane.mutex);
  lane.parked = true;
  lane.cv.notify_all();
  lane.cv.wait(lock, [&] { return lane.resume_requested; });
  lane.resume_requested = false;
  lane.parked = false;
  lane.adapt_requested.store(false, std::memory_order_release);
  lock.unlock();

  lane.encode.resume();
  lane.decode.resume();
  const auto blocked_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - blocked_from)
                              .count();
  lane.blocked_windows.fetch_add(1, std::memory_order_relaxed);
  lane.blocked_ns.fetch_add(static_cast<std::uint64_t>(blocked_ns), std::memory_order_relaxed);
}

void DataPlanePump::adapt_lane(
    std::size_t lane_index,
    const std::function<void(components::FilterChain&, components::FilterChain&)>& adapt) {
  if (lane_index >= lanes_.size()) throw std::out_of_range("adapt_lane: no such lane");
  Lane& lane = *lanes_[lane_index];
  std::unique_lock<std::mutex> lock(lane.mutex);
  if (lane.pump_exited) {
    // Pump finished; chains are idle — adapt directly.
    adapt(lane.encode, lane.decode);
    return;
  }
  lane.adapt_requested.store(true, std::memory_order_release);
  lane.cv.wait(lock, [&] { return lane.parked || lane.pump_exited; });
  adapt(lane.encode, lane.decode);
  if (lane.parked) {
    lane.resume_requested = true;
    lane.cv.notify_all();
  }
}

LaneReport DataPlanePump::lane_report(std::size_t lane_index) const {
  if (lane_index >= lanes_.size()) throw std::out_of_range("lane_report: no such lane");
  const Lane& lane = *lanes_[lane_index];
  LaneReport report;
  report.generated = lane.generated.load(std::memory_order_relaxed);
  report.delivered = lane.delivered.load(std::memory_order_relaxed);
  report.intact = lane.intact.load(std::memory_order_relaxed);
  report.corrupted = lane.corrupted.load(std::memory_order_relaxed);
  report.undecodable = lane.undecodable.load(std::memory_order_relaxed);
  report.batches = lane.batches.load(std::memory_order_relaxed);
  report.blocked_windows = lane.blocked_windows.load(std::memory_order_relaxed);
  report.blocked_us =
      static_cast<double>(lane.blocked_ns.load(std::memory_order_relaxed)) / 1000.0;
  // Delay samples are pump-thread-private: only read them once the thread has
  // been joined (mid-run reports get counters but no percentiles).
  const bool joined = !lane.pump_thread.joinable();
  const auto end = joined ? lane.finished_at : std::chrono::steady_clock::now();
  report.elapsed_s =
      std::chrono::duration<double>(end - lane.started_at).count();
  if (report.elapsed_s > 0) {
    report.pps = static_cast<double>(report.delivered) / report.elapsed_s;
  }
  if (joined) {
    report.p50_delay_us = percentile(lane.batch_delays_us, 0.50);
    report.p99_delay_us = percentile(lane.batch_delays_us, 0.99);
    if (!lane.batch_delays_us.empty()) {
      report.max_delay_us =
          *std::max_element(lane.batch_delays_us.begin(), lane.batch_delays_us.end());
    }
  }
  return report;
}

LaneReport DataPlanePump::total_report() const {
  LaneReport total;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const LaneReport lane = lane_report(i);
    total.generated += lane.generated;
    total.delivered += lane.delivered;
    total.intact += lane.intact;
    total.corrupted += lane.corrupted;
    total.undecodable += lane.undecodable;
    total.batches += lane.batches;
    total.blocked_windows += lane.blocked_windows;
    total.blocked_us += lane.blocked_us;
    total.elapsed_s = std::max(total.elapsed_s, lane.elapsed_s);
    total.p50_delay_us = std::max(total.p50_delay_us, lane.p50_delay_us);
    total.p99_delay_us = std::max(total.p99_delay_us, lane.p99_delay_us);
    total.max_delay_us = std::max(total.max_delay_us, lane.max_delay_us);
  }
  if (total.elapsed_s > 0) {
    total.pps = static_cast<double>(total.delivered) / total.elapsed_s;
  }
  return total;
}

}  // namespace sa::video
