// Video client: receiving MetaSocket + video processor + player (paper
// Fig. 3).  Packets arriving on the client's data node flow through the
// decoder FilterChain into the StreamSink, which verifies integrity.
#pragma once

#include "components/filter_chain.hpp"
#include "proto/adaptable_process.hpp"
#include "runtime/transport.hpp"
#include "video/stream.hpp"

namespace sa::video {

class VideoClient {
 public:
  /// Takes over `data_node`'s receive handler.
  VideoClient(runtime::Clock& clock, runtime::Transport& transport, runtime::NodeId data_node,
              std::string name, proto::FilterFactory factory = nullptr);

  components::FilterChain& chain() { return chain_; }
  proto::AdaptableProcess& process() { return process_; }
  const PlayerStats& player_stats() const { return sink_.stats(); }
  const StreamSink& sink() const { return sink_; }

  /// Observer invoked for every decoded packet just before it reaches the
  /// player — used e.g. to feed a safe-state monitor with frame boundaries.
  using PacketObserver = std::function<void(const components::Packet&)>;
  void set_packet_observer(PacketObserver observer) { observer_ = std::move(observer); }

 private:
  components::FilterChain chain_;
  proto::FilterChainProcess process_;
  StreamSink sink_;
  PacketObserver observer_;
};

}  // namespace sa::video
