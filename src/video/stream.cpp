#include "video/stream.hpp"

#include <algorithm>

namespace sa::video {

StreamSource::StreamSource(runtime::Clock& clock, StreamConfig config, std::uint64_t seed)
    : clock_(&clock), config_(config), rng_(seed) {}

runtime::Time StreamSource::packet_interval() const {
  const std::uint64_t packets_per_second =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(config_.frames_per_second) *
                                     config_.packets_per_frame);
  return runtime::seconds(1) / static_cast<runtime::Time>(packets_per_second);
}

void StreamSource::start(PacketHandler sink) {
  sink_ = std::move(sink);
  if (running_) return;
  running_ = true;
  emit_next();
}

void StreamSource::stop() {
  running_ = false;
  if (pending_ != 0) {
    clock_->cancel(pending_);
    pending_ = 0;
  }
}

void StreamSource::emit_next() {
  if (!running_) return;
  components::Payload payload(config_.packet_payload_bytes);
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng_.next_u64());
  components::Packet packet =
      components::Packet::make(config_.stream_id, next_sequence_++, std::move(payload));
  if (sink_) sink_(std::move(packet));
  pending_ = clock_->schedule_after(packet_interval(), [this] {
    pending_ = 0;
    emit_next();
  });
}

void StreamSink::accept(const components::Packet& packet) {
  ++stats_.received;
  if (packet.sequence >= seen_.size()) seen_.resize(packet.sequence + 1, false);
  if (seen_[packet.sequence]) {
    ++stats_.duplicates;
    return;
  }
  seen_[packet.sequence] = true;
  if (stats_.received > 1 && packet.sequence < highest_seen_) ++stats_.reordered;
  highest_seen_ = std::max(highest_seen_, packet.sequence);

  if (!packet.encoding_stack.empty()) {
    ++stats_.undecodable;
    return;
  }
  if (components::payload_checksum(packet.payload) != packet.plaintext_checksum) {
    ++stats_.corrupted;
    return;
  }
  ++stats_.intact;
  const runtime::Time now = clock_->now();
  if (stats_.last_intact_at >= 0) {
    stats_.max_interarrival_gap = std::max(stats_.max_interarrival_gap, now - stats_.last_intact_at);
  }
  stats_.last_intact_at = now;
}

std::uint64_t StreamSink::missing(std::uint64_t emitted) const {
  std::uint64_t present = 0;
  for (std::uint64_t seq = 0; seq < emitted && seq < seen_.size(); ++seq) {
    if (seen_[seq]) ++present;
  }
  return emitted - present;
}

}  // namespace sa::video
