#include "video/client.hpp"

#include "video/server.hpp"

namespace sa::video {

VideoClient::VideoClient(runtime::Clock& clock, runtime::Transport& transport,
                         runtime::NodeId data_node, std::string name,
                         proto::FilterFactory factory)
    : chain_(clock, name + "-metasocket"),
      process_(chain_, std::move(factory)),
      sink_(clock) {
  chain_.set_output([this](components::Packet packet) {
    if (observer_) observer_(packet);
    sink_.accept(packet);
  });
  transport.set_handler(data_node, [this](runtime::NodeId, runtime::MessagePtr message) {
    if (const auto* packet_msg = dynamic_cast<const PacketMsg*>(message.get())) {
      chain_.submit(packet_msg->packet);
    }
  });
}

}  // namespace sa::video
