#include "video/client.hpp"

#include "video/server.hpp"

namespace sa::video {

VideoClient::VideoClient(sim::Network& network, sim::NodeId data_node, std::string name,
                         proto::FilterFactory factory)
    : chain_(network.simulator(), name + "-metasocket"),
      process_(chain_, std::move(factory)),
      sink_(network.simulator()) {
  chain_.set_output([this](components::Packet packet) {
    if (observer_) observer_(packet);
    sink_.accept(packet);
  });
  network.set_handler(data_node, [this](sim::NodeId, sim::MessagePtr message) {
    if (const auto* packet_msg = dynamic_cast<const PacketMsg*>(message.get())) {
      chain_.submit(packet_msg->packet);
    }
  });
}

}  // namespace sa::video
