#include "components/packet.hpp"

#include <bit>
#include <cstring>

namespace sa::components {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv_round(std::uint64_t hash, std::uint64_t byte) {
  return (hash ^ byte) * kFnvPrime;
}

}  // namespace

std::uint64_t payload_checksum(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = kFnvOffset;
  const std::uint8_t* p = data;
  const std::uint8_t* const end = data + size;
  if constexpr (std::endian::native == std::endian::little) {
    // One 8-byte load per word; the eight FNV-1a rounds then run on register
    // bytes instead of eight separate memory reads. Digests are bit-identical
    // to the byte-wise loop below (FNV-1a is inherently sequential, so the
    // rounds themselves cannot be reordered — only the loads are batched).
    for (; end - p >= 8; p += 8) {
      std::uint64_t word;
      std::memcpy(&word, p, 8);
      hash = fnv_round(hash, word & 0xFF);
      hash = fnv_round(hash, (word >> 8) & 0xFF);
      hash = fnv_round(hash, (word >> 16) & 0xFF);
      hash = fnv_round(hash, (word >> 24) & 0xFF);
      hash = fnv_round(hash, (word >> 32) & 0xFF);
      hash = fnv_round(hash, (word >> 40) & 0xFF);
      hash = fnv_round(hash, (word >> 48) & 0xFF);
      hash = fnv_round(hash, word >> 56);
    }
  }
  for (; p != end; ++p) hash = fnv_round(hash, *p);  // tail (and big-endian fallback)
  return hash;
}

Packet Packet::make(std::uint64_t stream_id, std::uint64_t sequence, Payload payload) {
  Packet packet;
  packet.stream_id = stream_id;
  packet.sequence = sequence;
  packet.plaintext_checksum = payload_checksum(payload);
  packet.payload = std::move(payload);
  return packet;
}

bool Packet::intact() const {
  return encoding_stack.empty() && payload_checksum(payload) == plaintext_checksum;
}

}  // namespace sa::components
