#include "components/packet.hpp"

namespace sa::components {

std::uint64_t payload_checksum(const Payload& payload) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const std::uint8_t byte : payload) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Packet Packet::make(std::uint64_t stream_id, std::uint64_t sequence, Payload payload) {
  Packet packet;
  packet.stream_id = stream_id;
  packet.sequence = sequence;
  packet.plaintext_checksum = payload_checksum(payload);
  packet.payload = std::move(payload);
  return packet;
}

bool Packet::intact() const {
  return encoding_stack.empty() && payload_checksum(payload) == plaintext_checksum;
}

}  // namespace sa::components
