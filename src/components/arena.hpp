// PacketArena / PacketRef: the zero-copy batched packet representation.
//
// The per-packet data plane (Packet with its own heap-owned payload vector)
// pays one allocation per packet plus a copy at every size-changing filter.
// The batched plane instead stores every payload of a batch contiguously in
// an arena and passes lightweight views (PacketRef) between filters:
//
//   * PacketArena owns chunked, address-stable payload storage plus a stable
//     deque of PacketHeader records. reset() recycles the chunks for the next
//     batch without freeing them, so a steady-state stream allocates nothing.
//   * PacketRef is a pointer-sized view of one header. Filters mutate the
//     header in place (push/pop tags, rebind the payload to a transformed
//     buffer) and forward the SAME ref on the bypass path — zero bytes move.
//   * PacketSink receives filter outputs; it carries the arena so filters can
//     allocate transformed payloads for the refs they emit.
//
// Lifetime contract: a PacketRef is valid until the owning arena's reset().
// Batches therefore never outlive their arena slot; the pump recycles arenas
// only after the batch has fully left the chain (see video/pump.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "components/packet.hpp"

namespace sa::components {

/// One packet's mutable metadata inside an arena. `data` points into the
/// arena's chunk storage (or to a transformed buffer also inside the arena).
struct PacketHeader {
  std::uint64_t stream_id = 0;
  std::uint64_t sequence = 0;
  std::uint64_t plaintext_checksum = 0;
  std::uint8_t* data = nullptr;
  std::uint32_t size = 0;
  TagStack tags;
};

/// Non-owning view of an arena packet; cheap to copy, mutates in place.
class PacketRef {
 public:
  PacketRef() = default;
  explicit PacketRef(PacketHeader* header) : header_(header) {}

  bool valid() const { return header_ != nullptr; }

  std::uint64_t stream_id() const { return header_->stream_id; }
  std::uint64_t sequence() const { return header_->sequence; }
  std::uint64_t plaintext_checksum() const { return header_->plaintext_checksum; }
  void set_plaintext_checksum(std::uint64_t checksum) {
    header_->plaintext_checksum = checksum;
  }

  std::span<std::uint8_t> payload() const { return {header_->data, header_->size}; }
  std::uint8_t* data() const { return header_->data; }
  std::uint32_t size() const { return header_->size; }

  /// Rebinds the payload to a (typically freshly allocated) buffer — how a
  /// size-changing filter (encryption padding, compression) replaces the
  /// payload without touching the old bytes.
  void rebind(std::uint8_t* data, std::uint32_t size) {
    header_->data = data;
    header_->size = size;
  }
  /// Shrinks in place (e.g. stripping cipher padding). `size` must not grow.
  void truncate(std::uint32_t size) { header_->size = size; }

  TagStack& tags() const { return header_->tags; }

  bool intact() const {
    return header_->tags.empty() &&
           payload_checksum(header_->data, header_->size) == header_->plaintext_checksum;
  }

  /// Materializes an owning Packet (copies the payload) — the bridge back to
  /// the per-packet world (transports, legacy sinks, the compat shim).
  Packet to_packet() const;

  PacketHeader* header() const { return header_; }

 private:
  PacketHeader* header_ = nullptr;
};

struct ArenaStats {
  std::uint64_t packets = 0;        ///< headers created since construction
  std::uint64_t bytes_allocated = 0;///< payload bytes handed out
  std::uint64_t payload_copies = 0; ///< payload byte-copies INTO the arena
  std::uint64_t resets = 0;
  std::uint64_t chunk_allocs = 0;   ///< heap chunk allocations (0 in steady state)
};

class PacketArena {
 public:
  explicit PacketArena(std::size_t chunk_bytes = 256 * 1024);

  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  /// Raw payload storage; address-stable until reset().
  std::uint8_t* alloc(std::size_t bytes);

  /// New packet with an uninitialized payload buffer the caller fills in
  /// place (producers generate directly into the arena — no copy counted).
  PacketRef make_blank(std::uint64_t stream_id, std::uint64_t sequence, std::size_t bytes);

  /// New packet copying `payload` in and stamping the plaintext checksum.
  PacketRef make(std::uint64_t stream_id, std::uint64_t sequence,
                 std::span<const std::uint8_t> payload);

  /// Copies an owning Packet into the arena (the compat-shim path).
  PacketRef adopt(const Packet& packet);

  /// Header-only packet whose payload the caller will rebind.
  PacketRef make_header(std::uint64_t stream_id, std::uint64_t sequence);

  /// Recycles all storage: headers are dropped and chunks rewound, not
  /// freed. Every PacketRef into this arena becomes invalid.
  void reset();

  std::size_t live_packets() const { return headers_.size(); }
  const ArenaStats& stats() const { return stats_; }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> bytes;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_chunk_ = 0;
  std::deque<PacketHeader> headers_;  ///< deque: stable addresses on push_back
  ArenaStats stats_;
};

/// Receives filter outputs on the batched path. Carries the arena so filters
/// can allocate transformed payloads for the refs they emit.
class PacketSink {
 public:
  explicit PacketSink(PacketArena& arena) : arena_(&arena) {}
  virtual ~PacketSink() = default;

  PacketArena& arena() { return *arena_; }

  virtual void emit(PacketRef ref) = 0;

 private:
  PacketArena* arena_;
};

/// PacketSink collecting into a caller-owned vector (scratch between filters).
class VectorSink final : public PacketSink {
 public:
  VectorSink(PacketArena& arena, std::vector<PacketRef>& out)
      : PacketSink(arena), out_(&out) {}

  void emit(PacketRef ref) override { out_->push_back(ref); }

 private:
  std::vector<PacketRef>* out_;
};

}  // namespace sa::components
