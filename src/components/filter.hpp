// Filters: stream-processing components composed into MetaSocket chains
// (paper §2, §5).  Encoders, decoders, compressors, FEC, etc. all share this
// invocation interface; the crypto library provides the DES codec filters the
// paper's case study uses.
//
// Invocation comes in two shapes:
//   * the batched span interface process_span(batch, sink) — the data-plane
//     hot path. Filters receive a whole batch of arena-backed PacketRef views
//     and emit outputs (zero, one, or many per input) to the sink. The bypass
//     rule forwards the SAME ref — no payload bytes are touched or copied.
//   * the per-packet interface process()/process_all() — the legacy shape the
//     clock-scheduled FilterChain path and the tests use. The default
//     process_span() is a compatibility shim over process_all(), so a filter
//     only implementing process() still works in batches (at per-packet cost).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "components/arena.hpp"
#include "components/component.hpp"
#include "components/packet.hpp"
#include "runtime/time.hpp"

namespace sa::components {

struct FilterStats {
  std::uint64_t processed = 0;
  std::uint64_t bypassed = 0;  ///< forwarded untouched per the bypass rule
  std::uint64_t dropped = 0;
};

class Filter : public Component {
 public:
  Filter(std::string name, runtime::Time processing_time = runtime::us(50))
      : Component(std::move(name)), processing_time_(processing_time) {}

  /// Invocation interface: transforms a packet. Returning nullopt drops it.
  /// Implementations must either transform the packet or leave it bit-exact
  /// (bypass); they record which via note_processed()/note_bypassed().
  virtual std::optional<Packet> process(Packet packet) = 0;

  /// General per-packet invocation used by the clock-scheduled FilterChain
  /// path: one input packet may yield zero (absorbed), one (transformed /
  /// bypassed), or several (e.g. an FEC encoder emitting a parity packet
  /// alongside the data) outputs. The default adapts process() move-only —
  /// the packet is moved in and the result moved out; the bypass path never
  /// copies the payload buffer. Only multi-output filters override it.
  virtual std::vector<Packet> process_all(Packet packet) {
    std::vector<Packet> out;
    if (auto result = process(std::move(packet))) {
      out.reserve(1);
      out.push_back(std::move(*result));
    }
    return out;
  }

  /// Batched invocation interface — the data-plane hot path. Transforms every
  /// packet in `batch`, emitting outputs to `sink` in order (outputs of
  /// batch[i] before outputs of batch[i+1]). Payloads live in the sink's
  /// arena; transformed payloads are allocated there, and bypassed packets
  /// MUST forward the input ref unchanged (zero-copy bypass).
  ///
  /// The default is a compatibility shim over process_all(): it materializes
  /// each ref as an owning Packet and copies results back into the arena, so
  /// single-packet filters work in batches unmodified. Hot filters override
  /// it with in-arena implementations.
  virtual void process_span(std::span<PacketRef> batch, PacketSink& sink);

  /// Virtual time one packet spends inside this filter.
  runtime::Time processing_time() const { return processing_time_; }
  void set_processing_time(runtime::Time t) { processing_time_ = t; }

  const FilterStats& stats() const { return stats_; }

  StateSnapshot refract() const override;

 protected:
  void note_processed() { ++stats_.processed; }
  void note_bypassed() { ++stats_.bypassed; }
  void note_dropped() { ++stats_.dropped; }

 private:
  runtime::Time processing_time_;
  FilterStats stats_;
};

using FilterPtr = std::shared_ptr<Filter>;

/// Identity filter; useful in tests and as chain padding.
class PassThroughFilter final : public Filter {
 public:
  explicit PassThroughFilter(std::string name, runtime::Time processing_time = runtime::us(10))
      : Filter(std::move(name), processing_time) {}

  std::optional<Packet> process(Packet packet) override {
    note_processed();
    return packet;
  }

  void process_span(std::span<PacketRef> batch, PacketSink& sink) override {
    for (PacketRef& ref : batch) {
      note_processed();
      sink.emit(ref);
    }
  }
};

/// Tags packets with a label (a stand-in for compression/FEC encoders when a
/// test needs a recognizable multi-filter chain).
class TagFilter final : public Filter {
 public:
  TagFilter(std::string name, std::string tag, runtime::Time processing_time = runtime::us(20))
      : Filter(std::move(name), processing_time), tag_(std::move(tag)) {}

  std::optional<Packet> process(Packet packet) override {
    packet.encoding_stack.push_back(tag_);
    note_processed();
    return packet;
  }

  void process_span(std::span<PacketRef> batch, PacketSink& sink) override {
    for (PacketRef& ref : batch) {
      ref.tags().push_back(tag_);
      note_processed();
      sink.emit(ref);
    }
  }

  StateSnapshot refract() const override {
    auto snapshot = Filter::refract();
    snapshot["tag"] = tag_;
    return snapshot;
  }

 private:
  std::string tag_;
};

/// Pops a matching tag; bypasses otherwise (paper's bypass rule).
class UntagFilter final : public Filter {
 public:
  UntagFilter(std::string name, std::string tag, runtime::Time processing_time = runtime::us(20))
      : Filter(std::move(name), processing_time), tag_(std::move(tag)) {}

  std::optional<Packet> process(Packet packet) override {
    if (!packet.encoding_stack.empty() && packet.encoding_stack.back() == tag_) {
      packet.encoding_stack.pop_back();
      note_processed();
    } else {
      note_bypassed();
    }
    return packet;
  }

  void process_span(std::span<PacketRef> batch, PacketSink& sink) override {
    for (PacketRef& ref : batch) {
      if (!ref.tags().empty() && ref.tags().back() == tag_) {
        ref.tags().pop_back();
        note_processed();
      } else {
        note_bypassed();
      }
      sink.emit(ref);
    }
  }

 private:
  std::string tag_;
};

}  // namespace sa::components
