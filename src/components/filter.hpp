// Filters: stream-processing components composed into MetaSocket chains
// (paper §2, §5).  Encoders, decoders, compressors, FEC, etc. all share this
// invocation interface; the crypto library provides the DES codec filters the
// paper's case study uses.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "components/component.hpp"
#include "components/packet.hpp"
#include "runtime/time.hpp"

namespace sa::components {

struct FilterStats {
  std::uint64_t processed = 0;
  std::uint64_t bypassed = 0;  ///< forwarded untouched per the bypass rule
  std::uint64_t dropped = 0;
};

class Filter : public Component {
 public:
  Filter(std::string name, runtime::Time processing_time = runtime::us(50))
      : Component(std::move(name)), processing_time_(processing_time) {}

  /// Invocation interface: transforms a packet. Returning nullopt drops it.
  /// Implementations must either transform the packet or leave it bit-exact
  /// (bypass); they record which via note_processed()/note_bypassed().
  virtual std::optional<Packet> process(Packet packet) = 0;

  /// General invocation used by FilterChain: one input packet may yield zero
  /// (absorbed), one (transformed/bypassed), or several (e.g. an FEC encoder
  /// emitting a parity packet alongside the data) outputs. The default
  /// adapts process(); only multi-output filters override it.
  virtual std::vector<Packet> process_all(Packet packet) {
    std::vector<Packet> out;
    if (auto result = process(std::move(packet))) out.push_back(std::move(*result));
    return out;
  }

  /// Virtual time one packet spends inside this filter.
  runtime::Time processing_time() const { return processing_time_; }
  void set_processing_time(runtime::Time t) { processing_time_ = t; }

  const FilterStats& stats() const { return stats_; }

  StateSnapshot refract() const override;

 protected:
  void note_processed() { ++stats_.processed; }
  void note_bypassed() { ++stats_.bypassed; }
  void note_dropped() { ++stats_.dropped; }

 private:
  runtime::Time processing_time_;
  FilterStats stats_;
};

using FilterPtr = std::shared_ptr<Filter>;

/// Identity filter; useful in tests and as chain padding.
class PassThroughFilter final : public Filter {
 public:
  explicit PassThroughFilter(std::string name, runtime::Time processing_time = runtime::us(10))
      : Filter(std::move(name), processing_time) {}

  std::optional<Packet> process(Packet packet) override {
    note_processed();
    return packet;
  }
};

/// Tags packets with a label (a stand-in for compression/FEC encoders when a
/// test needs a recognizable multi-filter chain).
class TagFilter final : public Filter {
 public:
  TagFilter(std::string name, std::string tag, runtime::Time processing_time = runtime::us(20))
      : Filter(std::move(name), processing_time), tag_(std::move(tag)) {}

  std::optional<Packet> process(Packet packet) override {
    packet.encoding_stack.push_back(tag_);
    note_processed();
    return packet;
  }

  StateSnapshot refract() const override {
    auto snapshot = Filter::refract();
    snapshot["tag"] = tag_;
    return snapshot;
  }

 private:
  std::string tag_;
};

/// Pops a matching tag; bypasses otherwise (paper's bypass rule).
class UntagFilter final : public Filter {
 public:
  UntagFilter(std::string name, std::string tag, runtime::Time processing_time = runtime::us(20))
      : Filter(std::move(name), processing_time), tag_(std::move(tag)) {}

  std::optional<Packet> process(Packet packet) override {
    if (!packet.encoding_stack.empty() && packet.encoding_stack.back() == tag_) {
      packet.encoding_stack.pop_back();
      note_processed();
    } else {
      note_bypassed();
    }
    return packet;
  }

 private:
  std::string tag_;
};

}  // namespace sa::components
