// Run-length-encoding codec filters — the "compression" filter family the
// paper lists alongside encryption and FEC as MetaSocket stream manipulators.
//
// Format: a sequence of (count, byte) pairs, count in [1, 255]. Encoding is
// applied unconditionally and tagged "rle"; whether it shrinks the payload
// depends on the content (synthetic video with run-structured payloads
// compresses well, random payloads expand by ~2x — both are valid workloads
// for adaptation experiments that trade CPU for bandwidth).
#pragma once

#include "components/filter.hpp"

namespace sa::components {

inline constexpr const char* kTagRle = "rle";

/// RLE-encodes `input`.
Payload rle_encode(const Payload& input);

/// Decodes rle_encode output; returns nullopt on malformed input (odd length).
std::optional<Payload> rle_decode(const Payload& input);

class RleCompressFilter final : public Filter {
 public:
  explicit RleCompressFilter(std::string name, runtime::Time processing_time = runtime::us(40))
      : Filter(std::move(name), processing_time) {}

  std::optional<Packet> process(Packet packet) override {
    bytes_in_ += packet.payload.size();
    packet.payload = rle_encode(packet.payload);
    bytes_out_ += packet.payload.size();
    packet.encoding_stack.emplace_back(kTagRle);
    note_processed();
    return packet;
  }

  /// Native batched path: encodes straight into arena storage (worst case
  /// 2x the input for alternating bytes) and rebinds — no owning Payload
  /// vector, no per-packet Packet materialization.
  void process_span(std::span<PacketRef> batch, PacketSink& sink) override;

  /// Observed compression ratio (output/input); > 1 means expansion.
  double ratio() const {
    return bytes_in_ == 0 ? 1.0
                          : static_cast<double>(bytes_out_) / static_cast<double>(bytes_in_);
  }

  StateSnapshot refract() const override {
    auto snapshot = Filter::refract();
    snapshot["bytes_in"] = std::to_string(bytes_in_);
    snapshot["bytes_out"] = std::to_string(bytes_out_);
    return snapshot;
  }

 private:
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

class RleDecompressFilter final : public Filter {
 public:
  explicit RleDecompressFilter(std::string name, runtime::Time processing_time = runtime::us(40))
      : Filter(std::move(name), processing_time) {}

  std::optional<Packet> process(Packet packet) override {
    if (packet.encoding_stack.empty() || packet.encoding_stack.back() != kTagRle) {
      note_bypassed();
      return packet;
    }
    auto decoded = rle_decode(packet.payload);
    if (!decoded) {
      note_dropped();
      return std::nullopt;
    }
    packet.payload = std::move(*decoded);
    packet.encoding_stack.pop_back();
    note_processed();
    return packet;
  }

  /// Native batched path: validates and sizes the output in one scan of the
  /// (count, byte) pairs, decodes into arena storage, rebinds. Bypass
  /// forwards the same ref untouched; malformed payloads are dropped (not
  /// emitted), exactly like the per-packet path.
  void process_span(std::span<PacketRef> batch, PacketSink& sink) override;
};

}  // namespace sa::components
