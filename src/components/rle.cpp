#include "components/rle.hpp"

namespace sa::components {

Payload rle_encode(const Payload& input) {
  Payload out;
  out.reserve(input.size() / 2 + 2);
  std::size_t i = 0;
  while (i < input.size()) {
    const std::uint8_t byte = input[i];
    std::size_t run = 1;
    while (i + run < input.size() && input[i + run] == byte && run < 255) ++run;
    out.push_back(static_cast<std::uint8_t>(run));
    out.push_back(byte);
    i += run;
  }
  return out;
}

std::optional<Payload> rle_decode(const Payload& input) {
  if (input.size() % 2 != 0) return std::nullopt;
  Payload out;
  for (std::size_t i = 0; i < input.size(); i += 2) {
    const std::uint8_t count = input[i];
    if (count == 0) return std::nullopt;
    out.insert(out.end(), count, input[i + 1]);
  }
  return out;
}

}  // namespace sa::components
