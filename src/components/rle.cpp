#include "components/rle.hpp"

#include <cstddef>
#include <cstring>

namespace sa::components {

Payload rle_encode(const Payload& input) {
  Payload out;
  out.reserve(input.size() / 2 + 2);
  std::size_t i = 0;
  while (i < input.size()) {
    const std::uint8_t byte = input[i];
    std::size_t run = 1;
    while (i + run < input.size() && input[i + run] == byte && run < 255) ++run;
    out.push_back(static_cast<std::uint8_t>(run));
    out.push_back(byte);
    i += run;
  }
  return out;
}

std::optional<Payload> rle_decode(const Payload& input) {
  if (input.size() % 2 != 0) return std::nullopt;
  Payload out;
  for (std::size_t i = 0; i < input.size(); i += 2) {
    const std::uint8_t count = input[i];
    if (count == 0) return std::nullopt;
    out.insert(out.end(), count, input[i + 1]);
  }
  return out;
}

void RleCompressFilter::process_span(std::span<PacketRef> batch, PacketSink& sink) {
  for (PacketRef& ref : batch) {
    const std::span<const std::uint8_t> in = ref.payload();
    bytes_in_ += in.size();
    // Worst case (no two adjacent bytes equal) is one (count, byte) pair per
    // input byte; over-allocating from the bump arena is cheaper than a
    // sizing pre-pass.
    std::uint8_t* out = sink.arena().alloc(in.size() * 2);
    std::size_t n = 0;
    std::size_t i = 0;
    while (i < in.size()) {
      const std::uint8_t byte = in[i];
      std::size_t run = 1;
      while (i + run < in.size() && in[i + run] == byte && run < 255) ++run;
      out[n++] = static_cast<std::uint8_t>(run);
      out[n++] = byte;
      i += run;
    }
    bytes_out_ += n;
    ref.rebind(out, static_cast<std::uint32_t>(n));
    ref.tags().push_back(kTagRle);
    note_processed();
    sink.emit(ref);
  }
}

void RleDecompressFilter::process_span(std::span<PacketRef> batch, PacketSink& sink) {
  for (PacketRef& ref : batch) {
    if (ref.tags().empty() || ref.tags().back() != kTagRle) {
      note_bypassed();
      sink.emit(ref);
      continue;
    }
    const std::span<const std::uint8_t> in = ref.payload();
    // One validating scan also yields the exact output size.
    std::size_t total = 0;
    bool malformed = in.size() % 2 != 0;
    if (!malformed) {
      for (std::size_t i = 0; i < in.size(); i += 2) {
        if (in[i] == 0) {
          malformed = true;
          break;
        }
        total += in[i];
      }
    }
    if (malformed) {
      note_dropped();
      continue;
    }
    std::uint8_t* out = sink.arena().alloc(total);
    std::size_t n = 0;
    for (std::size_t i = 0; i < in.size(); i += 2) {
      std::memset(out + n, in[i + 1], in[i]);
      n += in[i];
    }
    ref.rebind(out, static_cast<std::uint32_t>(total));
    ref.tags().pop_back();
    note_processed();
    sink.emit(ref);
  }
}

}  // namespace sa::components
