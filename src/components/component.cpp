#include "components/component.hpp"

// Component is header-only behaviour today; this translation unit anchors the
// vtable so every library linking sa_components shares one copy.
namespace sa::components {}
