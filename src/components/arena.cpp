#include "components/arena.hpp"

#include <algorithm>
#include <cstring>

namespace sa::components {

Packet PacketRef::to_packet() const {
  Packet packet;
  packet.stream_id = header_->stream_id;
  packet.sequence = header_->sequence;
  packet.plaintext_checksum = header_->plaintext_checksum;
  packet.payload.assign(header_->data, header_->data + header_->size);
  packet.encoding_stack = header_->tags;
  return packet;
}

PacketArena::PacketArena(std::size_t chunk_bytes)
    : chunk_bytes_(std::max<std::size_t>(chunk_bytes, 4096)) {}

std::uint8_t* PacketArena::alloc(std::size_t bytes) {
  stats_.bytes_allocated += bytes;
  while (active_chunk_ < chunks_.size()) {
    Chunk& chunk = chunks_[active_chunk_];
    if (chunk.capacity - chunk.used >= bytes) {
      std::uint8_t* out = chunk.bytes.get() + chunk.used;
      chunk.used += bytes;
      return out;
    }
    ++active_chunk_;
  }
  // Oversized payloads get a dedicated chunk; regular ones a standard chunk.
  const std::size_t capacity = std::max(bytes, chunk_bytes_);
  Chunk chunk;
  chunk.bytes = std::make_unique<std::uint8_t[]>(capacity);
  chunk.capacity = capacity;
  chunk.used = bytes;
  ++stats_.chunk_allocs;
  chunks_.push_back(std::move(chunk));
  active_chunk_ = chunks_.size() - 1;
  return chunks_.back().bytes.get();
}

PacketRef PacketArena::make_header(std::uint64_t stream_id, std::uint64_t sequence) {
  PacketHeader& header = headers_.emplace_back();
  header.stream_id = stream_id;
  header.sequence = sequence;
  ++stats_.packets;
  return PacketRef(&header);
}

PacketRef PacketArena::make_blank(std::uint64_t stream_id, std::uint64_t sequence,
                                  std::size_t bytes) {
  PacketRef ref = make_header(stream_id, sequence);
  ref.rebind(alloc(bytes), static_cast<std::uint32_t>(bytes));
  return ref;
}

PacketRef PacketArena::make(std::uint64_t stream_id, std::uint64_t sequence,
                            std::span<const std::uint8_t> payload) {
  PacketRef ref = make_blank(stream_id, sequence, payload.size());
  if (!payload.empty()) std::memcpy(ref.data(), payload.data(), payload.size());
  stats_.payload_copies += payload.size();
  ref.set_plaintext_checksum(payload_checksum(ref.data(), ref.size()));
  return ref;
}

PacketRef PacketArena::adopt(const Packet& packet) {
  PacketRef ref = make_blank(packet.stream_id, packet.sequence, packet.payload.size());
  if (!packet.payload.empty()) {
    std::memcpy(ref.data(), packet.payload.data(), packet.payload.size());
  }
  stats_.payload_copies += packet.payload.size();
  ref.set_plaintext_checksum(packet.plaintext_checksum);
  ref.tags() = packet.encoding_stack;
  return ref;
}

void PacketArena::reset() {
  headers_.clear();
  for (Chunk& chunk : chunks_) chunk.used = 0;
  active_chunk_ = 0;
  ++stats_.resets;
}

}  // namespace sa::components
