#include "components/filter.hpp"

namespace sa::components {

void Filter::process_span(std::span<PacketRef> batch, PacketSink& sink) {
  // Compatibility shim: run the per-packet interface and copy results back
  // into the arena. Correct for any filter (multi-output included); hot
  // filters override with zero-copy in-arena implementations.
  for (PacketRef& ref : batch) {
    std::vector<Packet> produced = process_all(ref.to_packet());
    for (Packet& out : produced) sink.emit(sink.arena().adopt(out));
  }
}

StateSnapshot Filter::refract() const {
  auto snapshot = Component::refract();
  snapshot["processed"] = std::to_string(stats_.processed);
  snapshot["bypassed"] = std::to_string(stats_.bypassed);
  snapshot["dropped"] = std::to_string(stats_.dropped);
  snapshot["processing_time_us"] = std::to_string(processing_time_);
  return snapshot;
}

}  // namespace sa::components
