#include "components/filter.hpp"

namespace sa::components {

StateSnapshot Filter::refract() const {
  auto snapshot = Component::refract();
  snapshot["processed"] = std::to_string(stats_.processed);
  snapshot["bypassed"] = std::to_string(stats_.bypassed);
  snapshot["dropped"] = std::to_string(stats_.dropped);
  snapshot["processing_time_us"] = std::to_string(processing_time_);
  return snapshot;
}

}  // namespace sa::components
