// XOR forward-error-correction filters — the FEC family the paper lists among
// MetaSocket filters, used by the adaptive-FEC example and loss experiments.
//
// Systematic code: every data packet passes through unchanged (tagged with
// its group id); after each group of `group_size` data packets the encoder
// emits one parity packet whose payload XORs the group's sequence numbers,
// checksums, lengths, and (length-padded) payloads. The decoder absorbs
// parity packets and, when a group is missing exactly one data packet,
// reconstructs and emits it.
//
// Layering: because group bookkeeping rides on the packet's encoding stack,
// the FEC pair composes transparently with the DES codecs — place the FEC
// encoder BEFORE the encryption encoder on the sender ([FEC, E1]) and the FEC
// decoder AFTER decryption on the receiver ([D1, FEC]); parity payloads are
// then encrypted/decrypted like any other packet.
//
// Decoders are safe without encoders (no parity ever arrives; data packets
// with no fec tag bypass), mirroring the case study's decoder bypass rule —
// so a safe insertion order is decoders first, then the encoder, and the
// dependency invariant is the familiar "FecEncoder -> all FecDecoders".
#pragma once

#include <map>

#include "components/filter.hpp"

namespace sa::components {

/// Encoder: tags data packets "fec:<group>" and appends a parity packet
/// (tagged "fec-parity:<group>:<k>") after every complete group.
class XorFecEncoderFilter final : public Filter {
 public:
  XorFecEncoderFilter(std::string name, std::size_t group_size,
                      runtime::Time processing_time = runtime::us(30));

  std::optional<Packet> process(Packet packet) override;  ///< single-out view
  std::vector<Packet> process_all(Packet packet) override;

  /// Batched path: data packets are tagged in place and forwarded zero-copy;
  /// parity packets are built directly in the sink's arena, interleaved in
  /// the same positions as the per-packet path (…dk, parity, dk+1…).
  void process_span(std::span<PacketRef> batch, PacketSink& sink) override;

  std::size_t group_size() const { return group_size_; }
  std::uint64_t parity_emitted() const { return parity_emitted_; }

  StateSnapshot refract() const override;

 private:
  void accumulate(std::uint64_t sequence, std::uint64_t checksum,
                  std::span<const std::uint8_t> payload, const TagStack& stack);

  struct Accumulator {
    std::uint64_t seq_xor = 0;
    std::uint64_t checksum_xor = 0;
    std::uint32_t length_xor = 0;
    Payload payload_xor;
    TagStack common_stack;  // stack shared by the group
    std::size_t count = 0;
  };

  std::size_t group_size_;
  std::uint64_t next_group_ = 0;
  Accumulator accumulator_;
  std::uint64_t parity_emitted_ = 0;
};

/// Decoder: strips "fec:<group>" tags, absorbs parity, reconstructs a single
/// missing packet per group.
class XorFecDecoderFilter final : public Filter {
 public:
  explicit XorFecDecoderFilter(std::string name, runtime::Time processing_time = runtime::us(30));

  std::optional<Packet> process(Packet packet) override;  ///< single-out view
  std::vector<Packet> process_all(Packet packet) override;

  /// Batched path: data packets pop their tag in place and forward zero-copy;
  /// parity packets are absorbed; reconstructed packets are built DIRECTLY in
  /// the sink's arena (no owning-Packet intermediary, no adopt() copy) and
  /// emitted right where the per-packet path would emit them.
  void process_span(std::span<PacketRef> batch, PacketSink& sink) override;

  std::uint64_t recovered() const { return recovered_; }

  /// Replacement-time state transfer: adopts the predecessor decoder's open
  /// group bookkeeping so packets buffered across the swap stay repairable.
  bool adopt_state(Component& predecessor) override;

  StateSnapshot refract() const override;

 private:
  struct GroupState {
    std::size_t expected = 0;  // k, learned from the parity packet (0 = unknown)
    std::size_t received = 0;
    std::uint64_t seq_xor = 0;
    std::uint64_t checksum_xor = 0;
    std::uint32_t length_xor = 0;
    Payload payload_xor;
    bool parity_seen = false;
    std::uint64_t parity_seq_xor = 0;
    std::uint64_t parity_checksum_xor = 0;
    std::uint32_t parity_length_xor = 0;
    Payload parity_payload_xor;
    TagStack parity_stack;
  };

  void absorb_data(GroupState& group, std::uint64_t sequence, std::uint64_t checksum,
                   std::span<const std::uint8_t> payload);
  void absorb_parity(GroupState& group, std::size_t k, std::uint64_t checksum,
                     std::span<const std::uint8_t> payload, TagStack residue);
  /// True when the group has its parity and is missing exactly one data
  /// packet; erases groups that completed with nothing to repair.
  bool reconstruction_due(std::uint64_t group_id, GroupState& group);
  std::optional<Packet> try_reconstruct(std::uint64_t group_id, GroupState& group);
  /// Batched-path variant: XORs the missing packet straight into a fresh
  /// arena buffer. Returns an invalid ref when no reconstruction is due.
  PacketRef try_reconstruct_into(std::uint64_t group_id, GroupState& group,
                                 std::uint64_t stream_id, PacketArena& arena);
  void prune();

  std::map<std::uint64_t, GroupState> groups_;
  std::uint64_t recovered_ = 0;
};

}  // namespace sa::components
