// FilterChain: this repository's MetaSocket (paper §2).
//
// A chain of filters through which packets flow in order.  Its structure can
// be recomposed at run time (insert / remove / replace a filter) — those are
// the transmutations the adaptive actions execute.  The chain also implements
// the *local safe state* machinery of §5.2: an agent requests quiescence, the
// chain finishes the packet currently being processed (the critical
// communication segment at this granularity), then blocks itself and notifies
// the agent.  While blocked, arriving packets queue; resume() drains them.
//
// Packets take virtual time to traverse the chain (a fixed overhead plus each
// filter's processing time), so blocking during adaptation produces the
// packet-delay costs the paper's Table 2 reports.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "components/filter.hpp"
#include "runtime/clock.hpp"

namespace sa::components {

struct ChainStats {
  std::uint64_t submitted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_by_filters = 0;
  runtime::Time total_delay = 0;  ///< sum over delivered packets of (exit - entry)
  runtime::Time max_delay = 0;
  // Batched path (process_batch) only:
  std::uint64_t batches = 0;
  runtime::Time batch_virtual_time = 0;  ///< overhead + Σ filter times, once per batch
};

class FilterChain : public Component {
 public:
  using OutputHandler = std::function<void(Packet)>;
  using QuiescenceHandler = std::function<void()>;

  FilterChain(runtime::Clock& clock, std::string name, runtime::Time per_packet_overhead = runtime::us(20));

  // --- composition (transmutations) ----------------------------------------

  /// Inserts at `index` (clamped to [0, size]).
  void insert_filter(std::size_t index, FilterPtr filter);
  void append_filter(FilterPtr filter) { insert_filter(filters_.size(), std::move(filter)); }

  /// Removes the named filter and returns it; nullptr when absent.
  FilterPtr remove_filter(const std::string& filter_name);

  /// Replaces `old_name` in place; returns the old filter, or nullptr (and
  /// performs nothing) when `old_name` is absent.
  FilterPtr replace_filter(const std::string& old_name, FilterPtr replacement);

  bool has_filter(const std::string& filter_name) const;
  std::vector<std::string> filter_names() const;
  std::size_t size() const { return filters_.size(); }

  // --- data path (invocations) ----------------------------------------------

  /// Entry point: queues the packet for processing.
  void submit(Packet packet);

  /// Exit callback, invoked when a packet leaves the last filter.
  void set_output(OutputHandler handler) { output_ = std::move(handler); }

  /// Batched data path: moves a whole span through every filter
  /// synchronously (no clock events) and emits survivors to `sink` in order.
  /// Intermediate and transformed payloads are allocated from sink.arena();
  /// bypassed packets forward their input refs untouched. Virtual-time
  /// accounting runs ONCE per batch (overhead + Σ filter times →
  /// stats().batch_virtual_time), not once per packet — that, plus zero
  /// copies and no event-queue churn, is where the batched plane's
  /// throughput comes from. Returns the number of packets emitted.
  ///
  /// Quiescence interacts at batch granularity: the batch is the critical
  /// segment, so a pending request blocks the chain AFTER the current batch
  /// completes (never mid-span). Calling while blocked() is a protocol
  /// violation and throws — the caller (the pump) parks at batch boundaries.
  std::size_t process_batch(std::span<PacketRef> batch, PacketSink& sink);

  // --- safe-state protocol hooks ---------------------------------------------

  /// Quiescence granularity: Packet blocks after the in-flight packet
  /// completes (the *local safe state*); Drain additionally waits until the
  /// input queue is empty (the *global safe condition* for a receiver — every
  /// packet the sender emitted has been fully processed).
  enum class QuiescenceMode { Packet, Drain };

  /// Sets the "resetting" flag (§5.2): once quiescent per `mode`, the chain
  /// blocks and fires `on_quiescent`. Fires immediately if already there.
  /// Only one outstanding request at a time.
  void request_quiescence(QuiescenceHandler on_quiescent,
                          QuiescenceMode mode = QuiescenceMode::Packet);

  /// Abandons a pending quiescence request / unblocks without adapting
  /// (rollback path).
  void cancel_quiescence();

  /// True iff no packet is mid-processing (the local safe state).
  bool quiescent() const { return !busy_; }
  bool blocked() const { return blocked_; }

  /// Releases a blocked chain and drains the queue.
  void resume();

  std::size_t queued() const { return queue_.size(); }
  const ChainStats& stats() const { return stats_; }

  /// When enabled, per-packet delays are appended to delay_log().
  void set_delay_logging(bool enabled) { log_delays_ = enabled; }
  const std::vector<runtime::Time>& delay_log() const { return delay_log_; }

  StateSnapshot refract() const override;
  bool transmute(const std::string& key, const std::string& value) override;

 private:
  void maybe_start_next();
  void finish_packet(Packet packet, runtime::Time entry_time);
  void block_and_notify();

  runtime::Clock* clock_;
  runtime::Time per_packet_overhead_;
  std::vector<FilterPtr> filters_;
  OutputHandler output_;

  struct Pending {
    Packet packet;
    runtime::Time entry_time;
  };
  std::deque<Pending> queue_;
  bool busy_ = false;
  bool blocked_ = false;
  bool resetting_ = false;
  QuiescenceMode quiescence_mode_ = QuiescenceMode::Packet;
  QuiescenceHandler on_quiescent_;

  ChainStats stats_;
  bool log_delays_ = false;
  std::vector<runtime::Time> delay_log_;

  // Scratch double-buffer for process_batch (kept to avoid per-batch heap
  // traffic once warmed up).
  std::vector<PacketRef> batch_scratch_in_;
  std::vector<PacketRef> batch_scratch_out_;
};

}  // namespace sa::components
