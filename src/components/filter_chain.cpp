#include "components/filter_chain.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace sa::components {

FilterChain::FilterChain(runtime::Clock& clock, std::string name, runtime::Time per_packet_overhead)
    : Component(std::move(name)), clock_(&clock), per_packet_overhead_(per_packet_overhead) {}

void FilterChain::insert_filter(std::size_t index, FilterPtr filter) {
  if (!filter) throw std::invalid_argument("insert_filter: null filter");
  if (has_filter(filter->name())) {
    throw std::invalid_argument("duplicate filter name in chain: " + filter->name());
  }
  index = std::min(index, filters_.size());
  filters_.insert(filters_.begin() + static_cast<std::ptrdiff_t>(index), std::move(filter));
}

FilterPtr FilterChain::remove_filter(const std::string& filter_name) {
  const auto it = std::find_if(filters_.begin(), filters_.end(),
                               [&](const FilterPtr& f) { return f->name() == filter_name; });
  if (it == filters_.end()) return nullptr;
  FilterPtr removed = *it;
  filters_.erase(it);
  return removed;
}

FilterPtr FilterChain::replace_filter(const std::string& old_name, FilterPtr replacement) {
  if (!replacement) throw std::invalid_argument("replace_filter: null replacement");
  const auto it = std::find_if(filters_.begin(), filters_.end(),
                               [&](const FilterPtr& f) { return f->name() == old_name; });
  if (it == filters_.end()) return nullptr;
  FilterPtr old = *it;
  *it = std::move(replacement);
  return old;
}

bool FilterChain::has_filter(const std::string& filter_name) const {
  return std::any_of(filters_.begin(), filters_.end(),
                     [&](const FilterPtr& f) { return f->name() == filter_name; });
}

std::vector<std::string> FilterChain::filter_names() const {
  std::vector<std::string> names;
  names.reserve(filters_.size());
  for (const FilterPtr& filter : filters_) names.push_back(filter->name());
  return names;
}

void FilterChain::submit(Packet packet) {
  ++stats_.submitted;
  queue_.push_back(Pending{std::move(packet), clock_->now()});
  maybe_start_next();
}

std::size_t FilterChain::process_batch(std::span<PacketRef> batch, PacketSink& sink) {
  if (blocked_) {
    throw std::logic_error("process_batch on blocked chain " + name() +
                           " (pump must park at batch boundaries)");
  }
  busy_ = true;
  ++stats_.batches;
  stats_.submitted += batch.size();

  // One virtual-time accounting pass per batch — the per-packet path charges
  // this same sum once per packet.
  runtime::Time duration = per_packet_overhead_;
  for (const FilterPtr& filter : filters_) duration += filter->processing_time();
  stats_.batch_virtual_time += duration;

  batch_scratch_in_.assign(batch.begin(), batch.end());
  for (const FilterPtr& filter : filters_) {
    batch_scratch_out_.clear();
    VectorSink stage(sink.arena(), batch_scratch_out_);
    filter->process_span(batch_scratch_in_, stage);
    if (batch_scratch_out_.size() < batch_scratch_in_.size()) {
      stats_.dropped_by_filters += batch_scratch_in_.size() - batch_scratch_out_.size();
    }
    batch_scratch_in_.swap(batch_scratch_out_);
    if (batch_scratch_in_.empty()) break;
  }

  const std::size_t emitted = batch_scratch_in_.size();
  stats_.delivered += emitted;
  for (PacketRef& ref : batch_scratch_in_) sink.emit(ref);

  busy_ = false;
  // §5.2 at batch granularity: a request that arrived mid-batch takes effect
  // now that the critical segment (the batch) is complete.
  if (resetting_ && (quiescence_mode_ == QuiescenceMode::Packet || queue_.empty())) {
    block_and_notify();
  }
  return emitted;
}

void FilterChain::request_quiescence(QuiescenceHandler on_quiescent, QuiescenceMode mode) {
  if (resetting_) throw std::logic_error("quiescence request already pending on " + name());
  resetting_ = true;
  quiescence_mode_ = mode;
  on_quiescent_ = std::move(on_quiescent);
  if (!busy_ && (mode == QuiescenceMode::Packet || queue_.empty())) {
    block_and_notify();
  }
}

void FilterChain::block_and_notify() {
  blocked_ = true;
  resetting_ = false;
  if (on_quiescent_) {
    auto handler = std::move(on_quiescent_);
    on_quiescent_ = nullptr;
    handler();
  }
}

void FilterChain::cancel_quiescence() {
  resetting_ = false;
  on_quiescent_ = nullptr;
  if (blocked_) resume();
}

void FilterChain::resume() {
  blocked_ = false;
  maybe_start_next();
}

void FilterChain::maybe_start_next() {
  if (busy_ || blocked_) return;
  if (resetting_ &&
      (quiescence_mode_ == QuiescenceMode::Packet || queue_.empty())) {
    // Packet mode blocks before taking another packet; Drain mode blocks
    // only once the queue has been worked off.
    block_and_notify();
    return;
  }
  if (queue_.empty()) return;
  busy_ = true;
  Pending pending = std::move(queue_.front());
  queue_.pop_front();

  runtime::Time duration = per_packet_overhead_;
  for (const FilterPtr& filter : filters_) duration += filter->processing_time();

  clock_->schedule_after(duration, [this, pending = std::move(pending)]() mutable {
    finish_packet(std::move(pending.packet), pending.entry_time);
  });
}

void FilterChain::finish_packet(Packet packet, runtime::Time entry_time) {
  // The packet traverses every filter in order; each filter may absorb it,
  // transform it, or fan it out (FEC parity). Filters see the packet only
  // now, at completion time, which is equivalent to traversal-at-exit and
  // keeps the event count low.
  std::vector<Packet> current;
  current.push_back(std::move(packet));
  for (const FilterPtr& filter : filters_) {
    std::vector<Packet> next;
    for (Packet& in_flight : current) {
      std::vector<Packet> produced = filter->process_all(std::move(in_flight));
      for (Packet& out : produced) next.push_back(std::move(out));
    }
    current = std::move(next);
    if (current.empty()) break;
  }
  if (current.empty()) {
    ++stats_.dropped_by_filters;
  } else {
    const runtime::Time delay = clock_->now() - entry_time;
    stats_.total_delay += delay;
    stats_.max_delay = std::max(stats_.max_delay, delay);
    if (log_delays_) delay_log_.push_back(delay);
    for (Packet& out : current) {
      ++stats_.delivered;
      if (output_) output_(std::move(out));
    }
  }

  busy_ = false;
  maybe_start_next();
}

StateSnapshot FilterChain::refract() const {
  auto snapshot = Component::refract();
  snapshot["filters"] = [this] {
    std::string joined;
    for (const FilterPtr& filter : filters_) {
      if (!joined.empty()) joined += ",";
      joined += filter->name();
    }
    return joined;
  }();
  snapshot["busy"] = busy_ ? "1" : "0";
  snapshot["blocked"] = blocked_ ? "1" : "0";
  snapshot["queued"] = std::to_string(queue_.size());
  snapshot["submitted"] = std::to_string(stats_.submitted);
  snapshot["delivered"] = std::to_string(stats_.delivered);
  return snapshot;
}

bool FilterChain::transmute(const std::string& key, const std::string& value) {
  if (key == "remove_filter") return remove_filter(value) != nullptr;
  if (key == "blocked") {
    if (value == "0") {
      resume();
      return true;
    }
    if (value == "1") {
      blocked_ = true;
      return true;
    }
    return false;
  }
  return Component::transmute(key, value);
}

}  // namespace sa::components
