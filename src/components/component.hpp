// Component model in the style of Adaptive Java (paper §2).
//
// Each adaptable component offers three interfaces:
//   * invocations    — normal imperative operations (domain-specific; e.g.
//                      Filter::process for filters);
//   * refractions    — observing internal behaviour and state (refract());
//   * transmutations — changing internal behaviour (transmute()).
// The refraction/transmutation split is what the paper calls introspection
// and intercession; agents use refractions to detect local safe states and
// transmutations to realize in-actions.
#pragma once

#include <map>
#include <string>

namespace sa::components {

/// Key/value snapshot of a component's observable state.
using StateSnapshot = std::map<std::string, std::string>;

class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  const std::string& name() const { return name_; }

  /// Refraction: observable internal state. The base snapshot carries the
  /// component name; subclasses merge in their own keys.
  virtual StateSnapshot refract() const {
    return {{"name", name_}};
  }

  /// Transmutation: sets a named behavioural parameter. Returns false when
  /// the key is unknown or the value is rejected; components must remain in a
  /// consistent state after a rejected transmutation.
  virtual bool transmute(const std::string& key, const std::string& value) {
    (void)key;
    (void)value;
    return false;
  }

  /// State transfer during replacement: invoked on the NEW component with the
  /// component it replaces, while both are quiescent (the process is blocked
  /// in its safe state). Implementations may move internal state out of
  /// `predecessor`. Returns true if any state was adopted; the default —
  /// correct for stateless components like block-cipher codecs — adopts
  /// nothing.
  virtual bool adopt_state(Component& predecessor) {
    (void)predecessor;
    return false;
  }

 private:
  std::string name_;
};

}  // namespace sa::components
