// Packets: the data unit flowing through MetaSocket filter chains.
//
// A packet carries an opaque payload plus a small header:
//   * stream / sequence ids so receivers can detect loss and reordering;
//   * an `encoding_stack` of codec tags (e.g. "des64") pushed by encoders and
//     popped by decoders — this is the header a real MetaSocket filter reads
//     to implement the paper's "bypass" rule;
//   * a checksum over the ORIGINAL plaintext payload, set at the producer.
// A receiver that decodes a packet and finds checksum mismatch has observed
// exactly the corruption an unsafe adaptation causes (e.g. 128-bit data hit
// by a 64-bit decoder mid-swap).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sa::components {

using Payload = std::vector<std::uint8_t>;

/// FNV-1a over the payload bytes; cheap and adequate for corruption checks.
std::uint64_t payload_checksum(const Payload& payload);

struct Packet {
  std::uint64_t stream_id = 0;
  std::uint64_t sequence = 0;
  Payload payload;
  std::vector<std::string> encoding_stack;
  std::uint64_t plaintext_checksum = 0;

  /// Builds a packet and stamps plaintext_checksum from `payload`.
  static Packet make(std::uint64_t stream_id, std::uint64_t sequence, Payload payload);

  /// True iff payload currently matches plaintext_checksum AND all encodings
  /// have been removed — i.e. the packet arrived intact and fully decoded.
  bool intact() const;
};

}  // namespace sa::components
