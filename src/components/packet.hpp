// Packets: the data unit flowing through MetaSocket filter chains.
//
// A packet carries an opaque payload plus a small header:
//   * stream / sequence ids so receivers can detect loss and reordering;
//   * an `encoding_stack` of codec tags (e.g. "des64") pushed by encoders and
//     popped by decoders — this is the header a real MetaSocket filter reads
//     to implement the paper's "bypass" rule;
//   * a checksum over the ORIGINAL plaintext payload, set at the producer.
// A receiver that decodes a packet and finds checksum mismatch has observed
// exactly the corruption an unsafe adaptation causes (e.g. 128-bit data hit
// by a 64-bit decoder mid-swap).
//
// The encoding stack is a fixed inline stack of small tags (TagStack), not a
// std::vector<std::string>: pushing or popping a codec tag on the data path
// must never touch the heap. Real stacks are at most a few tags deep
// ([rle?][fec:<g>][des64]); the capacity bounds below are generous and
// overflow throws rather than silently truncating a header.
#pragma once

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sa::components {

using Payload = std::vector<std::uint8_t>;

/// FNV-1a over the payload bytes; cheap and adequate for corruption checks.
/// Processes aligned 8-byte words (one load per word, rounds unrolled in
/// registers) with a byte tail loop; digests are identical to the byte-wise
/// definition for every input.
std::uint64_t payload_checksum(const std::uint8_t* data, std::size_t size);

inline std::uint64_t payload_checksum(const Payload& payload) {
  return payload_checksum(payload.data(), payload.size());
}

/// Fixed-capacity inline stack of codec tags. Vector-like surface (push_back/
/// pop_back/back/size) so filter code reads as before, but storage is a flat
/// char array inside the packet header: no allocation, trivially copyable.
class TagStack {
 public:
  static constexpr std::size_t kMaxTags = 8;
  static constexpr std::size_t kMaxTagLength = 47;

  TagStack() = default;

  bool empty() const { return depth_ == 0; }
  std::size_t size() const { return depth_; }

  std::string_view operator[](std::size_t i) const {
    return std::string_view(data_[i], len_[i]);
  }
  std::string_view back() const { return (*this)[depth_ - 1]; }

  void push_back(std::string_view tag) {
    if (depth_ == kMaxTags) throw std::length_error("TagStack: encoding stack overflow");
    if (tag.size() > kMaxTagLength) {
      throw std::length_error("TagStack: tag too long: " + std::string(tag));
    }
    len_[depth_] = static_cast<std::uint8_t>(tag.size());
    tag.copy(data_[depth_], tag.size());
    ++depth_;
  }
  void emplace_back(std::string_view tag) { push_back(tag); }

  void pop_back() { --depth_; }
  void clear() { depth_ = 0; }

  std::vector<std::string> to_vector() const {
    std::vector<std::string> out;
    out.reserve(depth_);
    for (std::size_t i = 0; i < depth_; ++i) out.emplace_back((*this)[i]);
    return out;
  }

  friend bool operator==(const TagStack& a, const TagStack& b) {
    if (a.depth_ != b.depth_) return false;
    for (std::size_t i = 0; i < a.depth_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
  friend bool operator==(const TagStack& a, const std::vector<std::string>& b) {
    if (a.depth_ != b.size()) return false;
    for (std::size_t i = 0; i < a.depth_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
  friend bool operator==(const std::vector<std::string>& a, const TagStack& b) {
    return b == a;
  }

  friend std::ostream& operator<<(std::ostream& os, const TagStack& stack) {
    os << '[';
    for (std::size_t i = 0; i < stack.depth_; ++i) {
      if (i) os << ',';
      os << stack[i];
    }
    return os << ']';
  }

 private:
  std::uint8_t depth_ = 0;
  std::uint8_t len_[kMaxTags] = {};
  char data_[kMaxTags][kMaxTagLength] = {};
};

struct Packet {
  std::uint64_t stream_id = 0;
  std::uint64_t sequence = 0;
  Payload payload;
  TagStack encoding_stack;
  std::uint64_t plaintext_checksum = 0;

  /// Builds a packet and stamps plaintext_checksum from `payload`.
  static Packet make(std::uint64_t stream_id, std::uint64_t sequence, Payload payload);

  /// True iff payload currently matches plaintext_checksum AND all encodings
  /// have been removed — i.e. the packet arrived intact and fully decoded.
  bool intact() const;
};

}  // namespace sa::components
