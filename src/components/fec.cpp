#include "components/fec.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>

#include "util/log.hpp"

namespace sa::components {

namespace {

constexpr std::string_view kDataPrefix = "fec:";
constexpr std::string_view kParityPrefix = "fec-parity:";

void xor_into(Payload& accumulator, std::span<const std::uint8_t> payload) {
  if (accumulator.size() < payload.size()) accumulator.resize(payload.size(), 0);
  for (std::size_t i = 0; i < payload.size(); ++i) accumulator[i] ^= payload[i];
}

/// Formats "fec:<group>" into `buf` (allocation-free for the batched path).
std::string_view format_data_tag(char (&buf)[48], std::uint64_t group) {
  std::memcpy(buf, kDataPrefix.data(), kDataPrefix.size());
  const auto r = std::to_chars(buf + kDataPrefix.size(), buf + sizeof(buf), group);
  return {buf, static_cast<std::size_t>(r.ptr - buf)};
}

/// Formats "fec-parity:<group>:<k>" into `buf`.
std::string_view format_parity_tag(char (&buf)[48], std::uint64_t group, std::size_t k) {
  std::memcpy(buf, kParityPrefix.data(), kParityPrefix.size());
  char* p = buf + kParityPrefix.size();
  p = std::to_chars(p, buf + sizeof(buf), group).ptr;
  *p++ = ':';
  p = std::to_chars(p, buf + sizeof(buf), k).ptr;
  return {buf, static_cast<std::size_t>(p - buf)};
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

/// "fec:<group>" -> group id.
std::optional<std::uint64_t> parse_data_tag(std::string_view tag) {
  if (!tag.starts_with(kDataPrefix)) return std::nullopt;
  return parse_u64(tag.substr(kDataPrefix.size()));
}

/// "fec-parity:<group>:<k>" -> (group, k).
std::optional<std::pair<std::uint64_t, std::size_t>> parse_parity_tag(std::string_view tag) {
  if (!tag.starts_with(kParityPrefix)) return std::nullopt;
  const std::string_view rest = tag.substr(kParityPrefix.size());
  const std::size_t colon = rest.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const auto group = parse_u64(rest.substr(0, colon));
  const auto k = parse_u64(rest.substr(colon + 1));
  if (!group || !k) return std::nullopt;
  return std::make_pair(*group, static_cast<std::size_t>(*k));
}

}  // namespace

// --- encoder -------------------------------------------------------------------

XorFecEncoderFilter::XorFecEncoderFilter(std::string name, std::size_t group_size,
                                         runtime::Time processing_time)
    : Filter(std::move(name), processing_time), group_size_(std::max<std::size_t>(2, group_size)) {}

std::optional<Packet> XorFecEncoderFilter::process(Packet packet) {
  // Single-output view: tags the data packet but cannot carry parity.
  // The chain always uses process_all(); this exists for direct invocation.
  auto out = process_all(std::move(packet));
  if (out.empty()) return std::nullopt;
  return std::move(out.front());
}

void XorFecEncoderFilter::accumulate(std::uint64_t sequence, std::uint64_t checksum,
                                     std::span<const std::uint8_t> payload,
                                     const TagStack& stack) {
  accumulator_.seq_xor ^= sequence;
  accumulator_.checksum_xor ^= checksum;
  accumulator_.length_xor ^= static_cast<std::uint32_t>(payload.size());
  xor_into(accumulator_.payload_xor, payload);
  if (accumulator_.count == 0) accumulator_.common_stack = stack;
  ++accumulator_.count;
}

std::vector<Packet> XorFecEncoderFilter::process_all(Packet packet) {
  accumulate(packet.sequence, packet.plaintext_checksum, packet.payload,
             packet.encoding_stack);
  note_processed();

  char tag_buf[48];
  Packet data = std::move(packet);
  data.encoding_stack.push_back(format_data_tag(tag_buf, next_group_));

  std::vector<Packet> out;
  const std::uint64_t last_sequence = data.sequence;
  const std::uint64_t last_stream = data.stream_id;
  out.push_back(std::move(data));

  if (accumulator_.count == group_size_) {
    Packet parity;
    parity.stream_id = last_stream;
    parity.sequence = last_sequence;  // rides next to the group's tail
    parity.plaintext_checksum = accumulator_.checksum_xor;
    // Payload layout: [8B seq_xor][4B length_xor][payload_xor...].
    parity.payload.reserve(12 + accumulator_.payload_xor.size());
    for (int shift = 56; shift >= 0; shift -= 8) {
      parity.payload.push_back(static_cast<std::uint8_t>(accumulator_.seq_xor >> shift));
    }
    for (int shift = 24; shift >= 0; shift -= 8) {
      parity.payload.push_back(static_cast<std::uint8_t>(accumulator_.length_xor >> shift));
    }
    parity.payload.insert(parity.payload.end(), accumulator_.payload_xor.begin(),
                          accumulator_.payload_xor.end());
    parity.encoding_stack = accumulator_.common_stack;
    parity.encoding_stack.push_back(format_parity_tag(tag_buf, next_group_, group_size_));
    out.push_back(std::move(parity));

    ++parity_emitted_;
    ++next_group_;
    accumulator_ = Accumulator{};
  }
  return out;
}

void XorFecEncoderFilter::process_span(std::span<PacketRef> batch, PacketSink& sink) {
  char tag_buf[48];
  for (PacketRef& ref : batch) {
    accumulate(ref.sequence(), ref.plaintext_checksum(), ref.payload(), ref.tags());
    note_processed();
    ref.tags().push_back(format_data_tag(tag_buf, next_group_));
    sink.emit(ref);  // data packet forwarded zero-copy

    if (accumulator_.count == group_size_) {
      // Build the parity packet directly in the arena, same layout as above.
      PacketRef parity = sink.arena().make_blank(ref.stream_id(), ref.sequence(),
                                                 12 + accumulator_.payload_xor.size());
      std::uint8_t* p = parity.data();
      for (int shift = 56; shift >= 0; shift -= 8) {
        *p++ = static_cast<std::uint8_t>(accumulator_.seq_xor >> shift);
      }
      for (int shift = 24; shift >= 0; shift -= 8) {
        *p++ = static_cast<std::uint8_t>(accumulator_.length_xor >> shift);
      }
      if (!accumulator_.payload_xor.empty()) {
        std::memcpy(p, accumulator_.payload_xor.data(), accumulator_.payload_xor.size());
      }
      parity.set_plaintext_checksum(accumulator_.checksum_xor);
      parity.tags() = accumulator_.common_stack;
      parity.tags().push_back(format_parity_tag(tag_buf, next_group_, group_size_));
      sink.emit(parity);

      ++parity_emitted_;
      ++next_group_;
      accumulator_ = Accumulator{};
    }
  }
}

StateSnapshot XorFecEncoderFilter::refract() const {
  auto snapshot = Filter::refract();
  snapshot["group_size"] = std::to_string(group_size_);
  snapshot["parity_emitted"] = std::to_string(parity_emitted_);
  return snapshot;
}

// --- decoder -------------------------------------------------------------------

XorFecDecoderFilter::XorFecDecoderFilter(std::string name, runtime::Time processing_time)
    : Filter(std::move(name), processing_time) {}

std::optional<Packet> XorFecDecoderFilter::process(Packet packet) {
  auto out = process_all(std::move(packet));
  if (out.empty()) return std::nullopt;
  return std::move(out.front());
}

void XorFecDecoderFilter::absorb_data(GroupState& group, std::uint64_t sequence,
                                      std::uint64_t checksum,
                                      std::span<const std::uint8_t> payload) {
  ++group.received;
  group.seq_xor ^= sequence;
  group.checksum_xor ^= checksum;
  group.length_xor ^= static_cast<std::uint32_t>(payload.size());
  xor_into(group.payload_xor, payload);
}

void XorFecDecoderFilter::absorb_parity(GroupState& group, std::size_t k,
                                        std::uint64_t checksum,
                                        std::span<const std::uint8_t> payload,
                                        TagStack residue) {
  group.expected = k;
  group.parity_seen = true;
  group.parity_checksum_xor = checksum;
  group.parity_seq_xor = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    group.parity_seq_xor = (group.parity_seq_xor << 8) | payload[i];
  }
  group.parity_length_xor = 0;
  for (std::size_t i = 8; i < 12; ++i) {
    group.parity_length_xor = (group.parity_length_xor << 8) | payload[i];
  }
  group.parity_payload_xor.assign(payload.begin() + 12, payload.end());
  group.parity_stack = residue;
}

bool XorFecDecoderFilter::reconstruction_due(std::uint64_t group_id, GroupState& group) {
  if (!group.parity_seen || group.expected == 0) return false;
  if (group.received + 1 != group.expected) {
    if (group.received >= group.expected) groups_.erase(group_id);  // complete, nothing to do
    return false;
  }
  return true;
}

std::optional<Packet> XorFecDecoderFilter::try_reconstruct(std::uint64_t group_id,
                                                           GroupState& group) {
  if (!reconstruction_due(group_id, group)) return std::nullopt;
  // Exactly one data packet missing: XOR of parity fields with the received
  // packets' fields yields the lost packet verbatim.
  Packet rebuilt;
  rebuilt.sequence = group.parity_seq_xor ^ group.seq_xor;
  rebuilt.plaintext_checksum = group.parity_checksum_xor ^ group.checksum_xor;
  const std::uint32_t length = group.parity_length_xor ^ group.length_xor;
  Payload payload = group.parity_payload_xor;
  xor_into(payload, group.payload_xor);
  if (length > payload.size()) {
    SA_WARN("fec") << name() << ": inconsistent parity for group " << group_id;
    groups_.erase(group_id);
    return std::nullopt;
  }
  payload.resize(length);
  rebuilt.payload = std::move(payload);
  rebuilt.encoding_stack = group.parity_stack;  // the group's common residue
  ++recovered_;
  groups_.erase(group_id);
  return rebuilt;
}

PacketRef XorFecDecoderFilter::try_reconstruct_into(std::uint64_t group_id,
                                                    GroupState& group,
                                                    std::uint64_t stream_id,
                                                    PacketArena& arena) {
  if (!reconstruction_due(group_id, group)) return {};
  const std::uint32_t length = group.parity_length_xor ^ group.length_xor;
  const std::size_t known =
      std::max(group.parity_payload_xor.size(), group.payload_xor.size());
  if (length > known) {
    SA_WARN("fec") << name() << ": inconsistent parity for group " << group_id;
    groups_.erase(group_id);
    return {};
  }
  // XOR the missing packet straight into a fresh arena buffer: the accumulated
  // vectors may be shorter than `length` (XOR padding), so missing positions
  // contribute zero.
  PacketRef rebuilt =
      arena.make_blank(stream_id, group.parity_seq_xor ^ group.seq_xor, length);
  std::uint8_t* out = rebuilt.data();
  for (std::uint32_t i = 0; i < length; ++i) {
    const std::uint8_t parity =
        i < group.parity_payload_xor.size() ? group.parity_payload_xor[i] : 0;
    const std::uint8_t data = i < group.payload_xor.size() ? group.payload_xor[i] : 0;
    out[i] = parity ^ data;
  }
  rebuilt.set_plaintext_checksum(group.parity_checksum_xor ^ group.checksum_xor);
  rebuilt.tags() = group.parity_stack;  // the group's common residue
  ++recovered_;
  groups_.erase(group_id);
  return rebuilt;
}

std::vector<Packet> XorFecDecoderFilter::process_all(Packet packet) {
  std::vector<Packet> out;
  if (packet.encoding_stack.empty()) {
    note_bypassed();
    out.push_back(std::move(packet));
    return out;
  }

  if (const auto data = parse_data_tag(packet.encoding_stack.back())) {
    packet.encoding_stack.pop_back();
    GroupState& group = groups_[*data];
    absorb_data(group, packet.sequence, packet.plaintext_checksum, packet.payload);
    note_processed();
    // stream_id rides along for reconstruction.
    const std::uint64_t stream = packet.stream_id;
    out.push_back(std::move(packet));
    if (auto rebuilt = try_reconstruct(*data, group)) {
      rebuilt->stream_id = stream;
      out.push_back(std::move(*rebuilt));
    }
    prune();
    return out;
  }

  if (const auto parity = parse_parity_tag(packet.encoding_stack.back())) {
    const auto [group_id, k] = *parity;
    if (packet.payload.size() < 12) {
      note_dropped();
      return out;
    }
    GroupState& group = groups_[group_id];
    TagStack residue = packet.encoding_stack;
    residue.pop_back();
    absorb_parity(group, k, packet.plaintext_checksum, packet.payload, residue);
    note_processed();
    const std::uint64_t stream = packet.stream_id;
    if (auto rebuilt = try_reconstruct(group_id, group)) {
      rebuilt->stream_id = stream;
      out.push_back(std::move(*rebuilt));
    }
    prune();
    return out;  // parity itself is always absorbed
  }

  note_bypassed();
  out.push_back(std::move(packet));
  return out;
}

void XorFecDecoderFilter::process_span(std::span<PacketRef> batch, PacketSink& sink) {
  for (PacketRef& ref : batch) {
    if (ref.tags().empty()) {
      note_bypassed();
      sink.emit(ref);
      continue;
    }

    if (const auto data = parse_data_tag(ref.tags().back())) {
      ref.tags().pop_back();
      GroupState& group = groups_[*data];
      absorb_data(group, ref.sequence(), ref.plaintext_checksum(), ref.payload());
      note_processed();
      sink.emit(ref);  // data packet forwarded zero-copy
      const PacketRef rebuilt =
          try_reconstruct_into(*data, group, ref.stream_id(), sink.arena());
      if (rebuilt.valid()) sink.emit(rebuilt);
      prune();
      continue;
    }

    if (const auto parity = parse_parity_tag(ref.tags().back())) {
      const auto [group_id, k] = *parity;
      if (ref.size() < 12) {
        note_dropped();
        continue;
      }
      GroupState& group = groups_[group_id];
      TagStack residue = ref.tags();
      residue.pop_back();
      absorb_parity(group, k, ref.plaintext_checksum(), ref.payload(), residue);
      note_processed();
      const PacketRef rebuilt =
          try_reconstruct_into(group_id, group, ref.stream_id(), sink.arena());
      if (rebuilt.valid()) sink.emit(rebuilt);
      prune();
      continue;  // parity itself is always absorbed
    }

    note_bypassed();
    sink.emit(ref);
  }
}

bool XorFecDecoderFilter::adopt_state(Component& predecessor) {
  auto* other = dynamic_cast<XorFecDecoderFilter*>(&predecessor);
  if (!other) return false;
  groups_ = std::move(other->groups_);
  other->groups_.clear();
  return true;
}

void XorFecDecoderFilter::prune() {
  // Bound state: keep at most 64 groups; stale (oldest) groups can no longer
  // be repaired anyway once the stream has moved on.
  while (groups_.size() > 64) groups_.erase(groups_.begin());
}

StateSnapshot XorFecDecoderFilter::refract() const {
  auto snapshot = Filter::refract();
  snapshot["recovered"] = std::to_string(recovered_);
  snapshot["open_groups"] = std::to_string(groups_.size());
  return snapshot;
}

}  // namespace sa::components
