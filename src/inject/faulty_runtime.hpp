// Fault-injection decorators over the runtime interfaces.
//
// FaultyTransport wraps any runtime::Transport and overlays the campaign's
// fault state on top of whatever the inner transport already does:
//
//   * extra loss / duplication windows draw from the decorator's own seeded
//     Rng, so fault randomness never perturbs the inner backend's stream
//     (the same seed produces the same base execution with faults layered on);
//   * node / pair partitions drop messages at send time — in-flight messages
//     still arrive, like a real link failure;
//   * crashed nodes additionally lose their in-flight deliveries: the
//     decorator interposes on every receive handler, so a message that the
//     inner transport delivers to a crashed node dies at the doorstep;
//   * its own TraceEntry log records what the protocol actually observed
//     (deliveries that reached a handler; drops with delivered=false), which
//     is what the conformance oracle replays.
//
// FaultyClock wraps any runtime::Clock and scales scheduled delays by the
// active skew factor, racing protocol timeouts against message latencies.
// FaultyRuntime bundles both over an inner Runtime so an unmodified
// core::SafeAdaptationSystem (or VideoTestbed) runs the real driver stack
// under injection — the layer the sans-I/O model checker cannot reach.
//
// Single-threaded by design: the campaign drives the deterministic SimRuntime.
// The decorators add no locking, so do not put them over ThreadedRuntime.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace sa::inject {

class FaultyClock final : public runtime::Clock {
 public:
  explicit FaultyClock(runtime::Clock& inner) : inner_(&inner) {}

  runtime::Time now() const override { return inner_->now(); }
  runtime::TimerId schedule_at(runtime::Time t, std::function<void()> fn) override;
  runtime::TimerId schedule_after(runtime::Time delay, std::function<void()> fn) override;
  bool cancel(runtime::TimerId id) override { return inner_->cancel(id); }

  /// Skew factor applied to the delay of every schedule while != 1.0.
  void set_skew(double factor) { skew_ = factor; }
  double skew() const { return skew_; }

  /// Escape hatch for the campaign's own bookkeeping (fault window edges):
  /// schedules on the inner clock so plan times are never themselves skewed.
  runtime::Clock& inner() { return *inner_; }

 private:
  runtime::Clock* inner_;
  double skew_ = 1.0;
};

class FaultyTransport final : public runtime::Transport {
 public:
  /// `clock` timestamps the decorator's trace entries (usually the same
  /// clock the inner transport schedules deliveries on).
  FaultyTransport(runtime::Transport& inner, runtime::Clock& clock, std::uint64_t seed)
      : inner_(&inner), clock_(&clock), rng_(seed) {}

  // --- Transport interface (forwarded, with interposition) -------------------
  runtime::NodeId add_node(std::string name, runtime::ReceiveHandler handler = nullptr) override;
  void set_handler(runtime::NodeId node, runtime::ReceiveHandler handler) override;
  const std::string& node_name(runtime::NodeId node) const override {
    return inner_->node_name(node);
  }
  std::size_t node_count() const override { return inner_->node_count(); }

  void connect(runtime::NodeId from, runtime::NodeId to,
               runtime::ChannelConfig config = {}) override {
    inner_->connect(from, to, config);
  }
  void connect_bidirectional(runtime::NodeId a, runtime::NodeId b,
                             runtime::ChannelConfig config = {}) override {
    inner_->connect_bidirectional(a, b, config);
  }
  bool has_channel(runtime::NodeId from, runtime::NodeId to) const override {
    return inner_->has_channel(from, to);
  }

  bool send(runtime::NodeId from, runtime::NodeId to, runtime::MessagePtr message) override;

  void partition_node(runtime::NodeId node, bool partitioned) override;
  void partition_pair(runtime::NodeId a, runtime::NodeId b, bool partitioned) override;
  void set_loss(runtime::NodeId from, runtime::NodeId to, double probability) override {
    inner_->set_loss(from, to, probability);
  }

  runtime::ChannelStats channel_stats(runtime::NodeId from, runtime::NodeId to) const override {
    return inner_->channel_stats(from, to);
  }

  void set_tracing(bool enabled) override { tracing_ = enabled; }
  const std::vector<runtime::TraceEntry>& trace() const override { return trace_; }
  void clear_trace() override { trace_.clear(); }

  void set_observer(obs::TraceRecorder* recorder, obs::MetricsRegistry* metrics) override {
    inner_->set_observer(recorder, metrics);
  }

  // --- fault windows (driven by the campaign at plan-event times) ------------
  /// Extra loss/duplication applied before the message reaches the inner
  /// transport; 0 disables. Validated like every other probability knob.
  void set_extra_loss(double probability);
  void set_extra_duplication(double probability);
  /// Crash: node unreachable AND its in-flight deliveries are dropped.
  /// Clearing it models a restart.
  void set_crashed(runtime::NodeId node, bool crashed);
  bool crashed(runtime::NodeId node) const { return crashed_.contains(node); }

  struct Stats {
    std::uint64_t dropped_loss = 0;
    std::uint64_t dropped_partition = 0;
    std::uint64_t dropped_crash_send = 0;
    std::uint64_t dropped_crash_delivery = 0;
    std::uint64_t duplicated = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void deliver(runtime::NodeId to, runtime::NodeId from, runtime::MessagePtr message);
  bool partitioned(runtime::NodeId from, runtime::NodeId to) const;
  void record(runtime::NodeId from, runtime::NodeId to, const std::string& type, bool delivered,
              runtime::MessagePtr message);

  runtime::Transport* inner_;
  runtime::Clock* clock_;
  util::Rng rng_;
  std::vector<runtime::ReceiveHandler> handlers_;  ///< indexed by NodeId

  double extra_loss_ = 0.0;
  double extra_duplication_ = 0.0;
  std::set<runtime::NodeId> partitioned_nodes_;
  std::set<std::pair<runtime::NodeId, runtime::NodeId>> partitioned_pairs_;  ///< (min, max)
  std::set<runtime::NodeId> crashed_;

  bool tracing_ = false;
  std::vector<runtime::TraceEntry> trace_;
  Stats stats_;
};

class FaultyRuntime final : public runtime::Runtime {
 public:
  explicit FaultyRuntime(runtime::Runtime& inner, std::uint64_t fault_seed)
      : inner_(&inner),
        clock_(inner.clock()),
        transport_(inner.transport(), inner.clock(), fault_seed),
        name_(std::string("faulty+") + std::string(inner.backend_name())) {}

  runtime::Clock& clock() override { return clock_; }
  runtime::Executor& executor() override { return inner_->executor(); }
  runtime::Transport& transport() override { return transport_; }
  std::string_view backend_name() const override { return name_; }

  void advance(runtime::Time duration) override { inner_->advance(duration); }
  bool wait_until(const std::function<bool()>& done, std::size_t max_events) override {
    return inner_->wait_until(done, max_events);
  }

  FaultyClock& faulty_clock() { return clock_; }
  FaultyTransport& faulty_transport() { return transport_; }
  const FaultyTransport& faulty_transport() const { return transport_; }

 private:
  runtime::Runtime* inner_;
  FaultyClock clock_;
  FaultyTransport transport_;
  std::string name_;
};

}  // namespace sa::inject
