#include "inject/faulty_runtime.hpp"

#include <algorithm>
#include <cmath>

namespace sa::inject {

namespace {

runtime::Time skewed(runtime::Time delay, double factor) {
  if (factor == 1.0) return delay;
  const double scaled = std::round(static_cast<double>(delay) * factor);
  return std::max<runtime::Time>(0, static_cast<runtime::Time>(scaled));
}

}  // namespace

runtime::TimerId FaultyClock::schedule_at(runtime::Time t, std::function<void()> fn) {
  if (skew_ == 1.0) return inner_->schedule_at(t, std::move(fn));
  const runtime::Time delay = std::max<runtime::Time>(0, t - inner_->now());
  return inner_->schedule_after(skewed(delay, skew_), std::move(fn));
}

runtime::TimerId FaultyClock::schedule_after(runtime::Time delay, std::function<void()> fn) {
  return inner_->schedule_after(skewed(delay, skew_), std::move(fn));
}

runtime::NodeId FaultyTransport::add_node(std::string name, runtime::ReceiveHandler handler) {
  const runtime::NodeId id = inner_->add_node(std::move(name));
  if (handlers_.size() <= id) handlers_.resize(id + 1);
  handlers_[id] = std::move(handler);
  // Interpose on delivery so crashes can kill in-flight messages and the
  // decorator trace sees exactly what the protocol endpoints see.
  inner_->set_handler(id, [this, id](runtime::NodeId from, runtime::MessagePtr message) {
    deliver(id, from, std::move(message));
  });
  return id;
}

void FaultyTransport::set_handler(runtime::NodeId node, runtime::ReceiveHandler handler) {
  if (handlers_.size() <= node) handlers_.resize(node + 1);
  handlers_[node] = std::move(handler);
}

bool FaultyTransport::send(runtime::NodeId from, runtime::NodeId to,
                           runtime::MessagePtr message) {
  const std::string type = message->type_name();
  if (crashed_.contains(from) || crashed_.contains(to)) {
    ++stats_.dropped_crash_send;
    record(from, to, type, false, nullptr);
    return false;
  }
  if (partitioned(from, to)) {
    ++stats_.dropped_partition;
    record(from, to, type, false, nullptr);
    return false;
  }
  if (extra_loss_ > 0.0 && rng_.next_bool(extra_loss_)) {
    ++stats_.dropped_loss;
    record(from, to, type, false, nullptr);
    return false;
  }
  const bool accepted = inner_->send(from, to, message);
  if (accepted && extra_duplication_ > 0.0 && rng_.next_bool(extra_duplication_)) {
    ++stats_.duplicated;
    inner_->send(from, to, std::move(message));
  }
  return accepted;
}

void FaultyTransport::partition_node(runtime::NodeId node, bool partitioned) {
  if (partitioned) {
    partitioned_nodes_.insert(node);
  } else {
    partitioned_nodes_.erase(node);
  }
}

void FaultyTransport::partition_pair(runtime::NodeId a, runtime::NodeId b, bool partitioned) {
  const auto key = std::minmax(a, b);
  if (partitioned) {
    partitioned_pairs_.insert(key);
  } else {
    partitioned_pairs_.erase(key);
  }
}

void FaultyTransport::set_extra_loss(double probability) {
  extra_loss_ = runtime::checked_probability(probability, "extra loss probability");
}

void FaultyTransport::set_extra_duplication(double probability) {
  extra_duplication_ = runtime::checked_probability(probability, "extra duplication probability");
}

void FaultyTransport::set_crashed(runtime::NodeId node, bool crashed) {
  if (crashed) {
    crashed_.insert(node);
  } else {
    crashed_.erase(node);
  }
}

void FaultyTransport::deliver(runtime::NodeId to, runtime::NodeId from,
                              runtime::MessagePtr message) {
  const std::string type = message->type_name();
  if (crashed_.contains(to)) {
    ++stats_.dropped_crash_delivery;
    record(from, to, type, false, nullptr);
    return;
  }
  record(from, to, type, true, message);
  if (to < handlers_.size() && handlers_[to]) handlers_[to](from, std::move(message));
}

bool FaultyTransport::partitioned(runtime::NodeId from, runtime::NodeId to) const {
  if (partitioned_nodes_.contains(from) || partitioned_nodes_.contains(to)) return true;
  return partitioned_pairs_.contains(std::minmax(from, to));
}

void FaultyTransport::record(runtime::NodeId from, runtime::NodeId to, const std::string& type,
                             bool delivered, runtime::MessagePtr message) {
  if (!tracing_) return;
  trace_.push_back(
      runtime::TraceEntry{clock_->now(), from, to, type, delivered, std::move(message)});
}

}  // namespace sa::inject
