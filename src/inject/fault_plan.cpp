#include "inject/fault_plan.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace sa::inject {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::Loss: return "loss";
    case FaultKind::Duplicate: return "duplicate";
    case FaultKind::PartitionNode: return "partition-node";
    case FaultKind::PartitionPair: return "partition-pair";
    case FaultKind::Crash: return "crash";
    case FaultKind::FailToReset: return "fail-to-reset";
    case FaultKind::TimerSkew: return "timer-skew";
  }
  return "?";
}

FaultKind fault_kind_from_string(std::string_view name) {
  if (name == "loss") return FaultKind::Loss;
  if (name == "duplicate") return FaultKind::Duplicate;
  if (name == "partition-node") return FaultKind::PartitionNode;
  if (name == "partition-pair") return FaultKind::PartitionPair;
  if (name == "crash") return FaultKind::Crash;
  if (name == "fail-to-reset") return FaultKind::FailToReset;
  if (name == "timer-skew") return FaultKind::TimerSkew;
  throw std::invalid_argument("unknown fault kind: " + std::string(name));
}

std::string FaultEvent::describe() const {
  std::ostringstream out;
  out << to_string(kind) << " [" << start << ", " << end << ")";
  switch (kind) {
    case FaultKind::Loss:
    case FaultKind::Duplicate:
      out << " p=" << probability;
      break;
    case FaultKind::TimerSkew:
      out << " x" << factor;
      break;
    default:
      out << " process=" << process;
      break;
  }
  return out.str();
}

void validate(const FaultPlan& plan) {
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& event = plan.events[i];
    const auto fail = [&](const std::string& what) {
      throw std::invalid_argument("fault plan event " + std::to_string(i) + " (" +
                                  std::string(to_string(event.kind)) + "): " + what);
    };
    if (event.start < 0) fail("window start must be >= 0");
    if (event.end <= event.start) fail("window end must be > start");
    if (event.kind == FaultKind::Loss || event.kind == FaultKind::Duplicate) {
      if (std::isnan(event.probability) || event.probability < 0.0 || event.probability > 1.0) {
        fail("probability must be in [0, 1]");
      }
    }
    if (event.kind == FaultKind::TimerSkew) {
      if (!(event.factor > 0.0) || !std::isfinite(event.factor)) {
        fail("skew factor must be positive and finite");
      }
    }
  }
}

std::string to_json(const FaultPlan& plan) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& event = plan.events[i];
    if (i != 0) out << ", ";
    out << "{\"kind\": \"" << to_string(event.kind) << "\", \"start\": " << event.start
        << ", \"end\": " << event.end;
    switch (event.kind) {
      case FaultKind::Loss:
      case FaultKind::Duplicate:
        out << ", \"probability\": " << event.probability;
        break;
      case FaultKind::TimerSkew:
        out << ", \"factor\": " << event.factor;
        break;
      default:
        out << ", \"process\": " << event.process;
        break;
    }
    out << "}";
  }
  out << "]";
  return out.str();
}

FaultPlan plan_from_value(const util::JsonValue& root) {
  using Value = util::JsonValue;
  if (root.type != Value::Type::Array) {
    throw std::runtime_error("fault plan JSON: expected an array of events");
  }
  FaultPlan plan;
  for (const Value& entry : root.array) {
    if (entry.type != Value::Type::Object) {
      throw std::runtime_error("fault plan JSON: event is not an object");
    }
    FaultEvent event;
    const Value* kind = entry.find("kind");
    if (kind == nullptr) throw std::runtime_error("fault plan JSON: event missing kind");
    event.kind = fault_kind_from_string(kind->string);
    const auto number = [&entry](const char* key, double fallback) {
      const Value* v = entry.find(key);
      return v != nullptr ? v->number : fallback;
    };
    event.start = static_cast<runtime::Time>(number("start", 0));
    event.end = static_cast<runtime::Time>(number("end", 0));
    event.process = static_cast<config::ProcessId>(number("process", 0));
    event.probability = number("probability", 0.0);
    event.factor = number("factor", 1.0);
    plan.events.push_back(event);
  }
  validate(plan);
  return plan;
}

FaultPlan plan_from_json(const std::string& text) {
  return plan_from_value(util::parse_json(text, "fault plan JSON"));
}

FaultPlan generate_plan(util::Rng& rng, const PlanShape& shape) {
  FaultPlan plan;
  const std::size_t count = 1 + rng.next_below(std::max<std::size_t>(shape.max_events, 1));
  for (std::size_t i = 0; i < count; ++i) {
    FaultEvent event;
    // Targeted faults only make sense with agents to aim at.
    const std::uint64_t kinds = shape.processes.empty() ? 3 : 7;
    switch (rng.next_below(kinds)) {
      case 0: event.kind = FaultKind::Loss; break;
      case 1: event.kind = FaultKind::Duplicate; break;
      case 2: event.kind = FaultKind::TimerSkew; break;
      case 3: event.kind = FaultKind::PartitionNode; break;
      case 4: event.kind = FaultKind::PartitionPair; break;
      case 5: event.kind = FaultKind::Crash; break;
      case 6: event.kind = FaultKind::FailToReset; break;
    }
    const auto horizon = static_cast<std::uint64_t>(shape.horizon);
    event.start = static_cast<runtime::Time>(rng.next_below(horizon));
    // Short windows race the retry machinery at step boundaries; "permanent"
    // ones outlast the whole §4.4 strategy chain and probe the terminal
    // outcomes (rolled-back-to-source, user-intervention-required).
    const bool permanent = rng.next_bool(shape.permanent_probability);
    const auto span = static_cast<std::uint64_t>(permanent ? shape.max_window : shape.horizon);
    event.end = event.start + 1 + static_cast<runtime::Time>(rng.next_below(span));
    switch (event.kind) {
      case FaultKind::Loss:
        event.probability = shape.max_loss * rng.next_double();
        break;
      case FaultKind::Duplicate:
        event.probability = shape.max_duplicate * rng.next_double();
        break;
      case FaultKind::TimerSkew:
        // Factors in [0.25, 4): half the windows compress time, half stretch.
        event.factor = rng.next_bool(0.5) ? 0.25 + 0.75 * rng.next_double()
                                          : 1.0 + 3.0 * rng.next_double();
        break;
      default:
        event.process = shape.processes[rng.next_below(shape.processes.size())];
        break;
    }
    plan.events.push_back(event);
  }
  return plan;
}

}  // namespace sa::inject
