// FaultPlan: a declarative, JSON-loadable timeline of fault windows the
// campaign runner (inject/campaign.hpp) applies to a live protocol stack
// through the FaultyTransport/FaultyClock decorators (inject/faulty_runtime.hpp).
//
// Each event opens at `start` and closes at `end` (half-open [start, end) in
// virtual microseconds):
//
//   Loss / Duplicate   extra control-message loss / duplication probability
//                      layered on top of whatever the underlying channels do;
//   PartitionNode      every send to or from the target agent's node dropped
//                      (messages already in flight still arrive — a link
//                      failure, the paper's "long-term network failure");
//   PartitionPair      the manager <-> agent pair cut in both directions;
//   Crash              the agent process is gone: sends to/from it are
//                      dropped AND in-flight deliveries die at its doorstep;
//                      the window closing models a restart — the node is
//                      reachable again and retransmissions revive the step;
//   FailToReset        the agent never reaches its safe state (a process
//                      stuck in a critical communication segment, §4.4
//                      fail-to-reset at step k);
//   TimerSkew          every delay scheduled while the window is open is
//                      scaled by `factor`, racing timers against messages.
//
// Plans are pure data: validate() checks semantic constraints, the JSON
// round-trip (to_json / plan_from_json) makes every reproducer replayable,
// and generate_plan() draws a deterministic plan from a seeded Rng so a
// campaign seed fully determines its fault timeline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "config/configuration.hpp"
#include "runtime/time.hpp"
#include "util/rng.hpp"

namespace sa::util {
struct JsonValue;
}  // namespace sa::util

namespace sa::inject {

enum class FaultKind : std::uint8_t {
  Loss,
  Duplicate,
  PartitionNode,
  PartitionPair,
  Crash,
  FailToReset,
  TimerSkew,
};

const char* to_string(FaultKind kind);
/// Throws std::invalid_argument on unknown names.
FaultKind fault_kind_from_string(std::string_view name);

struct FaultEvent {
  FaultKind kind = FaultKind::Loss;
  runtime::Time start = 0;  ///< window opens (virtual µs)
  runtime::Time end = 0;    ///< window closes; must be > start
  /// Target agent (PartitionNode / PartitionPair / Crash / FailToReset);
  /// ignored by Loss / Duplicate / TimerSkew, which apply stack-wide.
  config::ProcessId process = 0;
  double probability = 0.0;  ///< Loss / Duplicate
  double factor = 1.0;       ///< TimerSkew multiplier

  bool operator==(const FaultEvent&) const = default;
  std::string describe() const;
};

struct FaultPlan {
  std::vector<FaultEvent> events;
  bool operator==(const FaultPlan&) const = default;
};

/// Semantic validation: windows ordered (end > start >= 0), probabilities in
/// [0, 1] and non-NaN, skew factors positive and finite. Throws
/// std::invalid_argument naming the offending event.
void validate(const FaultPlan& plan);

std::string to_json(const FaultPlan& plan);
/// Parses and validates; throws std::runtime_error on malformed input,
/// std::invalid_argument on semantic violations.
FaultPlan plan_from_json(const std::string& text);
/// Same, from an already-parsed JSON subtree (a plan embedded in a larger
/// document, e.g. a fuzz artifact).
FaultPlan plan_from_value(const util::JsonValue& value);

/// Knobs for the deterministic plan generator.
struct PlanShape {
  std::size_t max_events = 4;                    ///< 1..max_events drawn
  runtime::Time horizon = runtime::ms(150);      ///< windows start within this
  /// Upper bound for the occasional "permanent" window — long enough to
  /// outlast the §4.4 retry budget, forcing terminal non-success outcomes.
  runtime::Time max_window = runtime::seconds(10);
  double permanent_probability = 0.25;
  std::vector<config::ProcessId> processes;      ///< crash/partition targets
  double max_loss = 0.5;
  double max_duplicate = 0.4;
};

/// Draws a random plan from `rng`. Same Rng state -> same plan, which is how
/// a campaign seed determines its fault timeline.
FaultPlan generate_plan(util::Rng& rng, const PlanShape& shape);

}  // namespace sa::inject
