#include "inject/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "check/explorer.hpp"  // fault_from_string / to_string(ManagerFault)
#include "core/composite.hpp"
#include "core/paper_scenario.hpp"
#include "core/supervisor.hpp"
#include "core/system.hpp"
#include "core/video_testbed.hpp"
#include "inject/faulty_runtime.hpp"
#include "obs/export.hpp"  // json_escape
#include "proto/conformance.hpp"
#include "runtime/sim_runtime.hpp"
#include "util/json.hpp"

namespace sa::inject {

namespace {

/// Distinct seed streams: the plan generator and the fault decorator must not
/// share the SimRuntime's stream, so editing a plan (shrinking) never
/// perturbs the base execution's channel randomness.
constexpr std::uint64_t kPlanStream = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kFaultStream = 0xbf58476d1ce4e5b9ULL;

/// Always-succeeding AdaptableProcess for the protocol-only "paper" scenario;
/// failures come from the fault decorators and agent-level fail-to-reset, so
/// the campaign exercises the drivers, not a scripted stub.
struct StubProcess final : proto::AdaptableProcess {
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override { return true; }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override {}
};

const std::vector<config::ProcessId>& paper_processes() {
  static const std::vector<config::ProcessId> processes{
      core::kServerProcess, core::kHandheldProcess, core::kLaptopProcess};
  return processes;
}

/// Every campaign run keeps the flight recorder armed at full detail over a
/// small drop-oldest ring: when an oracle fires, the most recent protocol
/// events are already in memory and run_* serializes them into
/// RunResult::trace_tail for the artifact dump. Clean runs pay ~a ring of
/// slots and never serialize.
constexpr std::size_t kRecorderSlots = 512;
constexpr std::size_t kTailEvents = 256;

void arm_recorder(obs::TraceRecorder& tracer) {
  tracer.set_capacity(kRecorderSlots);
  tracer.set_enabled(true);
}

void capture_tail(const obs::TraceRecorder& tracer, RunResult& out) {
  if (out.violations.empty()) return;
  std::ostringstream tail;
  obs::write_jsonl(tracer.tail(kTailEvents), tail);
  out.trace_tail = tail.str();
}

/// Wires one plan event's open/close callbacks onto the *inner* (unskewed)
/// clock, so fault windows fire at their literal plan times even while a
/// TimerSkew window is stretching every protocol timer.
void arm_event(const FaultEvent& event, runtime::Clock& clock, FaultyRuntime& frt,
               core::SafeAdaptationSystem& system) {
  FaultyTransport& net = frt.faulty_transport();
  switch (event.kind) {
    case FaultKind::Loss:
      clock.schedule_at(event.start, [&net, p = event.probability] { net.set_extra_loss(p); });
      clock.schedule_at(event.end, [&net] { net.set_extra_loss(0.0); });
      break;
    case FaultKind::Duplicate:
      clock.schedule_at(event.start,
                        [&net, p = event.probability] { net.set_extra_duplication(p); });
      clock.schedule_at(event.end, [&net] { net.set_extra_duplication(0.0); });
      break;
    case FaultKind::TimerSkew:
      clock.schedule_at(event.start,
                        [&frt, f = event.factor] { frt.faulty_clock().set_skew(f); });
      clock.schedule_at(event.end, [&frt] { frt.faulty_clock().set_skew(1.0); });
      break;
    case FaultKind::PartitionNode: {
      const runtime::NodeId node = system.agent_node(event.process);
      clock.schedule_at(event.start, [&net, node] { net.partition_node(node, true); });
      clock.schedule_at(event.end, [&net, node] { net.partition_node(node, false); });
      break;
    }
    case FaultKind::PartitionPair: {
      const runtime::NodeId manager = system.manager_node();
      const runtime::NodeId node = system.agent_node(event.process);
      clock.schedule_at(event.start,
                        [&net, manager, node] { net.partition_pair(manager, node, true); });
      clock.schedule_at(event.end,
                        [&net, manager, node] { net.partition_pair(manager, node, false); });
      break;
    }
    case FaultKind::Crash: {
      const runtime::NodeId node = system.agent_node(event.process);
      clock.schedule_at(event.start, [&net, node] { net.set_crashed(node, true); });
      clock.schedule_at(event.end, [&net, node] { net.set_crashed(node, false); });
      break;
    }
    case FaultKind::FailToReset: {
      proto::AdaptationAgent& agent = system.agent(event.process);
      clock.schedule_at(event.start, [&agent] { agent.set_fail_to_reset(true); });
      clock.schedule_at(event.end, [&agent] { agent.set_fail_to_reset(false); });
      break;
    }
  }
}

runtime::Time plan_horizon(const FaultPlan& plan) {
  runtime::Time horizon = 0;
  for (const FaultEvent& event : plan.events) horizon = std::max(horizon, event.end);
  return horizon;
}

/// Runs every post-termination oracle; each violation is prefixed with its
/// class ("unsafe-rest:", "conformance:", ...) so shrinking can match by
/// failure class instead of exact message text.
void check_oracles(core::SafeAdaptationSystem& system, const FaultyRuntime& frt,
                   const config::Configuration& source, const config::Configuration& target,
                   const std::optional<proto::AdaptationResult>& result,
                   std::vector<std::string>& violations) {
  const auto& registry = system.registry();
  const auto violate = [&violations](const std::string& what) { violations.push_back(what); };

  // -- the system rests only in safe configurations ---------------------------
  const config::Configuration resting = system.current_configuration();
  if (!system.invariants().satisfied(resting)) {
    violate("unsafe-rest: terminal configuration " + resting.describe(registry) +
            " violates an invariant");
  }

  if (result.has_value()) {
    if (!(result->final_config == resting)) {
      violate("unsafe-rest: manager rests at " + resting.describe(registry) +
              " but reported final configuration " + result->final_config.describe(registry));
    }

    // -- terminal outcome in the §4.4 legal set -------------------------------
    const auto outcome = result->outcome;
    const std::string outcome_name(proto::to_string(outcome));
    if (outcome == proto::AdaptationOutcome::Success) {
      if (!(result->final_config == target)) {
        violate("illegal-outcome: success but final configuration is " +
                result->final_config.describe(registry) + ", not the target");
      }
      for (const config::ProcessId process : paper_processes()) {
        const proto::AgentState state = system.agent(process).state();
        if (state != proto::AgentState::Running) {
          violate("illegal-outcome: success but agent " + std::to_string(process) +
                  " is not running");
        }
      }
    } else if (outcome == proto::AdaptationOutcome::NoPathFound ||
               outcome == proto::AdaptationOutcome::RolledBackToSource) {
      if (!(result->final_config == source)) {
        violate("illegal-outcome: " + outcome_name + " but final configuration is " +
                result->final_config.describe(registry) + ", not the source");
      }
    }
    // UserInterventionRequired / StalledAfterResume park at any safe
    // configuration; the unsafe-rest oracle above already covers them.

    // -- committed step log replays from source to the terminal config --------
    const auto& table = system.action_table();
    config::Configuration replayed = source;
    bool replay_ok = true;
    for (const proto::StepRecord& record : system.manager().step_log()) {
      if (!record.committed) continue;
      const auto id = table.find(record.action_name);
      if (!id) {
        violate("step-replay: committed step names unknown action " + record.action_name);
        replay_ok = false;
        break;
      }
      const actions::AdaptiveAction& action = table.action(*id);
      if (!action.applicable_to(replayed)) {
        violate("step-replay: committed action " + record.action_name +
                " is not applicable to " + replayed.describe(registry));
        replay_ok = false;
        break;
      }
      replayed = action.apply(replayed);
      if (!system.invariants().satisfied(replayed)) {
        violate("step-replay: committed action " + record.action_name +
                " passes through unsafe configuration " + replayed.describe(registry));
      }
    }
    if (replay_ok && !(replayed == result->final_config)) {
      violate("step-replay: committed steps replay to " + replayed.describe(registry) +
              " but the manager reported " + result->final_config.describe(registry));
    }
  }

  // -- delivered control trace conforms to the Fig. 1 / Fig. 2 automata -------
  const proto::ConformanceChecker checker(system.manager_node());
  for (const proto::ConformanceViolation& v :
       checker.check(frt.faulty_transport().trace())) {
    violate("conformance: " + v.description);
  }

  // -- obs metrics agree with the manager's own accounting --------------------
  const double histogram = system.metrics().histogram_family_sum("sa_blocked_time_us");
  const auto reported = static_cast<double>(system.manager().total_blocked_reported());
  if (histogram != reported) {
    violate("metrics-mismatch: sa_blocked_time_us sums to " + std::to_string(histogram) +
            " but the manager reported " + std::to_string(reported) + "us blocked");
  }
}

RunResult run_paper(std::uint64_t seed, const FaultPlan& plan, const CampaignOptions& options,
                    core::PaperActionSet action_set) {
  runtime::SimRuntime sim(seed);
  FaultyRuntime frt(sim, seed ^ kFaultStream);

  core::SystemConfig config;
  config.seed = seed;
  core::SafeAdaptationSystem system(frt, config);
  arm_recorder(system.tracer());
  core::configure_paper_system(system, action_set);
  StubProcess server, handheld, laptop;
  system.attach_process(core::kServerProcess, server, /*stage=*/0);
  system.attach_process(core::kHandheldProcess, handheld, /*stage=*/1);
  system.attach_process(core::kLaptopProcess, laptop, /*stage=*/1);
  system.finalize();

  const config::Configuration source = core::paper_source(system.registry());
  const config::Configuration target = core::paper_target(system.registry());
  system.set_current_configuration(source);
  if (options.fault != proto::ManagerFault::None) system.manager().inject_fault(options.fault);

  frt.faulty_transport().set_tracing(true);
  for (const FaultEvent& event : plan.events) arm_event(event, sim.clock(), frt, system);

  RunResult out;
  std::optional<proto::AdaptationResult> result;
  try {
    result = system.adapt_and_wait(target, options.max_events);
    out.outcome = proto::to_string(result->outcome);
  } catch (const std::runtime_error& e) {
    out.outcome = "did-not-terminate";
    out.violations.push_back(std::string("non-termination: ") + e.what());
  }
  // Drain past the last fault window plus a grace period so trailing
  // retransmissions, duplicates, and window-close callbacks all land before
  // the oracles read the terminal state.
  const runtime::Time horizon = plan_horizon(plan) + runtime::ms(20);
  if (horizon > sim.clock().now()) frt.advance(horizon - sim.clock().now());

  check_oracles(system, frt, source, target, result, out.violations);
  capture_tail(system.tracer(), out);
  return out;
}

/// Socket backend: the same seed -> plan -> run -> oracles contract, but the
/// run is core::run_distributed_paper — real OS processes over loopback
/// sockets. Crash windows become the supervisor's kill -9 / re-exec; every
/// other window is armed in-transport by the nodes themselves. The oracles
/// mirror check_oracles over the supervisor's report and merged wall-clock
/// trace; metrics-mismatch does not apply (there is no cross-process obs
/// registry to compare against), and infra failures surface as the
/// "supervisor:" violation class.
RunResult run_socket_paper(std::uint64_t seed, const FaultPlan& plan,
                           const CampaignOptions& options) {
  core::DistributedOptions dopt;
  dopt.seed = seed;
  dopt.sa_node = options.sa_node;
  if (options.fault != proto::ManagerFault::None) {
    dopt.manager_fault = check::to_string(options.fault);
  }
  FaultPlan node_plan;
  for (const FaultEvent& event : plan.events) {
    if (event.kind == FaultKind::Crash) {
      dopt.crashes.push_back(core::CrashWindow{
          event.start, event.end,
          core::distributed_paper_nodes()[static_cast<std::size_t>(event.process) + 1]});
    } else {
      node_plan.events.push_back(event);
    }
  }
  if (!node_plan.events.empty()) dopt.plan_json = to_json(node_plan);
  dopt.max_wait = runtime::seconds(30);

  const core::DistributedReport report = core::run_distributed_paper(dopt);

  RunResult out;
  out.outcome = report.outcome.empty() ? "did-not-terminate" : report.outcome;
  const auto violate = [&out](const std::string& what) { out.violations.push_back(what); };
  for (const std::string& error : report.infra_errors) violate(error);

  const core::PaperScenario scenario = core::make_paper_scenario();
  const auto& registry = *scenario.registry;
  const config::Configuration source = scenario.source;
  const config::Configuration target = scenario.target;

  if (report.outcome.empty()) {
    violate("non-termination: the distributed manager never reported an outcome");
  } else {
    const config::Configuration resting(report.final_config_bits);

    // -- the system rests only in safe configurations -------------------------
    if (!scenario.invariants->satisfied(resting)) {
      violate("unsafe-rest: terminal configuration " + resting.describe(registry) +
              " violates an invariant");
    }

    // -- terminal outcome in the §4.4 legal set -------------------------------
    if (report.outcome == "did-not-terminate") {
      violate("non-termination: the adaptation did not terminate within the real-time cap");
    } else if (report.outcome == proto::to_string(proto::AdaptationOutcome::Success)) {
      if (!(resting == target)) {
        violate("illegal-outcome: success but final configuration is " +
                resting.describe(registry) + ", not the target");
      }
      for (const auto& [name, state] : report.agent_states) {
        if (state != "running") {
          violate("illegal-outcome: success but agent " + name + " is " + state);
        }
      }
    } else if (report.outcome == proto::to_string(proto::AdaptationOutcome::NoPathFound) ||
               report.outcome ==
                   proto::to_string(proto::AdaptationOutcome::RolledBackToSource)) {
      if (!(resting == source)) {
        violate("illegal-outcome: " + report.outcome + " but final configuration is " +
                resting.describe(registry) + ", not the source");
      }
    }

    // -- committed step log replays from source to the terminal config --------
    config::Configuration replayed = source;
    bool replay_ok = true;
    for (const std::string& name : report.committed_actions) {
      const auto id = scenario.actions->find(name);
      if (!id) {
        violate("step-replay: committed step names unknown action " + name);
        replay_ok = false;
        break;
      }
      const actions::AdaptiveAction& action = scenario.actions->action(*id);
      if (!action.applicable_to(replayed)) {
        violate("step-replay: committed action " + name + " is not applicable to " +
                replayed.describe(registry));
        replay_ok = false;
        break;
      }
      replayed = action.apply(replayed);
      if (!scenario.invariants->satisfied(replayed)) {
        violate("step-replay: committed action " + name +
                " passes through unsafe configuration " + replayed.describe(registry));
      }
    }
    if (replay_ok && !(replayed == resting)) {
      violate("step-replay: committed steps replay to " + replayed.describe(registry) +
              " but the manager reported " + resting.describe(registry));
    }
  }

  // -- merged cross-process trace conforms to the Fig. 1 / Fig. 2 automata ----
  const proto::ConformanceChecker checker(runtime::NodeId{0});
  for (const proto::ConformanceViolation& v : checker.check(report.merged_trace)) {
    violate("conformance: " + v.description);
  }
  return out;
}

RunResult run_video(std::uint64_t seed, const FaultPlan& plan, const CampaignOptions& options) {
  runtime::SimRuntime sim(seed);
  FaultyRuntime frt(sim, seed ^ kFaultStream);

  core::TestbedConfig config;
  config.system.seed = seed;
  config.runtime = &frt;
  core::VideoTestbed testbed(config);
  core::SafeAdaptationSystem& system = testbed.system();
  arm_recorder(system.tracer());

  const config::Configuration source = testbed.source();
  const config::Configuration target = testbed.target();
  if (options.fault != proto::ManagerFault::None) system.manager().inject_fault(options.fault);

  frt.faulty_transport().set_tracing(true);
  for (const FaultEvent& event : plan.events) arm_event(event, sim.clock(), frt, system);

  testbed.start_stream();
  RunResult out;
  std::optional<proto::AdaptationResult> result;
  try {
    result = system.adapt_and_wait(target, options.max_events);
    out.outcome = proto::to_string(result->outcome);
  } catch (const std::runtime_error& e) {
    out.outcome = "did-not-terminate";
    out.violations.push_back(std::string("non-termination: ") + e.what());
  }
  testbed.stop_stream();
  const runtime::Time horizon = plan_horizon(plan) + runtime::ms(20);
  if (horizon > sim.clock().now()) frt.advance(horizon - sim.clock().now());

  check_oracles(system, frt, source, target, result, out.violations);

  // -- adaptation invisible to the application --------------------------------
  if (testbed.total_intact() == 0) {
    // Liveness guard for the oracle itself: zero decoded packets means the
    // stream never played and "no corruption" would be vacuous.
    out.violations.push_back("video-corruption: no intact packets decoded; stream never played");
  }
  if (testbed.total_corrupted() != 0 || testbed.total_undecodable() != 0) {
    out.violations.push_back("video-corruption: clients decoded " +
                             std::to_string(testbed.total_corrupted()) + " corrupted and " +
                             std::to_string(testbed.total_undecodable()) +
                             " undecodable packets");
  }
  if (result.has_value() && result->outcome == proto::AdaptationOutcome::Success &&
      !(testbed.installed_configuration() == result->final_config)) {
    out.violations.push_back(
        "video-corruption: installed filter chains are " +
        testbed.installed_configuration().describe(system.registry()) +
        " but the manager reported " + result->final_config.describe(system.registry()));
  }
  capture_tail(system.tracer(), out);
  return out;
}

/// The "fleet" scenario: an 8-cluster composite under a 3-level manager tree
/// (lanes_per_leaf = 2, fanout = 2 -> 4 leaves, 2 interior nodes, 1 root) on
/// the fault decorators. FaultEvent.process is REINTERPRETED as an index into
/// coordinator_links() (mod link count): PartitionPair cuts that parent<->child
/// link, PartitionNode / Crash / FailToReset take out the link's child
/// coordinator node. Coordinators do not retransmit commits, so a cut link
/// orphans its subtree's shards at the commit timeout — the §4.4 contract the
/// oracles then verify per shard: orphaned shards must have rolled back
/// cleanly (or committed locally, with only the report lost), never rest
/// half-adapted, and never block a disjoint shard's commit.
RunResult run_fleet(std::uint64_t seed, const FaultPlan& plan, const CampaignOptions& options) {
  runtime::SimRuntime sim(seed);
  FaultyRuntime frt(sim, seed ^ kFaultStream);

  constexpr std::size_t kClusters = 8;
  core::CompositeConfig config;
  config.seed = seed;
  config.topology.lanes_per_leaf = 2;
  config.topology.fanout = 2;
  // Short enough that a permanent partition orphans within the event budget;
  // long enough that a healthy subtree always reports first.
  config.topology.commit_timeout = runtime::seconds(2);
  core::CompositeAdaptationSystem system(frt, config);
  arm_recorder(system.tracer());

  std::vector<std::unique_ptr<StubProcess>> processes;
  for (std::size_t c = 0; c < kClusters; ++c) {
    const std::string s = std::to_string(c);
    system.registry().add("X" + s, static_cast<config::ProcessId>(c));
    system.registry().add("Y" + s, static_cast<config::ProcessId>(c));
  }
  for (std::size_t c = 0; c < kClusters; ++c) {
    const std::string s = std::to_string(c);
    system.add_invariant("one" + s, "one(X" + s + ", Y" + s + ")");
    system.add_action("swap" + s, {"X" + s}, {"Y" + s}, 10);
    system.add_action("back" + s, {"Y" + s}, {"X" + s}, 10);
    processes.push_back(std::make_unique<StubProcess>());
    system.attach_process(static_cast<config::ProcessId>(c), *processes.back(), 0);
  }
  system.finalize();

  config::Configuration source, target;
  for (std::size_t c = 0; c < kClusters; ++c) {
    source = source.with(static_cast<config::ComponentId>(2 * c));
    target = target.with(static_cast<config::ComponentId>(2 * c + 1));
  }
  system.set_current_configuration(source);
  if (options.fault != proto::ManagerFault::None) {
    for (std::size_t s = 0; s < system.shard_count(); ++s) {
      system.shard_manager(s).inject_fault(options.fault);
    }
  }

  frt.faulty_transport().set_tracing(true);
  FaultyTransport& net = frt.faulty_transport();
  const auto& links = system.coordinator_links();
  for (const FaultEvent& event : plan.events) {
    const auto [parent, child] = links[event.process % links.size()];
    switch (event.kind) {
      case FaultKind::Loss:
        sim.clock().schedule_at(event.start,
                                [&net, p = event.probability] { net.set_extra_loss(p); });
        sim.clock().schedule_at(event.end, [&net] { net.set_extra_loss(0.0); });
        break;
      case FaultKind::Duplicate:
        sim.clock().schedule_at(event.start,
                                [&net, p = event.probability] { net.set_extra_duplication(p); });
        sim.clock().schedule_at(event.end, [&net] { net.set_extra_duplication(0.0); });
        break;
      case FaultKind::TimerSkew:
        sim.clock().schedule_at(event.start,
                                [&frt, f = event.factor] { frt.faulty_clock().set_skew(f); });
        sim.clock().schedule_at(event.end, [&frt] { frt.faulty_clock().set_skew(1.0); });
        break;
      case FaultKind::PartitionPair:
        sim.clock().schedule_at(event.start, [&net, parent, child] {
          net.partition_pair(parent, child, true);
        });
        sim.clock().schedule_at(event.end, [&net, parent, child] {
          net.partition_pair(parent, child, false);
        });
        break;
      case FaultKind::PartitionNode:
      case FaultKind::FailToReset:
        sim.clock().schedule_at(event.start,
                                [&net, child] { net.partition_node(child, true); });
        sim.clock().schedule_at(event.end,
                                [&net, child] { net.partition_node(child, false); });
        break;
      case FaultKind::Crash:
        sim.clock().schedule_at(event.start, [&net, child] { net.set_crashed(child, true); });
        sim.clock().schedule_at(event.end, [&net, child] { net.set_crashed(child, false); });
        break;
    }
  }

  RunResult out;
  std::optional<core::CompositeResult> result;
  try {
    result = system.adapt_and_wait(target, options.max_events);
    out.outcome = result->success ? "success"
                                  : (result->orphaned != 0 ? "orphaned" : "partial-failure");
  } catch (const std::runtime_error& e) {
    out.outcome = "did-not-terminate";
    out.violations.push_back(std::string("non-termination: ") + e.what());
  }
  const runtime::Time horizon = plan_horizon(plan) + runtime::ms(20);
  if (horizon > sim.clock().now()) frt.advance(horizon - sim.clock().now());

  const auto violate = [&out](const std::string& what) { out.violations.push_back(what); };

  // -- every cluster rests safely: exactly one of {X_i, Y_i} ------------------
  const config::Configuration resting = system.current_configuration();
  for (std::size_t c = 0; c < kClusters; ++c) {
    const bool x = resting.contains(static_cast<config::ComponentId>(2 * c));
    const bool y = resting.contains(static_cast<config::ComponentId>(2 * c + 1));
    if (x == y) {
      violate("unsafe-rest: cluster " + std::to_string(c) + " rests with X=" +
              std::to_string(x) + " Y=" + std::to_string(y) +
              " (must hold exactly one)");
    }
  }

  // -- reported shard fates match where the cluster actually rests ------------
  // Orphans are exempt: their subtree may have finished after the report was
  // lost, so only the unsafe-rest oracle constrains them.
  if (result.has_value()) {
    for (const proto::ShardOutcome& outcome : result->outcomes) {
      if (!outcome.reported) continue;
      const auto c = static_cast<std::size_t>(outcome.shard);
      const bool at_target = resting.contains(static_cast<config::ComponentId>(2 * c + 1));
      if (outcome.result.outcome == proto::AdaptationOutcome::Success && !at_target) {
        violate("illegal-outcome: shard " + std::to_string(c) +
                " reported success but rests at its source");
      }
      if ((outcome.result.outcome == proto::AdaptationOutcome::RolledBackToSource ||
           outcome.result.outcome == proto::AdaptationOutcome::NoPathFound) &&
          at_target) {
        violate("illegal-outcome: shard " + std::to_string(c) + " reported " +
                std::string(proto::to_string(outcome.result.outcome)) +
                " but rests at its target");
      }
    }
  }

  // -- the epoch pipeline drained: no coordinator is wedged mid-commit --------
  for (std::size_t i = 0; i < system.coordinator_count(); ++i) {
    if (!system.coordinator(i).idle()) {
      violate("non-termination: coordinator " + std::to_string(i) +
              " is not idle after the drain (phase " +
              std::string(proto::to_string(system.coordinator(i).phase())) + ")");
    }
  }

  // -- delivered trace is a run of the automata AND the epoch rules -----------
  const proto::ConformanceChecker checker(system.manager_nodes());
  for (const proto::ConformanceViolation& v : checker.check(net.trace())) {
    violate("conformance: " + v.description);
  }

  // -- obs metrics agree with the managers' own accounting --------------------
  double reported_blocked = 0;
  for (std::size_t s = 0; s < system.shard_count(); ++s) {
    reported_blocked += static_cast<double>(system.shard_manager(s).total_blocked_reported());
  }
  const double histogram = system.metrics().histogram_family_sum("sa_blocked_time_us");
  if (histogram != reported_blocked) {
    violate("metrics-mismatch: sa_blocked_time_us sums to " + std::to_string(histogram) +
            " but the managers reported " + std::to_string(reported_blocked) + "us blocked");
  }
  capture_tail(system.tracer(), out);
  return out;
}

/// Failure class = the prefix before the first ':' of a violation string.
std::set<std::string> violation_classes(const std::vector<std::string>& violations) {
  std::set<std::string> classes;
  for (const std::string& v : violations) classes.insert(v.substr(0, v.find(':')));
  return classes;
}

bool intersects(const std::set<std::string>& a, const std::set<std::string>& b) {
  return std::ranges::any_of(a, [&b](const std::string& x) { return b.contains(x); });
}

}  // namespace

FaultPlan plan_for_seed(const std::string& scenario, std::uint64_t seed) {
  util::Rng rng(seed ^ kPlanStream);
  PlanShape shape;
  shape.processes = paper_processes();
  if (scenario == "video") {
    // The testbed streams while adapting; keep extra data-plane loss gentler
    // so runs stay inside the event budget.
    shape.max_loss = 0.3;
  }
  if (scenario == "fleet") {
    // Targets index the 6 coordinator links of the 8-cluster tree (4 leaves,
    // 2 interior, 1 root), not agent processes. The epoch pipeline drains in
    // ~20ms of virtual time, so windows must open inside that span to hit a
    // commit in flight (the default 150ms horizon would mostly miss).
    shape.processes = {0, 1, 2, 3, 4, 5};
    shape.horizon = runtime::ms(15);
  }
  return generate_plan(rng, shape);
}

FaultPlan socket_plan_for_seed(std::uint64_t seed) {
  util::Rng rng(seed ^ kPlanStream);
  PlanShape shape;
  shape.processes = paper_processes();
  // Wall-clock windows on real processes: the horizon covers the manager's
  // settle delay plus the adaptation itself, and "permanent" windows cap at
  // 2s — enough to outlast a phase's retransmission budget without turning a
  // CI campaign into minutes of sleeping.
  shape.horizon = runtime::ms(300);
  shape.max_window = runtime::seconds(2);
  return generate_plan(rng, shape);
}

RunResult run_one(const std::string& scenario, std::uint64_t seed, const FaultPlan& plan,
                  const CampaignOptions& options) {
  validate(plan);
  if (options.backend == "socket") {
    if (scenario != "paper") {
      throw std::invalid_argument("socket backend supports the paper scenario only");
    }
    return run_socket_paper(seed, plan, options);
  }
  if (options.backend != "sim") {
    throw std::invalid_argument("unknown campaign backend: " + options.backend);
  }
  if (scenario == "paper") return run_paper(seed, plan, options, core::PaperActionSet::All);
  if (scenario == "paper-combined") {
    // Pair/triple Table-2 actions span processes, so steps have >= 2 involved
    // agents — the only shape where a resume-early mutation can fire.
    return run_paper(seed, plan, options, core::PaperActionSet::CombinedOnly);
  }
  if (scenario == "video") return run_video(seed, plan, options);
  if (scenario == "fleet") return run_fleet(seed, plan, options);
  throw std::invalid_argument("unknown campaign scenario: " + scenario);
}

FaultPlan shrink_plan(const std::string& scenario, std::uint64_t seed, FaultPlan plan,
                      const CampaignOptions& options,
                      const std::vector<std::string>& original_violations) {
  const std::set<std::string> target_classes = violation_classes(original_violations);
  const auto reproduces = [&](const FaultPlan& candidate) {
    const RunResult result = run_one(scenario, seed, candidate, options);
    return intersects(violation_classes(result.violations), target_classes);
  };

  // Pass 1: drop whole events, rescanning after every successful removal.
  bool removed = true;
  while (removed) {
    removed = false;
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      FaultPlan candidate = plan;
      candidate.events.erase(candidate.events.begin() + static_cast<std::ptrdiff_t>(i));
      if (reproduces(candidate)) {
        plan = std::move(candidate);
        removed = true;
        break;
      }
    }
  }

  // Pass 2: halve each surviving window until it stops reproducing.
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    while (plan.events[i].end - plan.events[i].start >= 2) {
      FaultPlan candidate = plan;
      FaultEvent& event = candidate.events[i];
      event.end = event.start + (event.end - event.start) / 2;
      if (!reproduces(candidate)) break;
      plan = std::move(candidate);
    }
  }
  return plan;
}

CampaignSummary run_campaign(const CampaignOptions& options) {
  if (options.seed_end < options.seed_begin) {
    throw std::invalid_argument("campaign seed range is reversed");
  }
  const std::uint64_t count = options.seed_end - options.seed_begin;
  std::vector<RunReport> reports(count);
  std::atomic<std::uint64_t> next{0};

  // src/check/engine's worker-pool shape: one atomic cursor, self-contained
  // work items, results landing in per-seed slots so the summary is
  // bit-identical for any thread count.
  const auto worker = [&] {
    while (true) {
      const std::uint64_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      const std::uint64_t seed = options.seed_begin + index;
      RunReport& report = reports[index];
      report.seed = seed;
      report.plan = options.backend == "socket" ? socket_plan_for_seed(seed)
                                                : plan_for_seed(options.scenario, seed);
      RunResult result = run_one(options.scenario, seed, report.plan, options);
      // Socket runs are real-time and not byte-deterministic, so a shrink
      // search would chase a moving target; keep the generated plan.
      if (!result.violations.empty() && options.shrink && options.backend != "socket") {
        report.plan =
            shrink_plan(options.scenario, seed, report.plan, options, result.violations);
        result = run_one(options.scenario, seed, report.plan, options);
      }
      report.outcome = std::move(result.outcome);
      report.violations = std::move(result.violations);
      report.trace_tail = std::move(result.trace_tail);
    }
  };

  const std::size_t threads =
      std::max<std::size_t>(1, std::min<std::size_t>(options.threads, count));
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  CampaignSummary summary;
  summary.runs = count;
  for (RunReport& report : reports) {
    ++summary.outcomes[report.outcome];
    if (!report.violations.empty()) summary.failures.push_back(std::move(report));
  }
  return summary;
}

std::string to_json(const FuzzArtifact& artifact) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"scenario\": \"" << obs::json_escape(artifact.scenario) << "\",\n";
  out << "  \"backend\": \"" << obs::json_escape(artifact.backend) << "\",\n";
  out << "  \"seed\": " << artifact.seed << ",\n";
  out << "  \"fault\": \"" << check::to_string(artifact.fault) << "\",\n";
  out << "  \"max_events\": " << artifact.max_events << ",\n";
  out << "  \"plan\": " << to_json(artifact.plan) << ",\n";
  out << "  \"violations\": [";
  for (std::size_t i = 0; i < artifact.violations.size(); ++i) {
    if (i != 0) out << ", ";
    out << '"' << obs::json_escape(artifact.violations[i]) << '"';
  }
  out << "]\n}\n";
  return out.str();
}

FuzzArtifact artifact_from_json(const std::string& text) {
  using Value = util::JsonValue;
  const Value root = util::parse_json(text, "fuzz artifact JSON");
  if (root.type != Value::Type::Object) {
    throw std::runtime_error("fuzz artifact JSON: not an object");
  }
  const auto require = [&root](const char* key) -> const Value& {
    const Value* v = root.find(key);
    if (v == nullptr) {
      throw std::runtime_error(std::string("fuzz artifact JSON: missing \"") + key + '"');
    }
    return *v;
  };
  FuzzArtifact artifact;
  artifact.scenario = require("scenario").string;
  if (const Value* backend = root.find("backend")) artifact.backend = backend->string;
  artifact.seed = static_cast<std::uint64_t>(require("seed").number);
  if (const Value* fault = root.find("fault")) {
    artifact.fault = check::fault_from_string(fault->string);
  }
  if (const Value* budget = root.find("max_events")) {
    artifact.max_events = static_cast<std::size_t>(budget->number);
  }
  artifact.plan = plan_from_value(require("plan"));
  if (const Value* violations = root.find("violations")) {
    for (const Value& v : violations->array) artifact.violations.push_back(v.string);
  }
  return artifact;
}

}  // namespace sa::inject
