// The fault-injection campaign: seeds -> plans -> full-stack runs -> oracles
// -> shrunk, replayable reproducers.
//
// Where the model checker (src/check) exhausts interleavings of the sans-I/O
// cores, the campaign attacks the layer the checker cannot reach: the real
// drivers (proto::AdaptationManager / AdaptationAgent), the real timer and
// transport machinery, and the assembled core::SafeAdaptationSystem — by
// running the paper's §5 scenario on a deterministic SimRuntime wrapped in
// the FaultyTransport/FaultyClock decorators and checking after every run:
//
//   unsafe-rest        the system came to rest in a configuration violating
//                      an invariant, or manager bookkeeping disagrees with
//                      the terminal configuration;
//   illegal-outcome    the terminal outcome is outside the §4.4 legal set for
//                      what actually happened (Success must land on the
//                      target with every agent running, NoPathFound /
//                      RolledBackToSource must land on the source, ...);
//   step-replay        replaying the committed step log from the source does
//                      not reproduce the terminal configuration, or passes
//                      through an unsafe intermediate;
//   conformance        the delivered control-message trace is not a run of
//                      the Figure 1 / Figure 2 automata;
//   metrics-mismatch   the sa_blocked_time_us histogram disagrees with the
//                      manager's total blocked time;
//   video-corruption   (video scenario) a client decoded a corrupted or
//                      undecodable packet — adaptation was visible to the
//                      application;
//   non-termination    the adaptation did not terminate within the event
//                      budget.
//
// Everything is a pure function of (scenario, seed, plan, options): the same
// seed produces the same plan, the same run, and byte-identical violations
// regardless of --threads, which is what makes shrinking and --replay work.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "inject/fault_plan.hpp"
#include "proto/core/manager_core.hpp"

namespace sa::inject {

struct CampaignOptions {
  std::string scenario = "paper";  ///< "paper" (stub processes) | "video" (Fig. 3 testbed)
  /// "sim" runs the scenario in-process on SimRuntime behind the fault
  /// decorators; "socket" (scenario "paper" only) runs it as real OS
  /// processes over SocketTransport via core::run_distributed_paper — Crash
  /// events become real kill -9 + re-exec, partitions become in-transport
  /// drops, and the oracles run over the supervisor's merged report. Socket
  /// runs are real-time and not byte-deterministic, so shrinking is skipped
  /// and the metrics-mismatch oracle (which needs the in-process obs
  /// registry) does not apply.
  std::string backend = "sim";
  /// Socket backend: path to the sa_node binary (empty = discover next to
  /// the calling executable / $SA_NODE).
  std::string sa_node;
  std::uint64_t seed_begin = 0;
  std::uint64_t seed_end = 16;  ///< exclusive
  std::size_t threads = 1;
  std::size_t max_events = 2'000'000;  ///< per-run simulator event budget
  /// Mutation gate: injects a deliberate protocol bug into the manager so a
  /// campaign can prove its oracles catch a broken driver stack.
  proto::ManagerFault fault = proto::ManagerFault::None;
  bool shrink = true;  ///< shrink failing plans to a minimal reproducer
};

/// One run's verdict. `outcome` is proto::to_string(AdaptationOutcome) or
/// "did-not-terminate"; `violations` empty means every oracle passed.
struct RunResult {
  std::string outcome;
  std::vector<std::string> violations;
  /// Flight-recorder tail (JSONL, most recent events first to last) captured
  /// when a violation fired — the post-mortem window sa_fuzz dumps next to
  /// the artifact. Deterministic: same run, same tail. Empty on clean runs.
  std::string trace_tail;
};

/// Report for one campaign seed; `plan` is the shrunk plan when shrinking ran
/// (`trace_tail` then belongs to the shrunk reproducer's run).
struct RunReport {
  std::uint64_t seed = 0;
  FaultPlan plan;
  std::string outcome;
  std::vector<std::string> violations;
  std::string trace_tail;
};

struct CampaignSummary {
  std::uint64_t runs = 0;
  std::vector<RunReport> failures;  ///< seed order, independent of thread count
  std::map<std::string, std::uint64_t> outcomes;  ///< terminal outcome -> count
};

/// The plan a campaign seed deterministically expands to (same seed -> same
/// plan; independent of the Rng streams used inside the run itself).
FaultPlan plan_for_seed(const std::string& scenario, std::uint64_t seed);

/// Socket-backend variant: same deterministic seed -> plan expansion, but
/// every window is wall-clock time on real processes, so horizons stay short
/// and "permanent" windows cap at a couple of seconds — long enough to beat
/// the retry budget, short enough for a CI campaign.
FaultPlan socket_plan_for_seed(std::uint64_t seed);

/// Builds the scenario on a fresh SimRuntime(seed) behind the fault
/// decorators, applies `plan`, drives the adaptation to termination, and runs
/// every oracle. Pure: depends only on the arguments.
RunResult run_one(const std::string& scenario, std::uint64_t seed, const FaultPlan& plan,
                  const CampaignOptions& options);

/// Greedy shrink: repeatedly drop whole events, then halve window durations,
/// keeping any candidate that still produces a violation of one of the
/// original classes (the prefix before ':'). Returns the minimal plan found.
FaultPlan shrink_plan(const std::string& scenario, std::uint64_t seed, FaultPlan plan,
                      const CampaignOptions& options,
                      const std::vector<std::string>& original_violations);

/// Fans seeds [seed_begin, seed_end) across `threads` workers (each run is
/// self-contained, so results are bit-identical for any thread count) and
/// shrinks failures when options.shrink is set.
CampaignSummary run_campaign(const CampaignOptions& options);

/// Self-contained, serializable reproducer for one failing run — everything
/// --replay needs plus the violations it must reproduce byte-for-byte.
struct FuzzArtifact {
  std::string scenario;
  std::string backend = "sim";  ///< "sim" | "socket"
  std::uint64_t seed = 0;
  proto::ManagerFault fault = proto::ManagerFault::None;
  std::size_t max_events = 2'000'000;
  FaultPlan plan;
  std::vector<std::string> violations;
};

std::string to_json(const FuzzArtifact& artifact);
/// Throws std::runtime_error on malformed input.
FuzzArtifact artifact_from_json(const std::string& text);

}  // namespace sa::inject
