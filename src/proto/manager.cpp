#include "proto/manager.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "util/log.hpp"

namespace sa::proto {

namespace {

obs::StepCoords coords_of(const StepRef& ref) {
  return obs::StepCoords{ref.request_id, ref.plan, ref.step_index, ref.attempt};
}

}  // namespace

AdaptationManager::AdaptationManager(runtime::Runtime& rt, runtime::NodeId node,
                                     const config::InvariantSet& invariants,
                                     const actions::ActionTable& table, ManagerConfig config)
    : clock_(&rt.clock()),
      executor_(&rt.executor()),
      transport_(&rt.transport()),
      node_(node),
      table_(&table),
      // Detection-and-setup phase steps 1-2 (§4.2): safe configuration set + SAG.
      safe_configs_(config::enumerate_safe_pruned(invariants)),
      sag_(std::make_unique<actions::SafeAdaptationGraph>(table, safe_configs_)),
      planner_(std::make_unique<actions::PathPlanner>(*sag_)),
      core_(invariants, table, *planner_, config) {
  transport_->set_handler(node_, [this](runtime::NodeId from, runtime::MessagePtr message) {
    on_message(from, std::move(message));
  });
}

// Detach before members die; on the threaded backend this waits out any
// in-flight delivery so a late ack cannot land in a half-destroyed manager.
AdaptationManager::~AdaptationManager() { transport_->set_handler(node_, nullptr); }

void AdaptationManager::set_observability(obs::TraceRecorder* recorder,
                                          obs::MetricsRegistry* metrics) {
  std::lock_guard lock(mutex_);
  recorder_ = recorder;
  metrics_ = metrics;
}

bool AdaptationManager::tracing_enabled() const { return recorder_->enabled(); }

bool AdaptationManager::recorder_wants(obs::EventKind kind) const {
  return recorder_->wants(kind);
}

void AdaptationManager::trace_event(obs::Event event) {
  event.time = clock_->now();
  if (event.track == obs::kNoTrack) event.track = obs::kManagerTrack;
  recorder_->record(std::move(event));
}

void AdaptationManager::observe_blocked(config::ProcessId process, runtime::Time blocked) {
  total_blocked_reported_ += blocked;
  if (metrics_ != nullptr) {
    metrics_
        ->histogram("sa_blocked_time_us", obs::default_time_buckets_us(),
                    {{"process", std::to_string(process)}},
                    "Per-step blocked time reported by each process")
        .observe(static_cast<double>(blocked));
  }
}

void AdaptationManager::register_agent(config::ProcessId process, runtime::NodeId agent_node,
                                       int stage) {
  std::lock_guard lock(mutex_);
  agents_[process] = AgentEndpoint{agent_node, stage};
  core_.register_agent(process, stage);
}

std::optional<config::ProcessId> AdaptationManager::process_of_node(runtime::NodeId node) const {
  for (const auto& [process, endpoint] : agents_) {
    if (endpoint.node == node) return process;
  }
  return std::nullopt;
}

void AdaptationManager::request_adaptation(config::Configuration target,
                                           CompletionHandler handler,
                                           std::uint64_t cause_span) {
  std::lock_guard lock(mutex_);
  if (core_.busy()) throw std::logic_error("adaptation request while another is in flight");
  handler_ = std::move(handler);
  dispatch(ManagerInput::AdaptCommand{std::move(target), cause_span});
}

void AdaptationManager::enqueue_adaptation(config::Configuration target,
                                           CompletionHandler handler,
                                           std::uint64_t cause_span) {
  std::lock_guard lock(mutex_);
  if (!core_.busy() && pending_requests_.empty()) {
    request_adaptation(std::move(target), std::move(handler), cause_span);
    return;
  }
  pending_requests_.push_back(PendingRequest{std::move(target), std::move(handler), cause_span});
}

void AdaptationManager::on_message(runtime::NodeId from, runtime::MessagePtr message) {
  std::lock_guard lock(mutex_);
  const auto process = process_of_node(from);
  if (!process) {
    SA_WARN("manager") << "message from unregistered node " << from;
    return;
  }
  const auto* proto = dynamic_cast<const ProtoMessage*>(message.get());
  if (!proto) {
    SA_WARN("manager") << "non-protocol message " << message->type_name();
    return;
  }
  if (!(proto->step == core_.current_ref())) {
    SA_DEBUG("manager") << "stale " << message->type_name() << " " << proto->step.describe()
                        << " (expected " << core_.current_ref().describe() << ")";
    return;
  }
  dispatch(ManagerInput::MessageDelivered{*process, std::move(message)});
}

void AdaptationManager::dispatch(ManagerInput::AdaptCommand cmd) {
  apply(core_.step(ManagerInput{clock_->now(), std::move(cmd)}));
}

void AdaptationManager::dispatch(ManagerInput::MessageDelivered delivered) {
  apply(core_.step(ManagerInput{clock_->now(), std::move(delivered)}));
}

void AdaptationManager::dispatch(ManagerInput::TimerFired fired) {
  apply(core_.step(ManagerInput{clock_->now(), fired}));
}

void AdaptationManager::apply(const std::vector<Output>& outputs) {
  for (const Output& out : outputs) {
    switch (out.kind) {
      case OutputKind::Send:
        transport_->send(node_, agents_.at(out.process).node, out.message);
        break;
      case OutputKind::ArmTimer:
        apply_arm_timer(out);
        break;
      case OutputKind::DisarmTimer:
        apply_disarm_timer(out);
        break;
      case OutputKind::Transition:
        if (tracing(obs::EventKind::ManagerPhase)) {
          obs::Event e;
          e.kind = obs::EventKind::ManagerPhase;
          e.name = std::string(to_string(out.phase_to));
          e.detail = std::string(to_string(out.phase_from));
          e.coords.request = out.request_id;
          trace_event(std::move(e));
        }
        break;
      case OutputKind::StepStarted: {
        StepRecord record;
        record.ref = out.ref;
        record.action_name = out.name;
        record.started = clock_->now();
        step_log_.push_back(record);
        if (tracing(obs::EventKind::StepStarted)) {
          obs::Event e;
          e.kind = obs::EventKind::StepStarted;
          e.coords = coords_of(out.ref);
          e.name = out.name;
          e.detail = out.detail;
          e.value = out.value;
          e.has_value = true;
          trace_event(std::move(e));
        }
        SA_INFO("manager") << "step " << out.ref.describe() << ": " << out.name << " ("
                           << out.detail << "), " << static_cast<std::size_t>(out.value)
                           << " process(es)";
        break;
      }
      case OutputKind::StepCommitted: {
        step_log_.back().committed = true;
        step_log_.back().finished = clock_->now();
        if (tracing(obs::EventKind::StepCommitted)) {
          obs::Event e;
          e.kind = obs::EventKind::StepCommitted;
          e.coords = coords_of(out.ref);
          e.name = out.name;
          if (out.flag) e.detail = "stalled";
          e.value = static_cast<double>(step_log_.back().finished - step_log_.back().started);
          e.has_value = true;
          trace_event(std::move(e));
        }
        if (metrics_ != nullptr) {
          metrics_->counter("sa_steps_total", {{"fate", "committed"}}, "Adaptation steps by fate")
              .inc();
          if (!out.flag) {
            metrics_
                ->histogram("sa_step_duration_us", obs::default_time_buckets_us(), {},
                            "Wall time from reset sent to step committed")
                .observe(
                    static_cast<double>(step_log_.back().finished - step_log_.back().started));
          }
        }
        if (!out.flag) {
          SA_INFO("manager") << "step " << out.ref.step_index << " committed; now at "
                             << out.config.describe(table_->registry());
        }
        break;
      }
      case OutputKind::StepRolledBack:
        step_log_.back().rolled_back = true;
        step_log_.back().finished = clock_->now();
        if (tracing(obs::EventKind::StepRolledBack)) {
          obs::Event e;
          e.kind = obs::EventKind::StepRolledBack;
          e.coords = coords_of(out.ref);
          e.name = out.name;
          e.value = static_cast<double>(step_log_.back().finished - step_log_.back().started);
          e.has_value = true;
          trace_event(std::move(e));
        }
        if (metrics_ != nullptr) {
          metrics_->counter("sa_steps_total", {{"fate", "rolled_back"}}, "Adaptation steps by fate")
              .inc();
        }
        break;
      case OutputKind::Outcome:
        apply_outcome(out);
        break;
      case OutputKind::AdaptationRequested:
        if (tracing(obs::EventKind::AdaptationRequested)) {
          obs::Event e;
          e.kind = obs::EventKind::AdaptationRequested;
          e.coords.request = out.request_id;
          e.name = out.name;
          e.detail = out.detail;
          e.span = span_of(node_, SpanKind::Request, out.request_id);
          e.parent_span = out.parent_span;
          trace_event(std::move(e));
        }
        break;
      case OutputKind::PlanComputed:
        if (tracing(obs::EventKind::PlanComputed)) {
          obs::Event e;
          e.kind = obs::EventKind::PlanComputed;
          e.coords = coords_of(out.ref);
          e.name = out.name;
          e.detail = out.detail;
          e.value = out.value;
          e.has_value = true;
          trace_event(std::move(e));
        }
        if (metrics_ != nullptr) {
          metrics_
              ->histogram("sa_plan_length", {1, 2, 3, 4, 5, 6, 8, 10, 15, 20}, {},
                          "Steps per computed adaptation path")
              .observe(out.extra);
          metrics_
              ->histogram("sa_plan_cost", {1, 2, 5, 10, 20, 50, 100, 200, 500}, {},
                          "Total action cost per computed adaptation path")
              .observe(out.value);
        }
        SA_INFO("manager") << (out.ref.plan == 0 ? "MAP: " : "replanned path: ") << out.detail
                           << " (cost " << out.value << ")";
        break;
      case OutputKind::Retransmission:
        if (metrics_ != nullptr) {
          metrics_
              ->counter("sa_retransmissions_total", {{"phase", out.label}},
                        "Retransmission rounds by protocol phase")
              .inc();
        }
        break;
      case OutputKind::ResetAcked:
        if (metrics_ != nullptr && !step_log_.empty()) {
          // Reset latency: reset sent (step start) -> reset done received.
          metrics_
              ->histogram("sa_reset_latency_us", obs::default_time_buckets_us(),
                          {{"process", std::to_string(out.process)}},
                          "Reset round-trip latency per process")
              .observe(static_cast<double>(clock_->now() - step_log_.back().started));
        }
        break;
      case OutputKind::BlockedObserved:
        observe_blocked(out.process, out.blocked);
        if (tracing(obs::EventKind::BlockedWindow)) {
          // The blocked window belongs to the agent's track; its parent is
          // the owning adaptation request's span, so critical-path analysis
          // can attribute per-process disruption to the tree node above it.
          obs::Event e;
          e.kind = obs::EventKind::BlockedWindow;
          e.track = static_cast<std::int64_t>(out.process);
          e.coords = coords_of(out.ref);
          e.span = span_of(node_, SpanKind::Request, out.request_id);
          e.value = static_cast<double>(out.blocked);
          e.has_value = true;
          trace_event(std::move(e));
        }
        break;
      default:
        break;  // agent-only kinds never appear in manager output
    }
  }
}

void AdaptationManager::apply_arm_timer(const Output& out) {
  if (tracing(obs::EventKind::TimerArmed)) {
    obs::Event e;
    e.kind = obs::EventKind::TimerArmed;
    e.coords = coords_of(out.ref);
    e.name = out.label;
    e.value = static_cast<double>(out.delay);
    e.has_value = true;
    trace_event(std::move(e));
  }
  // The generation guard defuses stale fires on the threaded backend: once
  // the timer thread has dequeued the callback, cancel() returns false and
  // the callback will still run, but it then observes a newer generation and
  // bails instead of clobbering a re-armed timer or firing in the wrong
  // phase. On the simulator cancel() always wins, so the guard never trips.
  const char* label = out.label;
  if (out.timer == ManagerTimer::Protocol) {
    const std::uint64_t gen = ++timer_gen_;
    timer_ = clock_->schedule_after(out.delay, [this, gen, label] {
      std::lock_guard lock(mutex_);
      if (gen != timer_gen_) return;  // superseded or disarmed after dequeue
      timer_ = 0;
      if (tracing(obs::EventKind::TimerFired)) {
        obs::Event e;
        e.kind = obs::EventKind::TimerFired;
        e.coords = coords_of(core_.current_ref());
        e.name = label;
        trace_event(std::move(e));
      }
      dispatch(ManagerInput::TimerFired{ManagerTimer::Protocol});
    });
  } else {
    const std::uint64_t gen = ++stage_delay_gen_;
    stage_delay_event_ = clock_->schedule_after(out.delay, [this, gen, label] {
      std::lock_guard lock(mutex_);
      if (gen != stage_delay_gen_) return;  // disarmed after dequeue
      stage_delay_event_ = 0;
      if (tracing(obs::EventKind::TimerFired)) {
        obs::Event e;
        e.kind = obs::EventKind::TimerFired;
        e.coords = coords_of(core_.current_ref());
        e.name = label;
        trace_event(std::move(e));
      }
      dispatch(ManagerInput::TimerFired{ManagerTimer::StageDelay});
    });
  }
}

void AdaptationManager::apply_disarm_timer(const Output& out) {
  runtime::TimerId& id = out.timer == ManagerTimer::Protocol ? timer_ : stage_delay_event_;
  if (id != 0) {
    clock_->cancel(id);
    id = 0;
    if (tracing(obs::EventKind::TimerCancelled)) {
      obs::Event e;
      e.kind = obs::EventKind::TimerCancelled;
      e.coords = coords_of(out.ref);
      e.name = out.label;
      trace_event(std::move(e));
    }
  }
  // Invalidate a fire that cancel() was too late to stop.
  if (out.timer == ManagerTimer::Protocol) {
    ++timer_gen_;
  } else {
    ++stage_delay_gen_;
  }
}

void AdaptationManager::apply_outcome(const Output& out) {
  const AdaptationResult& result = out.result;
  if (tracing(obs::EventKind::AdaptationFinished)) {
    obs::Event e;
    e.kind = obs::EventKind::AdaptationFinished;
    e.coords.request = out.request_id;
    e.name = out.name;
    e.detail = result.detail;
    e.span = span_of(node_, SpanKind::Request, out.request_id);
    e.parent_span = out.parent_span;
    e.value = static_cast<double>(result.finished - result.started);
    e.has_value = true;
    trace_event(std::move(e));
  }
  if (metrics_ != nullptr) {
    metrics_
        ->counter("sa_adaptations_total", {{"outcome", std::string(to_string(result.outcome))}},
                  "Completed adaptation requests by outcome")
        .inc();
    metrics_
        ->histogram("sa_adaptation_latency_us", obs::default_time_buckets_us(), {},
                    "End-to-end adaptation latency (request to completion)")
        .observe(static_cast<double>(result.finished - result.started));
  }
  SA_INFO("manager") << "request " << out.request_id << " finished: "
                     << to_string(result.outcome) << " (" << result.detail << ")";
  if (handler_) {
    auto handler = std::move(handler_);
    handler_ = nullptr;
    handler(result);
  }
  if (!pending_requests_.empty() && !core_.busy()) {
    // Start the next queued request from a fresh task so the caller's
    // completion handler never observes a half-started successor.
    executor_->post([this] {
      std::lock_guard lock(mutex_);
      if (core_.busy() || pending_requests_.empty()) return;
      PendingRequest next = std::move(pending_requests_.front());
      pending_requests_.pop_front();
      request_adaptation(std::move(next.target), std::move(next.handler), next.cause_span);
    });
  }
}

}  // namespace sa::proto
