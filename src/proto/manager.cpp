#include "proto/manager.hpp"

#include <algorithm>
#include <climits>
#include <set>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "util/log.hpp"

namespace sa::proto {

namespace {

obs::StepCoords coords_of(const StepRef& ref) {
  return obs::StepCoords{ref.request_id, ref.plan, ref.step_index, ref.attempt};
}

}  // namespace

std::string_view to_string(ManagerPhase phase) {
  switch (phase) {
    case ManagerPhase::Running: return "running";
    case ManagerPhase::Preparing: return "preparing";
    case ManagerPhase::Adapting: return "adapting";
    case ManagerPhase::Adapted: return "adapted";
    case ManagerPhase::Resuming: return "resuming";
    case ManagerPhase::Resumed: return "resumed";
    case ManagerPhase::RollingBack: return "rolling-back";
  }
  return "?";
}

std::string_view to_string(AdaptationOutcome outcome) {
  switch (outcome) {
    case AdaptationOutcome::Success: return "success";
    case AdaptationOutcome::NoPathFound: return "no-path-found";
    case AdaptationOutcome::RolledBackToSource: return "rolled-back-to-source";
    case AdaptationOutcome::UserInterventionRequired: return "user-intervention-required";
    case AdaptationOutcome::StalledAfterResume: return "stalled-after-resume";
  }
  return "?";
}

AdaptationManager::AdaptationManager(runtime::Runtime& rt, runtime::NodeId node,
                                     const config::InvariantSet& invariants,
                                     const actions::ActionTable& table, ManagerConfig config)
    : clock_(&rt.clock()),
      executor_(&rt.executor()),
      transport_(&rt.transport()),
      node_(node),
      invariants_(&invariants),
      table_(&table),
      config_(config) {
  // Detection-and-setup phase steps 1-2 (§4.2): safe configuration set + SAG.
  safe_configs_ = config::enumerate_safe_pruned(invariants);
  sag_ = std::make_unique<actions::SafeAdaptationGraph>(table, safe_configs_);
  planner_ = std::make_unique<actions::PathPlanner>(*sag_);
  transport_->set_handler(node_, [this](runtime::NodeId from, runtime::MessagePtr message) {
    on_message(from, std::move(message));
  });
}

AdaptationManager::~AdaptationManager() = default;

void AdaptationManager::set_observability(obs::TraceRecorder* recorder,
                                          obs::MetricsRegistry* metrics) {
  std::lock_guard lock(mutex_);
  recorder_ = recorder;
  metrics_ = metrics;
}

bool AdaptationManager::tracing_enabled() const { return recorder_->enabled(); }

void AdaptationManager::trace_event(obs::Event event) {
  event.time = clock_->now();
  if (event.track == obs::kNoTrack) event.track = obs::kManagerTrack;
  recorder_->record(std::move(event));
}

void AdaptationManager::set_phase(ManagerPhase next) {
  if (phase_ == next) return;
  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::ManagerPhase;
    e.name = std::string(to_string(next));
    e.detail = std::string(to_string(phase_));
    e.coords.request = request_id_;
    trace_event(std::move(e));
  }
  phase_ = next;
}

void AdaptationManager::observe_blocked(config::ProcessId process, runtime::Time blocked) {
  total_blocked_reported_ += blocked;
  if (metrics_ != nullptr) {
    metrics_
        ->histogram("sa_blocked_time_us", obs::default_time_buckets_us(),
                    {{"process", std::to_string(process)}},
                    "Per-step blocked time reported by each process")
        .observe(static_cast<double>(blocked));
  }
}

void AdaptationManager::register_agent(config::ProcessId process, runtime::NodeId agent_node,
                                       int stage) {
  std::lock_guard lock(mutex_);
  agents_[process] = AgentEndpoint{agent_node, stage};
}

std::optional<config::ProcessId> AdaptationManager::process_of_node(runtime::NodeId node) const {
  for (const auto& [process, endpoint] : agents_) {
    if (endpoint.node == node) return process;
  }
  return std::nullopt;
}

LocalCommand AdaptationManager::command_for(config::ProcessId process) const {
  const actions::AdaptiveAction& action = table_->action(plan_.steps[step_index_].action);
  const auto& registry = table_->registry();
  LocalCommand command;
  for (const config::ComponentId id : action.removes.components(registry.size())) {
    if (registry.process(id) == process) command.remove.push_back(registry.name(id));
  }
  for (const config::ComponentId id : action.adds.components(registry.size())) {
    if (registry.process(id) == process) command.add.push_back(registry.name(id));
  }
  return command;
}

void AdaptationManager::send_to(config::ProcessId process, runtime::MessagePtr message) {
  transport_->send(node_, agents_.at(process).node, std::move(message));
}

void AdaptationManager::request_adaptation(config::Configuration target,
                                           CompletionHandler handler) {
  std::lock_guard lock(mutex_);
  if (busy()) throw std::logic_error("adaptation request while another is in flight");
  request_id_ = next_request_id_++;
  source_ = current_;
  target_ = target;
  handler_ = std::move(handler);
  result_ = AdaptationResult{};
  result_.started = clock_->now();
  returning_to_source_ = false;
  alternatives_tried_ = 0;
  plan_counter_ = 0;

  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::AdaptationRequested;
    e.coords.request = request_id_;
    e.name = "adaptation";
    e.detail = current_.describe(table_->registry()) + " -> " + target.describe(table_->registry());
    trace_event(std::move(e));
  }
  if (current_ == target) {
    finish(AdaptationOutcome::Success, "already at target configuration");
    return;
  }
  set_phase(ManagerPhase::Preparing);
  const auto plan = planner_->minimum_path(current_, target);
  if (!plan || plan->empty()) {
    finish(AdaptationOutcome::NoPathFound, "no safe adaptation path from " +
                                               current_.describe(table_->registry()) + " to " +
                                               target.describe(table_->registry()));
    return;
  }
  SA_INFO("manager") << "MAP: " << plan->action_names(*table_) << " (cost " << plan->total_cost
                     << ")";
  start_plan(*plan);
}

void AdaptationManager::start_plan(actions::AdaptationPlan plan) {
  plan_ = std::move(plan);
  plan_number_ = plan_counter_++;
  step_index_ = 0;
  step_attempt_ = 0;
  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::PlanComputed;
    e.coords = obs::StepCoords{request_id_, plan_number_, 0, 0};
    e.name = "map";
    e.detail = plan_.action_names(*table_);
    e.value = plan_.total_cost;
    e.has_value = true;
    trace_event(std::move(e));
  }
  if (metrics_ != nullptr) {
    metrics_
        ->histogram("sa_plan_length", {1, 2, 3, 4, 5, 6, 8, 10, 15, 20}, {},
                    "Steps per computed adaptation path")
        .observe(static_cast<double>(plan_.steps.size()));
    metrics_
        ->histogram("sa_plan_cost", {1, 2, 5, 10, 20, 50, 100, 200, 500}, {},
                    "Total action cost per computed adaptation path")
        .observe(plan_.total_cost);
  }
  execute_current_step();
}

void AdaptationManager::execute_current_step() {
  const actions::PlanStep& step = plan_.steps[step_index_];
  const actions::AdaptiveAction& action = table_->action(step.action);
  const auto& registry = table_->registry();

  involved_ = action.affected_processes(registry, registry.size());
  for (const config::ProcessId process : involved_) {
    if (!agents_.contains(process)) {
      throw std::logic_error("no agent registered for process " + std::to_string(process));
    }
  }
  // Stage ordering + drain flags: upstream agents quiesce first; agents
  // beyond the step's minimum involved stage drain their input queues so the
  // global safe condition (receivers processed everything senders emitted)
  // holds before any in-action.
  min_stage_ = agents_.at(involved_.front()).stage;
  int max_stage = min_stage_;
  for (const config::ProcessId process : involved_) {
    min_stage_ = std::min(min_stage_, agents_.at(process).stage);
    max_stage = std::max(max_stage, agents_.at(process).stage);
  }
  drain_flag_.clear();
  for (const config::ProcessId process : involved_) {
    drain_flag_[process] = max_stage > min_stage_ && agents_.at(process).stage > min_stage_;
  }

  reset_acked_.clear();
  adapt_acked_.clear();
  resume_acked_.clear();
  rollback_acked_.clear();
  resume_sent_ = false;
  retries_left_ = config_.message_retries;
  current_stage_ = min_stage_;

  StepRecord record;
  record.ref = current_ref();
  record.action_name = action.name;
  record.started = clock_->now();
  step_log_.push_back(record);

  set_phase(ManagerPhase::Adapting);
  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::StepStarted;
    e.coords = coords_of(record.ref);
    e.name = action.name;
    e.detail = action.operation_text(registry);
    e.value = static_cast<double>(involved_.size());
    e.has_value = true;
    trace_event(std::move(e));
  }
  SA_INFO("manager") << "step " << record.ref.describe() << ": " << action.name << " ("
                     << action.operation_text(registry) << "), " << involved_.size()
                     << " process(es)";
  send_stage_resets(current_stage_);
  arm_timer(config_.reset_timeout, "reset-timeout");
}

void AdaptationManager::send_stage_resets(int stage) {
  for (const config::ProcessId process : involved_) {
    if (agents_.at(process).stage != stage) continue;
    auto msg = std::make_shared<ResetMsg>();
    msg->step = current_ref();
    msg->command = command_for(process);
    msg->drain = drain_flag_.at(process);
    msg->sole_participant = involved_.size() == 1;
    send_to(process, std::move(msg));
  }
}

void AdaptationManager::maybe_advance_stage() {
  // All resets of stages <= current acknowledged?
  for (const config::ProcessId process : involved_) {
    if (agents_.at(process).stage <= current_stage_ && !reset_acked_.contains(process)) return;
  }
  // Find the next involved stage.
  int next_stage = INT_MAX;
  for (const config::ProcessId process : involved_) {
    const int stage = agents_.at(process).stage;
    if (stage > current_stage_) next_stage = std::min(next_stage, stage);
  }
  if (next_stage == INT_MAX) return;  // no further stages
  // Let in-flight application data reach the downstream processes before
  // asking them to drain and block.
  current_stage_ = next_stage;
  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::TimerArmed;
    e.coords = coords_of(current_ref());
    e.name = "inter-stage-delay";
    e.value = static_cast<double>(config_.inter_stage_delay);
    e.has_value = true;
    trace_event(std::move(e));
  }
  const std::uint64_t gen = ++stage_delay_gen_;
  stage_delay_event_ =
      clock_->schedule_after(config_.inter_stage_delay, [this, next_stage, gen] {
        std::lock_guard lock(mutex_);
        if (gen != stage_delay_gen_) return;  // disarmed after dequeue
        stage_delay_event_ = 0;
        if (tracing()) {
          obs::Event e;
          e.kind = obs::EventKind::TimerFired;
          e.coords = coords_of(current_ref());
          e.name = "inter-stage-delay";
          trace_event(std::move(e));
        }
        send_stage_resets(next_stage);
        arm_timer(config_.reset_timeout, "reset-timeout");
      });
}

void AdaptationManager::on_message(runtime::NodeId from, runtime::MessagePtr message) {
  std::lock_guard lock(mutex_);
  const auto process = process_of_node(from);
  if (!process) {
    SA_WARN("manager") << "message from unregistered node " << from;
    return;
  }
  const auto* proto = dynamic_cast<const ProtoMessage*>(message.get());
  if (!proto) {
    SA_WARN("manager") << "non-protocol message " << message->type_name();
    return;
  }
  const StepRef expected = current_ref();
  if (!(proto->step == expected)) {
    SA_DEBUG("manager") << "stale " << message->type_name() << " " << proto->step.describe()
                        << " (expected " << expected.describe() << ")";
    return;
  }
  if (const auto* m = dynamic_cast<const ResetDoneMsg*>(message.get())) {
    on_reset_done(*process, *m);
  } else if (const auto* m = dynamic_cast<const AdaptDoneMsg*>(message.get())) {
    on_adapt_done(*process, *m);
  } else if (const auto* m = dynamic_cast<const ResumeDoneMsg*>(message.get())) {
    on_resume_done(*process, *m);
  } else if (const auto* m = dynamic_cast<const RollbackDoneMsg*>(message.get())) {
    on_rollback_done(*process, *m);
  }
}

void AdaptationManager::on_reset_done(config::ProcessId process, const ResetDoneMsg&) {
  if (phase_ != ManagerPhase::Adapting) return;
  if (reset_acked_.insert(process).second && metrics_ != nullptr && !step_log_.empty()) {
    // Reset latency: reset sent (step start) -> reset done received.
    metrics_
        ->histogram("sa_reset_latency_us", obs::default_time_buckets_us(),
                    {{"process", std::to_string(process)}},
                    "Reset round-trip latency per process")
        .observe(static_cast<double>(clock_->now() - step_log_.back().started));
  }
  maybe_advance_stage();
}

void AdaptationManager::on_adapt_done(config::ProcessId process, const AdaptDoneMsg&) {
  if (phase_ != ManagerPhase::Adapting) return;
  reset_acked_.insert(process);  // adapt done implies the reset completed
  adapt_acked_.insert(process);
  if (adapt_acked_.size() == involved_.size()) {
    set_phase(ManagerPhase::Adapted);
    enter_resuming();
  }
}

void AdaptationManager::enter_resuming() {
  set_phase(ManagerPhase::Resuming);
  resume_sent_ = true;
  retries_left_ = config_.message_retries + config_.run_to_completion_retries;
  for (const config::ProcessId process : involved_) {
    auto msg = std::make_shared<ResumeMsg>();
    msg->step = current_ref();
    send_to(process, std::move(msg));
  }
  arm_timer(config_.resume_timeout, "resume-timeout");
}

void AdaptationManager::on_resume_done(config::ProcessId process, const ResumeDoneMsg& msg) {
  if (phase_ == ManagerPhase::Adapting) {
    // A sole participant resumed proactively and its adapt done was lost:
    // the resume done subsumes it.
    reset_acked_.insert(process);
    adapt_acked_.insert(process);
    resume_acked_.insert(process);
    observe_blocked(process, msg.blocked_for);
    if (adapt_acked_.size() == involved_.size()) {
      set_phase(ManagerPhase::Adapted);
      enter_resuming();
      resume_acked_.insert(process);
      if (resume_acked_.size() == involved_.size()) commit_step();
    }
    return;
  }
  if (phase_ != ManagerPhase::Resuming) return;
  if (resume_acked_.insert(process).second) observe_blocked(process, msg.blocked_for);
  if (resume_acked_.size() == involved_.size()) commit_step();
}

void AdaptationManager::commit_step() {
  disarm_timer();
  set_phase(ManagerPhase::Resumed);
  current_ = plan_.steps[step_index_].to;
  ++result_.steps_committed;
  step_log_.back().committed = true;
  step_log_.back().finished = clock_->now();
  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::StepCommitted;
    e.coords = coords_of(step_log_.back().ref);
    e.name = step_log_.back().action_name;
    e.value = static_cast<double>(step_log_.back().finished - step_log_.back().started);
    e.has_value = true;
    trace_event(std::move(e));
  }
  if (metrics_ != nullptr) {
    metrics_->counter("sa_steps_total", {{"fate", "committed"}}, "Adaptation steps by fate").inc();
    metrics_
        ->histogram("sa_step_duration_us", obs::default_time_buckets_us(), {},
                    "Wall time from reset sent to step committed")
        .observe(static_cast<double>(step_log_.back().finished - step_log_.back().started));
  }
  SA_INFO("manager") << "step " << step_index_ << " committed; now at "
                     << current_.describe(table_->registry());
  if (step_index_ + 1 < plan_.steps.size()) {
    ++step_index_;
    step_attempt_ = 0;
    execute_current_step();
    return;
  }
  if (returning_to_source_) {
    finish(AdaptationOutcome::RolledBackToSource, "returned to source configuration");
  } else {
    finish(AdaptationOutcome::Success, "target configuration reached");
  }
}

void AdaptationManager::arm_timer(runtime::Time timeout, const char* label) {
  disarm_timer();
  timer_label_ = label;
  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::TimerArmed;
    e.coords = coords_of(current_ref());
    e.name = label;
    e.value = static_cast<double>(timeout);
    e.has_value = true;
    trace_event(std::move(e));
  }
  // The generation guard defuses stale fires on the threaded backend: once
  // the timer thread has dequeued the callback, cancel() returns false and
  // the callback will still run, but it then observes a newer generation and
  // bails instead of clobbering a re-armed timer_ or firing in the wrong
  // phase. On the simulator cancel() always wins, so the guard never trips.
  const std::uint64_t gen = ++timer_gen_;
  timer_ = clock_->schedule_after(timeout, [this, gen, label] {
    std::lock_guard lock(mutex_);
    if (gen != timer_gen_) return;  // superseded or disarmed after dequeue
    timer_ = 0;
    if (tracing()) {
      obs::Event e;
      e.kind = obs::EventKind::TimerFired;
      e.coords = coords_of(current_ref());
      e.name = label;
      trace_event(std::move(e));
    }
    on_timeout();
  });
}

void AdaptationManager::disarm_timer() {
  if (timer_ != 0) {
    clock_->cancel(timer_);
    timer_ = 0;
    if (tracing()) {
      obs::Event e;
      e.kind = obs::EventKind::TimerCancelled;
      e.coords = coords_of(current_ref());
      e.name = timer_label_;
      trace_event(std::move(e));
    }
  }
  ++timer_gen_;  // invalidate a fire that cancel() was too late to stop
  if (stage_delay_event_ != 0) {
    clock_->cancel(stage_delay_event_);
    stage_delay_event_ = 0;
    if (tracing()) {
      obs::Event e;
      e.kind = obs::EventKind::TimerCancelled;
      e.coords = coords_of(current_ref());
      e.name = "inter-stage-delay";
      trace_event(std::move(e));
    }
  }
  ++stage_delay_gen_;
}

void AdaptationManager::on_timeout() {
  switch (phase_) {
    case ManagerPhase::Adapting: {
      if (retries_left_ > 0) {
        --retries_left_;
        ++result_.message_retries;
        if (metrics_ != nullptr) {
          metrics_
              ->counter("sa_retransmissions_total", {{"phase", "adapting"}},
                        "Retransmission rounds by protocol phase")
              .inc();
        }
        // Retransmit resets to every triggered stage with an agent that has
        // not yet finished its in-action; agents re-acknowledge idempotently.
        std::set<int> stages_to_resend;
        for (const config::ProcessId process : involved_) {
          if (agents_.at(process).stage <= current_stage_ && !adapt_acked_.contains(process)) {
            stages_to_resend.insert(agents_.at(process).stage);
          }
        }
        for (const int stage : stages_to_resend) send_stage_resets(stage);
        maybe_advance_stage();
        arm_timer(config_.reset_timeout, "reset-timeout");
        return;
      }
      SA_WARN("manager") << "step " << step_index_ << " timed out before resume; aborting";
      begin_rollback();
      return;
    }
    case ManagerPhase::Resuming: {
      if (retries_left_ > 0) {
        --retries_left_;
        ++result_.message_retries;
        if (metrics_ != nullptr) {
          metrics_
              ->counter("sa_retransmissions_total", {{"phase", "resuming"}},
                        "Retransmission rounds by protocol phase")
              .inc();
        }
        const StepRef ref = current_ref();
        for (const config::ProcessId process : involved_) {
          if (!resume_acked_.contains(process)) {
            auto msg = std::make_shared<ResumeMsg>();
            msg->step = ref;
            send_to(process, std::move(msg));
          }
        }
        arm_timer(config_.resume_timeout, "resume-timeout");
        return;
      }
      // §4.4: after the first resume the adaptation must run to completion;
      // if acknowledgements never arrive the structure is adapted everywhere
      // (all adapt done collected) so the step is committed, but the operator
      // is told the protocol stalled.
      current_ = plan_.steps[step_index_].to;
      ++result_.steps_committed;
      step_log_.back().committed = true;
      step_log_.back().finished = clock_->now();
      if (tracing()) {
        obs::Event e;
        e.kind = obs::EventKind::StepCommitted;
        e.coords = coords_of(step_log_.back().ref);
        e.name = step_log_.back().action_name;
        e.detail = "stalled";
        e.value = static_cast<double>(step_log_.back().finished - step_log_.back().started);
        e.has_value = true;
        trace_event(std::move(e));
      }
      if (metrics_ != nullptr) {
        metrics_->counter("sa_steps_total", {{"fate", "committed"}}, "Adaptation steps by fate")
            .inc();
      }
      finish(AdaptationOutcome::StalledAfterResume,
             "resume unacknowledged by " +
                 std::to_string(involved_.size() - resume_acked_.size()) + " agent(s)");
      return;
    }
    case ManagerPhase::RollingBack: {
      if (retries_left_ > 0) {
        --retries_left_;
        ++result_.message_retries;
        if (metrics_ != nullptr) {
          metrics_
              ->counter("sa_retransmissions_total", {{"phase", "rolling-back"}},
                        "Retransmission rounds by protocol phase")
              .inc();
        }
        const StepRef ref = current_ref();
        for (const config::ProcessId process : involved_) {
          if (!rollback_acked_.contains(process)) {
            auto msg = std::make_shared<RollbackMsg>();
            msg->step = ref;
            send_to(process, std::move(msg));
          }
        }
        arm_timer(config_.rollback_timeout, "rollback-timeout");
        return;
      }
      finish(AdaptationOutcome::UserInterventionRequired,
             "rollback unacknowledged; agent states unknown");
      return;
    }
    default:
      SA_WARN("manager") << "timeout in unexpected phase " << to_string(phase_);
  }
}

void AdaptationManager::begin_rollback() {
  set_phase(ManagerPhase::RollingBack);
  disarm_timer();
  rollback_acked_.clear();
  retries_left_ = config_.message_retries;
  const StepRef ref = current_ref();
  for (const config::ProcessId process : involved_) {
    auto msg = std::make_shared<RollbackMsg>();
    msg->step = ref;
    send_to(process, std::move(msg));
  }
  arm_timer(config_.rollback_timeout, "rollback-timeout");
}

void AdaptationManager::on_rollback_done(config::ProcessId process, const RollbackDoneMsg&) {
  if (phase_ != ManagerPhase::RollingBack) return;
  rollback_acked_.insert(process);
  if (rollback_acked_.size() == involved_.size()) step_failed_after_rollback();
}

void AdaptationManager::step_failed_after_rollback() {
  disarm_timer();
  ++result_.step_failures;
  step_log_.back().rolled_back = true;
  step_log_.back().finished = clock_->now();
  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::StepRolledBack;
    e.coords = coords_of(step_log_.back().ref);
    e.name = step_log_.back().action_name;
    e.value = static_cast<double>(step_log_.back().finished - step_log_.back().started);
    e.has_value = true;
    trace_event(std::move(e));
  }
  if (metrics_ != nullptr) {
    metrics_->counter("sa_steps_total", {{"fate", "rolled_back"}}, "Adaptation steps by fate")
        .inc();
  }
  try_next_strategy();
}

void AdaptationManager::try_next_strategy() {
  // §4.4 strategy chain: (1) retry the step, (2) next-minimum path,
  // (3) return to source, (4) wait for user intervention.
  if (static_cast<int>(step_attempt_) < config_.step_retries) {
    ++step_attempt_;
    SA_INFO("manager") << "retrying step " << step_index_ << " (attempt " << step_attempt_ << ")";
    execute_current_step();
    return;
  }
  const config::Configuration active_target = returning_to_source_ ? source_ : target_;
  ++alternatives_tried_;
  if (alternatives_tried_ <= config_.max_alternative_paths && !(current_ == active_target)) {
    const auto plans = planner_->ranked_paths(current_, active_target, alternatives_tried_ + 1);
    if (plans.size() > alternatives_tried_) {
      ++result_.plans_tried;
      SA_INFO("manager") << "trying alternative path #" << alternatives_tried_ << ": "
                         << plans[alternatives_tried_].action_names(*table_);
      start_plan(plans[alternatives_tried_]);
      return;
    }
  }
  if (!returning_to_source_ && config_.allow_return_to_source) {
    returning_to_source_ = true;
    alternatives_tried_ = 0;
    if (current_ == source_) {
      finish(AdaptationOutcome::RolledBackToSource, "failed before leaving source configuration");
      return;
    }
    const auto plan = planner_->minimum_path(current_, source_);
    if (plan && !plan->empty()) {
      ++result_.plans_tried;
      SA_INFO("manager") << "returning to source via " << plan->action_names(*table_);
      start_plan(*plan);
      return;
    }
  }
  finish(AdaptationOutcome::UserInterventionRequired,
         "all adaptation paths failed; system parked at " +
             current_.describe(table_->registry()));
}

void AdaptationManager::enqueue_adaptation(config::Configuration target,
                                           CompletionHandler handler) {
  std::lock_guard lock(mutex_);
  if (!busy() && pending_requests_.empty()) {
    request_adaptation(target, std::move(handler));
    return;
  }
  pending_requests_.push_back(PendingRequest{target, std::move(handler)});
}

void AdaptationManager::finish(AdaptationOutcome outcome, std::string detail) {
  disarm_timer();
  set_phase(ManagerPhase::Running);
  result_.outcome = outcome;
  result_.final_config = current_;
  result_.finished = clock_->now();
  result_.detail = std::move(detail);
  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::AdaptationFinished;
    e.coords.request = request_id_;
    e.name = std::string(to_string(outcome));
    e.detail = result_.detail;
    e.value = static_cast<double>(result_.finished - result_.started);
    e.has_value = true;
    trace_event(std::move(e));
  }
  if (metrics_ != nullptr) {
    metrics_
        ->counter("sa_adaptations_total", {{"outcome", std::string(to_string(outcome))}},
                  "Completed adaptation requests by outcome")
        .inc();
    metrics_
        ->histogram("sa_adaptation_latency_us", obs::default_time_buckets_us(), {},
                    "End-to-end adaptation latency (request to completion)")
        .observe(static_cast<double>(result_.finished - result_.started));
  }
  SA_INFO("manager") << "request " << request_id_ << " finished: " << to_string(outcome) << " ("
                     << result_.detail << ")";
  if (handler_) {
    auto handler = std::move(handler_);
    handler_ = nullptr;
    handler(result_);
  }
  if (!pending_requests_.empty() && !busy()) {
    // Start the next queued request from a fresh task so the caller's
    // completion handler never observes a half-started successor.
    executor_->post([this] {
      std::lock_guard lock(mutex_);
      if (busy() || pending_requests_.empty()) return;
      PendingRequest next = std::move(pending_requests_.front());
      pending_requests_.pop_front();
      request_adaptation(next.target, std::move(next.handler));
    });
  }
}

}  // namespace sa::proto
