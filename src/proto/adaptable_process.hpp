// The interface an agent uses to drive its local process through an
// adaptation step (paper §3.1: pre-action, in-action, post-action; §5.2:
// resetting / blocking / resuming a MetaSocket).
//
// Concrete implementations: FilterChainProcess (below) adapts a single
// MetaSocket-style FilterChain; the video library builds its server and
// clients on it; tests use scripted stubs to inject fail-to-reset and
// in-action failures.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "components/filter_chain.hpp"
#include "proto/messages.hpp"

namespace sa::proto {

class AdaptableProcess {
 public:
  virtual ~AdaptableProcess() = default;

  /// Pre-action: prepare (e.g. instantiate and initialize) the components
  /// named in command.add. Runs while the process is still fully operational
  /// — pre-actions must not interfere with functional behaviour. Returns
  /// false when preparation fails (unknown component, resource exhaustion).
  virtual bool prepare(const LocalCommand& command) = 0;

  /// Drive the process to its local safe state; when `drain` is set, also to
  /// the global safe condition (everything received has been processed).
  /// Invoke `reached` once there — the process must then be blocked.
  virtual void reach_safe_state(bool drain, std::function<void()> reached) = 0;

  /// Abandon a pending reach_safe_state / unblock without adapting
  /// (rollback taken while resetting or safe).
  virtual void abort_safe_state() = 0;

  /// In-action: alter the process structure. Called only while blocked.
  /// Atomic from the process's perspective. Returns false on failure.
  virtual bool apply(const LocalCommand& command) = 0;

  /// Undo a *successful* apply() (rollback taken in the adapted state).
  virtual bool undo(const LocalCommand& command) = 0;

  /// Resume full operation (drains anything queued while blocked).
  virtual void resume() = 0;

  /// Post-action: destroy old components etc. Runs after resume; must not
  /// interfere with functional behaviour.
  virtual void cleanup(const LocalCommand& command) { (void)command; }
};

/// Creates filter instances by component name — the agent's pre-action uses
/// it to build the components an in-action will insert.
using FilterFactory = std::function<components::FilterPtr(const std::string& name)>;

/// AdaptableProcess over one FilterChain: removals/additions are filter
/// removals/insertions on the chain; safe state is chain quiescence.
class FilterChainProcess : public AdaptableProcess {
 public:
  FilterChainProcess(components::FilterChain& chain, FilterFactory factory);

  bool prepare(const LocalCommand& command) override;
  void reach_safe_state(bool drain, std::function<void()> reached) override;
  void abort_safe_state() override;
  bool apply(const LocalCommand& command) override;
  bool undo(const LocalCommand& command) override;
  void resume() override;
  void cleanup(const LocalCommand& command) override;

  components::FilterChain& chain() { return *chain_; }

 private:
  components::FilterChain* chain_;
  FilterFactory factory_;
  /// Components instantiated by prepare(), keyed by name, awaiting apply().
  std::map<std::string, components::FilterPtr> staged_;
  /// Components removed by apply(), kept for undo()/cleanup().
  std::map<std::string, components::FilterPtr> removed_;
};

}  // namespace sa::proto
