// Runtime driver for one coordinator of the hierarchical manager tree.
//
// All epoch/batching/group-commit logic lives in the sans-I/O CoordinatorCore
// (proto/core/coordinator_core.hpp). This class is the thin I/O shell: it
// translates transport deliveries (parent commits, child reports) and timer
// fires into core Inputs and executes the core's Outputs — sends over
// runtime::Transport, the two timer slots over runtime::Clock (with
// generation guards against stale fires on the threaded backend), and
// ExecuteShard against the local shard's AdaptationManager via the runtime
// executor, so the coordinator's lock and the manager's lock are never held
// together. Works identically over SimRuntime and ThreadedRuntime.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "obs/event.hpp"
#include "proto/core/coordinator_core.hpp"
#include "proto/manager.hpp"
#include "runtime/runtime.hpp"

namespace sa::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace sa::obs

namespace sa::proto {

class AdaptationCoordinator {
 public:
  /// One root submission's aggregated fate: per-shard §4.4 results for
  /// exactly the shards the submission asked for.
  struct TicketResult {
    std::uint64_t ticket = 0;
    std::uint64_t epoch = 0;  ///< the epoch the submission was committed in
    std::vector<ShardOutcome> outcomes;
    runtime::Time started = 0;
    runtime::Time finished = 0;
  };
  using TicketHandler = std::function<void(const TicketResult&)>;

  /// Attaches to `node` (whose receive handler it takes over). `depth` is the
  /// distance from the tree root, used to key per-level metrics.
  AdaptationCoordinator(runtime::Runtime& rt, runtime::NodeId node, CoordinatorConfig config,
                       int depth = 0);
  ~AdaptationCoordinator();

  AdaptationCoordinator(const AdaptationCoordinator&) = delete;
  AdaptationCoordinator& operator=(const AdaptationCoordinator&) = delete;

  // --- topology (wired by the composite before any traffic) -----------------
  void set_parent(runtime::NodeId parent_node);
  /// Registers the child coordinator at `child_node`, covering `shards`.
  std::size_t add_child(runtime::NodeId child_node, std::vector<std::uint32_t> shards);
  /// Registers a locally-executed shard; shards with equal `lane` serialize.
  void add_local_shard(std::uint32_t shard, std::uint32_t lane, AdaptationManager& manager);

  /// Root-only entry point: submits one batch of shard targets and returns
  /// its ticket. Submissions landing in the same epoch window group-commit;
  /// the handler fires when every requested shard's fate is known.
  std::uint64_t submit(std::vector<ShardTarget> targets, TicketHandler handler);

  CoordinatorPhase phase() const {
    std::lock_guard lock(mutex_);
    return core_.phase();
  }
  bool idle() const { return phase() == CoordinatorPhase::Idle; }
  std::uint64_t epochs_completed() const {
    std::lock_guard lock(mutex_);
    return core_.epochs_completed();
  }
  int depth() const { return depth_; }
  runtime::NodeId node() const { return node_; }

  /// Test-only: seeds a deliberate protocol bug (see proto::CoordinatorFault)
  /// so the conformance gate can prove it catches a broken coordinator.
  void inject_fault(CoordinatorFault fault) {
    std::lock_guard lock(mutex_);
    core_.inject_fault(fault);
  }

  /// Wires the observability layer in: epoch spans and phase transitions into
  /// `recorder` (when enabled), per-depth epoch/batch/orphan metrics into
  /// `metrics`. `track` identifies this coordinator's span track.
  void set_observability(obs::TraceRecorder* recorder, obs::MetricsRegistry* metrics,
                         std::int64_t track);

 private:
  void on_message(runtime::NodeId from, runtime::MessagePtr message);
  /// Feeds one input to the core and executes its outputs. Call under mutex_.
  void dispatch(CoordinatorInput input);
  void apply(const std::vector<Output>& outputs);
  void apply_arm_timer(const Output& out);
  void apply_disarm_timer(const Output& out);
  void apply_execute_shard(const Output& out);
  void apply_ticket_done(const Output& out);

  bool tracing() const;
  bool tracing(obs::EventKind kind) const;  ///< also applies the detail filter
  void trace_event(obs::Event event);
  std::string depth_label() const;

  runtime::Clock* clock_;
  runtime::Executor* executor_;
  runtime::Transport* transport_;
  runtime::NodeId node_;
  const int depth_;

  CoordinatorCore core_;

  runtime::NodeId parent_node_ = 0;
  bool has_parent_ = false;
  std::vector<runtime::NodeId> child_nodes_;          ///< child index -> node
  std::map<runtime::NodeId, std::size_t> child_of_;   ///< node -> child index
  std::map<std::uint32_t, AdaptationManager*> shard_manager_;

  // --- real timers backing the core's two logical slots ---
  runtime::TimerId epoch_timer_ = 0;
  runtime::TimerId commit_timer_ = 0;
  std::uint64_t epoch_gen_ = 0;
  std::uint64_t commit_gen_ = 0;

  std::uint64_t next_ticket_ = 1;
  struct PendingTicket {
    TicketHandler handler;
    runtime::Time started = 0;
  };
  std::map<std::uint64_t, PendingTicket> pending_tickets_;

  runtime::Time epoch_sealed_at_ = 0;  ///< for the per-level commit latency

  obs::TraceRecorder* recorder_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::int64_t track_ = obs::kNoTrack;

  /// Recursive: a TicketDone output fires the completion handler under the
  /// lock, and that handler commonly submits the next batch.
  mutable std::recursive_mutex mutex_;
};

}  // namespace sa::proto
