// Wire codecs for the protocol vocabulary: the seven Figure 1/2 control
// messages (ResetMsg .. RollbackDoneMsg) and the two coordinator-tree
// messages (EpochCommitMsg / EpochDoneMsg). Registering is idempotent;
// every process that hosts a SocketTransport endpoint calls this once at
// startup so frames decode identically on both ends.
#pragma once

namespace sa::proto {

void register_wire_codecs();

}  // namespace sa::proto
