// Runtime driver for the centralized adaptation manager (paper §4, Figure 2).
//
// All protocol logic — MAP planning, staged reset fan-out, the timeout /
// retransmission machinery, the §4.4 failure-strategy chain — lives in the
// sans-I/O ManagerCore (proto/core/manager_core.hpp). This class is the thin
// I/O shell around it: it owns the derived analysis data (safe configuration
// set, SAG, planner), translates transport deliveries and timer fires into
// core Inputs, and executes the core's Outputs in order against the real
// Clock / Transport / observability layer. Works identically over SimRuntime
// and ThreadedRuntime; on the threaded backend every entry point locks and
// timer callbacks carry generation guards against stale fires.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "actions/planner.hpp"
#include "config/enumerate.hpp"
#include "obs/event.hpp"
#include "proto/core/manager_core.hpp"
#include "proto/messages.hpp"
#include "runtime/runtime.hpp"

namespace sa::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace sa::obs

namespace sa::proto {

/// Per-step record for experiment harnesses.
struct StepRecord {
  StepRef ref;
  std::string action_name;
  bool committed = false;
  bool rolled_back = false;
  runtime::Time started = 0;
  runtime::Time finished = 0;
};

class AdaptationManager {
 public:
  using CompletionHandler = std::function<void(const AdaptationResult&)>;

  /// The manager draws timers from `rt.clock()`, defers queued-request
  /// startup through `rt.executor()`, and talks to agents over
  /// `rt.transport()`. Works identically over SimRuntime and ThreadedRuntime.
  AdaptationManager(runtime::Runtime& rt, runtime::NodeId node,
                    const config::InvariantSet& invariants, const actions::ActionTable& table,
                    ManagerConfig config = {});
  ~AdaptationManager();

  /// Wires the observability layer in: adaptation/step spans, Fig. 2 phase
  /// transitions, and protocol-timer events flow into `recorder` (when it is
  /// enabled); latency/blocking histograms and outcome counters into
  /// `metrics`. Null pointers detach. Normally called by the system facade.
  void set_observability(obs::TraceRecorder* recorder, obs::MetricsRegistry* metrics);

  /// Registers the agent responsible for `process`. `stage` orders resets
  /// within a step: lower stages (upstream/senders) quiesce first; agents in
  /// stages above the step's minimum involved stage drain their input before
  /// blocking (global safe condition).
  void register_agent(config::ProcessId process, runtime::NodeId agent_node, int stage = 0);

  /// Current system configuration; must be set before the first request and
  /// is updated as steps commit.
  void set_current_configuration(config::Configuration config) {
    std::lock_guard lock(mutex_);
    core_.set_current_configuration(config);
  }
  config::Configuration current_configuration() const {
    std::lock_guard lock(mutex_);
    return core_.current_configuration();
  }

  /// Requests adaptation to `target`. One request at a time; throws
  /// std::logic_error if one is already in flight. The handler fires (from
  /// simulator context) when the request terminates. `cause_span` optionally
  /// links the request into a causal trace (e.g. its coordinator epoch span).
  void request_adaptation(config::Configuration target, CompletionHandler handler,
                          std::uint64_t cause_span = 0);

  /// Like request_adaptation, but a request arriving while another is in
  /// flight waits its turn instead of throwing. Queued requests run in FIFO
  /// order, each planned from the configuration the previous one left behind.
  void enqueue_adaptation(config::Configuration target, CompletionHandler handler,
                          std::uint64_t cause_span = 0);

  std::size_t queued_requests() const {
    std::lock_guard lock(mutex_);
    return pending_requests_.size();
  }

  ManagerPhase phase() const {
    std::lock_guard lock(mutex_);
    return core_.phase();
  }
  bool busy() const { return phase() != ManagerPhase::Running; }

  /// Safe configurations / SAG derived from I and T (exposed for tests and
  /// the experiment harnesses).
  const std::vector<config::Configuration>& safe_configurations() const { return safe_configs_; }
  const actions::SafeAdaptationGraph& sag() const { return *sag_; }
  const actions::PathPlanner& planner() const { return *planner_; }

  /// Test-only: injects a deliberate protocol bug into the core (see
  /// proto::ManagerFault). The fault-injection campaign's must-fail gate
  /// mutates a live manager this way to prove its oracles catch a broken
  /// driver stack, mirroring the model checker's mutation check.
  void inject_fault(ManagerFault fault) {
    std::lock_guard lock(mutex_);
    core_.inject_fault(fault);
  }

  /// Copies taken under the entity lock: runtime threads append/mutate these
  /// mid-adaptation, so references would race when polled during a threaded
  /// run (e.g. inside a wait_until predicate).
  std::vector<StepRecord> step_log() const {
    std::lock_guard lock(mutex_);
    return step_log_;
  }
  runtime::Time total_blocked_reported() const {
    std::lock_guard lock(mutex_);
    return total_blocked_reported_;
  }

 private:
  struct AgentEndpoint {
    runtime::NodeId node = 0;
    int stage = 0;
  };

  void on_message(runtime::NodeId from, runtime::MessagePtr message);
  /// Feeds one input to the core and executes its outputs. Call under mutex_.
  void dispatch(ManagerInput::AdaptCommand cmd);
  void dispatch(ManagerInput::MessageDelivered delivered);
  void dispatch(ManagerInput::TimerFired fired);
  void apply(const std::vector<Output>& outputs);
  void apply_arm_timer(const Output& out);
  void apply_disarm_timer(const Output& out);
  void apply_outcome(const Output& out);

  std::optional<config::ProcessId> process_of_node(runtime::NodeId node) const;

  // --- observability (no-ops until set_observability is called) --------------
  bool tracing() const { return recorder_ != nullptr && tracing_enabled(); }
  bool tracing(obs::EventKind kind) const {
    return recorder_ != nullptr && recorder_wants(kind);
  }
  bool tracing_enabled() const;  ///< recorder_->enabled(), out of line
  bool recorder_wants(obs::EventKind kind) const;  ///< recorder_->wants(), out of line
  /// Stamps the manager track and the current clock time, then records.
  void trace_event(obs::Event event);
  /// Accrues a process's reported blocked time into the total and the
  /// per-process sa_blocked_time_us histogram.
  void observe_blocked(config::ProcessId process, runtime::Time blocked);

  runtime::Clock* clock_;
  runtime::Executor* executor_;
  runtime::Transport* transport_;
  runtime::NodeId node_;
  const actions::ActionTable* table_;

  std::vector<config::Configuration> safe_configs_;
  std::unique_ptr<actions::SafeAdaptationGraph> sag_;
  std::unique_ptr<actions::PathPlanner> planner_;

  ManagerCore core_;
  std::map<config::ProcessId, AgentEndpoint> agents_;
  CompletionHandler handler_;

  // --- real timers backing the core's two logical slots ---
  runtime::TimerId timer_ = 0;
  runtime::TimerId stage_delay_event_ = 0;
  /// Bumped on every arm/disarm; timer callbacks capture the value at arm
  /// time and bail on mismatch, so a fire that raced a failed cancel() on the
  /// threaded backend cannot act in the wrong phase.
  std::uint64_t timer_gen_ = 0;
  std::uint64_t stage_delay_gen_ = 0;

  std::vector<StepRecord> step_log_;
  runtime::Time total_blocked_reported_ = 0;

  obs::TraceRecorder* recorder_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;

  struct PendingRequest {
    config::Configuration target;
    CompletionHandler handler;
    std::uint64_t cause_span = 0;
  };
  std::deque<PendingRequest> pending_requests_;

  /// Serializes message handlers, timer callbacks, and request submission.
  /// Recursive: an Outcome output invokes the completion handler under the
  /// lock, and that handler commonly enqueues the next request.
  mutable std::recursive_mutex mutex_;
};

}  // namespace sa::proto
