// Centralized adaptation manager (paper §4, Figure 2).
//
// The manager owns the analysis-phase data structure P = (S, I, T, R, A):
// the invariant set I and action table T (with costs A) are supplied at
// construction; S (the safe configuration set) and the SAG are derived.
//
// Detection-and-setup phase: on an adaptation request it enumerates safe
// configurations, builds the SAG, and finds the minimum adaptation path with
// Dijkstra (§4.2).  Realization phase: for each step it coordinates the
// involved agents through reset / adapt / resume rounds, ensuring every
// in-action executes in a global safe state (§4.3).  Failure handling (§4.4):
// manager-side timeouts detect loss-of-message and fail-to-reset failures;
// rollback is initiated only before the first resume is sent, otherwise the
// step runs to completion; on step failure the strategy chain is
//   retry the step once -> next-minimum path -> return to source -> user.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "actions/planner.hpp"
#include "config/enumerate.hpp"
#include "obs/event.hpp"
#include "proto/messages.hpp"
#include "runtime/runtime.hpp"

namespace sa::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace sa::obs

namespace sa::proto {

enum class ManagerPhase {
  Running,      ///< fully operational, no adaptation in progress
  Preparing,    ///< MAP creation
  Adapting,     ///< waiting for reset done / adapt done
  Adapted,      ///< all in-actions complete (transient)
  Resuming,     ///< waiting for resume done
  Resumed,      ///< step committed (transient)
  RollingBack   ///< aborting a failed step
};

std::string_view to_string(ManagerPhase phase);

enum class AdaptationOutcome {
  Success,                   ///< target configuration reached
  NoPathFound,               ///< source or target unsafe, or SAG disconnected
  RolledBackToSource,        ///< target unreachable; system returned to source
  UserInterventionRequired,  ///< all strategies failed; system parked at a safe config
  StalledAfterResume         ///< step committed but some resume unacknowledged
};

std::string_view to_string(AdaptationOutcome outcome);

struct AdaptationResult {
  AdaptationOutcome outcome = AdaptationOutcome::Success;
  config::Configuration final_config;
  std::size_t steps_committed = 0;
  std::size_t step_failures = 0;    ///< rollbacks of individual steps
  std::size_t plans_tried = 1;
  std::size_t message_retries = 0;  ///< retransmission rounds
  runtime::Time started = 0;
  runtime::Time finished = 0;
  std::string detail;
};

struct ManagerConfig {
  runtime::Time reset_timeout = runtime::ms(150);     ///< reset sent -> all adapt done
  runtime::Time resume_timeout = runtime::ms(100);    ///< resume sent -> all resume done
  runtime::Time rollback_timeout = runtime::ms(100);  ///< rollback sent -> all rollback done
  /// Extra wait between quiescing one stage and resetting the next, covering
  /// data still in flight toward downstream processes (the global safe
  /// condition for sender->receiver actions).
  runtime::Time inter_stage_delay = runtime::ms(15);
  int message_retries = 2;          ///< retransmission rounds per phase
  int run_to_completion_retries = 8;///< extra resume rounds after first resume
  int step_retries = 1;             ///< §4.4: "retries the same step once more"
  std::size_t max_alternative_paths = 3;
  bool allow_return_to_source = true;
};

/// Per-step record for experiment harnesses.
struct StepRecord {
  StepRef ref;
  std::string action_name;
  bool committed = false;
  bool rolled_back = false;
  runtime::Time started = 0;
  runtime::Time finished = 0;
};

class AdaptationManager {
 public:
  using CompletionHandler = std::function<void(const AdaptationResult&)>;

  /// The manager draws timers from `rt.clock()`, defers queued-request
  /// startup through `rt.executor()`, and talks to agents over
  /// `rt.transport()`. Works identically over SimRuntime and ThreadedRuntime.
  AdaptationManager(runtime::Runtime& rt, runtime::NodeId node,
                    const config::InvariantSet& invariants, const actions::ActionTable& table,
                    ManagerConfig config = {});
  ~AdaptationManager();

  /// Wires the observability layer in: adaptation/step spans, Fig. 2 phase
  /// transitions, and protocol-timer events flow into `recorder` (when it is
  /// enabled); latency/blocking histograms and outcome counters into
  /// `metrics`. Null pointers detach. Normally called by the system facade.
  void set_observability(obs::TraceRecorder* recorder, obs::MetricsRegistry* metrics);

  /// Registers the agent responsible for `process`. `stage` orders resets
  /// within a step: lower stages (upstream/senders) quiesce first; agents in
  /// stages above the step's minimum involved stage drain their input before
  /// blocking (global safe condition).
  void register_agent(config::ProcessId process, runtime::NodeId agent_node, int stage = 0);

  /// Current system configuration; must be set before the first request and
  /// is updated as steps commit.
  void set_current_configuration(config::Configuration config) { current_ = config; }
  const config::Configuration& current_configuration() const { return current_; }

  /// Requests adaptation to `target`. One request at a time; throws
  /// std::logic_error if one is already in flight. The handler fires (from
  /// simulator context) when the request terminates.
  void request_adaptation(config::Configuration target, CompletionHandler handler);

  /// Like request_adaptation, but a request arriving while another is in
  /// flight waits its turn instead of throwing. Queued requests run in FIFO
  /// order, each planned from the configuration the previous one left behind.
  void enqueue_adaptation(config::Configuration target, CompletionHandler handler);

  std::size_t queued_requests() const {
    std::lock_guard lock(mutex_);
    return pending_requests_.size();
  }

  ManagerPhase phase() const {
    std::lock_guard lock(mutex_);
    return phase_;
  }
  bool busy() const { return phase() != ManagerPhase::Running; }

  /// Safe configurations / SAG derived from I and T (exposed for tests and
  /// the experiment harnesses).
  const std::vector<config::Configuration>& safe_configurations() const { return safe_configs_; }
  const actions::SafeAdaptationGraph& sag() const { return *sag_; }
  const actions::PathPlanner& planner() const { return *planner_; }

  /// Copies taken under the entity lock: runtime threads append/mutate these
  /// mid-adaptation, so references would race when polled during a threaded
  /// run (e.g. inside a wait_until predicate).
  std::vector<StepRecord> step_log() const {
    std::lock_guard lock(mutex_);
    return step_log_;
  }
  runtime::Time total_blocked_reported() const {
    std::lock_guard lock(mutex_);
    return total_blocked_reported_;
  }

 private:
  struct AgentEndpoint {
    runtime::NodeId node = 0;
    int stage = 0;
  };

  void on_message(runtime::NodeId from, runtime::MessagePtr message);
  void on_reset_done(config::ProcessId process, const ResetDoneMsg& msg);
  void on_adapt_done(config::ProcessId process, const AdaptDoneMsg& msg);
  void on_resume_done(config::ProcessId process, const ResumeDoneMsg& msg);
  void on_rollback_done(config::ProcessId process, const RollbackDoneMsg& msg);

  void start_plan(actions::AdaptationPlan plan);
  void execute_current_step();
  void send_stage_resets(int stage);
  void maybe_advance_stage();
  void enter_resuming();
  void commit_step();
  void arm_timer(runtime::Time timeout, const char* label);
  void disarm_timer();
  void on_timeout();
  void begin_rollback();
  void step_failed_after_rollback();
  void try_next_strategy();
  void finish(AdaptationOutcome outcome, std::string detail);

  std::optional<config::ProcessId> process_of_node(runtime::NodeId node) const;
  LocalCommand command_for(config::ProcessId process) const;
  void send_to(config::ProcessId process, runtime::MessagePtr message);

  // --- observability (no-ops until set_observability is called) --------------
  bool tracing() const { return recorder_ != nullptr && tracing_enabled(); }
  bool tracing_enabled() const;  ///< recorder_->enabled(), out of line
  /// Stamps the manager track and the current clock time, then records.
  void trace_event(obs::Event event);
  /// Records the Fig. 2 transition and updates phase_ (no-op if unchanged).
  void set_phase(ManagerPhase next);
  /// Accrues a process's reported blocked time into the total and the
  /// per-process sa_blocked_time_us histogram.
  void observe_blocked(config::ProcessId process, runtime::Time blocked);

  runtime::Clock* clock_;
  runtime::Executor* executor_;
  runtime::Transport* transport_;
  runtime::NodeId node_;
  const config::InvariantSet* invariants_;
  const actions::ActionTable* table_;
  ManagerConfig config_;

  std::vector<config::Configuration> safe_configs_;
  std::unique_ptr<actions::SafeAdaptationGraph> sag_;
  std::unique_ptr<actions::PathPlanner> planner_;

  std::map<config::ProcessId, AgentEndpoint> agents_;
  config::Configuration current_;

  // --- in-flight request state ---
  ManagerPhase phase_ = ManagerPhase::Running;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t request_id_ = 0;
  config::Configuration source_;
  config::Configuration target_;
  CompletionHandler handler_;
  AdaptationResult result_;
  bool returning_to_source_ = false;
  std::size_t alternatives_tried_ = 0;

  actions::AdaptationPlan plan_;
  std::uint32_t plan_number_ = 0;   ///< disambiguates re-planned paths
  std::uint32_t plan_counter_ = 0;  ///< next plan number within the request
  std::size_t step_index_ = 0;
  std::uint32_t step_attempt_ = 0;

  StepRef current_ref() const {
    return StepRef{request_id_, plan_number_, static_cast<std::uint32_t>(step_index_),
                   step_attempt_};
  }

  // per-step bookkeeping
  std::vector<config::ProcessId> involved_;
  std::map<config::ProcessId, bool> drain_flag_;
  int min_stage_ = 0;
  int current_stage_ = 0;
  std::set<config::ProcessId> reset_acked_;
  std::set<config::ProcessId> adapt_acked_;
  std::set<config::ProcessId> resume_acked_;
  std::set<config::ProcessId> rollback_acked_;
  bool resume_sent_ = false;
  int retries_left_ = 0;
  runtime::TimerId timer_ = 0;
  const char* timer_label_ = "";  ///< purpose of the armed timer, for events
  runtime::TimerId stage_delay_event_ = 0;
  /// Bumped on every arm/disarm; timer callbacks capture the value at arm
  /// time and bail on mismatch, so a fire that raced a failed cancel() on the
  /// threaded backend cannot act in the wrong phase.
  std::uint64_t timer_gen_ = 0;
  std::uint64_t stage_delay_gen_ = 0;

  std::vector<StepRecord> step_log_;
  runtime::Time total_blocked_reported_ = 0;

  obs::TraceRecorder* recorder_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;

  struct PendingRequest {
    config::Configuration target;
    CompletionHandler handler;
  };
  std::deque<PendingRequest> pending_requests_;

  /// Serializes message handlers, timer callbacks, and request submission.
  /// Recursive: finish() invokes the completion handler under the lock, and
  /// that handler commonly enqueues the next request.
  mutable std::recursive_mutex mutex_;
};

}  // namespace sa::proto
