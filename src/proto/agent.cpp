#include "proto/agent.hpp"

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "util/log.hpp"

namespace sa::proto {

namespace {

obs::StepCoords coords_of(const StepRef& ref) {
  return obs::StepCoords{ref.request_id, ref.plan, ref.step_index, ref.attempt};
}

}  // namespace

std::string_view to_string(AgentState state) {
  switch (state) {
    case AgentState::Running: return "running";
    case AgentState::Resetting: return "resetting";
    case AgentState::Safe: return "safe";
    case AgentState::Adapted: return "adapted";
    case AgentState::Resuming: return "resuming";
  }
  return "?";
}

AdaptationAgent::AdaptationAgent(runtime::Clock& clock, runtime::Transport& transport,
                                 runtime::NodeId node, runtime::NodeId manager_node,
                                 AdaptableProcess& process, AgentConfig config)
    : clock_(&clock), transport_(&transport), node_(node), manager_(manager_node),
      process_(&process), config_(config) {
  transport_->set_handler(node_, [this](runtime::NodeId from, runtime::MessagePtr message) {
    on_message(from, std::move(message));
  });
}

template <typename Msg>
void AdaptationAgent::send(const StepRef& step, Msg prototype) {
  prototype.step = step;
  transport_->send(node_, manager_, std::make_shared<Msg>(std::move(prototype)));
}

void AdaptationAgent::set_observability(obs::TraceRecorder* recorder,
                                        obs::MetricsRegistry* metrics, std::int64_t track) {
  std::lock_guard lock(mutex_);
  recorder_ = recorder;
  metrics_ = metrics;
  track_ = track;
}

bool AdaptationAgent::tracing_enabled() const { return recorder_->enabled(); }

void AdaptationAgent::trace_event(obs::Event event) {
  event.time = clock_->now();
  event.track = track_;
  recorder_->record(std::move(event));
}

void AdaptationAgent::set_state(AgentState next) {
  if (state_ == next) return;
  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::AgentState;
    e.name = std::string(to_string(next));
    e.detail = std::string(to_string(state_));
    if (current_step_) e.coords = coords_of(*current_step_);
    trace_event(std::move(e));
  }
  state_ = next;
}

void AdaptationAgent::note_duplicate(const char* type) {
  ++stats_.duplicate_messages;
  if (metrics_ != nullptr) {
    metrics_
        ->counter("sa_duplicate_protocol_messages_total", {{"type", type}},
                  "Retransmitted / duplicated protocol messages seen by agents")
        .inc();
  }
}

void AdaptationAgent::schedule_pending(runtime::Time delay, const char* label,
                                       std::function<void()> body) {
  pending_label_ = label;
  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::TimerArmed;
    if (current_step_) e.coords = coords_of(*current_step_);
    e.name = label;
    e.value = static_cast<double>(delay);
    e.has_value = true;
    trace_event(std::move(e));
  }
  const std::uint64_t gen = ++pending_gen_;
  pending_event_ = clock_->schedule_after(delay, [this, gen, label, body = std::move(body)] {
    std::lock_guard lock(mutex_);
    if (gen != pending_gen_) return;  // cancelled or superseded after dequeue
    pending_event_ = 0;
    if (tracing()) {
      obs::Event e;
      e.kind = obs::EventKind::TimerFired;
      if (current_step_) e.coords = coords_of(*current_step_);
      e.name = label;
      trace_event(std::move(e));
    }
    body();
  });
}

void AdaptationAgent::cancel_pending() {
  if (pending_event_ != 0) {
    clock_->cancel(pending_event_);
    pending_event_ = 0;
    if (tracing()) {
      obs::Event e;
      e.kind = obs::EventKind::TimerCancelled;
      if (current_step_) e.coords = coords_of(*current_step_);
      e.name = pending_label_;
      trace_event(std::move(e));
    }
  }
  ++pending_gen_;  // invalidate a fire that cancel() was too late to stop
}

void AdaptationAgent::on_message(runtime::NodeId from, runtime::MessagePtr message) {
  std::lock_guard lock(mutex_);
  if (from != manager_) {
    SA_WARN("agent") << "node " << node_ << ": message from non-manager node " << from;
    return;
  }
  if (const auto* reset = dynamic_cast<const ResetMsg*>(message.get())) {
    on_reset(*reset);
  } else if (const auto* resume = dynamic_cast<const ResumeMsg*>(message.get())) {
    on_resume(*resume);
  } else if (const auto* rollback = dynamic_cast<const RollbackMsg*>(message.get())) {
    on_rollback(*rollback);
  } else {
    SA_WARN("agent") << "node " << node_ << ": unexpected message " << message->type_name();
  }
}

void AdaptationAgent::on_reset(const ResetMsg& msg) {
  if (current_step_ && *current_step_ == msg.step && state_ != AgentState::Running) {
    // Retransmission of the step we are working on: re-acknowledge progress.
    note_duplicate("reset");
    if (state_ == AgentState::Safe) {
      send<ResetDoneMsg>(msg.step);
    } else if (state_ == AgentState::Adapted) {
      send<ResetDoneMsg>(msg.step);
      send<AdaptDoneMsg>(msg.step);
    }
    return;
  }
  if (state_ != AgentState::Running) {
    SA_WARN("agent") << "node " << node_ << ": reset " << msg.step.describe() << " while "
                     << to_string(state_) << " on " << current_step_->describe() << "; ignored";
    return;
  }
  if (last_completed_ && *last_completed_ == msg.step) {
    note_duplicate("reset");
    ResumeDoneMsg ack;
    ack.blocked_for = last_blocked_for_;
    send<ResumeDoneMsg>(msg.step, std::move(ack));
    return;
  }
  if (last_rolled_back_ && *last_rolled_back_ == msg.step) {
    note_duplicate("reset");
    send<RollbackDoneMsg>(msg.step);
    return;
  }

  // Fresh step: running -> resetting.
  ++stats_.resets_handled;
  current_step_ = msg.step;
  current_command_ = msg.command;
  sole_participant_ = msg.sole_participant;
  prepared_ = false;
  set_state(AgentState::Resetting);
  const bool drain = msg.drain;
  SA_DEBUG("agent") << "node " << node_ << ": reset " << msg.step.describe() << " ["
                    << current_command_.describe() << (drain ? ", drain" : "") << "]";

  schedule_pending(config_.pre_action_duration, "pre-action", [this, drain] {
    prepared_ = process_->prepare(current_command_);
    if (!prepared_) {
      SA_WARN("agent") << "node " << node_ << ": pre-action failed; holding in resetting state";
      return;  // manager's reset timeout will trigger rollback
    }
    if (config_.fail_to_reset) {
      SA_DEBUG("agent") << "node " << node_ << ": injected fail-to-reset";
      return;  // never reach the safe state
    }
    process_->reach_safe_state(drain, [this] { enter_safe_state(); });
  });
}

void AdaptationAgent::enter_safe_state() {
  std::lock_guard lock(mutex_);
  set_state(AgentState::Safe);
  blocked_since_ = clock_->now();
  send<ResetDoneMsg>(*current_step_);
  start_in_action();
}

void AdaptationAgent::start_in_action() {
  schedule_pending(config_.in_action_duration, "in-action", [this] {
    if (!process_->apply(current_command_)) {
      SA_WARN("agent") << "node " << node_ << ": in-action failed; holding in safe state";
      return;  // manager's adapt timeout will trigger rollback
    }
    ++stats_.adapts_performed;
    set_state(AgentState::Adapted);
    send<AdaptDoneMsg>(*current_step_);
    if (sole_participant_) {
      // Fig. 1: the only process involved proceeds straight to resuming
      // without blocking for the manager's resume message.
      set_state(AgentState::Resuming);
      schedule_pending(config_.resume_duration, "resume",
                       [this] { finish_resume(/*proactive=*/true); });
    }
  });
}

void AdaptationAgent::finish_resume(bool proactive) {
  process_->resume();
  last_blocked_for_ = clock_->now() - blocked_since_;
  stats_.total_blocked += last_blocked_for_;
  last_completed_ = *current_step_;
  const StepRef step = *current_step_;
  set_state(AgentState::Running);
  current_step_.reset();
  ResumeDoneMsg ack;
  ack.blocked_for = last_blocked_for_;
  send<ResumeDoneMsg>(step, std::move(ack));
  process_->cleanup(current_command_);
  SA_DEBUG("agent") << "node " << node_ << ": resumed " << step.describe()
                    << (proactive ? " (sole participant)" : "") << ", blocked "
                    << last_blocked_for_ << "us";
}

void AdaptationAgent::on_resume(const ResumeMsg& msg) {
  if (state_ == AgentState::Adapted && current_step_ && *current_step_ == msg.step) {
    set_state(AgentState::Resuming);
    schedule_pending(config_.resume_duration, "resume",
                     [this] { finish_resume(/*proactive=*/false); });
    return;
  }
  if (state_ == AgentState::Resuming && current_step_ && *current_step_ == msg.step) {
    note_duplicate("resume");  // ack already on its way
    return;
  }
  if (state_ == AgentState::Running && last_completed_ && *last_completed_ == msg.step) {
    note_duplicate("resume");
    ResumeDoneMsg ack;
    ack.blocked_for = last_blocked_for_;
    send<ResumeDoneMsg>(msg.step, std::move(ack));
    return;
  }
  SA_WARN("agent") << "node " << node_ << ": unexpected resume " << msg.step.describe()
                   << " while " << to_string(state_);
}

void AdaptationAgent::on_rollback(const RollbackMsg& msg) {
  const bool matches_current = current_step_ && *current_step_ == msg.step;
  switch (state_) {
    case AgentState::Resetting:
    case AgentState::Safe: {
      if (!matches_current) break;
      // Pre-action or in-action timer may still be pending; cancel it. No
      // undo is needed: the in-action has not mutated anything yet.
      cancel_pending();
      process_->abort_safe_state();
      ++stats_.rollbacks_performed;
      last_rolled_back_ = msg.step;
      set_state(AgentState::Running);
      current_step_.reset();
      send<RollbackDoneMsg>(msg.step);
      return;
    }
    case AgentState::Adapted: {
      if (!matches_current) break;
      // Undo the in-action, then unblock. Modeled with the in-action
      // duration since it performs the symmetric structural change.
      set_state(AgentState::Resuming);
      schedule_pending(config_.in_action_duration, "rollback-undo", [this, msg] {
        process_->undo(current_command_);
        process_->resume();
        stats_.total_blocked += clock_->now() - blocked_since_;
        ++stats_.rollbacks_performed;
        last_rolled_back_ = msg.step;
        set_state(AgentState::Running);
        current_step_.reset();
        send<RollbackDoneMsg>(msg.step);
      });
      return;
    }
    case AgentState::Resuming:
      // A rollback racing a resume in flight; ignore — the manager will
      // observe resume done / retry, and the completed path takes over.
      SA_WARN("agent") << "node " << node_ << ": rollback during resuming ignored";
      return;
    case AgentState::Running: {
      if (last_rolled_back_ && *last_rolled_back_ == msg.step) {
        note_duplicate("rollback");
        send<RollbackDoneMsg>(msg.step);
        return;
      }
      if (last_completed_ && *last_completed_ == msg.step) {
        // We resumed proactively (sole participant) but the manager timed out
        // (e.g. lost adapt done) and aborted: compensate by re-quiescing,
        // undoing the in-action, and resuming the old structure.
        process_->reach_safe_state(false, [this, msg] {
          std::lock_guard lock(mutex_);
          process_->undo(current_command_);
          process_->resume();
          ++stats_.rollbacks_performed;
          last_rolled_back_ = msg.step;
          last_completed_.reset();
          send<RollbackDoneMsg>(msg.step);
        });
        return;
      }
      // Step never reached us (reset lost entirely): nothing to undo.
      send<RollbackDoneMsg>(msg.step);
      return;
    }
  }
  SA_WARN("agent") << "node " << node_ << ": unexpected rollback " << msg.step.describe()
                   << " while " << to_string(state_);
}

}  // namespace sa::proto
