#include "proto/agent.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "util/log.hpp"

namespace sa::proto {

namespace {

obs::StepCoords coords_of(const StepRef& ref) {
  return obs::StepCoords{ref.request_id, ref.plan, ref.step_index, ref.attempt};
}

}  // namespace

AdaptationAgent::AdaptationAgent(runtime::Clock& clock, runtime::Transport& transport,
                                 runtime::NodeId node, runtime::NodeId manager_node,
                                 AdaptableProcess& process, AgentConfig config)
    : clock_(&clock), transport_(&transport), node_(node), manager_(manager_node),
      process_(&process), core_(config) {
  transport_->set_handler(node_, [this](runtime::NodeId from, runtime::MessagePtr message) {
    on_message(from, std::move(message));
  });
}

AdaptationAgent::~AdaptationAgent() { transport_->set_handler(node_, nullptr); }

void AdaptationAgent::set_observability(obs::TraceRecorder* recorder,
                                        obs::MetricsRegistry* metrics, std::int64_t track) {
  std::lock_guard lock(mutex_);
  recorder_ = recorder;
  metrics_ = metrics;
  track_ = track;
}

bool AdaptationAgent::tracing_enabled() const { return recorder_->enabled(); }

bool AdaptationAgent::recorder_wants(obs::EventKind kind) const {
  return recorder_->wants(kind);
}

void AdaptationAgent::trace_event(obs::Event event) {
  event.time = clock_->now();
  event.track = track_;
  recorder_->record(std::move(event));
}

void AdaptationAgent::on_message(runtime::NodeId from, runtime::MessagePtr message) {
  std::lock_guard lock(mutex_);
  if (from != manager_) {
    SA_WARN("agent") << "node " << node_ << ": message from non-manager node " << from;
    return;
  }
  if (dynamic_cast<const ResetMsg*>(message.get()) == nullptr &&
      dynamic_cast<const ResumeMsg*>(message.get()) == nullptr &&
      dynamic_cast<const RollbackMsg*>(message.get()) == nullptr) {
    SA_WARN("agent") << "node " << node_ << ": unexpected message " << message->type_name();
    return;
  }
  dispatch(AgentInput::MessageDelivered{std::move(message)});
}

void AdaptationAgent::dispatch(AgentInput::MessageDelivered delivered) {
  apply(core_.step(AgentInput{clock_->now(), std::move(delivered)}));
}

void AdaptationAgent::dispatch(AgentInput::TimerFired fired) {
  apply(core_.step(AgentInput{clock_->now(), fired}));
}

void AdaptationAgent::dispatch(AgentLocalEvent event) {
  apply(core_.step(AgentInput{clock_->now(), event}));
}

void AdaptationAgent::apply(const std::vector<Output>& outputs) {
  for (const Output& out : outputs) {
    switch (out.kind) {
      case OutputKind::Send:
        transport_->send(node_, manager_, out.message);
        break;
      case OutputKind::ArmTimer:
        apply_arm_timer(out);
        break;
      case OutputKind::DisarmTimer:
        apply_disarm_timer(out);
        break;
      case OutputKind::Transition:
        if (tracing(obs::EventKind::AgentState)) {
          obs::Event e;
          e.kind = obs::EventKind::AgentState;
          e.name = std::string(to_string(out.state_to));
          e.detail = std::string(to_string(out.state_from));
          e.coords = coords_of(out.ref);
          if (out.ref.request_id != 0) {
            // Both ends derive the request span from the manager's node id,
            // so agent transitions link into the same causal tree without
            // widening the wire messages.
            e.parent_span = span_of(manager_, SpanKind::Request, out.ref.request_id);
          }
          trace_event(std::move(e));
        }
        break;
      case OutputKind::DuplicateMessage:
        if (metrics_ != nullptr) {
          metrics_
              ->counter("sa_duplicate_protocol_messages_total", {{"type", out.label}},
                        "Retransmitted / duplicated protocol messages seen by agents")
              .inc();
        }
        break;
      case OutputKind::ProcessPrepare:
        if (process_->prepare(out.command)) {
          dispatch(AgentLocalEvent::PrepareSucceeded);
        } else {
          SA_WARN("agent") << "node " << node_
                           << ": pre-action failed; holding in resetting state";
          dispatch(AgentLocalEvent::PrepareFailed);
        }
        break;
      case OutputKind::ProcessReachSafe:
        process_->reach_safe_state(out.flag, [this] {
          std::lock_guard lock(mutex_);
          dispatch(AgentLocalEvent::SafeStateReached);
        });
        break;
      case OutputKind::ProcessAbortSafe:
        process_->abort_safe_state();
        break;
      case OutputKind::ProcessApply:
        if (process_->apply(out.command)) {
          dispatch(AgentLocalEvent::ApplySucceeded);
        } else {
          SA_WARN("agent") << "node " << node_ << ": in-action failed; holding in safe state";
          dispatch(AgentLocalEvent::ApplyFailed);
        }
        break;
      case OutputKind::ProcessUndo:
        process_->undo(out.command);
        break;
      case OutputKind::ProcessResume:
        process_->resume();
        break;
      case OutputKind::ProcessCleanup:
        process_->cleanup(out.command);
        break;
      default:
        break;  // manager-only kinds never appear in agent output
    }
  }
}

void AdaptationAgent::apply_arm_timer(const Output& out) {
  if (tracing(obs::EventKind::TimerArmed)) {
    obs::Event e;
    e.kind = obs::EventKind::TimerArmed;
    e.coords = coords_of(out.ref);
    e.name = out.label;
    e.value = static_cast<double>(out.delay);
    e.has_value = true;
    trace_event(std::move(e));
  }
  // The generation guard defuses stale fires on the threaded backend: once
  // the timer thread has dequeued the callback, cancel() returns false and
  // the callback will still run, but it then observes a newer generation and
  // bails instead of acting for a step it no longer belongs to. On the
  // simulator cancel() always wins, so the guard never trips.
  const char* label = out.label;
  const std::uint64_t gen = ++pending_gen_;
  pending_event_ = clock_->schedule_after(out.delay, [this, gen, label] {
    std::lock_guard lock(mutex_);
    if (gen != pending_gen_) return;  // cancelled or superseded after dequeue
    pending_event_ = 0;
    if (tracing(obs::EventKind::TimerFired)) {
      obs::Event e;
      e.kind = obs::EventKind::TimerFired;
      if (core_.current_step()) e.coords = coords_of(*core_.current_step());
      e.name = label;
      trace_event(std::move(e));
    }
    dispatch(AgentInput::TimerFired{});
  });
}

void AdaptationAgent::apply_disarm_timer(const Output& out) {
  if (pending_event_ != 0) {
    clock_->cancel(pending_event_);
    pending_event_ = 0;
    if (tracing(obs::EventKind::TimerCancelled)) {
      obs::Event e;
      e.kind = obs::EventKind::TimerCancelled;
      e.coords = coords_of(out.ref);
      e.name = out.label;
      trace_event(std::move(e));
    }
  }
  ++pending_gen_;  // invalidate a fire that cancel() was too late to stop
}

}  // namespace sa::proto
