#include "proto/agent.hpp"

#include "util/log.hpp"

namespace sa::proto {

std::string_view to_string(AgentState state) {
  switch (state) {
    case AgentState::Running: return "running";
    case AgentState::Resetting: return "resetting";
    case AgentState::Safe: return "safe";
    case AgentState::Adapted: return "adapted";
    case AgentState::Resuming: return "resuming";
  }
  return "?";
}

AdaptationAgent::AdaptationAgent(runtime::Clock& clock, runtime::Transport& transport,
                                 runtime::NodeId node, runtime::NodeId manager_node,
                                 AdaptableProcess& process, AgentConfig config)
    : clock_(&clock), transport_(&transport), node_(node), manager_(manager_node),
      process_(&process), config_(config) {
  transport_->set_handler(node_, [this](runtime::NodeId from, runtime::MessagePtr message) {
    on_message(from, std::move(message));
  });
}

template <typename Msg>
void AdaptationAgent::send(const StepRef& step, Msg prototype) {
  prototype.step = step;
  transport_->send(node_, manager_, std::make_shared<Msg>(std::move(prototype)));
}

void AdaptationAgent::schedule_pending(runtime::Time delay, std::function<void()> body) {
  const std::uint64_t gen = ++pending_gen_;
  pending_event_ = clock_->schedule_after(delay, [this, gen, body = std::move(body)] {
    std::lock_guard lock(mutex_);
    if (gen != pending_gen_) return;  // cancelled or superseded after dequeue
    pending_event_ = 0;
    body();
  });
}

void AdaptationAgent::cancel_pending() {
  if (pending_event_ != 0) {
    clock_->cancel(pending_event_);
    pending_event_ = 0;
  }
  ++pending_gen_;  // invalidate a fire that cancel() was too late to stop
}

void AdaptationAgent::on_message(runtime::NodeId from, runtime::MessagePtr message) {
  std::lock_guard lock(mutex_);
  if (from != manager_) {
    SA_WARN("agent") << "node " << node_ << ": message from non-manager node " << from;
    return;
  }
  if (const auto* reset = dynamic_cast<const ResetMsg*>(message.get())) {
    on_reset(*reset);
  } else if (const auto* resume = dynamic_cast<const ResumeMsg*>(message.get())) {
    on_resume(*resume);
  } else if (const auto* rollback = dynamic_cast<const RollbackMsg*>(message.get())) {
    on_rollback(*rollback);
  } else {
    SA_WARN("agent") << "node " << node_ << ": unexpected message " << message->type_name();
  }
}

void AdaptationAgent::on_reset(const ResetMsg& msg) {
  if (current_step_ && *current_step_ == msg.step && state_ != AgentState::Running) {
    // Retransmission of the step we are working on: re-acknowledge progress.
    ++stats_.duplicate_messages;
    if (state_ == AgentState::Safe) {
      send<ResetDoneMsg>(msg.step);
    } else if (state_ == AgentState::Adapted) {
      send<ResetDoneMsg>(msg.step);
      send<AdaptDoneMsg>(msg.step);
    }
    return;
  }
  if (state_ != AgentState::Running) {
    SA_WARN("agent") << "node " << node_ << ": reset " << msg.step.describe() << " while "
                     << to_string(state_) << " on " << current_step_->describe() << "; ignored";
    return;
  }
  if (last_completed_ && *last_completed_ == msg.step) {
    ++stats_.duplicate_messages;
    ResumeDoneMsg ack;
    ack.blocked_for = last_blocked_for_;
    send<ResumeDoneMsg>(msg.step, std::move(ack));
    return;
  }
  if (last_rolled_back_ && *last_rolled_back_ == msg.step) {
    ++stats_.duplicate_messages;
    send<RollbackDoneMsg>(msg.step);
    return;
  }

  // Fresh step: running -> resetting.
  ++stats_.resets_handled;
  current_step_ = msg.step;
  current_command_ = msg.command;
  sole_participant_ = msg.sole_participant;
  prepared_ = false;
  state_ = AgentState::Resetting;
  const bool drain = msg.drain;
  SA_DEBUG("agent") << "node " << node_ << ": reset " << msg.step.describe() << " ["
                    << current_command_.describe() << (drain ? ", drain" : "") << "]";

  schedule_pending(config_.pre_action_duration, [this, drain] {
    prepared_ = process_->prepare(current_command_);
    if (!prepared_) {
      SA_WARN("agent") << "node " << node_ << ": pre-action failed; holding in resetting state";
      return;  // manager's reset timeout will trigger rollback
    }
    if (config_.fail_to_reset) {
      SA_DEBUG("agent") << "node " << node_ << ": injected fail-to-reset";
      return;  // never reach the safe state
    }
    process_->reach_safe_state(drain, [this] { enter_safe_state(); });
  });
}

void AdaptationAgent::enter_safe_state() {
  std::lock_guard lock(mutex_);
  state_ = AgentState::Safe;
  blocked_since_ = clock_->now();
  send<ResetDoneMsg>(*current_step_);
  start_in_action();
}

void AdaptationAgent::start_in_action() {
  schedule_pending(config_.in_action_duration, [this] {
    if (!process_->apply(current_command_)) {
      SA_WARN("agent") << "node " << node_ << ": in-action failed; holding in safe state";
      return;  // manager's adapt timeout will trigger rollback
    }
    ++stats_.adapts_performed;
    state_ = AgentState::Adapted;
    send<AdaptDoneMsg>(*current_step_);
    if (sole_participant_) {
      // Fig. 1: the only process involved proceeds straight to resuming
      // without blocking for the manager's resume message.
      state_ = AgentState::Resuming;
      schedule_pending(config_.resume_duration, [this] { finish_resume(/*proactive=*/true); });
    }
  });
}

void AdaptationAgent::finish_resume(bool proactive) {
  process_->resume();
  last_blocked_for_ = clock_->now() - blocked_since_;
  stats_.total_blocked += last_blocked_for_;
  last_completed_ = *current_step_;
  const StepRef step = *current_step_;
  state_ = AgentState::Running;
  current_step_.reset();
  ResumeDoneMsg ack;
  ack.blocked_for = last_blocked_for_;
  send<ResumeDoneMsg>(step, std::move(ack));
  process_->cleanup(current_command_);
  SA_DEBUG("agent") << "node " << node_ << ": resumed " << step.describe()
                    << (proactive ? " (sole participant)" : "") << ", blocked "
                    << last_blocked_for_ << "us";
}

void AdaptationAgent::on_resume(const ResumeMsg& msg) {
  if (state_ == AgentState::Adapted && current_step_ && *current_step_ == msg.step) {
    state_ = AgentState::Resuming;
    schedule_pending(config_.resume_duration, [this] { finish_resume(/*proactive=*/false); });
    return;
  }
  if (state_ == AgentState::Resuming && current_step_ && *current_step_ == msg.step) {
    ++stats_.duplicate_messages;  // ack already on its way
    return;
  }
  if (state_ == AgentState::Running && last_completed_ && *last_completed_ == msg.step) {
    ++stats_.duplicate_messages;
    ResumeDoneMsg ack;
    ack.blocked_for = last_blocked_for_;
    send<ResumeDoneMsg>(msg.step, std::move(ack));
    return;
  }
  SA_WARN("agent") << "node " << node_ << ": unexpected resume " << msg.step.describe()
                   << " while " << to_string(state_);
}

void AdaptationAgent::on_rollback(const RollbackMsg& msg) {
  const bool matches_current = current_step_ && *current_step_ == msg.step;
  switch (state_) {
    case AgentState::Resetting:
    case AgentState::Safe: {
      if (!matches_current) break;
      // Pre-action or in-action timer may still be pending; cancel it. No
      // undo is needed: the in-action has not mutated anything yet.
      cancel_pending();
      process_->abort_safe_state();
      ++stats_.rollbacks_performed;
      last_rolled_back_ = msg.step;
      current_step_.reset();
      state_ = AgentState::Running;
      send<RollbackDoneMsg>(msg.step);
      return;
    }
    case AgentState::Adapted: {
      if (!matches_current) break;
      // Undo the in-action, then unblock. Modeled with the in-action
      // duration since it performs the symmetric structural change.
      state_ = AgentState::Resuming;
      schedule_pending(config_.in_action_duration, [this, msg] {
        process_->undo(current_command_);
        process_->resume();
        stats_.total_blocked += clock_->now() - blocked_since_;
        ++stats_.rollbacks_performed;
        last_rolled_back_ = msg.step;
        current_step_.reset();
        state_ = AgentState::Running;
        send<RollbackDoneMsg>(msg.step);
      });
      return;
    }
    case AgentState::Resuming:
      // A rollback racing a resume in flight; ignore — the manager will
      // observe resume done / retry, and the completed path takes over.
      SA_WARN("agent") << "node " << node_ << ": rollback during resuming ignored";
      return;
    case AgentState::Running: {
      if (last_rolled_back_ && *last_rolled_back_ == msg.step) {
        ++stats_.duplicate_messages;
        send<RollbackDoneMsg>(msg.step);
        return;
      }
      if (last_completed_ && *last_completed_ == msg.step) {
        // We resumed proactively (sole participant) but the manager timed out
        // (e.g. lost adapt done) and aborted: compensate by re-quiescing,
        // undoing the in-action, and resuming the old structure.
        process_->reach_safe_state(false, [this, msg] {
          std::lock_guard lock(mutex_);
          process_->undo(current_command_);
          process_->resume();
          ++stats_.rollbacks_performed;
          last_rolled_back_ = msg.step;
          last_completed_.reset();
          send<RollbackDoneMsg>(msg.step);
        });
        return;
      }
      // Step never reached us (reset lost entirely): nothing to undo.
      send<RollbackDoneMsg>(msg.step);
      return;
    }
  }
  SA_WARN("agent") << "node " << node_ << ": unexpected rollback " << msg.step.describe()
                   << " while " << to_string(state_);
}

}  // namespace sa::proto
