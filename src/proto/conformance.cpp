#include "proto/conformance.hpp"

#include <sstream>

#include "proto/messages.hpp"

namespace sa::proto {

namespace {

struct StepKey {
  std::uint64_t request = 0;
  std::uint32_t plan = 0;
  std::uint32_t index = 0;
  std::uint32_t attempt = 0;
  auto operator<=>(const StepKey&) const = default;
};

StepKey key_of(const StepRef& ref) {
  return StepKey{ref.request_id, ref.plan, ref.step_index, ref.attempt};
}

std::string describe(const StepKey& key) {
  return "req" + std::to_string(key.request) + ".plan" + std::to_string(key.plan) + ".step" +
         std::to_string(key.index) + ".try" + std::to_string(key.attempt);
}

struct AgentStepState {
  bool reset_received = false;
  bool rollback_received = false;
  bool adapt_done_seen = false;  // delivered to the manager
};

struct StepState {
  bool resume_seen = false;    // any resume delivered to any agent
  bool rollback_seen = false;  // any rollback delivered to any agent
  std::map<runtime::NodeId, AgentStepState> agents;
};

}  // namespace

std::vector<ConformanceViolation> ConformanceChecker::check(
    const std::vector<runtime::TraceEntry>& trace) const {
  std::vector<ConformanceViolation> violations;
  std::map<StepKey, StepState> steps;

  const auto violate = [&violations](runtime::Time time, const std::string& what) {
    violations.push_back(ConformanceViolation{time, what});
  };

  for (const runtime::TraceEntry& entry : trace) {
    if (!entry.delivered || !entry.message) continue;
    const auto* proto = dynamic_cast<const ProtoMessage*>(entry.message.get());
    if (!proto) continue;  // application traffic
    const StepKey key = key_of(proto->step);
    StepState& step = steps[key];

    if (entry.from == manager_) {
      AgentStepState& agent = step.agents[entry.to];
      if (dynamic_cast<const ResetMsg*>(proto) != nullptr) {
        agent.reset_received = true;
      } else if (dynamic_cast<const ResumeMsg*>(proto) != nullptr) {
        // §4.3: resume only once every involved agent finished its in-action.
        // The recipient's own adapt done must already have reached the
        // manager (control channels are FIFO, so delivery order is evidence).
        if (!agent.adapt_done_seen) {
          violate(entry.time, describe(key) + ": resume delivered to agent " +
                                  std::to_string(entry.to) + " before its adapt done");
        }
        step.resume_seen = true;
        if (step.rollback_seen) {
          violate(entry.time,
                  describe(key) + ": step has both rollback and resume (must be exclusive)");
        }
      } else if (dynamic_cast<const RollbackMsg*>(proto) != nullptr) {
        agent.rollback_received = true;
        step.rollback_seen = true;
        if (step.resume_seen) {
          violate(entry.time,
                  describe(key) + ": rollback after resume violates the §4.4 rule");
        }
      }
      continue;
    }

    if (entry.to == manager_) {
      AgentStepState& agent = step.agents[entry.from];
      const bool is_reset_done = dynamic_cast<const ResetDoneMsg*>(proto) != nullptr;
      const bool is_adapt_done = dynamic_cast<const AdaptDoneMsg*>(proto) != nullptr;
      const bool is_resume_done = dynamic_cast<const ResumeDoneMsg*>(proto) != nullptr;
      const bool is_rollback_done = dynamic_cast<const RollbackDoneMsg*>(proto) != nullptr;
      if ((is_reset_done || is_adapt_done || is_resume_done) && !agent.reset_received) {
        // An agent cannot make progress on a step whose reset it never got.
        std::ostringstream what;
        what << describe(key) << ": agent " << entry.from << " sent " << entry.type
             << " without having received a reset";
        violate(entry.time, what.str());
      }
      // resume done implies the in-action completed (a sole participant's
      // proactive resume done may legitimately subsume a lost adapt done).
      if (is_adapt_done || is_resume_done) agent.adapt_done_seen = true;
      if (is_rollback_done && !agent.rollback_received && agent.reset_received) {
        // rollback done for a step the agent worked on, without a rollback
        // command, is spontaneous undoing — a violation. (A rollback done for
        // an unknown step is the legitimate no-op acknowledgement.)
        violate(entry.time, describe(key) + ": agent " + std::to_string(entry.from) +
                                " sent rollback done without a rollback command");
      }
      continue;
    }
  }
  return violations;
}

}  // namespace sa::proto
