#include "proto/conformance.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "proto/messages.hpp"

namespace sa::proto {

namespace {

struct StepKey {
  std::uint64_t request = 0;
  std::uint32_t plan = 0;
  std::uint32_t index = 0;
  std::uint32_t attempt = 0;
  auto operator<=>(const StepKey&) const = default;
};

StepKey key_of(const StepRef& ref) {
  return StepKey{ref.request_id, ref.plan, ref.step_index, ref.attempt};
}

std::string describe(const StepKey& key) {
  return "req" + std::to_string(key.request) + ".plan" + std::to_string(key.plan) + ".step" +
         std::to_string(key.index) + ".try" + std::to_string(key.attempt);
}

struct AgentStepState {
  bool reset_received = false;
  bool rollback_received = false;
  bool adapt_done_seen = false;  // delivered to the manager
};

struct StepState {
  bool resume_seen = false;    // any resume delivered to any agent
  bool rollback_seen = false;  // any rollback delivered to any agent
  std::map<runtime::NodeId, AgentStepState> agents;
};

/// Order-insensitive digest of a commit's payload: shard ids + target bits.
/// Two deliveries of the SAME sealed epoch hash equal (retransmission); a
/// reused epoch number carrying different work does not.
std::uint64_t digest_targets(const std::vector<ShardTarget>& targets) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const ShardTarget& target : targets) {
    std::uint64_t v = (static_cast<std::uint64_t>(target.shard) << 32) ^ target.target.bits();
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 27;
    h ^= v;  // xor: slice order on the wire is irrelevant
  }
  return h;
}

/// Per directed coordinator link: every committed epoch and its payload.
struct LinkState {
  std::map<std::uint64_t, std::uint64_t> committed;  // epoch -> payload digest
  std::uint64_t max_epoch = 0;
};

}  // namespace

bool ConformanceChecker::is_manager(runtime::NodeId node) const {
  return std::find(managers_.begin(), managers_.end(), node) != managers_.end();
}

std::vector<ConformanceViolation> ConformanceChecker::check(
    const std::vector<runtime::TraceEntry>& trace) const {
  std::vector<ConformanceViolation> violations;
  std::map<StepKey, StepState> steps;
  std::map<std::pair<runtime::NodeId, runtime::NodeId>, LinkState> links;

  const auto violate = [&violations](runtime::Time time, const std::string& what) {
    violations.push_back(ConformanceViolation{time, what});
  };

  for (const runtime::TraceEntry& entry : trace) {
    if (!entry.delivered || !entry.message) continue;

    // Coordinator vocabulary first: CoordMessage is a sibling hierarchy of
    // ProtoMessage, keyed by epoch instead of step coordinates.
    if (const auto* coord = dynamic_cast<const CoordMessage*>(entry.message.get())) {
      if (const auto* commit = dynamic_cast<const EpochCommitMsg*>(coord)) {
        LinkState& link = links[{entry.from, entry.to}];
        const std::uint64_t digest = digest_targets(commit->targets);
        const auto seen = link.committed.find(commit->epoch);
        if (seen != link.committed.end()) {
          if (seen->second != digest) {
            violate(entry.time, "link " + std::to_string(entry.from) + "->" +
                                    std::to_string(entry.to) + ": epoch " +
                                    std::to_string(commit->epoch) +
                                    " committed twice with different targets "
                                    "(out-of-epoch commit)");
          }
          // Identical payload: a legitimate retransmission.
        } else {
          if (commit->epoch < link.max_epoch) {
            violate(entry.time, "link " + std::to_string(entry.from) + "->" +
                                    std::to_string(entry.to) + ": epoch " +
                                    std::to_string(commit->epoch) +
                                    " committed after epoch " +
                                    std::to_string(link.max_epoch) +
                                    " (epoch numbers must not regress)");
          }
          link.committed.emplace(commit->epoch, digest);
          link.max_epoch = std::max(link.max_epoch, commit->epoch);
        }
      } else if (const auto* done = dynamic_cast<const EpochDoneMsg*>(coord)) {
        // The reverse link must have committed this epoch.
        const auto reverse = links.find({entry.to, entry.from});
        if (reverse == links.end() || !reverse->second.committed.contains(done->epoch)) {
          violate(entry.time, "link " + std::to_string(entry.from) + "->" +
                                  std::to_string(entry.to) + ": epoch done for epoch " +
                                  std::to_string(done->epoch) + " that was never committed");
        }
      }
      continue;
    }

    const auto* proto = dynamic_cast<const ProtoMessage*>(entry.message.get());
    if (!proto) continue;  // application traffic
    const StepKey key = key_of(proto->step);
    StepState& step = steps[key];

    if (is_manager(entry.from)) {
      AgentStepState& agent = step.agents[entry.to];
      if (dynamic_cast<const ResetMsg*>(proto) != nullptr) {
        agent.reset_received = true;
      } else if (dynamic_cast<const ResumeMsg*>(proto) != nullptr) {
        // §4.3: resume only once every involved agent finished its in-action.
        // The recipient's own adapt done must already have reached the
        // manager (control channels are FIFO, so delivery order is evidence).
        if (!agent.adapt_done_seen) {
          violate(entry.time, describe(key) + ": resume delivered to agent " +
                                  std::to_string(entry.to) + " before its adapt done");
        }
        step.resume_seen = true;
        if (step.rollback_seen) {
          violate(entry.time,
                  describe(key) + ": step has both rollback and resume (must be exclusive)");
        }
      } else if (dynamic_cast<const RollbackMsg*>(proto) != nullptr) {
        agent.rollback_received = true;
        step.rollback_seen = true;
        if (step.resume_seen) {
          violate(entry.time,
                  describe(key) + ": rollback after resume violates the §4.4 rule");
        }
      }
      continue;
    }

    if (is_manager(entry.to)) {
      AgentStepState& agent = step.agents[entry.from];
      const bool is_reset_done = dynamic_cast<const ResetDoneMsg*>(proto) != nullptr;
      const bool is_adapt_done = dynamic_cast<const AdaptDoneMsg*>(proto) != nullptr;
      const bool is_resume_done = dynamic_cast<const ResumeDoneMsg*>(proto) != nullptr;
      const bool is_rollback_done = dynamic_cast<const RollbackDoneMsg*>(proto) != nullptr;
      if ((is_reset_done || is_adapt_done || is_resume_done) && !agent.reset_received) {
        // An agent cannot make progress on a step whose reset it never got.
        std::ostringstream what;
        what << describe(key) << ": agent " << entry.from << " sent " << entry.type
             << " without having received a reset";
        violate(entry.time, what.str());
      }
      // resume done implies the in-action completed (a sole participant's
      // proactive resume done may legitimately subsume a lost adapt done).
      if (is_adapt_done || is_resume_done) agent.adapt_done_seen = true;
      if (is_rollback_done && !agent.rollback_received && agent.reset_received) {
        // rollback done for a step the agent worked on, without a rollback
        // command, is spontaneous undoing — a violation. (A rollback done for
        // an unknown step is the legitimate no-op acknowledgement.)
        violate(entry.time, describe(key) + ": agent " + std::to_string(entry.from) +
                                " sent rollback done without a rollback command");
      }
      continue;
    }
  }
  return violations;
}

}  // namespace sa::proto
