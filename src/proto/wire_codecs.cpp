#include "proto/wire_codecs.hpp"

#include <memory>

#include "proto/messages.hpp"
#include "runtime/wire.hpp"

namespace sa::proto {

namespace {

using runtime::WireError;
using runtime::WireReader;
using runtime::WireWriter;

// Stable codec ids. Never renumber: old trace artifacts embed these.
enum : std::uint16_t {
  kIdReset = 1,
  kIdResetDone = 2,
  kIdAdaptDone = 3,
  kIdResume = 4,
  kIdResumeDone = 5,
  kIdRollback = 6,
  kIdRollbackDone = 7,
  kIdEpochCommit = 8,
  kIdEpochDone = 9,
};

void put_step(const StepRef& step, WireWriter& w) {
  w.u64(step.request_id);
  w.u32(step.plan);
  w.u32(step.step_index);
  w.u32(step.attempt);
}

StepRef get_step(WireReader& r) {
  StepRef step;
  step.request_id = r.u64();
  step.plan = r.u32();
  step.step_index = r.u32();
  step.attempt = r.u32();
  return step;
}

void put_strings(const std::vector<std::string>& v, WireWriter& w) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const std::string& s : v) w.str(s);
}

std::vector<std::string> get_strings(WireReader& r, const char* what) {
  const std::size_t count = r.vec_len(/*min_element_bytes=*/4, what);
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(r.str());
  return out;
}

void put_result(const AdaptationResult& res, WireWriter& w) {
  w.u8(static_cast<std::uint8_t>(res.outcome));
  w.u64(res.final_config.bits());
  w.u64(res.steps_committed);
  w.u64(res.step_failures);
  w.u64(res.plans_tried);
  w.u64(res.message_retries);
  w.i64(res.started);
  w.i64(res.finished);
  w.str(res.detail);
}

AdaptationResult get_result(WireReader& r) {
  AdaptationResult res;
  const std::uint8_t outcome = r.u8();
  if (outcome > static_cast<std::uint8_t>(AdaptationOutcome::StalledAfterResume)) {
    throw WireError("wire: invalid adaptation outcome " + std::to_string(outcome));
  }
  res.outcome = static_cast<AdaptationOutcome>(outcome);
  res.final_config = config::Configuration(r.u64());
  res.steps_committed = r.u64();
  res.step_failures = r.u64();
  res.plans_tried = r.u64();
  res.message_retries = r.u64();
  res.started = r.i64();
  res.finished = r.i64();
  res.detail = r.str();
  return res;
}

/// Encode/decode pair for the five ProtoMessages that carry only a StepRef.
template <typename Msg>
void register_step_only(std::uint16_t id, const char* type_name) {
  runtime::register_wire_codec(
      id, type_name,
      [](const runtime::Message& m, WireWriter& w) {
        put_step(static_cast<const ProtoMessage&>(m).step, w);
      },
      [](WireReader& r) -> runtime::MessagePtr {
        auto msg = std::make_shared<Msg>();
        msg->step = get_step(r);
        return msg;
      });
}

void put_ctx(const CausalContext& ctx, WireWriter& w) {
  w.u64(ctx.ticket);
  w.u64(ctx.epoch);
  w.u64(ctx.parent_span);
}

CausalContext get_ctx(WireReader& r) {
  CausalContext ctx;
  ctx.ticket = r.u64();
  ctx.epoch = r.u64();
  ctx.parent_span = r.u64();
  return ctx;
}

}  // namespace

void register_wire_codecs() {
  runtime::register_wire_codec(
      kIdReset, "reset",
      [](const runtime::Message& m, WireWriter& w) {
        const auto& msg = static_cast<const ResetMsg&>(m);
        put_step(msg.step, w);
        put_strings(msg.command.remove, w);
        put_strings(msg.command.add, w);
        w.u8(msg.drain ? 1 : 0);
        w.u8(msg.sole_participant ? 1 : 0);
      },
      [](WireReader& r) -> runtime::MessagePtr {
        auto msg = std::make_shared<ResetMsg>();
        msg->step = get_step(r);
        msg->command.remove = get_strings(r, "reset removes");
        msg->command.add = get_strings(r, "reset adds");
        msg->drain = r.u8() != 0;
        msg->sole_participant = r.u8() != 0;
        return msg;
      });

  register_step_only<ResetDoneMsg>(kIdResetDone, "reset done");
  register_step_only<AdaptDoneMsg>(kIdAdaptDone, "adapt done");
  register_step_only<ResumeMsg>(kIdResume, "resume");

  runtime::register_wire_codec(
      kIdResumeDone, "resume done",
      [](const runtime::Message& m, WireWriter& w) {
        const auto& msg = static_cast<const ResumeDoneMsg&>(m);
        put_step(msg.step, w);
        w.i64(msg.blocked_for);
      },
      [](WireReader& r) -> runtime::MessagePtr {
        auto msg = std::make_shared<ResumeDoneMsg>();
        msg->step = get_step(r);
        msg->blocked_for = r.i64();
        return msg;
      });

  register_step_only<RollbackMsg>(kIdRollback, "rollback");
  register_step_only<RollbackDoneMsg>(kIdRollbackDone, "rollback done");

  runtime::register_wire_codec(
      kIdEpochCommit, "epoch commit",
      [](const runtime::Message& m, WireWriter& w) {
        const auto& msg = static_cast<const EpochCommitMsg&>(m);
        w.u64(msg.epoch);
        put_ctx(msg.ctx, w);
        w.u32(static_cast<std::uint32_t>(msg.targets.size()));
        for (const ShardTarget& t : msg.targets) {
          w.u32(t.shard);
          w.u64(t.target.bits());
        }
      },
      [](WireReader& r) -> runtime::MessagePtr {
        auto msg = std::make_shared<EpochCommitMsg>();
        msg->epoch = r.u64();
        msg->ctx = get_ctx(r);
        const std::size_t count = r.vec_len(/*min_element_bytes=*/12, "epoch targets");
        msg->targets.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          ShardTarget t;
          t.shard = r.u32();
          t.target = config::Configuration(r.u64());
          msg->targets.push_back(t);
        }
        return msg;
      });

  runtime::register_wire_codec(
      kIdEpochDone, "epoch done",
      [](const runtime::Message& m, WireWriter& w) {
        const auto& msg = static_cast<const EpochDoneMsg&>(m);
        w.u64(msg.epoch);
        put_ctx(msg.ctx, w);
        w.u32(static_cast<std::uint32_t>(msg.outcomes.size()));
        for (const ShardOutcome& o : msg.outcomes) {
          w.u32(o.shard);
          w.u8(o.reported ? 1 : 0);
          put_result(o.result, w);
        }
      },
      [](WireReader& r) -> runtime::MessagePtr {
        auto msg = std::make_shared<EpochDoneMsg>();
        msg->epoch = r.u64();
        msg->ctx = get_ctx(r);
        const std::size_t count = r.vec_len(/*min_element_bytes=*/5, "epoch outcomes");
        msg->outcomes.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          ShardOutcome o;
          o.shard = r.u32();
          o.reported = r.u8() != 0;
          o.result = get_result(r);
          msg->outcomes.push_back(std::move(o));
        }
        return msg;
      });
}

}  // namespace sa::proto
