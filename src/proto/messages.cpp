#include "proto/messages.hpp"

namespace sa::proto {

std::string LocalCommand::describe() const {
  std::string out;
  for (const std::string& name : remove) {
    if (!out.empty()) out += ' ';
    out += '-' + name;
  }
  for (const std::string& name : add) {
    if (!out.empty()) out += ' ';
    out += '+' + name;
  }
  return out.empty() ? "(no-op)" : out;
}

std::string StepRef::describe() const {
  return "req" + std::to_string(request_id) + ".plan" + std::to_string(plan) + ".step" +
         std::to_string(step_index) + ".try" + std::to_string(attempt);
}

}  // namespace sa::proto
