#include "proto/adaptable_process.hpp"

#include "util/log.hpp"

namespace sa::proto {

FilterChainProcess::FilterChainProcess(components::FilterChain& chain, FilterFactory factory)
    : chain_(&chain), factory_(std::move(factory)) {}

bool FilterChainProcess::prepare(const LocalCommand& command) {
  // Instantiate every component the in-action will insert. New components
  // stay staged (and blocked, in the paper's terms) until apply().
  for (const std::string& name : command.add) {
    if (staged_.contains(name) || chain_->has_filter(name)) return false;
    components::FilterPtr filter = factory_ ? factory_(name) : nullptr;
    if (!filter) {
      SA_WARN("process") << chain_->name() << ": cannot instantiate component " << name;
      staged_.clear();
      return false;
    }
    staged_.emplace(name, std::move(filter));
  }
  // Everything slated for removal must actually be present.
  for (const std::string& name : command.remove) {
    if (!chain_->has_filter(name)) {
      staged_.clear();
      return false;
    }
  }
  return true;
}

void FilterChainProcess::reach_safe_state(bool drain, std::function<void()> reached) {
  chain_->request_quiescence(std::move(reached),
                             drain ? components::FilterChain::QuiescenceMode::Drain
                                   : components::FilterChain::QuiescenceMode::Packet);
}

void FilterChainProcess::abort_safe_state() {
  chain_->cancel_quiescence();
  staged_.clear();
}

bool FilterChainProcess::apply(const LocalCommand& command) {
  removed_.clear();
  // Single-for-single commands replace in place to preserve chain position
  // (a decoder swap must not move relative to other filters), and offer the
  // successor the predecessor's internal state — both are quiescent here.
  if (command.remove.size() == 1 && command.add.size() == 1) {
    const auto it = staged_.find(command.add.front());
    if (it == staged_.end()) return false;
    components::FilterPtr replacement = it->second;
    components::FilterPtr old = chain_->replace_filter(command.remove.front(), replacement);
    if (!old) return false;
    replacement->adopt_state(*old);
    removed_.emplace(command.remove.front(), std::move(old));
    staged_.erase(it);
    return true;
  }
  for (const std::string& name : command.remove) {
    components::FilterPtr old = chain_->remove_filter(name);
    if (!old) return false;
    removed_.emplace(name, std::move(old));
  }
  for (const std::string& name : command.add) {
    const auto it = staged_.find(name);
    if (it == staged_.end()) return false;
    chain_->append_filter(it->second);
    staged_.erase(it);
  }
  return true;
}

bool FilterChainProcess::undo(const LocalCommand& command) {
  // Reverse apply(): pull the added filters back out, put the removed ones
  // back, preserving the in-place position for 1-for-1 replacements. The
  // discarded new components are simply destroyed (they never ran unblocked).
  if (command.remove.size() == 1 && command.add.size() == 1) {
    const auto it = removed_.find(command.remove.front());
    if (it == removed_.end()) return false;
    if (!chain_->replace_filter(command.add.front(), it->second)) return false;
    removed_.clear();
    staged_.clear();
    return true;
  }
  for (const std::string& name : command.add) {
    chain_->remove_filter(name);
  }
  for (auto& [name, filter] : removed_) {
    chain_->append_filter(std::move(filter));
  }
  removed_.clear();
  staged_.clear();
  return true;
}

void FilterChainProcess::resume() { chain_->resume(); }

void FilterChainProcess::cleanup(const LocalCommand& command) {
  (void)command;
  // Post-action: drop any unused staged components. The filters removed by
  // the in-action are retained until the next apply() so that a compensating
  // rollback (sole-participant resume raced by a manager abort) can still
  // undo the step; apply() clears them.
  staged_.clear();
}

}  // namespace sa::proto
