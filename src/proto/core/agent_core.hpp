// Sans-I/O core of the per-process adaptation agent (paper §4, Figure 1).
//
// The complete Fig. 1 automaton — reset/quiesce, in-action, proactive or
// commanded resume, rollback/compensation, and idempotent re-acknowledgement
// of retransmitted manager messages — as a pure, copyable state machine.
// Interaction with the local AdaptableProcess is expressed as Process*
// Outputs; the driver performs the real call and reports the completion back
// as an AgentLocalEvent (reset complete / in-action complete / ...), so the
// core never blocks, locks, or reads a clock. Time arrives as data on each
// Input and is used only to attribute blocked-time durations.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "proto/core/io.hpp"
#include "proto/core/states.hpp"
#include "proto/messages.hpp"

namespace sa::proto {

struct AgentConfig {
  runtime::Time pre_action_duration = runtime::ms(1);   ///< component initialization
  runtime::Time in_action_duration = runtime::ms(2);    ///< structural change
  runtime::Time resume_duration = runtime::us(200);     ///< unblocking
  /// Failure injection: when set, the agent never reaches its safe state
  /// (models a process stuck in a long critical communication segment).
  bool fail_to_reset = false;
};

struct AgentStats {
  std::uint64_t resets_handled = 0;
  std::uint64_t adapts_performed = 0;
  std::uint64_t rollbacks_performed = 0;
  std::uint64_t duplicate_messages = 0;
  runtime::Time total_blocked = 0;  ///< cumulative time the process spent blocked
};

class AgentCore {
 public:
  explicit AgentCore(AgentConfig config = {}) : config_(config) {}

  AgentState state() const { return state_; }
  const AgentStats& stats() const { return stats_; }
  const std::optional<StepRef>& current_step() const { return current_step_; }

  void set_fail_to_reset(bool fail) { config_.fail_to_reset = fail; }

  /// The step most recently resumed to completion — the key of the
  /// idempotent re-ack bookkeeping, exposed so a distributed agent can
  /// journal it (§4.4 crash recovery).
  const std::optional<StepRef>& last_completed() const { return last_completed_; }

  /// §4.4 crash recovery: a re-exec'd agent restores the journaled
  /// re-ack key and blocked-time tally before processing any input, so a
  /// retransmitted Resume for an already-completed step is re-acked instead
  /// of re-executed. Only meaningful on a freshly constructed (Running) core.
  void restore_recovery(std::optional<StepRef> last_completed, runtime::Time total_blocked) {
    last_completed_ = std::move(last_completed);
    stats_.total_blocked = total_blocked;
  }

  /// Consumes one input and returns the ordered side effects it caused.
  /// Every Send is addressed to the manager; every Process* operation to the
  /// agent's own AdaptableProcess.
  std::vector<Output> step(const AgentInput& input);

  /// Mixes all protocol-relevant state (not timestamps) into `h`.
  void fingerprint(std::uint64_t& h) const;

 private:
  /// What the agent's single pending-action timer slot is waiting for.
  enum class Pending : std::uint8_t { PreAction, InAction, Resume, RollbackUndo };
  /// Why the core asked the process to reach its safe state.
  enum class SafeWait : std::uint8_t { None, Reset, Compensate };

  void on_message(const runtime::MessagePtr& message);
  void on_reset(const ResetMsg& msg);
  void on_resume(const ResumeMsg& msg);
  void on_rollback(const RollbackMsg& msg);
  void on_timer_fired();
  void on_local(AgentLocalEvent event);
  void enter_safe_state();
  void finish_resume();

  void set_state(AgentState next);
  void arm_pending(Pending kind, runtime::Time delay, const char* label);
  void cancel_pending();
  template <typename Msg>
  void send(const StepRef& step, Msg prototype = {});
  void note_duplicate(const char* type);
  Output& emit(OutputKind kind);

  AgentConfig config_;

  AgentState state_ = AgentState::Running;
  std::optional<StepRef> current_step_;
  LocalCommand current_command_;
  bool sole_participant_ = false;
  bool prepared_ = false;
  bool drain_ = false;  ///< drain flag of the step being reset

  bool pending_armed_ = false;
  Pending pending_kind_ = Pending::PreAction;
  const char* pending_label_ = "";

  SafeWait safe_wait_ = SafeWait::None;
  StepRef compensate_step_;  ///< step being compensated (SafeWait::Compensate)

  runtime::Time blocked_since_ = 0;
  std::optional<StepRef> last_completed_;  ///< resumed successfully
  runtime::Time last_blocked_for_ = 0;
  std::optional<StepRef> last_rolled_back_;

  AgentStats stats_;

  runtime::Time now_ = 0;    ///< timestamp of the input being processed
  std::vector<Output> out_;  ///< effects of the input being processed
};

}  // namespace sa::proto
