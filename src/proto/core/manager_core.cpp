#include "proto/core/manager_core.hpp"

#include <algorithm>
#include <climits>
#include <stdexcept>

namespace sa::proto {

namespace {

inline void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

inline void mix_str(std::uint64_t& h, const char* s) {
  for (; *s != '\0'; ++s) mix(h, static_cast<std::uint64_t>(*s));
}

}  // namespace

ManagerCore::ManagerCore(const config::InvariantSet& invariants,
                         const actions::ActionTable& table, const actions::PathPlanner& planner,
                         ManagerConfig config)
    : invariants_(&invariants), table_(&table), planner_(&planner), config_(config) {}

void ManagerCore::register_agent(config::ProcessId process, int stage) {
  const auto it = std::lower_bound(
      stages_.begin(), stages_.end(), process,
      [](const auto& entry, config::ProcessId p) { return entry.first < p; });
  if (it != stages_.end() && it->first == process) {
    it->second = stage;
  } else {
    stages_.insert(it, {process, stage});
  }
}

int ManagerCore::stage_of(config::ProcessId process) const {
  for (const auto& [p, stage] : stages_) {
    if (p == process) return stage;
  }
  throw std::logic_error("no agent registered for process " + std::to_string(process));
}

bool ManagerCore::has_agent(config::ProcessId process) const {
  for (const auto& [p, stage] : stages_) {
    if (p == process) return true;
  }
  return false;
}

Output& ManagerCore::emit(OutputKind kind) {
  Output& out = out_.emplace_back();
  out.kind = kind;
  out.ref = current_ref();
  out.request_id = request_id_;
  return out;
}

std::vector<Output> ManagerCore::step(const ManagerInput& input) {
  out_.clear();
  // out_ leaves by move every step, so it re-starts with zero capacity; one
  // up-front block avoids a realloc cascade of ~300-byte Outputs per input.
  out_.reserve(8);
  now_ = input.now;
  if (const auto* cmd = std::get_if<ManagerInput::AdaptCommand>(&input.event)) {
    if (busy()) throw std::logic_error("adaptation request while another is in flight");
    cause_span_ = cmd->cause_span;
    handle_request(cmd->target);
  } else if (const auto* msg = std::get_if<ManagerInput::MessageDelivered>(&input.event)) {
    handle_message(msg->from, msg->message);
  } else if (const auto* fired = std::get_if<ManagerInput::TimerFired>(&input.event)) {
    if (fired->timer == ManagerTimer::Protocol) {
      if (!protocol_timer_armed_) return std::move(out_);  // stale fire
      protocol_timer_armed_ = false;
      on_timeout(ManagerTimer::Protocol);
    } else {
      if (!stage_delay_armed_) return std::move(out_);
      stage_delay_armed_ = false;
      send_stage_resets(stage_delay_stage_);
      arm_timer(config_.reset_timeout, "reset-timeout");
    }
  }
  return std::move(out_);
}

void ManagerCore::set_phase(ManagerPhase next) {
  if (phase_ == next) return;
  Output& out = emit(OutputKind::Transition);
  out.phase_from = phase_;
  out.phase_to = next;
  phase_ = next;
}

void ManagerCore::send(config::ProcessId to, runtime::MessagePtr message) {
  Output& out = emit(OutputKind::Send);
  out.process = to;
  out.message = std::move(message);
}

void ManagerCore::arm_timer(runtime::Time timeout, const char* label) {
  disarm_timer();
  protocol_timer_label_ = label;
  protocol_timer_armed_ = true;
  Output& out = emit(OutputKind::ArmTimer);
  out.timer = ManagerTimer::Protocol;
  out.delay = timeout;
  out.label = label;
}

void ManagerCore::disarm_timer() {
  if (protocol_timer_armed_) {
    protocol_timer_armed_ = false;
    Output& out = emit(OutputKind::DisarmTimer);
    out.timer = ManagerTimer::Protocol;
    out.label = protocol_timer_label_;
  }
  if (stage_delay_armed_) {
    stage_delay_armed_ = false;
    Output& out = emit(OutputKind::DisarmTimer);
    out.timer = ManagerTimer::StageDelay;
    out.label = "inter-stage-delay";
  }
}

LocalCommand ManagerCore::command_for(config::ProcessId process) const {
  const actions::AdaptiveAction& action = table_->action(plan_.steps[step_index_].action);
  const auto& registry = table_->registry();
  LocalCommand command;
  for (const config::ComponentId id : action.removes.components(registry.size())) {
    if (registry.process(id) == process) command.remove.push_back(registry.name(id));
  }
  for (const config::ComponentId id : action.adds.components(registry.size())) {
    if (registry.process(id) == process) command.add.push_back(registry.name(id));
  }
  return command;
}

void ManagerCore::handle_request(const config::Configuration& target) {
  request_id_ = next_request_id_++;
  source_ = current_;
  target_ = target;
  result_ = AdaptationResult{};
  result_.started = now_;
  returning_to_source_ = false;
  alternatives_tried_ = 0;
  plan_counter_ = 0;

  Output& out = emit(OutputKind::AdaptationRequested);
  out.name = "adaptation";
  out.parent_span = cause_span_;
  out.detail =
      current_.describe(table_->registry()) + " -> " + target.describe(table_->registry());

  if (current_ == target_) {
    finish(AdaptationOutcome::Success, "already at target configuration");
    return;
  }
  set_phase(ManagerPhase::Preparing);
  const auto plan = planner_->minimum_path(current_, target_);
  if (!plan || plan->empty()) {
    finish(AdaptationOutcome::NoPathFound, "no safe adaptation path from " +
                                               current_.describe(table_->registry()) + " to " +
                                               target_.describe(table_->registry()));
    return;
  }
  start_plan(*plan);
}

void ManagerCore::start_plan(actions::AdaptationPlan plan) {
  plan_ = std::move(plan);
  plan_number_ = plan_counter_++;
  step_index_ = 0;
  step_attempt_ = 0;
  Output& out = emit(OutputKind::PlanComputed);
  out.name = "map";
  out.detail = plan_.action_names(*table_);
  out.value = plan_.total_cost;
  out.has_value = true;
  out.extra = static_cast<double>(plan_.steps.size());
  execute_current_step();
}

void ManagerCore::execute_current_step() {
  const actions::PlanStep& plan_step = plan_.steps[step_index_];
  const actions::AdaptiveAction& action = table_->action(plan_step.action);
  const auto& registry = table_->registry();

  involved_ = action.affected_processes(registry, registry.size());
  for (const config::ProcessId process : involved_) {
    if (!has_agent(process)) {
      throw std::logic_error("no agent registered for process " + std::to_string(process));
    }
  }
  // Stage ordering + drain flags: upstream agents quiesce first; agents
  // beyond the step's minimum involved stage drain their input queues so the
  // global safe condition (receivers processed everything senders emitted)
  // holds before any in-action.
  min_stage_ = stage_of(involved_.front());
  int max_stage = min_stage_;
  for (const config::ProcessId process : involved_) {
    min_stage_ = std::min(min_stage_, stage_of(process));
    max_stage = std::max(max_stage, stage_of(process));
  }
  drain_set_.clear();
  for (const config::ProcessId process : involved_) {
    if (max_stage > min_stage_ && stage_of(process) > min_stage_) drain_set_.insert(process);
  }

  reset_acked_.clear();
  adapt_acked_.clear();
  resume_acked_.clear();
  rollback_acked_.clear();
  resume_sent_ = false;
  retries_left_ = config_.message_retries;
  current_stage_ = min_stage_;

  set_phase(ManagerPhase::Adapting);
  Output& out = emit(OutputKind::StepStarted);
  out.name = action.name;
  out.detail = action.operation_text(registry);
  out.value = static_cast<double>(involved_.size());
  out.has_value = true;
  send_stage_resets(current_stage_);
  arm_timer(config_.reset_timeout, "reset-timeout");
}

void ManagerCore::send_stage_resets(int stage) {
  for (const config::ProcessId process : involved_) {
    if (stage_of(process) != stage) continue;
    auto msg = std::make_shared<ResetMsg>();
    msg->step = current_ref();
    msg->command = command_for(process);
    msg->drain = drain_set_.contains(process);
    msg->sole_participant = involved_.size() == 1;
    send(process, std::move(msg));
  }
}

void ManagerCore::maybe_advance_stage() {
  // All resets of stages <= current acknowledged?
  for (const config::ProcessId process : involved_) {
    if (stage_of(process) <= current_stage_ && !reset_acked_.contains(process)) return;
  }
  // Find the next involved stage.
  int next_stage = INT_MAX;
  for (const config::ProcessId process : involved_) {
    const int stage = stage_of(process);
    if (stage > current_stage_) next_stage = std::min(next_stage, stage);
  }
  if (next_stage == INT_MAX) return;  // no further stages
  // Let in-flight application data reach the downstream processes before
  // asking them to drain and block.
  current_stage_ = next_stage;
  stage_delay_stage_ = next_stage;
  stage_delay_armed_ = true;
  Output& out = emit(OutputKind::ArmTimer);
  out.timer = ManagerTimer::StageDelay;
  out.delay = config_.inter_stage_delay;
  out.label = "inter-stage-delay";
}

void ManagerCore::handle_message(config::ProcessId from, const runtime::MessagePtr& message) {
  const auto* proto = dynamic_cast<const ProtoMessage*>(message.get());
  if (!proto) return;  // the driver warns about non-protocol traffic
  if (!(proto->step == current_ref())) return;  // stale step attempt
  switch (proto->kind()) {
    case MsgKind::ResetDone:
      on_reset_done(from);
      break;
    case MsgKind::AdaptDone:
      on_adapt_done(from);
      break;
    case MsgKind::ResumeDone:
      on_resume_done(from, static_cast<const ResumeDoneMsg&>(*proto));
      break;
    case MsgKind::RollbackDone:
      on_rollback_done(from);
      break;
    default:
      break;  // manager-bound traffic only; the driver logs anything else
  }
}

void ManagerCore::on_reset_done(config::ProcessId process) {
  if (phase_ != ManagerPhase::Adapting) return;
  if (reset_acked_.insert(process)) {
    Output& out = emit(OutputKind::ResetAcked);
    out.process = process;
  }
  maybe_advance_stage();
}

std::size_t ManagerCore::adapt_quorum() const {
  // Test-only mutation: claim the global safe state one ack early (§4.3
  // violation) so the explorer can prove it has teeth.
  if (fault_ == ManagerFault::ResumeBeforeLastAdaptDone && involved_.size() >= 2) {
    return involved_.size() - 1;
  }
  return involved_.size();
}

void ManagerCore::on_adapt_done(config::ProcessId process) {
  if (phase_ != ManagerPhase::Adapting) return;
  reset_acked_.insert(process);  // adapt done implies the reset completed
  adapt_acked_.insert(process);
  if (adapt_acked_.size() >= adapt_quorum()) {
    set_phase(ManagerPhase::Adapted);
    enter_resuming();
  }
}

void ManagerCore::enter_resuming() {
  set_phase(ManagerPhase::Resuming);
  resume_sent_ = true;
  retries_left_ = config_.message_retries + config_.run_to_completion_retries;
  for (const config::ProcessId process : involved_) {
    auto msg = std::make_shared<ResumeMsg>();
    msg->step = current_ref();
    send(process, std::move(msg));
  }
  arm_timer(config_.resume_timeout, "resume-timeout");
}

void ManagerCore::on_resume_done(config::ProcessId process, const ResumeDoneMsg& msg) {
  if (phase_ == ManagerPhase::Adapting) {
    // A sole participant resumed proactively and its adapt done was lost:
    // the resume done subsumes it.
    reset_acked_.insert(process);
    adapt_acked_.insert(process);
    resume_acked_.insert(process);
    Output& blocked = emit(OutputKind::BlockedObserved);
    blocked.process = process;
    blocked.blocked = msg.blocked_for;
    if (adapt_acked_.size() == involved_.size()) {
      set_phase(ManagerPhase::Adapted);
      enter_resuming();
      resume_acked_.insert(process);
      if (resume_acked_.size() == involved_.size()) commit_step();
    }
    return;
  }
  if (phase_ != ManagerPhase::Resuming) return;
  if (resume_acked_.insert(process)) {
    Output& blocked = emit(OutputKind::BlockedObserved);
    blocked.process = process;
    blocked.blocked = msg.blocked_for;
  }
  if (resume_acked_.size() == involved_.size()) commit_step();
}

void ManagerCore::commit_step() {
  disarm_timer();
  set_phase(ManagerPhase::Resumed);
  current_ = plan_.steps[step_index_].to;
  ++result_.steps_committed;
  Output& out = emit(OutputKind::StepCommitted);
  out.name = table_->action(plan_.steps[step_index_].action).name;
  out.config = current_;
  if (step_index_ + 1 < plan_.steps.size()) {
    ++step_index_;
    step_attempt_ = 0;
    execute_current_step();
    return;
  }
  if (returning_to_source_) {
    finish(AdaptationOutcome::RolledBackToSource, "returned to source configuration");
  } else {
    finish(AdaptationOutcome::Success, "target configuration reached");
  }
}

template <typename Msg>
void ManagerCore::retransmit_unacked(const char* phase_label, const util::IdSet64& acked,
                                     runtime::Time timeout, const char* timer_label) {
  --retries_left_;
  ++result_.message_retries;
  Output& note = emit(OutputKind::Retransmission);
  note.label = phase_label;
  const StepRef ref = current_ref();
  for (const config::ProcessId process : involved_) {
    if (!acked.contains(process)) {
      auto msg = std::make_shared<Msg>();
      msg->step = ref;
      send(process, std::move(msg));
    }
  }
  arm_timer(timeout, timer_label);
}

void ManagerCore::on_timeout(ManagerTimer /*timer*/) {
  switch (phase_) {
    case ManagerPhase::Adapting: {
      if (retries_left_ > 0) {
        --retries_left_;
        ++result_.message_retries;
        Output& note = emit(OutputKind::Retransmission);
        note.label = "adapting";
        // Retransmit resets to every triggered stage with an agent that has
        // not yet finished its in-action; agents re-acknowledge idempotently.
        // Stages of involved processes are the registration stages, small
        // non-negative ints in practice — collect ascending and dedup flat.
        std::vector<int> stages_to_resend;
        for (const config::ProcessId process : involved_) {
          const int stage = stage_of(process);
          if (stage <= current_stage_ && !adapt_acked_.contains(process)) {
            stages_to_resend.push_back(stage);
          }
        }
        std::sort(stages_to_resend.begin(), stages_to_resend.end());
        stages_to_resend.erase(std::unique(stages_to_resend.begin(), stages_to_resend.end()),
                               stages_to_resend.end());
        for (const int stage : stages_to_resend) send_stage_resets(stage);
        maybe_advance_stage();
        arm_timer(config_.reset_timeout, "reset-timeout");
        return;
      }
      begin_rollback();
      return;
    }
    case ManagerPhase::Resuming: {
      if (retries_left_ > 0) {
        retransmit_unacked<ResumeMsg>("resuming", resume_acked_, config_.resume_timeout,
                                      "resume-timeout");
        return;
      }
      if (fault_ == ManagerFault::RollbackAfterResume) {
        begin_rollback();  // test-only §4.4 violation
        return;
      }
      // §4.4: after the first resume the adaptation must run to completion;
      // if acknowledgements never arrive the structure is adapted everywhere
      // (all adapt done collected) so the step is committed, but the operator
      // is told the protocol stalled.
      current_ = plan_.steps[step_index_].to;
      ++result_.steps_committed;
      Output& out = emit(OutputKind::StepCommitted);
      out.name = table_->action(plan_.steps[step_index_].action).name;
      out.config = current_;
      out.flag = true;  // stalled
      finish(AdaptationOutcome::StalledAfterResume,
             "resume unacknowledged by " +
                 std::to_string(involved_.size() - resume_acked_.size()) + " agent(s)");
      return;
    }
    case ManagerPhase::RollingBack: {
      if (retries_left_ > 0) {
        retransmit_unacked<RollbackMsg>("rolling-back", rollback_acked_,
                                        config_.rollback_timeout, "rollback-timeout");
        return;
      }
      finish(AdaptationOutcome::UserInterventionRequired,
             "rollback unacknowledged; agent states unknown");
      return;
    }
    default:
      break;  // timeout in an unexpected phase; the driver logs it
  }
}

void ManagerCore::begin_rollback() {
  set_phase(ManagerPhase::RollingBack);
  disarm_timer();
  rollback_acked_.clear();
  retries_left_ = config_.message_retries;
  const StepRef ref = current_ref();
  for (const config::ProcessId process : involved_) {
    auto msg = std::make_shared<RollbackMsg>();
    msg->step = ref;
    send(process, std::move(msg));
  }
  arm_timer(config_.rollback_timeout, "rollback-timeout");
}

void ManagerCore::on_rollback_done(config::ProcessId process) {
  if (phase_ != ManagerPhase::RollingBack) return;
  rollback_acked_.insert(process);
  if (rollback_acked_.size() == involved_.size()) step_failed_after_rollback();
}

void ManagerCore::step_failed_after_rollback() {
  disarm_timer();
  ++result_.step_failures;
  Output& out = emit(OutputKind::StepRolledBack);
  out.name = table_->action(plan_.steps[step_index_].action).name;
  try_next_strategy();
}

void ManagerCore::try_next_strategy() {
  // §4.4 strategy chain: (1) retry the step, (2) next-minimum path,
  // (3) return to source, (4) wait for user intervention.
  if (static_cast<int>(step_attempt_) < config_.step_retries) {
    ++step_attempt_;
    execute_current_step();
    return;
  }
  const config::Configuration active_target = returning_to_source_ ? source_ : target_;
  ++alternatives_tried_;
  if (alternatives_tried_ <= config_.max_alternative_paths && !(current_ == active_target)) {
    const auto plans = planner_->ranked_paths(current_, active_target, alternatives_tried_ + 1);
    if (plans.size() > alternatives_tried_) {
      ++result_.plans_tried;
      start_plan(plans[alternatives_tried_]);
      return;
    }
  }
  if (!returning_to_source_ && config_.allow_return_to_source) {
    returning_to_source_ = true;
    alternatives_tried_ = 0;
    if (current_ == source_) {
      finish(AdaptationOutcome::RolledBackToSource, "failed before leaving source configuration");
      return;
    }
    const auto plan = planner_->minimum_path(current_, source_);
    if (plan && !plan->empty()) {
      ++result_.plans_tried;
      start_plan(*plan);
      return;
    }
  }
  finish(AdaptationOutcome::UserInterventionRequired,
         "all adaptation paths failed; system parked at " +
             current_.describe(table_->registry()));
}

void ManagerCore::finish(AdaptationOutcome outcome, std::string detail) {
  disarm_timer();
  set_phase(ManagerPhase::Running);
  result_.outcome = outcome;
  result_.final_config = current_;
  result_.finished = now_;
  result_.detail = std::move(detail);
  Output& out = emit(OutputKind::Outcome);
  out.name = std::string(to_string(outcome));
  out.parent_span = cause_span_;
  out.detail = result_.detail;
  out.config = result_.final_config;
  out.result = result_;
}

void ManagerCore::fingerprint(std::uint64_t& h) const {
  mix(h, static_cast<std::uint64_t>(phase_));
  mix(h, request_id_);
  mix(h, current_.bits());
  mix(h, source_.bits());
  mix(h, target_.bits());
  mix(h, returning_to_source_ ? 1 : 0);
  mix(h, alternatives_tried_);
  mix(h, plan_number_);
  mix(h, plan_counter_);
  mix(h, step_index_);
  mix(h, step_attempt_);
  for (const actions::PlanStep& s : plan_.steps) {
    mix(h, s.action);
    mix(h, s.to.bits());
  }
  for (const config::ProcessId p : involved_) mix(h, p);
  mix(h, drain_set_.mask());
  mix(h, static_cast<std::uint64_t>(current_stage_));
  mix(h, static_cast<std::uint64_t>(min_stage_));
  // Bitmask sets hash in O(1): the mask is the canonical set value.
  mix(h, reset_acked_.mask());
  mix(h, adapt_acked_.mask());
  mix(h, resume_acked_.mask());
  mix(h, rollback_acked_.mask());
  mix(h, resume_sent_ ? 1 : 0);
  mix(h, static_cast<std::uint64_t>(retries_left_));
  mix(h, protocol_timer_armed_ ? 1 : 0);
  if (protocol_timer_armed_) mix_str(h, protocol_timer_label_);
  mix(h, stage_delay_armed_ ? 1 : 0);
  mix(h, static_cast<std::uint64_t>(stage_delay_stage_));
}

void ManagerCore::fingerprint_shared(std::uint64_t& h) const {
  mix(h, static_cast<std::uint64_t>(phase_));
  mix(h, request_id_);
  mix(h, current_.bits());
  mix(h, source_.bits());
  mix(h, target_.bits());
  mix(h, returning_to_source_ ? 1 : 0);
  mix(h, alternatives_tried_);
  mix(h, plan_number_);
  mix(h, plan_counter_);
  mix(h, step_index_);
  mix(h, step_attempt_);
  for (const actions::PlanStep& s : plan_.steps) {
    mix(h, s.action);
    mix(h, s.to.bits());
  }
  // Per-process membership (involved/drain/acked sets) is deliberately left
  // out — it is folded into each agent's orbit sub-fingerprint via
  // process_fingerprint(), so states that differ only by a permutation of
  // interchangeable agents hash identically. Cardinalities stay here: they
  // are permutation-invariant and cheap insurance against orbit collisions.
  mix(h, involved_.size());
  mix(h, drain_set_.size());
  mix(h, static_cast<std::uint64_t>(current_stage_));
  mix(h, static_cast<std::uint64_t>(min_stage_));
  mix(h, reset_acked_.size());
  mix(h, adapt_acked_.size());
  mix(h, resume_acked_.size());
  mix(h, rollback_acked_.size());
  mix(h, resume_sent_ ? 1 : 0);
  mix(h, static_cast<std::uint64_t>(retries_left_));
  mix(h, protocol_timer_armed_ ? 1 : 0);
  if (protocol_timer_armed_) mix_str(h, protocol_timer_label_);
  mix(h, stage_delay_armed_ ? 1 : 0);
  mix(h, static_cast<std::uint64_t>(stage_delay_stage_));
}

std::uint64_t ManagerCore::process_fingerprint(config::ProcessId process) const {
  std::uint64_t bits = 0;
  for (const config::ProcessId p : involved_) {
    if (p == process) {
      bits |= 1U;
      break;
    }
  }
  if (drain_set_.contains(process)) bits |= 1U << 1;
  if (reset_acked_.contains(process)) bits |= 1U << 2;
  if (adapt_acked_.contains(process)) bits |= 1U << 3;
  if (resume_acked_.contains(process)) bits |= 1U << 4;
  if (rollback_acked_.contains(process)) bits |= 1U << 5;
  return bits;
}

}  // namespace sa::proto
