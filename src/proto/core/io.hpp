// The sans-I/O core's effect vocabulary.
//
// ManagerCore and AgentCore are pure state machines: they consume Inputs
// (message deliveries, timer fires, adaptation commands, local completions)
// and return ordered Output lists describing every side effect the protocol
// wants — sends, timer arms/disarms, automaton transitions, process
// operations, commits, and terminal outcomes. The runtime drivers translate
// Outputs into runtime::Transport sends, runtime::Clock timers, process
// calls, and observability events; the interleaving explorer translates the
// same Outputs into virtual network/timer state and checks safety properties
// against them. Neither core touches a Clock, Transport, mutex, or the obs
// layer: time enters as plain data on each Input, so the cores are copyable
// values that behave identically under the simulator, the threaded backend,
// and the model checker.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "config/configuration.hpp"
#include "proto/core/states.hpp"
#include "proto/messages.hpp"
#include "runtime/message.hpp"
#include "runtime/time.hpp"

namespace sa::proto {

/// Everything the manager can learn about one finished adaptation request.
struct AdaptationResult {
  AdaptationOutcome outcome = AdaptationOutcome::Success;
  config::Configuration final_config;
  std::size_t steps_committed = 0;
  std::size_t step_failures = 0;    ///< rollbacks of individual steps
  std::size_t plans_tried = 1;
  std::size_t message_retries = 0;  ///< retransmission rounds
  runtime::Time started = 0;
  runtime::Time finished = 0;
  std::string detail;
};

/// The manager owns two logical timer slots: the protocol timer (reset /
/// resume / rollback timeout, one at a time) and the inter-stage delay.
enum class ManagerTimer : std::uint8_t { Protocol, StageDelay };

/// The agent owns a single pending-action slot (pre-action, in-action,
/// resume, or rollback-undo — never more than one at a time).
enum class AgentTimer : std::uint8_t { Pending };

/// Local completions an agent driver reports back to its core after
/// executing a ProcessOp (reset complete / in-action complete / ...).
enum class AgentLocalEvent : std::uint8_t {
  PrepareSucceeded,  ///< pre-action built the staged components
  PrepareFailed,     ///< pre-action failed; hold for the manager's timeout
  SafeStateReached,  ///< the process quiesced and is now blocked
  ApplySucceeded,    ///< in-action performed the structural change
  ApplyFailed,       ///< in-action failed; hold for the manager's timeout
};

struct ManagerInput {
  struct AdaptCommand {
    config::Configuration target;
  };
  struct MessageDelivered {
    config::ProcessId from = 0;
    runtime::MessagePtr message;
  };
  struct TimerFired {
    ManagerTimer timer = ManagerTimer::Protocol;
  };

  runtime::Time now = 0;
  std::variant<AdaptCommand, MessageDelivered, TimerFired> event;
};

struct AgentInput {
  struct MessageDelivered {  ///< always from the manager
    runtime::MessagePtr message;
  };
  struct TimerFired {};  ///< the single pending slot

  runtime::Time now = 0;
  std::variant<MessageDelivered, TimerFired, AgentLocalEvent> event;
};

enum class OutputKind : std::uint8_t {
  // --- transport / timer effects (both cores) -------------------------------
  Send,         ///< manager: message -> `process`; agent: message -> manager
  ArmTimer,     ///< start `timer` for `delay`, labelled `label`
  DisarmTimer,  ///< cancel `timer` (emitted only when logically armed)

  // --- automaton bookkeeping ------------------------------------------------
  Transition,     ///< phase_from->phase_to (manager) or state_from->state_to
  StepStarted,    ///< per-step span opens; name/detail describe the action
  StepCommitted,  ///< configuration advanced to `config`; `flag` = stalled
  StepRolledBack, ///< step abandoned after rollback completed
  Outcome,        ///< request terminated; `result` carries the verdict

  // --- request-level notes (manager) ----------------------------------------
  AdaptationRequested,  ///< request accepted (detail = "source -> target")
  PlanComputed,         ///< MAP / alternative path ready (value = cost)
  Retransmission,       ///< a timeout round re-sent messages (label = phase)
  ResetAcked,           ///< first reset done from `process` (latency metric)
  BlockedObserved,      ///< agent reported `blocked` µs of blocking

  // --- process operations (agent core -> its AdaptableProcess) --------------
  ProcessPrepare,    ///< pre-action: prepare(command); report Prepare* back
  ProcessReachSafe,  ///< reach_safe_state(flag = drain); report SafeStateReached
  ProcessAbortSafe,  ///< abort_safe_state()
  ProcessApply,      ///< in-action: apply(command); report Apply* back
  ProcessUndo,       ///< undo(command) (rollback of a successful in-action)
  ProcessResume,     ///< resume full operation
  ProcessCleanup,    ///< post-action: cleanup(command)

  // --- agent notes ----------------------------------------------------------
  DuplicateMessage,  ///< retransmitted manager message absorbed (label = type)
};

/// One side effect requested by a core, in emission order. A single flat
/// struct (rather than a variant) keeps construction sites terse and lets
/// drivers switch on `kind` while ignoring fields a kind does not use.
struct Output {
  OutputKind kind{};
  StepRef ref;                    ///< step coordinates at emission time
  std::uint64_t request_id = 0;   ///< owning request (Transition/Outcome/notes)
  config::ProcessId process = 0;  ///< Send destination / note subject
  runtime::MessagePtr message;    ///< Send payload
  ManagerTimer timer = ManagerTimer::Protocol;  ///< Arm/DisarmTimer slot
  runtime::Time delay = 0;        ///< ArmTimer timeout
  const char* label = "";         ///< timer label / retransmission phase / dup type
  std::string name;               ///< action name (Step*), outcome name
  std::string detail;             ///< human-readable description for traces
  double value = 0;               ///< plan cost, involved count, ...
  bool has_value = false;
  double extra = 0;               ///< secondary number (e.g. plan length)
  config::Configuration config;   ///< StepCommitted: the new configuration
  LocalCommand command;           ///< Process* operand
  bool flag = false;              ///< drain (ProcessReachSafe), stalled (Commit)
  ManagerPhase phase_from = ManagerPhase::Running;  ///< Transition (manager)
  ManagerPhase phase_to = ManagerPhase::Running;
  AgentState state_from = AgentState::Running;      ///< Transition (agent)
  AgentState state_to = AgentState::Running;
  runtime::Time blocked = 0;      ///< BlockedObserved µs
  AdaptationResult result;        ///< Outcome payload
};

}  // namespace sa::proto
