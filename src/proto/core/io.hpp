// The sans-I/O core's effect vocabulary.
//
// ManagerCore and AgentCore are pure state machines: they consume Inputs
// (message deliveries, timer fires, adaptation commands, local completions)
// and return ordered Output lists describing every side effect the protocol
// wants — sends, timer arms/disarms, automaton transitions, process
// operations, commits, and terminal outcomes. The runtime drivers translate
// Outputs into runtime::Transport sends, runtime::Clock timers, process
// calls, and observability events; the interleaving explorer translates the
// same Outputs into virtual network/timer state and checks safety properties
// against them. Neither core touches a Clock, Transport, mutex, or the obs
// layer: time enters as plain data on each Input, so the cores are copyable
// values that behave identically under the simulator, the threaded backend,
// and the model checker.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "config/configuration.hpp"
#include "proto/core/states.hpp"
#include "proto/messages.hpp"
#include "runtime/message.hpp"
#include "runtime/time.hpp"

namespace sa::proto {

// AdaptationResult lives in proto/messages.hpp (coordinator messages carry
// per-shard results up the manager tree); this header re-exports it through
// that include for the cores' pre-existing spelling.

/// The manager owns two logical timer slots: the protocol timer (reset /
/// resume / rollback timeout, one at a time) and the inter-stage delay.
enum class ManagerTimer : std::uint8_t { Protocol, StageDelay };

/// The agent owns a single pending-action slot (pre-action, in-action,
/// resume, or rollback-undo — never more than one at a time).
enum class AgentTimer : std::uint8_t { Pending };

/// The coordinator owns two logical timer slots: the epoch window (closes the
/// accumulating batch) and the commit timeout (orphans unreported shards so a
/// partitioned subtree cannot wedge the epoch pipeline).
enum class CoordinatorTimer : std::uint8_t { Epoch, Commit };

/// Local completions an agent driver reports back to its core after
/// executing a ProcessOp (reset complete / in-action complete / ...).
enum class AgentLocalEvent : std::uint8_t {
  PrepareSucceeded,  ///< pre-action built the staged components
  PrepareFailed,     ///< pre-action failed; hold for the manager's timeout
  SafeStateReached,  ///< the process quiesced and is now blocked
  ApplySucceeded,    ///< in-action performed the structural change
  ApplyFailed,       ///< in-action failed; hold for the manager's timeout
};

struct ManagerInput {
  struct AdaptCommand {
    config::Configuration target;
    std::uint64_t cause_span = 0;  ///< span that caused this request (tracing)
  };
  struct MessageDelivered {
    config::ProcessId from = 0;
    runtime::MessagePtr message;
  };
  struct TimerFired {
    ManagerTimer timer = ManagerTimer::Protocol;
  };

  runtime::Time now = 0;
  std::variant<AdaptCommand, MessageDelivered, TimerFired> event;
};

struct AgentInput {
  struct MessageDelivered {  ///< always from the manager
    runtime::MessagePtr message;
  };
  struct TimerFired {};  ///< the single pending slot

  runtime::Time now = 0;
  std::variant<MessageDelivered, TimerFired, AgentLocalEvent> event;
};

struct CoordinatorInput {
  /// At the root this is an application submission; below the root it is a
  /// parent's EpochCommitMsg, whose epoch number becomes the ticket. Distinct
  /// tickets batching into the same epoch are the group commit.
  struct SubmitRequest {
    std::uint64_t ticket = 0;
    std::vector<ShardTarget> targets;
    std::uint64_t parent_span = 0;  ///< causing span: root ticket span, or the
                                    ///< committing parent's epoch span
  };
  struct ChildDone {  ///< EpochDoneMsg delivered from child index `child`
    std::size_t child = 0;
    std::uint64_t epoch = 0;
    std::vector<ShardOutcome> outcomes;
  };
  struct ShardFinished {  ///< a local lane finished executing one shard
    std::uint64_t epoch = 0;
    std::uint32_t shard = 0;
    AdaptationResult result;
  };
  struct TimerFired {
    CoordinatorTimer timer = CoordinatorTimer::Epoch;
  };

  runtime::Time now = 0;
  std::variant<SubmitRequest, ChildDone, ShardFinished, TimerFired> event;
};

enum class OutputKind : std::uint8_t {
  // --- transport / timer effects (both cores) -------------------------------
  Send,         ///< manager: message -> `process`; agent: message -> manager
  ArmTimer,     ///< start `timer` for `delay`, labelled `label`
  DisarmTimer,  ///< cancel `timer` (emitted only when logically armed)

  // --- automaton bookkeeping ------------------------------------------------
  Transition,     ///< phase_from->phase_to (manager) or state_from->state_to
  StepStarted,    ///< per-step span opens; name/detail describe the action
  StepCommitted,  ///< configuration advanced to `config`; `flag` = stalled
  StepRolledBack, ///< step abandoned after rollback completed
  Outcome,        ///< request terminated; `result` carries the verdict

  // --- request-level notes (manager) ----------------------------------------
  AdaptationRequested,  ///< request accepted (detail = "source -> target")
  PlanComputed,         ///< MAP / alternative path ready (value = cost)
  Retransmission,       ///< a timeout round re-sent messages (label = phase)
  ResetAcked,           ///< first reset done from `process` (latency metric)
  BlockedObserved,      ///< agent reported `blocked` µs of blocking

  // --- process operations (agent core -> its AdaptableProcess) --------------
  ProcessPrepare,    ///< pre-action: prepare(command); report Prepare* back
  ProcessReachSafe,  ///< reach_safe_state(flag = drain); report SafeStateReached
  ProcessAbortSafe,  ///< abort_safe_state()
  ProcessApply,      ///< in-action: apply(command); report Apply* back
  ProcessUndo,       ///< undo(command) (rollback of a successful in-action)
  ProcessResume,     ///< resume full operation
  ProcessCleanup,    ///< post-action: cleanup(command)

  // --- agent notes ----------------------------------------------------------
  DuplicateMessage,  ///< retransmitted manager message absorbed (label = type)

  // --- epoch-batched group commit (coordinator core) ------------------------
  SendParent,      ///< coordinator: message -> its parent coordinator
  ExecuteShard,    ///< drive local shard `shard` to `config` (tagged `epoch`)
  EpochOpened,     ///< a batch began accumulating (`epoch` = number to seal)
  EpochSealed,     ///< batch frozen (value = shard count, extra = coalesced)
  EpochCompleted,  ///< every child/lane reported (extra = orphan count)
  TicketDone,      ///< one submission's `shard_outcomes` ready (root only)
  FlowLink,        ///< causal edge for tracing: `span` caused by `parent_span`
};

/// One side effect requested by a core, in emission order. A single flat
/// struct (rather than a variant) keeps construction sites terse and lets
/// drivers switch on `kind` while ignoring fields a kind does not use.
struct Output {
  OutputKind kind{};
  StepRef ref;                    ///< step coordinates at emission time
  std::uint64_t request_id = 0;   ///< owning request (Transition/Outcome/notes)
  config::ProcessId process = 0;  ///< Send destination / note subject
  runtime::MessagePtr message;    ///< Send payload
  ManagerTimer timer = ManagerTimer::Protocol;  ///< Arm/DisarmTimer slot
  runtime::Time delay = 0;        ///< ArmTimer timeout
  const char* label = "";         ///< timer label / retransmission phase / dup type
  std::string name;               ///< action name (Step*), outcome name
  std::string detail;             ///< human-readable description for traces
  double value = 0;               ///< plan cost, involved count, ...
  bool has_value = false;
  double extra = 0;               ///< secondary number (e.g. plan length)
  config::Configuration config;   ///< StepCommitted: the new configuration
  LocalCommand command;           ///< Process* operand
  bool flag = false;              ///< drain (ProcessReachSafe), stalled (Commit)
  ManagerPhase phase_from = ManagerPhase::Running;  ///< Transition (manager)
  ManagerPhase phase_to = ManagerPhase::Running;
  AgentState state_from = AgentState::Running;      ///< Transition (agent)
  AgentState state_to = AgentState::Running;
  runtime::Time blocked = 0;      ///< BlockedObserved µs
  AdaptationResult result;        ///< Outcome payload / ExecuteShard completion

  // --- coordinator-only fields ----------------------------------------------
  CoordinatorTimer ctimer = CoordinatorTimer::Epoch;  ///< Arm/DisarmTimer slot
  CoordinatorPhase cphase_from = CoordinatorPhase::Idle;  ///< Transition
  CoordinatorPhase cphase_to = CoordinatorPhase::Idle;
  std::uint64_t epoch = 0;   ///< epoch the output belongs to
  std::uint32_t shard = 0;   ///< ExecuteShard subject
  std::uint64_t ticket = 0;  ///< TicketDone subject
  std::vector<ShardOutcome> shard_outcomes;  ///< EpochCompleted / TicketDone

  // --- causal tracing ---------------------------------------------------------
  std::uint64_t span = 0;         ///< span this output belongs to
  std::uint64_t parent_span = 0;  ///< span that caused it (FlowLink / requests)
};

}  // namespace sa::proto
