// Sans-I/O core of the centralized adaptation manager (paper §4, Figure 2).
//
// Pure, deterministic, copyable value state: the complete Fig. 2 automaton —
// MAP planning, staged reset fan-out, the reset/resume/rollback timeout and
// retransmission machinery, the §4.4 failure-strategy chain — with every side
// effect expressed as an Output instead of performed. The runtime driver
// (proto/manager.hpp) executes Outputs against a real Clock/Transport; the
// bounded interleaving explorer (src/check) executes the same Outputs against
// a virtual network and model-checks the safety argument over all schedules.
//
// Determinism contract: step() depends only on the core's value state and the
// Input (including its `now` timestamp). The core never reads a clock, never
// sends, never locks, and never records observability events.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "actions/planner.hpp"
#include "config/enumerate.hpp"
#include "proto/core/io.hpp"
#include "proto/core/states.hpp"
#include "proto/messages.hpp"
#include "util/bitset64.hpp"

namespace sa::proto {

struct ManagerConfig {
  runtime::Time reset_timeout = runtime::ms(150);     ///< reset sent -> all adapt done
  runtime::Time resume_timeout = runtime::ms(100);    ///< resume sent -> all resume done
  runtime::Time rollback_timeout = runtime::ms(100);  ///< rollback sent -> all rollback done
  /// Extra wait between quiescing one stage and resetting the next, covering
  /// data still in flight toward downstream processes (the global safe
  /// condition for sender->receiver actions).
  runtime::Time inter_stage_delay = runtime::ms(15);
  int message_retries = 2;          ///< retransmission rounds per phase
  int run_to_completion_retries = 8;///< extra resume rounds after first resume
  int step_retries = 1;             ///< §4.4: "retries the same step once more"
  std::size_t max_alternative_paths = 3;
  bool allow_return_to_source = true;
};

/// Test-only protocol mutations. The explorer's mutation check enables one of
/// these to prove a broken core is caught with a replayable counterexample;
/// production drivers never set them.
enum class ManagerFault : std::uint8_t {
  None,
  /// Send `resume` as soon as all but one adapt done arrived — a direct
  /// violation of the global-safe-state rule (§4.3).
  ResumeBeforeLastAdaptDone,
  /// Issue a rollback even after a resume was sent for the step, violating
  /// the §4.4 run-to-completion rule.
  RollbackAfterResume,
};

class ManagerCore {
 public:
  /// `invariants`, `table`, and `planner` are shared immutable analysis data
  /// and must outlive the core; everything else is owned value state, so
  /// copies of a core evolve independently (the explorer forks them freely).
  ManagerCore(const config::InvariantSet& invariants, const actions::ActionTable& table,
              const actions::PathPlanner& planner, ManagerConfig config);

  void register_agent(config::ProcessId process, int stage);

  void set_current_configuration(config::Configuration config) { current_ = config; }
  const config::Configuration& current_configuration() const { return current_; }

  ManagerPhase phase() const { return phase_; }
  bool busy() const { return phase_ != ManagerPhase::Running; }
  StepRef current_ref() const {
    return StepRef{request_id_, plan_number_, static_cast<std::uint32_t>(step_index_),
                   step_attempt_};
  }
  std::uint64_t request_id() const { return request_id_; }

  /// Consumes one input and returns the ordered side effects it caused.
  /// Calling step(AdaptCommand) while busy() is a logic error (the driver
  /// guards and throws; the explorer never does it).
  std::vector<Output> step(const ManagerInput& input);

  // --- introspection for the explorer and tests -----------------------------
  const std::vector<config::ProcessId>& involved() const { return involved_; }
  const util::IdSet64& adapt_acked() const { return adapt_acked_; }
  const util::IdSet64& resume_acked() const { return resume_acked_; }
  bool resume_sent() const { return resume_sent_; }

  /// Mixes all protocol-relevant state (not timestamps) into `h` — the
  /// explorer's hashed-state deduplication key.
  void fingerprint(std::uint64_t& h) const;

  /// Symmetry-aware split of fingerprint(): fingerprint_shared() mixes every
  /// field NOT keyed by a process id (per-process set memberships contribute
  /// only their cardinalities), and process_fingerprint() packs the
  /// membership bits of one process (involved / drain / reset-acked /
  /// adapt-acked / resume-acked / rollback-acked). The explorer folds the
  /// latter into per-agent orbit sub-fingerprints so states differing only by
  /// a permutation of interchangeable agents canonicalize identically.
  void fingerprint_shared(std::uint64_t& h) const;
  std::uint64_t process_fingerprint(config::ProcessId process) const;

  /// Test-only: injects a deliberate protocol bug (see ManagerFault).
  void inject_fault(ManagerFault fault) { fault_ = fault; }

 private:
  // Ported 1:1 from the pre-refactor driver; each method appends Outputs in
  // exactly the order the old code performed the matching side effects, which
  // is what keeps same-seed simulator traces byte-identical.
  void handle_request(const config::Configuration& target);
  void handle_message(config::ProcessId from, const runtime::MessagePtr& message);
  void on_reset_done(config::ProcessId process);
  void on_adapt_done(config::ProcessId process);
  void on_resume_done(config::ProcessId process, const ResumeDoneMsg& msg);
  void on_rollback_done(config::ProcessId process);
  void start_plan(actions::AdaptationPlan plan);
  void execute_current_step();
  void send_stage_resets(int stage);
  void maybe_advance_stage();
  void enter_resuming();
  void commit_step();
  void on_timeout(ManagerTimer timer);
  /// Shared timeout arm for the resuming/rolling-back phases: re-send
  /// `make_message()` to every process not yet in `acked`, re-arm `timeout`.
  template <typename Msg>
  void retransmit_unacked(const char* phase_label, const util::IdSet64& acked,
                          runtime::Time timeout, const char* timer_label);
  void begin_rollback();
  void step_failed_after_rollback();
  void try_next_strategy();
  void finish(AdaptationOutcome outcome, std::string detail);
  std::size_t adapt_quorum() const;  ///< acks needed before resume (fault hook)

  LocalCommand command_for(config::ProcessId process) const;
  int stage_of(config::ProcessId process) const;  ///< throws if unregistered
  bool has_agent(config::ProcessId process) const;
  void send(config::ProcessId to, runtime::MessagePtr message);
  void set_phase(ManagerPhase next);
  void arm_timer(runtime::Time timeout, const char* label);
  void disarm_timer();
  Output& emit(OutputKind kind);

  const config::InvariantSet* invariants_;
  const actions::ActionTable* table_;
  const actions::PathPlanner* planner_;
  ManagerConfig config_;
  ManagerFault fault_ = ManagerFault::None;

  /// Agent topology, sorted by process id. Flat (not a std::map) because the
  /// explorer copies the core at every fork: copying this is one allocation
  /// and a memcpy instead of a node allocation per agent. Lookups are linear
  /// — the involved set of a step is a handful of processes.
  std::vector<std::pair<config::ProcessId, int>> stages_;
  config::Configuration current_;

  // --- in-flight request state ---
  ManagerPhase phase_ = ManagerPhase::Running;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t request_id_ = 0;
  std::uint64_t cause_span_ = 0;  ///< tracing only; echoed on request outputs
  config::Configuration source_;
  config::Configuration target_;
  AdaptationResult result_;
  bool returning_to_source_ = false;
  std::size_t alternatives_tried_ = 0;

  actions::AdaptationPlan plan_;
  std::uint32_t plan_number_ = 0;   ///< disambiguates re-planned paths
  std::uint32_t plan_counter_ = 0;  ///< next plan number within the request
  std::size_t step_index_ = 0;
  std::uint32_t step_attempt_ = 0;

  // per-step bookkeeping (bitmask sets: copied by value at every explorer
  // fork, so a std::set node allocation per member would dominate fork cost)
  std::vector<config::ProcessId> involved_;
  util::IdSet64 drain_set_;  ///< involved processes that drain before blocking
  int min_stage_ = 0;
  int current_stage_ = 0;
  util::IdSet64 reset_acked_;
  util::IdSet64 adapt_acked_;
  util::IdSet64 resume_acked_;
  util::IdSet64 rollback_acked_;
  bool resume_sent_ = false;
  int retries_left_ = 0;

  // logical timer slots (the driver maps these onto real TimerIds)
  bool protocol_timer_armed_ = false;
  const char* protocol_timer_label_ = "";
  bool stage_delay_armed_ = false;
  int stage_delay_stage_ = 0;  ///< stage whose resets go out when it fires

  runtime::Time now_ = 0;            ///< timestamp of the input being processed
  std::vector<Output> out_;          ///< effects of the input being processed
};

}  // namespace sa::proto
