#include "proto/core/states.hpp"

namespace sa::proto {

std::string_view to_string(ManagerPhase phase) {
  switch (phase) {
    case ManagerPhase::Running: return "running";
    case ManagerPhase::Preparing: return "preparing";
    case ManagerPhase::Adapting: return "adapting";
    case ManagerPhase::Adapted: return "adapted";
    case ManagerPhase::Resuming: return "resuming";
    case ManagerPhase::Resumed: return "resumed";
    case ManagerPhase::RollingBack: return "rolling-back";
  }
  return "?";
}

std::string_view to_string(AgentState state) {
  switch (state) {
    case AgentState::Running: return "running";
    case AgentState::Resetting: return "resetting";
    case AgentState::Safe: return "safe";
    case AgentState::Adapted: return "adapted";
    case AgentState::Resuming: return "resuming";
  }
  return "?";
}

std::string_view to_string(CoordinatorPhase phase) {
  switch (phase) {
    case CoordinatorPhase::Idle: return "idle";
    case CoordinatorPhase::Batching: return "batching";
    case CoordinatorPhase::Committing: return "committing";
  }
  return "?";
}

std::string_view to_string(AdaptationOutcome outcome) {
  switch (outcome) {
    case AdaptationOutcome::Success: return "success";
    case AdaptationOutcome::NoPathFound: return "no-path-found";
    case AdaptationOutcome::RolledBackToSource: return "rolled-back-to-source";
    case AdaptationOutcome::UserInterventionRequired: return "user-intervention-required";
    case AdaptationOutcome::StalledAfterResume: return "stalled-after-resume";
  }
  return "?";
}

}  // namespace sa::proto
