// The protocol's state vocabulary — the single home of the Figure 1 / Figure 2
// automata states, the terminal adaptation outcomes, and their names.
//
// Everything that talks about manager phases or agent states (the sans-I/O
// cores, the runtime drivers, the observability exporters, the interleaving
// explorer, tools) includes this header, so a state name is rendered the same
// way everywhere and a new state cannot be added in one place but not the
// others.
#pragma once

#include <string_view>

namespace sa::proto {

/// Figure 2: the manager's phases over one adaptation request.
enum class ManagerPhase {
  Running,      ///< fully operational, no adaptation in progress
  Preparing,    ///< MAP creation
  Adapting,     ///< waiting for reset done / adapt done
  Adapted,      ///< all in-actions complete (transient)
  Resuming,     ///< waiting for resume done
  Resumed,      ///< step committed (transient)
  RollingBack   ///< aborting a failed step
};

std::string_view to_string(ManagerPhase phase);

/// Figure 1: the per-process agent automaton.
enum class AgentState { Running, Resetting, Safe, Adapted, Resuming };

std::string_view to_string(AgentState state);

/// The coordinator's epoch pipeline over one manager-tree node (§7 scaled to
/// a fleet): requests batch and coalesce during an epoch window, seal into
/// one group commit, and the next epoch opens only once every child subtree
/// and local lane reported (or the commit timeout orphaned the stragglers).
enum class CoordinatorPhase {
  Idle,        ///< no batch open, no commit in flight
  Batching,    ///< requests accumulate until the epoch window closes
  Committing,  ///< sealed epoch executing below (the next batch may accumulate)
};

std::string_view to_string(CoordinatorPhase phase);

/// Terminal fates of one adaptation request (§4.4 strategy chain).
enum class AdaptationOutcome {
  Success,                   ///< target configuration reached
  NoPathFound,               ///< source or target unsafe, or SAG disconnected
  RolledBackToSource,        ///< target unreachable; system returned to source
  UserInterventionRequired,  ///< all strategies failed; system parked at a safe config
  StalledAfterResume         ///< step committed but some resume unacknowledged
};

std::string_view to_string(AdaptationOutcome outcome);

}  // namespace sa::proto
