#include "proto/core/coordinator_core.hpp"

#include <algorithm>
#include <memory>

namespace sa::proto {

namespace {

/// splitmix64 finalizer — the same mixing the explorer fingerprints use.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

}  // namespace

std::size_t CoordinatorCore::add_child(std::vector<std::uint32_t> shards) {
  std::sort(shards.begin(), shards.end());
  children_.push_back(std::move(shards));
  return children_.size() - 1;
}

void CoordinatorCore::add_local_shard(std::uint32_t shard, std::uint32_t lane) {
  local_lane_[shard] = lane;
}

std::uint64_t CoordinatorCore::wire_epoch() const {
  // The seeded out-of-epoch bug: from the second epoch on, announce the
  // previous epoch's number. Children deduplicate the "stale" commit, its
  // shards orphan at the commit timeout, and the delivered trace shows epoch
  // N committed twice with different targets — which the conformance checker
  // must flag.
  if (fault_ == CoordinatorFault::CommitOutOfEpoch && epoch_ > 1) return epoch_ - 1;
  return epoch_;
}

std::uint64_t CoordinatorCore::epoch_span(std::uint64_t epoch) const {
  return span_of(span_seed_, SpanKind::Epoch, epoch);
}

void CoordinatorCore::note_duplicate(const char* label, std::string detail,
                                     std::vector<Output>& out) {
  Output note;
  note.kind = OutputKind::DuplicateMessage;
  note.label = label;
  note.detail = std::move(detail);
  out.push_back(std::move(note));
}

void CoordinatorCore::transition(CoordinatorPhase to, std::vector<Output>& out) {
  if (to == phase_) return;
  Output t;
  t.kind = OutputKind::Transition;
  t.cphase_from = phase_;
  t.cphase_to = to;
  t.epoch = epoch_;
  phase_ = to;
  out.push_back(std::move(t));
}

void CoordinatorCore::open_epoch(std::vector<Output>& out) {
  transition(CoordinatorPhase::Batching, out);
  Output opened;
  opened.kind = OutputKind::EpochOpened;
  opened.epoch = epoch_ + 1;
  opened.span = epoch_span(epoch_ + 1);
  out.push_back(std::move(opened));
  Output arm;
  arm.kind = OutputKind::ArmTimer;
  arm.ctimer = CoordinatorTimer::Epoch;
  arm.delay = config_.epoch_window;
  arm.label = "epoch window";
  out.push_back(std::move(arm));
}

std::vector<Output> CoordinatorCore::step(const CoordinatorInput& input) {
  std::vector<Output> out;
  if (const auto* submit = std::get_if<CoordinatorInput::SubmitRequest>(&input.event)) {
    on_submit(*submit, input.now, out);
  } else if (const auto* done = std::get_if<CoordinatorInput::ChildDone>(&input.event)) {
    on_child_done(*done, input.now, out);
  } else if (const auto* finished =
                 std::get_if<CoordinatorInput::ShardFinished>(&input.event)) {
    on_shard_finished(*finished, input.now, out);
  } else if (const auto* fired = std::get_if<CoordinatorInput::TimerFired>(&input.event)) {
    if (fired->timer == CoordinatorTimer::Epoch) {
      if (phase_ == CoordinatorPhase::Batching) seal(input.now, out);
    } else {
      on_commit_timeout(input.now, out);
    }
  }
  return out;
}

void CoordinatorCore::on_submit(const CoordinatorInput::SubmitRequest& submit,
                                runtime::Time now, std::vector<Output>& out) {
  (void)now;
  if (has_parent_) {
    // Parent links are epoch-numbered: a re-delivered (or stale, under the
    // CommitOutOfEpoch fault) commit is absorbed, not re-executed.
    if (submit.ticket <= last_parent_ticket_) {
      note_duplicate("epoch commit",
                     "epoch " + std::to_string(submit.ticket) + " already processed", out);
      return;
    }
    last_parent_ticket_ = submit.ticket;
  }

  Ticket ticket;
  ticket.id = submit.ticket;
  ticket.parent_span = submit.parent_span;
  for (const ShardTarget& target : submit.targets) ticket.shards.push_back(target.shard);
  std::sort(ticket.shards.begin(), ticket.shards.end());
  ticket.shards.erase(std::unique(ticket.shards.begin(), ticket.shards.end()),
                      ticket.shards.end());
  tickets_.push_back(std::move(ticket));

  for (const ShardTarget& target : submit.targets) {
    auto [it, inserted] = pending_.emplace(target.shard, target.target);
    if (!inserted) {
      // Group commit: a later request for the same shard within the epoch
      // supersedes the earlier target — one plan per shard per epoch.
      it->second = target.target;
      ++coalesced_;
    }
  }

  if (phase_ == CoordinatorPhase::Idle) open_epoch(out);
  // Batching: already armed. Committing: the batch waits for the in-flight
  // epoch; maybe_complete() opens the next one.
}

void CoordinatorCore::seal(runtime::Time now, std::vector<Output>& out) {
  ++epoch_;
  commit_ = Commit{};
  commit_.wire = wire_epoch();
  commit_.tickets = std::move(tickets_);
  tickets_.clear();

  std::vector<ShardTarget> targets;
  targets.reserve(pending_.size());
  for (const auto& [shard, target] : pending_) targets.push_back(ShardTarget{shard, target});
  pending_.clear();

  Output sealed;
  sealed.kind = OutputKind::EpochSealed;
  sealed.epoch = epoch_;
  sealed.span = epoch_span(epoch_);
  sealed.value = static_cast<double>(targets.size());
  sealed.has_value = true;
  sealed.extra = static_cast<double>(coalesced_);
  out.push_back(std::move(sealed));
  coalesced_ = 0;
  transition(CoordinatorPhase::Committing, out);

  // Causal edges: this epoch's span descends from every ticket batched into
  // it — root ticket spans at the root, the parent's epoch span below it.
  for (const Ticket& ticket : commit_.tickets) {
    if (ticket.parent_span == 0) continue;
    Output link;
    link.kind = OutputKind::FlowLink;
    link.epoch = epoch_;
    link.span = epoch_span(epoch_);
    link.parent_span = ticket.parent_span;
    out.push_back(std::move(link));
  }

  // Partition the batch: each child gets the slice its subtree covers, each
  // local lane gets its queue. Disjoint children and lanes run concurrently.
  for (std::size_t child = 0; child < children_.size(); ++child) {
    auto message = std::make_shared<EpochCommitMsg>();
    message->epoch = commit_.wire;
    message->ctx = CausalContext{commit_.wire, commit_.wire, epoch_span(epoch_)};
    std::vector<std::uint32_t> slice;
    for (const ShardTarget& target : targets) {
      if (std::binary_search(children_[child].begin(), children_[child].end(),
                             target.shard)) {
        message->targets.push_back(target);
        slice.push_back(target.shard);
      }
    }
    if (slice.empty()) continue;
    commit_.child_outstanding.emplace(child, std::move(slice));
    Output send;
    send.kind = OutputKind::Send;
    send.process = static_cast<config::ProcessId>(child);
    send.epoch = commit_.wire;
    send.message = std::move(message);
    out.push_back(std::move(send));
  }
  for (const ShardTarget& target : targets) {
    const auto lane = local_lane_.find(target.shard);
    if (lane == local_lane_.end()) continue;
    commit_.lanes[lane->second].queue.push_back(target);
    ++commit_.local_outstanding;
  }
  for (const auto& [lane, run] : commit_.lanes) {
    Output exec;
    exec.kind = OutputKind::ExecuteShard;
    exec.epoch = epoch_;
    exec.shard = run.queue.front().shard;
    exec.config = run.queue.front().target;
    exec.parent_span = epoch_span(epoch_);
    out.push_back(std::move(exec));
  }
  // Anything routed to neither a child nor a local lane cannot execute:
  // orphan it immediately rather than waiting out the commit timeout.
  for (const ShardTarget& target : targets) {
    const bool local = local_lane_.contains(target.shard);
    bool routed = local;
    for (const auto& [child, slice] : commit_.child_outstanding) {
      routed = routed || std::binary_search(slice.begin(), slice.end(), target.shard);
    }
    if (routed) continue;
    ShardOutcome orphan;
    orphan.shard = target.shard;
    orphan.reported = false;
    orphan.result.outcome = AdaptationOutcome::UserInterventionRequired;
    orphan.result.started = orphan.result.finished = now;
    orphan.result.detail = "orphaned: no subtree covers this shard";
    commit_.collected.emplace(target.shard, std::move(orphan));
  }

  Output arm;
  arm.kind = OutputKind::ArmTimer;
  arm.ctimer = CoordinatorTimer::Commit;
  arm.delay = config_.commit_timeout;
  arm.label = "commit timeout";
  out.push_back(std::move(arm));

  maybe_complete(now, out, /*timed_out=*/false);
}

void CoordinatorCore::on_child_done(const CoordinatorInput::ChildDone& done,
                                    runtime::Time now, std::vector<Output>& out) {
  if (phase_ != CoordinatorPhase::Committing || done.epoch != commit_.wire) {
    note_duplicate("epoch done",
                   "stale report for epoch " + std::to_string(done.epoch), out);
    return;
  }
  const auto outstanding = commit_.child_outstanding.find(done.child);
  if (outstanding == commit_.child_outstanding.end()) {
    note_duplicate("epoch done",
                   "child " + std::to_string(done.child) + " already reported", out);
    return;
  }
  for (const ShardOutcome& outcome : done.outcomes) {
    commit_.collected[outcome.shard] = outcome;  // keep the child's orphan flags
  }
  commit_.child_outstanding.erase(outstanding);
  maybe_complete(now, out, /*timed_out=*/false);
}

void CoordinatorCore::on_shard_finished(const CoordinatorInput::ShardFinished& finished,
                                        runtime::Time now, std::vector<Output>& out) {
  if (phase_ != CoordinatorPhase::Committing || finished.epoch != epoch_) {
    note_duplicate("shard finished",
                   "stale completion for shard " + std::to_string(finished.shard), out);
    return;
  }
  for (auto& [lane, run] : commit_.lanes) {
    if (run.next >= run.queue.size() || run.queue[run.next].shard != finished.shard) continue;
    ShardOutcome outcome;
    outcome.shard = finished.shard;
    outcome.reported = true;
    outcome.result = finished.result;
    commit_.collected[finished.shard] = std::move(outcome);
    ++run.next;
    --commit_.local_outstanding;
    if (run.next < run.queue.size()) {
      // Lane serialization: the next shard of this lane starts only now —
      // its agents drive the same underlying processes. A failed shard does
      // not block the rest of its lane (§4.4 isolation per shard).
      Output exec;
      exec.kind = OutputKind::ExecuteShard;
      exec.epoch = epoch_;
      exec.shard = run.queue[run.next].shard;
      exec.config = run.queue[run.next].target;
      exec.parent_span = epoch_span(epoch_);
      out.push_back(std::move(exec));
    }
    maybe_complete(now, out, /*timed_out=*/false);
    return;
  }
  note_duplicate("shard finished",
                 "no lane is executing shard " + std::to_string(finished.shard), out);
}

void CoordinatorCore::on_commit_timeout(runtime::Time now, std::vector<Output>& out) {
  if (phase_ != CoordinatorPhase::Committing) return;
  const auto orphan = [&](std::uint32_t shard, const char* who) {
    if (commit_.collected.contains(shard)) return;
    ShardOutcome outcome;
    outcome.shard = shard;
    outcome.reported = false;
    outcome.result.outcome = AdaptationOutcome::UserInterventionRequired;
    outcome.result.started = outcome.result.finished = now;
    outcome.result.detail = std::string("orphaned: no report from ") + who +
                            " before the commit timeout";
    commit_.collected.emplace(shard, std::move(outcome));
  };
  for (const auto& [child, slice] : commit_.child_outstanding) {
    for (const std::uint32_t shard : slice) orphan(shard, "child subtree");
  }
  commit_.child_outstanding.clear();
  for (auto& [lane, run] : commit_.lanes) {
    for (std::size_t i = run.next; i < run.queue.size(); ++i) {
      orphan(run.queue[i].shard, "local lane");
    }
    run.next = run.queue.size();
  }
  commit_.local_outstanding = 0;
  maybe_complete(now, out, /*timed_out=*/true);
}

void CoordinatorCore::maybe_complete(runtime::Time now, std::vector<Output>& out,
                                     bool timed_out) {
  if (!commit_.child_outstanding.empty() || commit_.local_outstanding != 0) return;
  if (!timed_out) {
    Output disarm;
    disarm.kind = OutputKind::DisarmTimer;
    disarm.ctimer = CoordinatorTimer::Commit;
    disarm.label = "commit timeout";
    out.push_back(std::move(disarm));
  }

  std::vector<ShardOutcome> outcomes;
  outcomes.reserve(commit_.collected.size());
  std::size_t orphans = 0;
  for (const auto& [shard, outcome] : commit_.collected) {
    orphans += outcome.reported ? 0 : 1;
    outcomes.push_back(outcome);
  }
  Output completed;
  completed.kind = OutputKind::EpochCompleted;
  completed.epoch = epoch_;
  completed.span = epoch_span(epoch_);
  completed.value = static_cast<double>(outcomes.size());
  completed.has_value = true;
  completed.extra = static_cast<double>(orphans);
  completed.shard_outcomes = outcomes;
  out.push_back(std::move(completed));
  ++epochs_completed_;

  // Per-ticket results, in submission order: each ticket learns the fate of
  // exactly the shards it asked for (coalesced shards share one outcome).
  for (const Ticket& ticket : commit_.tickets) {
    std::vector<ShardOutcome> slice;
    for (const std::uint32_t shard : ticket.shards) {
      const auto it = commit_.collected.find(shard);
      if (it != commit_.collected.end()) slice.push_back(it->second);
    }
    if (has_parent_) {
      auto message = std::make_shared<EpochDoneMsg>();
      message->epoch = ticket.id;  // the parent's epoch number
      message->ctx = CausalContext{ticket.id, epoch_, epoch_span(epoch_)};
      message->outcomes = std::move(slice);
      Output send;
      send.kind = OutputKind::SendParent;
      send.epoch = ticket.id;
      send.message = std::move(message);
      out.push_back(std::move(send));
    } else {
      Output done;
      done.kind = OutputKind::TicketDone;
      done.ticket = ticket.id;
      done.epoch = epoch_;
      done.span = ticket.parent_span;  // the root ticket's own span
      done.parent_span = epoch_span(epoch_);
      done.shard_outcomes = std::move(slice);
      out.push_back(std::move(done));
    }
  }
  commit_ = Commit{};

  if (!tickets_.empty() || !pending_.empty()) {
    // Submissions that arrived mid-commit become the next epoch.
    open_epoch(out);
  } else {
    transition(CoordinatorPhase::Idle, out);
  }
  (void)now;
}

void CoordinatorCore::fingerprint(std::uint64_t& h) const {
  h = mix(h, static_cast<std::uint64_t>(phase_));
  h = mix(h, epoch_);
  h = mix(h, last_parent_ticket_);
  h = mix(h, pending_.size());
  for (const auto& [shard, target] : pending_) {
    h = mix(h, shard);
    h = mix(h, target.bits());
  }
  h = mix(h, commit_.child_outstanding.size());
  h = mix(h, commit_.local_outstanding);
  h = mix(h, commit_.collected.size());
}

}  // namespace sa::proto
