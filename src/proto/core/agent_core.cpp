#include "proto/core/agent_core.hpp"

namespace sa::proto {

namespace {

inline void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

inline void mix_ref(std::uint64_t& h, const StepRef& ref) {
  mix(h, ref.request_id);
  mix(h, ref.plan);
  mix(h, ref.step_index);
  mix(h, ref.attempt);
}

inline void mix_command(std::uint64_t& h, const LocalCommand& command) {
  for (const std::string& name : command.remove) {
    for (const char c : name) mix(h, static_cast<std::uint64_t>(c));
  }
  mix(h, 0xabULL);
  for (const std::string& name : command.add) {
    for (const char c : name) mix(h, static_cast<std::uint64_t>(c));
  }
}

}  // namespace

Output& AgentCore::emit(OutputKind kind) {
  Output& out = out_.emplace_back();
  out.kind = kind;
  if (current_step_) out.ref = *current_step_;
  out.request_id = out.ref.request_id;
  return out;
}

template <typename Msg>
void AgentCore::send(const StepRef& step, Msg prototype) {
  prototype.step = step;
  Output& out = emit(OutputKind::Send);
  out.message = std::make_shared<Msg>(std::move(prototype));
}

void AgentCore::set_state(AgentState next) {
  if (state_ == next) return;
  Output& out = emit(OutputKind::Transition);
  out.state_from = state_;
  out.state_to = next;
  state_ = next;
}

void AgentCore::arm_pending(Pending kind, runtime::Time delay, const char* label) {
  pending_armed_ = true;
  pending_kind_ = kind;
  pending_label_ = label;
  Output& out = emit(OutputKind::ArmTimer);
  out.delay = delay;
  out.label = label;
}

void AgentCore::cancel_pending() {
  if (!pending_armed_) return;
  pending_armed_ = false;
  Output& out = emit(OutputKind::DisarmTimer);
  out.label = pending_label_;
}

void AgentCore::note_duplicate(const char* type) {
  ++stats_.duplicate_messages;
  Output& out = emit(OutputKind::DuplicateMessage);
  out.label = type;
}

std::vector<Output> AgentCore::step(const AgentInput& input) {
  out_.clear();
  // out_ leaves by move every step, so it re-starts with zero capacity; one
  // up-front block avoids a realloc cascade of ~300-byte Outputs per input.
  out_.reserve(8);
  now_ = input.now;
  if (const auto* msg = std::get_if<AgentInput::MessageDelivered>(&input.event)) {
    on_message(msg->message);
  } else if (std::get_if<AgentInput::TimerFired>(&input.event) != nullptr) {
    on_timer_fired();
  } else if (const auto* local = std::get_if<AgentLocalEvent>(&input.event)) {
    on_local(*local);
  }
  return std::move(out_);
}

void AgentCore::on_message(const runtime::MessagePtr& message) {
  const auto* proto = dynamic_cast<const ProtoMessage*>(message.get());
  if (proto == nullptr) return;  // non-protocol traffic is the driver's business
  switch (proto->kind()) {
    case MsgKind::Reset:
      on_reset(static_cast<const ResetMsg&>(*proto));
      break;
    case MsgKind::Resume:
      on_resume(static_cast<const ResumeMsg&>(*proto));
      break;
    case MsgKind::Rollback:
      on_rollback(static_cast<const RollbackMsg&>(*proto));
      break;
    default:
      break;  // agent-bound traffic only; the driver logs anything else
  }
}

void AgentCore::on_reset(const ResetMsg& msg) {
  if (current_step_ && *current_step_ == msg.step && state_ != AgentState::Running) {
    // Retransmission of the step we are working on: re-acknowledge progress.
    note_duplicate("reset");
    if (state_ == AgentState::Safe) {
      send<ResetDoneMsg>(msg.step);
    } else if (state_ == AgentState::Adapted) {
      send<ResetDoneMsg>(msg.step);
      send<AdaptDoneMsg>(msg.step);
    }
    return;
  }
  if (state_ != AgentState::Running) return;  // mid-step on another attempt; ignored
  if (last_completed_ && *last_completed_ == msg.step) {
    note_duplicate("reset");
    ResumeDoneMsg ack;
    ack.blocked_for = last_blocked_for_;
    send<ResumeDoneMsg>(msg.step, std::move(ack));
    return;
  }
  if (last_rolled_back_ && *last_rolled_back_ == msg.step) {
    note_duplicate("reset");
    send<RollbackDoneMsg>(msg.step);
    return;
  }

  // Fresh step: running -> resetting.
  ++stats_.resets_handled;
  current_step_ = msg.step;
  current_command_ = msg.command;
  sole_participant_ = msg.sole_participant;
  prepared_ = false;
  drain_ = msg.drain;
  set_state(AgentState::Resetting);
  arm_pending(Pending::PreAction, config_.pre_action_duration, "pre-action");
}

void AgentCore::on_timer_fired() {
  if (!pending_armed_) return;  // stale fire (driver generation guard backs this up)
  pending_armed_ = false;
  switch (pending_kind_) {
    case Pending::PreAction: {
      // Pre-action: the driver runs prepare() and reports Prepare{Succeeded,
      // Failed} back; control flow continues in on_local().
      Output& out = emit(OutputKind::ProcessPrepare);
      out.command = current_command_;
      return;
    }
    case Pending::InAction: {
      Output& out = emit(OutputKind::ProcessApply);
      out.command = current_command_;
      return;
    }
    case Pending::Resume:
      finish_resume();
      return;
    case Pending::RollbackUndo: {
      // Undo the in-action, then unblock — the rollback taken from the
      // adapted state.
      const StepRef step = *current_step_;
      Output& undo = emit(OutputKind::ProcessUndo);
      undo.command = current_command_;
      emit(OutputKind::ProcessResume);
      stats_.total_blocked += now_ - blocked_since_;
      ++stats_.rollbacks_performed;
      last_rolled_back_ = step;
      set_state(AgentState::Running);
      current_step_.reset();
      send<RollbackDoneMsg>(step);
      return;
    }
  }
}

void AgentCore::on_local(AgentLocalEvent event) {
  switch (event) {
    case AgentLocalEvent::PrepareSucceeded: {
      prepared_ = true;
      if (config_.fail_to_reset) return;  // injected: never reach the safe state
      safe_wait_ = SafeWait::Reset;
      Output& out = emit(OutputKind::ProcessReachSafe);
      out.flag = drain_;
      return;
    }
    case AgentLocalEvent::PrepareFailed:
      prepared_ = false;  // hold in resetting; the manager's timeout rolls back
      return;
    case AgentLocalEvent::SafeStateReached: {
      const SafeWait why = safe_wait_;
      safe_wait_ = SafeWait::None;
      if (why == SafeWait::Reset) {
        enter_safe_state();
      } else if (why == SafeWait::Compensate) {
        // We resumed proactively (sole participant) but the manager timed out
        // and aborted: undo the in-action and resume the old structure.
        Output& undo = emit(OutputKind::ProcessUndo);
        undo.command = current_command_;
        emit(OutputKind::ProcessResume);
        ++stats_.rollbacks_performed;
        last_rolled_back_ = compensate_step_;
        last_completed_.reset();
        send<RollbackDoneMsg>(compensate_step_);
      }
      return;
    }
    case AgentLocalEvent::ApplySucceeded: {
      ++stats_.adapts_performed;
      set_state(AgentState::Adapted);
      send<AdaptDoneMsg>(*current_step_);
      if (sole_participant_) {
        // Fig. 1: the only process involved proceeds straight to resuming
        // without blocking for the manager's resume message.
        set_state(AgentState::Resuming);
        arm_pending(Pending::Resume, config_.resume_duration, "resume");
      }
      return;
    }
    case AgentLocalEvent::ApplyFailed:
      return;  // hold in safe; the manager's timeout rolls back
  }
}

void AgentCore::enter_safe_state() {
  set_state(AgentState::Safe);
  blocked_since_ = now_;
  send<ResetDoneMsg>(*current_step_);
  arm_pending(Pending::InAction, config_.in_action_duration, "in-action");
}

void AgentCore::finish_resume() {
  emit(OutputKind::ProcessResume);
  last_blocked_for_ = now_ - blocked_since_;
  stats_.total_blocked += last_blocked_for_;
  last_completed_ = *current_step_;
  const StepRef step = *current_step_;
  set_state(AgentState::Running);
  current_step_.reset();
  ResumeDoneMsg ack;
  ack.blocked_for = last_blocked_for_;
  send<ResumeDoneMsg>(step, std::move(ack));
  Output& cleanup = emit(OutputKind::ProcessCleanup);
  cleanup.command = current_command_;
  cleanup.ref = step;
}

void AgentCore::on_resume(const ResumeMsg& msg) {
  if (state_ == AgentState::Adapted && current_step_ && *current_step_ == msg.step) {
    set_state(AgentState::Resuming);
    arm_pending(Pending::Resume, config_.resume_duration, "resume");
    return;
  }
  if (state_ == AgentState::Resuming && current_step_ && *current_step_ == msg.step) {
    note_duplicate("resume");  // ack already on its way
    return;
  }
  if (state_ == AgentState::Running && last_completed_ && *last_completed_ == msg.step) {
    note_duplicate("resume");
    ResumeDoneMsg ack;
    ack.blocked_for = last_blocked_for_;
    send<ResumeDoneMsg>(msg.step, std::move(ack));
    return;
  }
  // Unexpected resume; the driver logs it.
}

void AgentCore::on_rollback(const RollbackMsg& msg) {
  const bool matches_current = current_step_ && *current_step_ == msg.step;
  switch (state_) {
    case AgentState::Resetting:
    case AgentState::Safe: {
      if (!matches_current) break;
      // Pre-action or in-action timer may still be pending; cancel it. No
      // undo is needed: the in-action has not mutated anything yet.
      cancel_pending();
      safe_wait_ = SafeWait::None;  // a late "safe reached" must not re-block
      emit(OutputKind::ProcessAbortSafe);
      ++stats_.rollbacks_performed;
      last_rolled_back_ = msg.step;
      set_state(AgentState::Running);
      current_step_.reset();
      send<RollbackDoneMsg>(msg.step);
      return;
    }
    case AgentState::Adapted: {
      if (!matches_current) break;
      // Undo the in-action, then unblock. Modeled with the in-action
      // duration since it performs the symmetric structural change.
      set_state(AgentState::Resuming);
      arm_pending(Pending::RollbackUndo, config_.in_action_duration, "rollback-undo");
      return;
    }
    case AgentState::Resuming:
      // A rollback racing a resume in flight; ignore — the manager will
      // observe resume done / retry, and the completed path takes over.
      return;
    case AgentState::Running: {
      if (last_rolled_back_ && *last_rolled_back_ == msg.step) {
        note_duplicate("rollback");
        send<RollbackDoneMsg>(msg.step);
        return;
      }
      if (last_completed_ && *last_completed_ == msg.step) {
        // Compensate: re-quiesce, undo the in-action, resume the old
        // structure (continues in on_local / SafeStateReached).
        safe_wait_ = SafeWait::Compensate;
        compensate_step_ = msg.step;
        Output& out = emit(OutputKind::ProcessReachSafe);
        out.flag = false;
        return;
      }
      // Step never reached us (reset lost entirely): nothing to undo.
      send<RollbackDoneMsg>(msg.step);
      return;
    }
  }
  // Unexpected rollback; the driver logs it.
}

void AgentCore::fingerprint(std::uint64_t& h) const {
  mix(h, static_cast<std::uint64_t>(state_));
  mix(h, current_step_.has_value() ? 1 : 0);
  if (current_step_) mix_ref(h, *current_step_);
  mix_command(h, current_command_);
  mix(h, sole_participant_ ? 1 : 0);
  mix(h, prepared_ ? 1 : 0);
  mix(h, drain_ ? 1 : 0);
  mix(h, pending_armed_ ? 1 : 0);
  if (pending_armed_) mix(h, static_cast<std::uint64_t>(pending_kind_));
  mix(h, static_cast<std::uint64_t>(safe_wait_));
  if (safe_wait_ == SafeWait::Compensate) mix_ref(h, compensate_step_);
  mix(h, last_completed_.has_value() ? 1 : 0);
  if (last_completed_) mix_ref(h, *last_completed_);
  mix(h, last_rolled_back_.has_value() ? 1 : 0);
  if (last_rolled_back_) mix_ref(h, *last_rolled_back_);
}

}  // namespace sa::proto
