// The sans-I/O coordinator: one node of the hierarchical manager tree
// (region -> shard -> collaborative set) that scales the paper's §7
// decomposition from a single flat fan-out to a fleet.
//
// A coordinator owns a set of CHILD coordinators (each covering a subtree of
// shards) and a set of LOCAL shards organized into lanes (shards sharing a
// process serialize into a lane; disjoint lanes execute concurrently —
// exactly the one-level composite's lane rule, now applied per tree node).
// Requests batch per EPOCH:
//
//   Idle --submit--> Batching          open a batch, arm the epoch window
//   Batching --submit--> Batching      coalesce (same shard: later target wins)
//   Batching --epoch window--> Committing
//       seal: one EpochCommitMsg per involved child, the first ExecuteShard
//       of every involved local lane, arm the commit timeout
//   Committing --child done / shard finished--> collect, advance lanes
//   Committing --all reported--> emit per-ticket results, open next batch
//   Committing --commit timeout--> orphan unreported shards, then complete
//
// Partial failure preserves the §4.4 contract per shard: a failed or orphaned
// shard's result never blocks, masks, or rolls back a disjoint shard; results
// aggregate upward as per-shard ShardOutcome lists. Like ManagerCore /
// AgentCore, this class is a pure value: step(Input) -> vector<Output> with
// time as plain data, so one core definition is driven identically by the
// runtime driver, the fuzz campaign, and (being fingerprintable) explorers.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "proto/core/io.hpp"
#include "runtime/time.hpp"

namespace sa::proto {

struct CoordinatorConfig {
  /// How long a freshly-opened batch accumulates before sealing. Interior
  /// coordinators use 0 (their parent already batched; re-batching would
  /// only add latency per level).
  runtime::Time epoch_window = runtime::us(500);
  /// Backstop for partitioned/crashed subtrees: after this long in
  /// Committing, unreported shards are orphaned so the pipeline can advance.
  runtime::Time commit_timeout = runtime::seconds(30);
};

/// Deliberate protocol bugs for the conformance must-fail gate (mirrors
/// ManagerFault): a broken coordinator must be CAUGHT by the trace checker.
enum class CoordinatorFault : std::uint8_t {
  None,
  /// Seals announce a stale epoch number on the wire: children deduplicate
  /// the commit as already-seen, shards orphan, and the trace shows one epoch
  /// committed twice with different targets — an out-of-epoch commit.
  CommitOutOfEpoch,
};

class CoordinatorCore {
 public:
  explicit CoordinatorCore(CoordinatorConfig config = {}) : config_(config) {}

  // --- topology (fixed before the first submit) -----------------------------
  /// Registers a child subtree covering `shards` (sorted, global shard ids);
  /// returns the child index used in ChildDone inputs and Send outputs.
  std::size_t add_child(std::vector<std::uint32_t> shards);
  /// Registers a shard executed by this coordinator's own managers; shards
  /// with equal `lane` serialize, distinct lanes run concurrently.
  void add_local_shard(std::uint32_t shard, std::uint32_t lane);
  void set_has_parent(bool has_parent) { has_parent_ = has_parent; }
  bool has_parent() const { return has_parent_; }
  /// Seed for this coordinator's derived epoch span ids (the driver passes
  /// its NodeId). Epoch N's span is span_of(seed, SpanKind::Epoch, N).
  void set_span_seed(std::uint64_t seed) { span_seed_ = seed; }

  CoordinatorPhase phase() const { return phase_; }
  bool idle() const { return phase_ == CoordinatorPhase::Idle; }
  /// Number of the most recently sealed epoch (0 before the first seal).
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t epochs_completed() const { return epochs_completed_; }

  std::vector<Output> step(const CoordinatorInput& input);

  void inject_fault(CoordinatorFault fault) { fault_ = fault; }

  /// Mixes the coordinator's logical state into `h` (explorer-style dedup).
  void fingerprint(std::uint64_t& h) const;

 private:
  /// One lane's sealed work: targets in shard order, executed sequentially.
  struct LaneRun {
    std::vector<ShardTarget> queue;
    std::size_t next = 0;
  };
  struct Ticket {
    std::uint64_t id = 0;
    std::vector<std::uint32_t> shards;  ///< sorted shard ids it asked for
    std::uint64_t parent_span = 0;      ///< causing span (root ticket span or
                                        ///< the parent's epoch span)
  };
  /// The sealed epoch in flight.
  struct Commit {
    std::uint64_t wire = 0;  ///< epoch number announced on the wire
    std::vector<Ticket> tickets;
    std::map<std::size_t, std::vector<std::uint32_t>> child_outstanding;
    std::map<std::uint32_t, LaneRun> lanes;
    std::size_t local_outstanding = 0;
    std::map<std::uint32_t, ShardOutcome> collected;
  };

  void on_submit(const CoordinatorInput::SubmitRequest& submit, runtime::Time now,
                 std::vector<Output>& out);
  void on_child_done(const CoordinatorInput::ChildDone& done, runtime::Time now,
                     std::vector<Output>& out);
  void on_shard_finished(const CoordinatorInput::ShardFinished& finished, runtime::Time now,
                         std::vector<Output>& out);
  void seal(runtime::Time now, std::vector<Output>& out);
  void on_commit_timeout(runtime::Time now, std::vector<Output>& out);
  /// Completes the epoch once nothing is outstanding; `timed_out` skips the
  /// DisarmTimer (the commit timer already fired).
  void maybe_complete(runtime::Time now, std::vector<Output>& out, bool timed_out);
  void open_epoch(std::vector<Output>& out);
  void transition(CoordinatorPhase to, std::vector<Output>& out);
  std::uint64_t wire_epoch() const;
  std::uint64_t epoch_span(std::uint64_t epoch) const;
  void note_duplicate(const char* label, std::string detail, std::vector<Output>& out);

  CoordinatorConfig config_;
  CoordinatorFault fault_ = CoordinatorFault::None;
  bool has_parent_ = false;
  std::uint64_t span_seed_ = 0;

  std::vector<std::vector<std::uint32_t>> children_;  ///< child -> covered shards
  std::map<std::uint32_t, std::uint32_t> local_lane_;  ///< local shard -> lane

  CoordinatorPhase phase_ = CoordinatorPhase::Idle;
  std::uint64_t epoch_ = 0;
  std::uint64_t epochs_completed_ = 0;
  std::uint64_t last_parent_ticket_ = 0;  ///< dedup for parent re-commits

  // The open batch. Accumulates while Batching — and during Committing, where
  // it becomes the NEXT epoch (group commit across submission bursts).
  std::map<std::uint32_t, config::Configuration> pending_;  ///< shard -> target
  std::size_t coalesced_ = 0;
  std::vector<Ticket> tickets_;

  Commit commit_;
};

}  // namespace sa::proto
