// Protocol messages between the adaptation manager and its agents
// (paper §4.3, Courier-font message names in Figures 1 and 2).
//
// Every message carries the (request, step, attempt) coordinates so agents
// can deduplicate retransmissions: the manager resends unacknowledged
// messages on timeout (loss-of-message handling, §4.4), and agents respond
// idempotently to duplicates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/message.hpp"
#include "runtime/time.hpp"

namespace sa::proto {

/// The local in-action one agent must execute: which components (filters) to
/// remove from and add to its process's chain. Derived by the manager from
/// the adaptive action's removes/adds restricted to that agent's process.
struct LocalCommand {
  std::vector<std::string> remove;
  std::vector<std::string> add;

  bool empty() const { return remove.empty() && add.empty(); }
  std::string describe() const;
  bool operator==(const LocalCommand&) const = default;
};

/// Coordinates identifying one adaptation step attempt. The plan number
/// distinguishes steps of different paths tried within one request (§4.4
/// strategy 2 re-plans reuse step indices); without it, step 0 of an
/// alternative path would alias step 0 of the path it replaced and agents
/// would deduplicate fresh commands as retransmissions.
struct StepRef {
  std::uint64_t request_id = 0;  ///< adaptation request
  std::uint32_t plan = 0;        ///< which path within the request
  std::uint32_t step_index = 0;  ///< index within the path
  std::uint32_t attempt = 0;     ///< retry counter for this step

  bool operator==(const StepRef&) const = default;
  std::string describe() const;
};

/// Closed enumeration of the protocol message types. Receivers on hot paths
/// (the cores' dispatch, the explorer's per-state fingerprint) switch on this
/// tag instead of walking a dynamic_cast chain; dynamic_cast is still used
/// once at the runtime::Message -> ProtoMessage boundary, where non-protocol
/// traffic is possible.
enum class MsgKind : std::uint8_t {
  Reset,
  ResetDone,
  AdaptDone,
  Resume,
  ResumeDone,
  Rollback,
  RollbackDone,
};

struct ProtoMessage : runtime::Message {
  StepRef step;
  virtual MsgKind kind() const = 0;
};

/// manager -> agent: reach your safe state, then perform `command`.
struct ResetMsg final : ProtoMessage {
  LocalCommand command;
  bool drain = false;             ///< also satisfy the global safe condition
  bool sole_participant = false;  ///< Fig. 1: may resume without waiting
  std::string type_name() const override { return "reset"; }
  MsgKind kind() const override { return MsgKind::Reset; }
};

/// agent -> manager: safe state reached, process blocked.
struct ResetDoneMsg final : ProtoMessage {
  std::string type_name() const override { return "reset done"; }
  MsgKind kind() const override { return MsgKind::ResetDone; }
};

/// agent -> manager: local in-action complete.
struct AdaptDoneMsg final : ProtoMessage {
  std::string type_name() const override { return "adapt done"; }
  MsgKind kind() const override { return MsgKind::AdaptDone; }
};

/// manager -> agent: all in-actions complete; resume full operation.
struct ResumeMsg final : ProtoMessage {
  std::string type_name() const override { return "resume"; }
  MsgKind kind() const override { return MsgKind::Resume; }
};

/// agent -> manager: full operation resumed.
struct ResumeDoneMsg final : ProtoMessage {
  runtime::Time blocked_for = 0;  ///< how long the process was blocked (metrics)
  std::string type_name() const override { return "resume done"; }
  MsgKind kind() const override { return MsgKind::ResumeDone; }
};

/// manager -> agent: abort the step; undo any in-action and resume.
struct RollbackMsg final : ProtoMessage {
  std::string type_name() const override { return "rollback"; }
  MsgKind kind() const override { return MsgKind::Rollback; }
};

/// agent -> manager: rollback complete, process back to pre-step state.
struct RollbackDoneMsg final : ProtoMessage {
  std::string type_name() const override { return "rollback done"; }
  MsgKind kind() const override { return MsgKind::RollbackDone; }
};

}  // namespace sa::proto
