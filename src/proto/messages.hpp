// Protocol messages between the adaptation manager and its agents
// (paper §4.3, Courier-font message names in Figures 1 and 2).
//
// Every message carries the (request, step, attempt) coordinates so agents
// can deduplicate retransmissions: the manager resends unacknowledged
// messages on timeout (loss-of-message handling, §4.4), and agents respond
// idempotently to duplicates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/configuration.hpp"
#include "proto/core/states.hpp"
#include "runtime/message.hpp"
#include "runtime/time.hpp"

namespace sa::proto {

/// Everything the manager can learn about one finished adaptation request.
/// Lives here (not io.hpp) because coordinator messages carry per-shard
/// results up the manager tree.
struct AdaptationResult {
  AdaptationOutcome outcome = AdaptationOutcome::Success;
  config::Configuration final_config;
  std::size_t steps_committed = 0;
  std::size_t step_failures = 0;    ///< rollbacks of individual steps
  std::size_t plans_tried = 1;
  std::size_t message_retries = 0;  ///< retransmission rounds
  runtime::Time started = 0;
  runtime::Time finished = 0;
  std::string detail;
};

/// The local in-action one agent must execute: which components (filters) to
/// remove from and add to its process's chain. Derived by the manager from
/// the adaptive action's removes/adds restricted to that agent's process.
struct LocalCommand {
  std::vector<std::string> remove;
  std::vector<std::string> add;

  bool empty() const { return remove.empty() && add.empty(); }
  std::string describe() const;
  bool operator==(const LocalCommand&) const = default;
};

/// Coordinates identifying one adaptation step attempt. The plan number
/// distinguishes steps of different paths tried within one request (§4.4
/// strategy 2 re-plans reuse step indices); without it, step 0 of an
/// alternative path would alias step 0 of the path it replaced and agents
/// would deduplicate fresh commands as retransmissions.
struct StepRef {
  std::uint64_t request_id = 0;  ///< adaptation request
  std::uint32_t plan = 0;        ///< which path within the request
  std::uint32_t step_index = 0;  ///< index within the path
  std::uint32_t attempt = 0;     ///< retry counter for this step

  bool operator==(const StepRef&) const = default;
  std::string describe() const;
};

/// Closed enumeration of the protocol message types. Receivers on hot paths
/// (the cores' dispatch, the explorer's per-state fingerprint) switch on this
/// tag instead of walking a dynamic_cast chain; dynamic_cast is still used
/// once at the runtime::Message -> ProtoMessage boundary, where non-protocol
/// traffic is possible.
enum class MsgKind : std::uint8_t {
  Reset,
  ResetDone,
  AdaptDone,
  Resume,
  ResumeDone,
  Rollback,
  RollbackDone,
};

struct ProtoMessage : runtime::Message {
  StepRef step;
  virtual MsgKind kind() const = 0;
};

/// manager -> agent: reach your safe state, then perform `command`.
struct ResetMsg final : ProtoMessage {
  LocalCommand command;
  bool drain = false;             ///< also satisfy the global safe condition
  bool sole_participant = false;  ///< Fig. 1: may resume without waiting
  std::string type_name() const override { return "reset"; }
  MsgKind kind() const override { return MsgKind::Reset; }
};

/// agent -> manager: safe state reached, process blocked.
struct ResetDoneMsg final : ProtoMessage {
  std::string type_name() const override { return "reset done"; }
  MsgKind kind() const override { return MsgKind::ResetDone; }
};

/// agent -> manager: local in-action complete.
struct AdaptDoneMsg final : ProtoMessage {
  std::string type_name() const override { return "adapt done"; }
  MsgKind kind() const override { return MsgKind::AdaptDone; }
};

/// manager -> agent: all in-actions complete; resume full operation.
struct ResumeMsg final : ProtoMessage {
  std::string type_name() const override { return "resume"; }
  MsgKind kind() const override { return MsgKind::Resume; }
};

/// agent -> manager: full operation resumed.
struct ResumeDoneMsg final : ProtoMessage {
  runtime::Time blocked_for = 0;  ///< how long the process was blocked (metrics)
  std::string type_name() const override { return "resume done"; }
  MsgKind kind() const override { return MsgKind::ResumeDone; }
};

/// manager -> agent: abort the step; undo any in-action and resume.
struct RollbackMsg final : ProtoMessage {
  std::string type_name() const override { return "rollback"; }
  MsgKind kind() const override { return MsgKind::Rollback; }
};

/// agent -> manager: rollback complete, process back to pre-step state.
struct RollbackDoneMsg final : ProtoMessage {
  std::string type_name() const override { return "rollback done"; }
  MsgKind kind() const override { return MsgKind::RollbackDone; }
};

// --- causal tracing ----------------------------------------------------------

/// Namespaces for derived span ids: one id scheme covers root tickets,
/// per-coordinator epochs, and per-manager adaptation requests.
enum class SpanKind : std::uint8_t { Ticket = 1, Epoch = 2, Request = 3 };

/// Derives a stable, collision-resistant span id from (seed, kind, n) —
/// a splitmix64-style finalizer over the three inputs, forced nonzero so 0
/// can mean "no span". Both ends of a protocol edge can compute the same id
/// independently (e.g. an agent derives its manager's request span from the
/// manager's node id and the request id), so no id ever rides a hot message.
constexpr std::uint64_t span_of(std::uint64_t seed, SpanKind kind, std::uint64_t n) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(kind) + 1);
  x ^= n + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x | 1;
}

/// Compact causal context carried on coordinator messages: enough for the
/// receiver to link the work the message causes back to the sender's span
/// tree without any lookup.
struct CausalContext {
  std::uint64_t ticket = 0;       ///< the ticket (child epoch) this commit names
  std::uint64_t epoch = 0;        ///< the sender's epoch number
  std::uint64_t parent_span = 0;  ///< span of the work that caused this message
  bool operator==(const CausalContext&) const = default;
};

// --- hierarchical coordination vocabulary (manager tree, §7 at fleet scale) --

/// One shard's slice of a group commit: drive shard `shard` to `target`.
/// Targets are expressed in the shard's LOCAL component ids; the root
/// coordinator translates global configurations exactly once.
struct ShardTarget {
  std::uint32_t shard = 0;
  config::Configuration target;
  bool operator==(const ShardTarget&) const = default;
};

/// One shard's fate inside a completed epoch. `reported == false` marks an
/// orphan: the commit timeout elapsed before the subtree responsible for the
/// shard reported, so its coordinator synthesized the outcome.
struct ShardOutcome {
  std::uint32_t shard = 0;
  bool reported = true;
  AdaptationResult result;
};

enum class CoordMsgKind : std::uint8_t { EpochCommit, EpochDone };

/// Parent <-> child coordinator traffic. A separate hierarchy from
/// ProtoMessage: coordinator links are keyed by epoch, not step coordinates.
struct CoordMessage : runtime::Message {
  std::uint64_t epoch = 0;  ///< the committing parent's epoch number
  CausalContext ctx;        ///< causal span context (tracing only)
  virtual CoordMsgKind kind() const = 0;
};

/// parent -> child: execute this slice of sealed epoch `epoch`. A child
/// treats each distinct epoch as one submission ticket; re-deliveries of an
/// already-seen epoch are absorbed as duplicates.
struct EpochCommitMsg final : CoordMessage {
  std::vector<ShardTarget> targets;
  std::string type_name() const override { return "epoch commit"; }
  CoordMsgKind kind() const override { return CoordMsgKind::EpochCommit; }
};

/// child -> parent: every shard of `epoch`'s slice terminated (or was
/// orphaned by a deeper timeout), with per-shard §4.4 results.
struct EpochDoneMsg final : CoordMessage {
  std::vector<ShardOutcome> outcomes;
  std::string type_name() const override { return "epoch done"; }
  CoordMsgKind kind() const override { return CoordMsgKind::EpochDone; }
};

}  // namespace sa::proto
