// Trace conformance checking against the paper's protocol automata.
//
// The network records every delivered control message; this checker replays
// that trace and verifies, per (step, attempt, agent), that the observed
// message sequence is a run of the Figure 1 / Figure 2 state machines:
//
//   * an agent acknowledges reset before adapt, adapt before resume;
//   * the manager never sends resume for a step before every involved agent
//     reported adapt done;                         (global safe state, §4.3)
//   * the manager never sends rollback for a step after it sent any resume
//     for that step;                               (§4.4 rollback rule)
//   * duplicate deliveries are permitted everywhere (loss handling re-sends),
//     but out-of-order *first* occurrences are violations.
//
// The manager-tree vocabulary (EpochCommitMsg / EpochDoneMsg) is checked per
// directed coordinator link, independent of the manager set:
//
//   * epoch numbers on a commit link never regress (out-of-epoch commit);
//   * one epoch is never committed twice with DIFFERENT targets — re-sends
//     of an identical commit are legitimate loss handling, a changed payload
//     under a reused epoch number is a broken group commit;
//   * an epoch done only reports an epoch that was committed on the reverse
//     link (phantom completions).
//
// Tests run adaptations under loss/duplication/partition injection and assert
// an empty violation list — turning the paper's safety argument into a
// machine-checked property of every execution the suite produces.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "runtime/transport.hpp"

namespace sa::proto {

struct ConformanceViolation {
  runtime::Time time = 0;
  std::string description;
};

class ConformanceChecker {
 public:
  /// `manager_node` identifies the manager; every other endpoint appearing in
  /// the trace is treated as an agent.
  explicit ConformanceChecker(runtime::NodeId manager_node) : managers_{manager_node} {}
  /// Manager-tree form: every node in `manager_nodes` is a manager endpoint
  /// (one per collaborative set). Coordinator links are recognized by their
  /// message vocabulary and checked regardless of this set.
  explicit ConformanceChecker(std::vector<runtime::NodeId> manager_nodes)
      : managers_(std::move(manager_nodes)) {}

  /// Replays `trace` (delivered entries only) and returns all violations.
  std::vector<ConformanceViolation> check(const std::vector<runtime::TraceEntry>& trace) const;

 private:
  bool is_manager(runtime::NodeId node) const;

  std::vector<runtime::NodeId> managers_;
};

}  // namespace sa::proto
