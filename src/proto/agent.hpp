// Runtime driver for the per-process adaptation agent (paper §4, Figure 1).
//
// The complete Fig. 1 automaton lives in the sans-I/O AgentCore
// (proto/core/agent_core.hpp):
//
//   running --reset--> resetting --[reset complete]/reset done--> safe(blocked)
//   safe --[in-action complete]/adapt done--> adapted(blocked)
//   adapted --resume--> resuming --[resumption complete]/resume done--> running
//   resetting/safe/adapted --rollback--> running
//
// This class is the thin I/O shell: it feeds transport deliveries and timer
// fires into the core, executes the core's Outputs (sends, timers, trace
// events) and performs the requested AdaptableProcess operations, reporting
// their completions back as local events. The agent remains message-driven
// and idempotent: retransmitted manager messages re-elicit the
// acknowledgement appropriate to the agent's progress, which is how
// loss-of-message failures are survived.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "obs/event.hpp"
#include "proto/adaptable_process.hpp"
#include "proto/core/agent_core.hpp"
#include "proto/messages.hpp"
#include "runtime/runtime.hpp"

namespace sa::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace sa::obs

namespace sa::proto {

class AdaptationAgent {
 public:
  /// Attaches to `node` (whose receive handler it takes over) and drives
  /// `process` on behalf of the manager at `manager_node`. Timers come from
  /// `clock`, messages travel over `transport`; on the threaded backend both
  /// may call back concurrently, so every entry point locks `mutex_`.
  AdaptationAgent(runtime::Clock& clock, runtime::Transport& transport, runtime::NodeId node,
                  runtime::NodeId manager_node, AdaptableProcess& process,
                  AgentConfig config = {});
  /// Detaches the receive handler before members die; on the threaded
  /// backend this blocks until any in-flight delivery to this node returns,
  /// so a late retransmission cannot land in a half-destroyed agent.
  ~AdaptationAgent();

  /// Copies taken under the entity lock: runtime threads mutate this state,
  /// so polling during a threaded run must not read it unlocked.
  AgentState state() const {
    std::lock_guard lock(mutex_);
    return core_.state();
  }
  AgentStats stats() const {
    std::lock_guard lock(mutex_);
    return core_.stats();
  }
  runtime::NodeId node() const { return node_; }

  void set_fail_to_reset(bool fail) {
    std::lock_guard lock(mutex_);
    core_.set_fail_to_reset(fail);
  }

  /// §4.4 crash-recovery journal support (distributed backend): the step the
  /// agent last resumed to completion, and the restore used by a re-exec'd
  /// agent to seed its idempotent re-ack bookkeeping from disk.
  std::optional<StepRef> last_completed() const {
    std::lock_guard lock(mutex_);
    return core_.last_completed();
  }
  void restore_recovery(std::optional<StepRef> last_completed, runtime::Time total_blocked) {
    std::lock_guard lock(mutex_);
    core_.restore_recovery(std::move(last_completed), total_blocked);
  }

  /// Wires the observability layer in: Fig. 1 state transitions and the
  /// agent's pre/in/resume action timers flow into `recorder` (when enabled),
  /// duplicate-message counters into `metrics`. `track` identifies this
  /// agent's span track (normally the process id). Null pointers detach.
  void set_observability(obs::TraceRecorder* recorder, obs::MetricsRegistry* metrics,
                         std::int64_t track);

 private:
  void on_message(runtime::NodeId from, runtime::MessagePtr message);
  /// Feeds one input to the core and executes its outputs. Call under mutex_.
  void dispatch(AgentInput::MessageDelivered delivered);
  void dispatch(AgentInput::TimerFired fired);
  void dispatch(AgentLocalEvent event);
  void apply(const std::vector<Output>& outputs);
  void apply_arm_timer(const Output& out);
  void apply_disarm_timer(const Output& out);

  // --- observability (no-ops until set_observability is called) --------------
  bool tracing() const { return recorder_ != nullptr && tracing_enabled(); }
  bool tracing(obs::EventKind kind) const {
    return recorder_ != nullptr && recorder_wants(kind);
  }
  bool tracing_enabled() const;  ///< recorder_->enabled(), out of line
  bool recorder_wants(obs::EventKind kind) const;  ///< recorder_->wants(), out of line
  /// Stamps this agent's track and the current clock time, then records.
  void trace_event(obs::Event event);

  runtime::Clock* clock_;
  runtime::Transport* transport_;
  runtime::NodeId node_;
  runtime::NodeId manager_;
  AdaptableProcess* process_;

  AgentCore core_;

  // --- real timer backing the core's single pending-action slot ---
  runtime::TimerId pending_event_ = 0;
  /// Bumped on every arm/disarm; timer callbacks capture the value at arm
  /// time and bail on mismatch, so a fire that raced a failed cancel() on
  /// the threaded backend cannot mutate state belonging to a newer step.
  std::uint64_t pending_gen_ = 0;

  obs::TraceRecorder* recorder_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::int64_t track_ = obs::kNoTrack;

  /// Serializes message handlers, timer callbacks, and process callbacks.
  /// Recursive: a callback may synchronously re-enter (e.g. reach_safe_state
  /// completing inline while the reset handler still holds the lock).
  mutable std::recursive_mutex mutex_;
};

}  // namespace sa::proto
