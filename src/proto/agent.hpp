// Adaptation agent: the per-process participant in the safe adaptation
// protocol (paper §4, Figure 1).
//
// State machine (solid transitions = normal adaptation, dashed = failure
// handling / rollback):
//
//   running --reset--> resetting --[reset complete]/reset done--> safe(blocked)
//   safe --[in-action complete]/adapt done--> adapted(blocked)
//   adapted --resume--> resuming --[resumption complete]/resume done--> running
//   resetting/safe/adapted --rollback--> running
//
// The agent is message-driven and idempotent: retransmitted manager messages
// re-elicit the acknowledgement appropriate to the agent's progress, which is
// how loss-of-message failures are survived.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

#include "obs/event.hpp"
#include "proto/adaptable_process.hpp"
#include "proto/messages.hpp"
#include "runtime/runtime.hpp"

namespace sa::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace sa::obs

namespace sa::proto {

enum class AgentState { Running, Resetting, Safe, Adapted, Resuming };

std::string_view to_string(AgentState state);

struct AgentConfig {
  runtime::Time pre_action_duration = runtime::ms(1);   ///< component initialization
  runtime::Time in_action_duration = runtime::ms(2);    ///< structural change
  runtime::Time resume_duration = runtime::us(200);     ///< unblocking
  /// Failure injection: when set, the agent never reaches its safe state
  /// (models a process stuck in a long critical communication segment).
  bool fail_to_reset = false;
};

struct AgentStats {
  std::uint64_t resets_handled = 0;
  std::uint64_t adapts_performed = 0;
  std::uint64_t rollbacks_performed = 0;
  std::uint64_t duplicate_messages = 0;
  runtime::Time total_blocked = 0;  ///< cumulative time the process spent blocked
};

class AdaptationAgent {
 public:
  /// Attaches to `node` (whose receive handler it takes over) and drives
  /// `process` on behalf of the manager at `manager_node`. Timers come from
  /// `clock`, messages travel over `transport`; on the threaded backend both
  /// may call back concurrently, so every entry point locks `mutex_`.
  AdaptationAgent(runtime::Clock& clock, runtime::Transport& transport, runtime::NodeId node,
                  runtime::NodeId manager_node, AdaptableProcess& process,
                  AgentConfig config = {});

  /// Copies taken under the entity lock: runtime threads mutate this state,
  /// so polling during a threaded run must not read it unlocked.
  AgentState state() const {
    std::lock_guard lock(mutex_);
    return state_;
  }
  AgentStats stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
  }
  runtime::NodeId node() const { return node_; }

  void set_fail_to_reset(bool fail) { config_.fail_to_reset = fail; }

  /// Wires the observability layer in: Fig. 1 state transitions and the
  /// agent's pre/in/resume action timers flow into `recorder` (when enabled),
  /// duplicate-message counters into `metrics`. `track` identifies this
  /// agent's span track (normally the process id). Null pointers detach.
  void set_observability(obs::TraceRecorder* recorder, obs::MetricsRegistry* metrics,
                         std::int64_t track);

 private:
  void on_message(runtime::NodeId from, runtime::MessagePtr message);
  void on_reset(const ResetMsg& msg);
  void on_resume(const ResumeMsg& msg);
  void on_rollback(const RollbackMsg& msg);

  void enter_safe_state();
  void start_in_action();
  void finish_resume(bool proactive);

  /// Schedules `body` as the agent's single pending pre/in/resume action;
  /// `label` names the action in timer trace events. The callback captures
  /// the current generation and bails on mismatch, so a fire that raced a
  /// failed cancel_pending() on the threaded backend cannot mutate state
  /// that belongs to a newer step. Call under mutex_.
  void schedule_pending(runtime::Time delay, const char* label, std::function<void()> body);
  void cancel_pending();

  template <typename Msg>
  void send(const StepRef& step, Msg prototype = {});

  // --- observability (no-ops until set_observability is called) --------------
  bool tracing() const { return recorder_ != nullptr && tracing_enabled(); }
  bool tracing_enabled() const;  ///< recorder_->enabled(), out of line
  /// Stamps this agent's track and the current clock time, then records.
  void trace_event(obs::Event event);
  /// Records the Fig. 1 transition and updates state_ (no-op if unchanged).
  void set_state(AgentState next);
  /// Duplicate protocol message: bumps stats_ and the per-type counter.
  void note_duplicate(const char* type);

  runtime::Clock* clock_;
  runtime::Transport* transport_;
  runtime::NodeId node_;
  runtime::NodeId manager_;
  AdaptableProcess* process_;
  AgentConfig config_;

  AgentState state_ = AgentState::Running;
  std::optional<StepRef> current_step_;
  LocalCommand current_command_;
  bool sole_participant_ = false;
  bool prepared_ = false;
  runtime::TimerId pending_event_ = 0;  ///< in-flight pre/in-action timer
  const char* pending_label_ = "";      ///< purpose of the pending timer
  std::uint64_t pending_gen_ = 0;       ///< see schedule_pending()
  runtime::Time blocked_since_ = 0;

  obs::TraceRecorder* recorder_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::int64_t track_ = obs::kNoTrack;

  std::optional<StepRef> last_completed_;   ///< resumed successfully
  runtime::Time last_blocked_for_ = 0;
  std::optional<StepRef> last_rolled_back_;

  AgentStats stats_;

  /// Serializes message handlers, timer callbacks, and process callbacks.
  /// Recursive: a callback may synchronously re-enter (e.g. reach_safe_state
  /// completing inline while the reset handler still holds the lock).
  mutable std::recursive_mutex mutex_;
};

}  // namespace sa::proto
