// Adaptation agent: the per-process participant in the safe adaptation
// protocol (paper §4, Figure 1).
//
// State machine (solid transitions = normal adaptation, dashed = failure
// handling / rollback):
//
//   running --reset--> resetting --[reset complete]/reset done--> safe(blocked)
//   safe --[in-action complete]/adapt done--> adapted(blocked)
//   adapted --resume--> resuming --[resumption complete]/resume done--> running
//   resetting/safe/adapted --rollback--> running
//
// The agent is message-driven and idempotent: retransmitted manager messages
// re-elicit the acknowledgement appropriate to the agent's progress, which is
// how loss-of-message failures are survived.
#pragma once

#include <optional>
#include <string>

#include "proto/adaptable_process.hpp"
#include "proto/messages.hpp"
#include "sim/network.hpp"

namespace sa::proto {

enum class AgentState { Running, Resetting, Safe, Adapted, Resuming };

std::string_view to_string(AgentState state);

struct AgentConfig {
  sim::Time pre_action_duration = sim::ms(1);   ///< component initialization
  sim::Time in_action_duration = sim::ms(2);    ///< structural change
  sim::Time resume_duration = sim::us(200);     ///< unblocking
  /// Failure injection: when set, the agent never reaches its safe state
  /// (models a process stuck in a long critical communication segment).
  bool fail_to_reset = false;
};

struct AgentStats {
  std::uint64_t resets_handled = 0;
  std::uint64_t adapts_performed = 0;
  std::uint64_t rollbacks_performed = 0;
  std::uint64_t duplicate_messages = 0;
  sim::Time total_blocked = 0;  ///< cumulative time the process spent blocked
};

class AdaptationAgent {
 public:
  /// Attaches to `node` (whose receive handler it takes over) and drives
  /// `process` on behalf of the manager at `manager_node`.
  AdaptationAgent(sim::Network& network, sim::NodeId node, sim::NodeId manager_node,
                  AdaptableProcess& process, AgentConfig config = {});

  AgentState state() const { return state_; }
  const AgentStats& stats() const { return stats_; }
  sim::NodeId node() const { return node_; }

  void set_fail_to_reset(bool fail) { config_.fail_to_reset = fail; }

 private:
  void on_message(sim::NodeId from, sim::MessagePtr message);
  void on_reset(const ResetMsg& msg);
  void on_resume(const ResumeMsg& msg);
  void on_rollback(const RollbackMsg& msg);

  void enter_safe_state();
  void start_in_action();
  void finish_resume(bool proactive);

  template <typename Msg>
  void send(const StepRef& step, Msg prototype = {});

  sim::Network* network_;
  sim::NodeId node_;
  sim::NodeId manager_;
  AdaptableProcess* process_;
  AgentConfig config_;

  AgentState state_ = AgentState::Running;
  std::optional<StepRef> current_step_;
  LocalCommand current_command_;
  bool sole_participant_ = false;
  bool prepared_ = false;
  sim::EventId pending_event_ = 0;  ///< in-flight pre/in-action timer
  sim::Time blocked_since_ = 0;

  std::optional<StepRef> last_completed_;   ///< resumed successfully
  sim::Time last_blocked_for_ = 0;
  std::optional<StepRef> last_rolled_back_;

  AgentStats stats_;
};

}  // namespace sa::proto
