#include "proto/coordinator.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "util/log.hpp"

namespace sa::proto {

AdaptationCoordinator::AdaptationCoordinator(runtime::Runtime& rt, runtime::NodeId node,
                                             CoordinatorConfig config, int depth)
    : clock_(&rt.clock()),
      executor_(&rt.executor()),
      transport_(&rt.transport()),
      node_(node),
      depth_(depth),
      core_(config) {
  core_.set_span_seed(node_);
  transport_->set_handler(node_, [this](runtime::NodeId from, runtime::MessagePtr message) {
    on_message(from, std::move(message));
  });
}

// Detach before members die; on the threaded backend this waits out any
// in-flight delivery so a late message cannot land in a half-destroyed
// coordinator.
AdaptationCoordinator::~AdaptationCoordinator() { transport_->set_handler(node_, nullptr); }

void AdaptationCoordinator::set_parent(runtime::NodeId parent_node) {
  std::lock_guard lock(mutex_);
  parent_node_ = parent_node;
  has_parent_ = true;
  core_.set_has_parent(true);
}

std::size_t AdaptationCoordinator::add_child(runtime::NodeId child_node,
                                             std::vector<std::uint32_t> shards) {
  std::lock_guard lock(mutex_);
  const std::size_t index = core_.add_child(std::move(shards));
  child_nodes_.push_back(child_node);
  child_of_[child_node] = index;
  return index;
}

void AdaptationCoordinator::add_local_shard(std::uint32_t shard, std::uint32_t lane,
                                            AdaptationManager& manager) {
  std::lock_guard lock(mutex_);
  core_.add_local_shard(shard, lane);
  shard_manager_[shard] = &manager;
}

std::uint64_t AdaptationCoordinator::submit(std::vector<ShardTarget> targets,
                                            TicketHandler handler) {
  std::lock_guard lock(mutex_);
  if (has_parent_) throw std::logic_error("submit() is root-only; interior nodes take commits");
  const std::uint64_t ticket = next_ticket_++;
  pending_tickets_[ticket] = PendingTicket{std::move(handler), clock_->now()};
  // The ticket span roots this submission's causal tree: the epoch it seals
  // into links back to it, and TicketDone closes it.
  const std::uint64_t ticket_span = span_of(node_, SpanKind::Ticket, ticket);
  if (tracing(obs::EventKind::TicketSubmitted)) {
    obs::Event e;
    e.kind = obs::EventKind::TicketSubmitted;
    e.span = ticket_span;
    e.value = static_cast<double>(targets.size());
    e.has_value = true;
    trace_event(std::move(e));
  }
  dispatch(CoordinatorInput{
      clock_->now(), CoordinatorInput::SubmitRequest{ticket, std::move(targets), ticket_span}});
  return ticket;
}

void AdaptationCoordinator::set_observability(obs::TraceRecorder* recorder,
                                              obs::MetricsRegistry* metrics, std::int64_t track) {
  std::lock_guard lock(mutex_);
  recorder_ = recorder;
  metrics_ = metrics;
  track_ = track;
}

bool AdaptationCoordinator::tracing() const {
  return recorder_ != nullptr && recorder_->enabled();
}

bool AdaptationCoordinator::tracing(obs::EventKind kind) const {
  return recorder_ != nullptr && recorder_->wants(kind);
}

void AdaptationCoordinator::trace_event(obs::Event event) {
  event.time = clock_->now();
  if (event.track == obs::kNoTrack) event.track = track_;
  recorder_->record(std::move(event));
}

std::string AdaptationCoordinator::depth_label() const { return std::to_string(depth_); }

void AdaptationCoordinator::on_message(runtime::NodeId from, runtime::MessagePtr message) {
  std::lock_guard lock(mutex_);
  const auto* coord = dynamic_cast<const CoordMessage*>(message.get());
  if (!coord) {
    SA_WARN("coordinator") << "non-coordinator message " << message->type_name();
    return;
  }
  if (has_parent_ && from == parent_node_ && coord->kind() == CoordMsgKind::EpochCommit) {
    const auto& commit = static_cast<const EpochCommitMsg&>(*coord);
    dispatch(CoordinatorInput{
        clock_->now(),
        CoordinatorInput::SubmitRequest{commit.epoch, commit.targets, commit.ctx.parent_span}});
    return;
  }
  const auto child = child_of_.find(from);
  if (child != child_of_.end() && coord->kind() == CoordMsgKind::EpochDone) {
    const auto& done = static_cast<const EpochDoneMsg&>(*coord);
    dispatch(CoordinatorInput{
        clock_->now(), CoordinatorInput::ChildDone{child->second, done.epoch, done.outcomes}});
    return;
  }
  SA_WARN("coordinator") << "unexpected " << message->type_name() << " from node " << from;
}

void AdaptationCoordinator::dispatch(CoordinatorInput input) {
  apply(core_.step(input));
}

void AdaptationCoordinator::apply(const std::vector<Output>& outputs) {
  for (const Output& out : outputs) {
    switch (out.kind) {
      case OutputKind::Send:
        transport_->send(node_, child_nodes_.at(out.process), out.message);
        break;
      case OutputKind::SendParent:
        transport_->send(node_, parent_node_, out.message);
        break;
      case OutputKind::ArmTimer:
        apply_arm_timer(out);
        break;
      case OutputKind::DisarmTimer:
        apply_disarm_timer(out);
        break;
      case OutputKind::Transition:
        if (tracing(obs::EventKind::CoordinatorPhase)) {
          obs::Event e;
          e.kind = obs::EventKind::CoordinatorPhase;
          e.name = std::string(to_string(out.cphase_to));
          e.detail = std::string(to_string(out.cphase_from));
          trace_event(std::move(e));
        }
        break;
      case OutputKind::ExecuteShard:
        apply_execute_shard(out);
        break;
      case OutputKind::EpochOpened:
        if (tracing(obs::EventKind::EpochOpened)) {
          obs::Event e;
          e.kind = obs::EventKind::EpochOpened;
          e.span = out.span;
          e.epoch = out.epoch;
          e.value = static_cast<double>(out.epoch);
          e.has_value = true;
          trace_event(std::move(e));
        }
        break;
      case OutputKind::FlowLink:
        if (tracing(obs::EventKind::FlowLink)) {
          obs::Event e;
          e.kind = obs::EventKind::FlowLink;
          e.span = out.span;
          e.parent_span = out.parent_span;
          e.epoch = out.epoch;
          trace_event(std::move(e));
        }
        break;
      case OutputKind::EpochSealed:
        epoch_sealed_at_ = clock_->now();
        if (tracing(obs::EventKind::EpochSealed)) {
          obs::Event e;
          e.kind = obs::EventKind::EpochSealed;
          e.span = out.span;
          e.epoch = out.epoch;
          e.value = out.value;   // shard count
          e.has_value = true;
          e.detail = "coalesced " + std::to_string(static_cast<std::size_t>(out.extra));
          trace_event(std::move(e));
        }
        if (metrics_ != nullptr) {
          metrics_
              ->histogram("sa_epoch_batch_shards", {1, 2, 4, 8, 16, 32, 64, 128, 256},
                          {{"depth", depth_label()}}, "Shards per sealed epoch, by tree depth")
              .observe(out.value);
          if (out.extra > 0) {
            metrics_
                ->counter("sa_epoch_coalesced_total", {{"depth", depth_label()}},
                          "Same-shard requests merged by group commit, by tree depth")
                .inc(static_cast<std::uint64_t>(out.extra));
          }
        }
        break;
      case OutputKind::EpochCompleted:
        if (tracing(obs::EventKind::EpochCompleted)) {
          obs::Event e;
          e.kind = obs::EventKind::EpochCompleted;
          e.span = out.span;
          e.epoch = out.epoch;
          e.value = static_cast<double>(clock_->now() - epoch_sealed_at_);
          e.has_value = true;
          if (out.extra > 0) {
            e.detail = "orphaned " + std::to_string(static_cast<std::size_t>(out.extra));
          }
          trace_event(std::move(e));
        }
        if (metrics_ != nullptr) {
          metrics_
              ->counter("sa_epochs_total", {{"depth", depth_label()}},
                        "Completed epochs, by tree depth")
              .inc();
          metrics_
              ->histogram("sa_epoch_latency_us", obs::default_time_buckets_us(),
                          {{"depth", depth_label()}},
                          "Seal-to-complete commit latency, by tree depth")
              .observe(static_cast<double>(clock_->now() - epoch_sealed_at_));
          if (out.extra > 0) {
            metrics_
                ->counter("sa_epoch_orphaned_shards_total", {{"depth", depth_label()}},
                          "Shards orphaned by the commit timeout, by tree depth")
                .inc(static_cast<std::uint64_t>(out.extra));
          }
        }
        break;
      case OutputKind::TicketDone:
        apply_ticket_done(out);
        break;
      case OutputKind::DuplicateMessage:
        SA_DEBUG("coordinator") << "absorbed " << out.label << ": " << out.detail;
        if (metrics_ != nullptr) {
          metrics_
              ->counter("sa_coordinator_duplicates_total", {{"depth", depth_label()}},
                        "Stale or re-delivered coordinator messages absorbed, by tree depth")
              .inc();
        }
        break;
      default:
        break;  // manager/agent-only kinds never appear in coordinator output
    }
  }
}

void AdaptationCoordinator::apply_arm_timer(const Output& out) {
  if (tracing(obs::EventKind::TimerArmed)) {
    obs::Event e;
    e.kind = obs::EventKind::TimerArmed;
    e.name = out.label;
    e.value = static_cast<double>(out.delay);
    e.has_value = true;
    trace_event(std::move(e));
  }
  // Same generation-guard discipline as the manager: a fire that the threaded
  // backend dequeued before a failed cancel() observes a newer generation and
  // bails instead of sealing or timing out an epoch it no longer owns.
  const char* label = out.label;
  const CoordinatorTimer slot = out.ctimer;
  runtime::TimerId& id = slot == CoordinatorTimer::Epoch ? epoch_timer_ : commit_timer_;
  std::uint64_t& gen_slot = slot == CoordinatorTimer::Epoch ? epoch_gen_ : commit_gen_;
  const std::uint64_t gen = ++gen_slot;
  id = clock_->schedule_after(out.delay, [this, gen, slot, label] {
    std::lock_guard lock(mutex_);
    std::uint64_t& current = slot == CoordinatorTimer::Epoch ? epoch_gen_ : commit_gen_;
    if (gen != current) return;  // superseded or disarmed after dequeue
    (slot == CoordinatorTimer::Epoch ? epoch_timer_ : commit_timer_) = 0;
    if (tracing(obs::EventKind::TimerFired)) {
      obs::Event e;
      e.kind = obs::EventKind::TimerFired;
      e.name = label;
      trace_event(std::move(e));
    }
    dispatch(CoordinatorInput{clock_->now(), CoordinatorInput::TimerFired{slot}});
  });
}

void AdaptationCoordinator::apply_disarm_timer(const Output& out) {
  runtime::TimerId& id = out.ctimer == CoordinatorTimer::Epoch ? epoch_timer_ : commit_timer_;
  if (id != 0) {
    clock_->cancel(id);
    id = 0;
    if (tracing(obs::EventKind::TimerCancelled)) {
      obs::Event e;
      e.kind = obs::EventKind::TimerCancelled;
      e.name = out.label;
      trace_event(std::move(e));
    }
  }
  // Invalidate a fire that cancel() was too late to stop.
  if (out.ctimer == CoordinatorTimer::Epoch) {
    ++epoch_gen_;
  } else {
    ++commit_gen_;
  }
}

void AdaptationCoordinator::apply_execute_shard(const Output& out) {
  AdaptationManager* manager = shard_manager_.at(out.shard);
  const std::uint32_t shard = out.shard;
  const std::uint64_t epoch = out.epoch;
  const config::Configuration target = out.config;
  // Both hops go through the executor so the coordinator lock and the
  // manager lock are never held together (no lock-order cycle when a manager
  // completion races a coordinator timer on the threaded backend).
  const std::uint64_t cause = out.parent_span;
  executor_->post([this, manager, shard, epoch, target, cause] {
    manager->enqueue_adaptation(
        target,
        [this, shard, epoch](const AdaptationResult& result) {
          executor_->post([this, shard, epoch, result] {
            std::lock_guard lock(mutex_);
            dispatch(CoordinatorInput{clock_->now(),
                                      CoordinatorInput::ShardFinished{epoch, shard, result}});
          });
        },
        cause);
  });
}

void AdaptationCoordinator::apply_ticket_done(const Output& out) {
  const auto it = pending_tickets_.find(out.ticket);
  if (it == pending_tickets_.end()) {
    SA_WARN("coordinator") << "result for unknown ticket " << out.ticket;
    return;
  }
  TicketResult result;
  result.ticket = out.ticket;
  result.epoch = out.epoch;
  result.outcomes = out.shard_outcomes;
  result.started = it->second.started;
  result.finished = clock_->now();
  TicketHandler handler = std::move(it->second.handler);
  pending_tickets_.erase(it);
  if (tracing(obs::EventKind::TicketDone)) {
    obs::Event e;
    e.kind = obs::EventKind::TicketDone;
    e.span = out.span;
    e.parent_span = out.parent_span;
    e.epoch = out.epoch;
    e.value = static_cast<double>(result.finished - result.started);
    e.has_value = true;
    trace_event(std::move(e));
  }
  SA_INFO("coordinator") << "ticket " << result.ticket << " done in epoch " << result.epoch
                         << " (" << result.outcomes.size() << " shard(s))";
  if (handler) handler(result);
}

}  // namespace sa::proto
