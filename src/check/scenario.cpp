#include "check/scenario.hpp"

#include <stdexcept>
#include <utility>

#include "core/paper_scenario.hpp"

namespace sa::check {

namespace {

/// Derives safe_configs/SAG/planner from the already-populated registry,
/// invariants, and actions of `s`.
void finalize(Scenario& s) {
  s.safe_configs = config::enumerate_safe_pruned(*s.invariants);
  s.sag = std::make_unique<actions::SafeAdaptationGraph>(*s.actions, s.safe_configs);
  s.planner = std::make_unique<actions::PathPlanner>(*s.sag);
}

}  // namespace

Scenario make_tiny_scenario() {
  Scenario s;
  s.name = "tiny";
  s.registry = std::make_unique<config::ComponentRegistry>();
  s.registry->add("A", 0, "incumbent component");
  s.registry->add("B", 0, "replacement component");
  s.invariants = std::make_unique<config::InvariantSet>(*s.registry);
  s.invariants->add("exclusive", "one(A, B)");
  s.actions = std::make_unique<actions::ActionTable>(*s.registry);
  s.actions->add("swap", {"A"}, {"B"}, 1.0, "replace A with B");
  s.actions->add("unswap", {"B"}, {"A"}, 1.0, "replace B with A");
  s.stages = {{0, 0}};
  s.source = config::Configuration::of(*s.registry, {"A"});
  s.target = config::Configuration::of(*s.registry, {"B"});
  finalize(s);
  return s;
}

Scenario make_pair_scenario() {
  Scenario s;
  s.name = "pair";
  s.registry = std::make_unique<config::ComponentRegistry>();
  s.registry->add("A", 0, "upstream incumbent");
  s.registry->add("B", 0, "upstream replacement");
  s.registry->add("C", 1, "downstream incumbent");
  s.registry->add("D", 1, "downstream replacement");
  s.invariants = std::make_unique<config::InvariantSet>(*s.registry);
  s.invariants->add("upstream exclusive", "one(A, B)");
  s.invariants->add("downstream exclusive", "one(C, D)");
  // A and C (and hence B and D) must change together: neither half-swapped
  // configuration is safe, so every plan step involves both processes.
  s.invariants->add("A needs C", "A -> C");
  s.invariants->add("C needs A", "C -> A");
  s.actions = std::make_unique<actions::ActionTable>(*s.registry);
  s.actions->add("swap", {"A", "C"}, {"B", "D"}, 1.0, "joint replacement");
  s.actions->add("unswap", {"B", "D"}, {"A", "C"}, 1.0, "joint reverse");
  // Process 0 is the upstream sender: it quiesces first, and the stage-1
  // agent drains in-flight data before blocking (global safe condition).
  s.stages = {{0, 0}, {1, 1}};
  s.source = config::Configuration::of(*s.registry, {"A", "C"});
  s.target = config::Configuration::of(*s.registry, {"B", "D"});
  finalize(s);
  return s;
}

Scenario make_paper_check_scenario() {
  Scenario s;
  s.name = "paper";
  core::PaperScenario paper = core::make_paper_scenario();
  s.registry = std::move(paper.registry);
  s.invariants = std::move(paper.invariants);
  s.actions = std::move(paper.actions);
  s.source = paper.source;
  s.target = paper.target;
  // Same topology as configure_paper_system: the server (video sender)
  // quiesces first; both clients drain before blocking.
  s.stages = {{core::kServerProcess, 0}, {core::kHandheldProcess, 1}, {core::kLaptopProcess, 1}};
  finalize(s);
  return s;
}

Scenario make_scenario(std::string_view name) {
  if (name == "tiny") return make_tiny_scenario();
  if (name == "pair") return make_pair_scenario();
  if (name == "paper") return make_paper_check_scenario();
  throw std::invalid_argument("unknown scenario: " + std::string(name));
}

}  // namespace sa::check
