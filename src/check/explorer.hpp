// Bounded interleaving explorer: model-checks the paper's safety argument
// over schedules of the sans-I/O protocol cores.
//
// Two search modes over the Model's choice tree:
//
//   * explore_dfs     depth-first over every enabled choice (delivery order,
//                     drops, duplicates, timer-vs-message races) with
//                     hashed-state deduplication and depth/state budgets.
//                     With generous budgets and a small scenario the search
//                     is exhaustive (result.complete == true).
//   * explore_random  seeded random walks to quiescence — cheap probing of
//                     schedules deeper than the DFS bound.
//
// The first safety violation found stops the search and is returned as a
// replayable Counterexample: the exact (kind, seq) choice schedule, which
// `replay` re-executes deterministically and which round-trips through JSON
// (schedule_to_json / schedule_from_json) for CI artifacts and bug reports.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "check/model.hpp"
#include "check/scenario.hpp"

namespace sa::check {

struct ExploreOptions {
  /// Choices per run (DFS recursion bound); <= 0 means unbounded — safe only
  /// with the reductions or a state cap, since reorder/dup schedules branch
  /// wide.
  int max_depth = 80;
  std::size_t max_states = 200'000;  ///< distinct fingerprints before giving up
  int drop_budget = 0;
  int dup_budget = 0;
  bool reorder = false;
  proto::ManagerFault fault = proto::ManagerFault::None;
  /// Agents that never reach their safe state (drives the §4.4 chain).
  std::vector<config::ProcessId> fail_to_reset;
  /// Worker threads for the search engine (src/check/engine.hpp). 1 = fully
  /// deterministic sequential order; <= 0 = one per hardware thread. On a
  /// search that completes within its budgets the verdict and the
  /// dedup-invariant stats are identical for every thread count.
  int threads = 1;
  /// Dynamic partial-order reduction (DFS only): per-frame sleep sets prune
  /// schedules that only permute independent choices (see
  /// check/model.hpp choices_dependent). Sound for all of P1-P5: every
  /// Mazurkiewicz trace keeps at least one representative, and quiescent
  /// leaves are never sleep-pruned, so the outcome counts of a complete
  /// search are unchanged. Off by default to keep existing traces
  /// byte-identical.
  bool dpor = false;
  /// Symmetry reduction (DFS only): deduplicate on
  /// Model::canonical_fingerprint() instead of Model::fingerprint(), folding
  /// states that differ only by a permutation of same-role agents or by the
  /// creation-order interleaving of in-flight messages on distinct channels.
  /// Counterexample schedules stay concrete (replay never canonicalizes).
  bool symmetry = false;
};

struct ExploreStats {
  std::size_t states_explored = 0;  ///< choice applications
  std::size_t states_deduped = 0;   ///< branches cut by fingerprint match
  std::size_t runs_completed = 0;   ///< quiescent leaves reached
  std::size_t depth_capped = 0;     ///< branches cut by max_depth
  std::size_t sleep_pruned = 0;     ///< branches cut by DPOR sleep sets
  int max_depth_reached = 0;
  std::map<std::string, std::size_t> outcomes;  ///< outcome name -> leaf count
};

struct Counterexample {
  std::vector<Choice> schedule;
  std::vector<std::string> violations;
};

struct ExploreResult {
  ExploreStats stats;
  std::optional<Counterexample> counterexample;
  /// True iff the search covered every schedule within its budgets: no
  /// depth-capped branch, no state-cap abort (DFS only; random walks and
  /// violation-aborted searches are never complete).
  bool complete = false;
};

Model make_model(const Scenario& scenario, const ExploreOptions& options);

ExploreResult explore_dfs(const Scenario& scenario, const ExploreOptions& options);

ExploreResult explore_random(const Scenario& scenario, const ExploreOptions& options,
                             std::uint64_t seed, std::size_t runs);

struct ReplayResult {
  std::vector<Violation> violations;
  std::optional<proto::AdaptationResult> outcome;
  std::vector<TransitionRec> transitions;
  /// False if some schedule entry was not enabled (schedule and scenario /
  /// options diverged); violations up to that point are still reported.
  bool schedule_valid = true;
};

/// Re-executes `schedule` against a fresh model. Deterministic: the same
/// scenario, options, and schedule always reproduce the same violations.
ReplayResult replay(const Scenario& scenario, const ExploreOptions& options,
                    const std::vector<Choice>& schedule);

/// Self-contained, serializable description of one explorer schedule —
/// everything replay needs plus the violations it reproduces.
struct ScheduleFile {
  std::string scenario;  ///< name for make_scenario
  ExploreOptions options;
  std::vector<Choice> schedule;
  std::vector<std::string> violations;
};

std::string to_json(const ScheduleFile& file);
/// Throws std::runtime_error on malformed input.
ScheduleFile schedule_from_json(const std::string& text);

const char* to_string(proto::ManagerFault fault);
/// Throws std::invalid_argument on unknown names.
proto::ManagerFault fault_from_string(std::string_view name);

}  // namespace sa::check
