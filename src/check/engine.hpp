// High-throughput exploration engine behind explore_dfs / explore_random.
//
// The frontier search runs a fixed pool of workers over explicit stack frames
// (Model + schedule chain + depth) instead of recursion:
//
//   * each worker owns a mutex-guarded deque; the owner pushes and pops at
//     the back (LIFO — depth-first, keeps the frontier small), idle workers
//     steal from the front of a victim's deque (FIFO — steals the shallowest
//     frame, i.e. the largest remaining subtree);
//   * the pool is seeded by expanding a breadth-first prefix of the tree
//     until there are a few frames per worker to spread across the deques;
//   * visited-state deduplication goes through a sharded open-addressing
//     fingerprint set (util/fingerprint_set.hpp) pre-reserved from
//     max_states, so inserts are allocation-free and a lock covers only
//     1/Nth of the space;
//   * a frame is expanded by applying each enabled choice to a fork of its
//     model; the last child steals the parent's model, so a node with k
//     children costs k-1 copies, and a quiescent leaf is finalized in place
//     (no defensive copy).
//
// Determinism: with threads == 1 frames expand in depth-first preorder and
// results are bit-identical run to run. With N threads the expansion order is
// nondeterministic, but on a search that completes without hitting a budget
// every unique state is still expanded exactly once, so the verdict and the
// dedup-invariant totals (states_explored, states_deduped, runs_completed,
// sleep_pruned, outcomes) are identical for any thread count;
// max_depth_reached and the totals of budget-capped searches are not
// guaranteed. When violations are found concurrently the canonically least
// schedule (shortest, then lexicographic) among them is returned.
//
// Reductions (ExploreOptions::dpor / ::symmetry, frontier search only;
// random walks ignore both):
//
//   * DPOR sleep sets — each Frame carries the choices whose subtrees an
//     earlier sibling already covers up to reordering of independent choices
//     (independence per check/model.hpp choices_dependent). Sleeping choices
//     are skipped; a frame whose every enabled choice sleeps counts as
//     sleep_pruned, not as quiescent or capped. The visited key mixes in a
//     commutative hash of the sleep set: re-reaching a state under a
//     different sleep set re-explores it, which is what keeps sleep sets
//     sound in combination with state caching.
//   * Symmetry — the visited key becomes Model::canonical_fingerprint(),
//     one hash per orbit of same-role agent permutations. Thread-count
//     independence survives because orbit-equivalent states generate
//     orbit-equivalent children and the sleep hash is keyed by agent role,
//     never by process id — whichever representative wins the dedup race,
//     the closure of visited keys and all per-key counts are the same.
//
// Counterexamples are unaffected by either reduction: schedules are concrete
// (kind, seq) lists recorded from the actual path, never canonicalized.
#pragma once

#include <cstdint>

#include "check/explorer.hpp"

namespace sa::check {

/// Work-stealing frontier search over the Model's choice tree.
ExploreResult frontier_search(const Scenario& scenario, const ExploreOptions& options);

/// Seeded random walks to quiescence, distributed over the worker pool. Runs
/// keep their sequential identity (run r always uses seed + r * odd), and
/// per-run stat deltas are merged in run order up to the first violating run
/// — bit-identical to the sequential engine for every thread count.
ExploreResult random_search(const Scenario& scenario, const ExploreOptions& options,
                            std::uint64_t seed, std::size_t runs);

}  // namespace sa::check
