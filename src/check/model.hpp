// Virtual-world model of one adaptation run: the sans-I/O ManagerCore plus
// one AgentCore per process, wired through an in-memory network and timer set
// instead of a runtime backend.
//
// The Model is a copyable value — the explorer forks it at every branch
// point. At each state it exposes the set of enabled Choices (deliver / drop
// / duplicate an in-flight message, fire an armed timer); applying a choice
// feeds the corresponding Input to the owning core and executes the returned
// Outputs against the virtual network, the virtual timers, and an inline
// process model (prepare/apply always succeed and complete synchronously, as
// with the NullProcess used by the runtime conformance tests).
//
// Safety properties are checked as outputs are applied, from the explorer's
// own send/delivery bookkeeping rather than the cores' internal state:
//
//   P1  every committed configuration satisfies the invariant set (§4.3's
//       "adaptation moves along safe configurations");
//   P2  the manager never sends `resume` for a step before (a) every involved
//       process was sent `reset` and (b) every involved process's
//       `adapt done` (or subsuming `resume done`) was *delivered* (§4.3);
//   P3  no `rollback` is sent for a step after its `resume` went out (§4.4
//       run-to-completion rule);
//   P4  in-actions and undos only execute while the process is blocked in its
//       safe state — blocked processes stay blocked until resume/rollback;
//   P5  a quiescent run has a terminal AdaptationOutcome (no deadlock), and a
//       Success outcome means the target configuration was reached with every
//       process unblocked and every agent back in `running`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/scenario.hpp"
#include "proto/core/agent_core.hpp"
#include "proto/core/io.hpp"
#include "proto/core/manager_core.hpp"
#include "proto/messages.hpp"
#include "util/bitset64.hpp"
#include "util/small_vector.hpp"

namespace sa::check {

/// One schedulable event the explorer may pick next. Messages and timers are
/// identified by their creation sequence number, which is deterministic given
/// the schedule prefix — a (kind, seq) list therefore replays exactly.
struct Choice {
  enum class Kind : std::uint8_t { Deliver, Drop, Duplicate, Fire };
  Kind kind = Kind::Deliver;
  std::uint64_t seq = 0;

  bool operator==(const Choice&) const = default;
};

const char* to_string(Choice::Kind kind);

/// Static footprint of one enabled choice: which core it steps and which
/// directed manager<->agent channel it touches. This is the independence
/// oracle the engine's DPOR sleep sets are computed from — two choices are
/// dependent iff they step the same core, target the same message/timer, or
/// would append to the same FIFO channel in a different order (see
/// choices_dependent). Footprints are stable for the lifetime of the choice:
/// an in-flight message never changes channel or receiver, an armed timer
/// never changes owner, so a footprint computed when a choice goes to sleep
/// stays valid in every descendant state.
struct ChoiceFootprint {
  static constexpr std::uint8_t kEntityNone = 0xff;     ///< pure network op
  static constexpr std::uint8_t kEntityManager = 0xfe;  ///< the manager core
  /// Role fingerprint used for orbit-stable sleep-set hashing when symmetry
  /// reduction is active (the manager has no orbit; agents use their static
  /// role fingerprint so interchangeable agents hash identically).
  static constexpr std::uint64_t kManagerRole = 0x9ddfea08eb382d69ULL;

  Choice choice;
  Choice::Kind kind = Choice::Kind::Deliver;
  std::uint8_t entity = kEntityNone;         ///< core stepped by the choice
  std::uint8_t channel_agent = kEntityNone;  ///< agent endpoint of the channel
  bool channel_to_manager = false;           ///< channel direction
  std::uint64_t content = 0;  ///< structural message fp / timer slot class
  std::uint64_t role = 0;     ///< role fp of the entity / channel agent
};

/// Conservative independence relation over co-enabled choices. Dependent iff:
/// same seq (same message or timer), same core stepped (receiver for
/// deliveries, owner for timer fires — a core's inputs must stay totally
/// ordered), both drops or both duplicates (shared adversary budget), or a
/// duplicate racing the producer of its channel (both append to the same
/// FIFO tail, so their order is observable). Everything else commutes:
/// deliveries on distinct channels, timer fires on distinct processes, and
/// appends racing the consumption of an earlier message on the same channel
/// (tail vs head of the queue). Symmetric.
bool choices_dependent(const ChoiceFootprint& a, const ChoiceFootprint& b);

struct Violation {
  std::string description;
};

/// One automaton transition, in global emission order — the unit the
/// replay-equivalence test compares against a real SimRuntime execution.
struct TransitionRec {
  std::string entity;  ///< "manager" or "agent<process>"
  std::string from;
  std::string to;

  bool operator==(const TransitionRec&) const = default;
};

class Model {
 public:
  struct Limits {
    int drop_budget = 0;  ///< messages the adversary may destroy
    int dup_budget = 0;   ///< messages the adversary may duplicate
    /// When false (default) each directed manager<->agent channel is FIFO:
    /// only its oldest in-flight message is deliverable. When true any
    /// in-flight message is deliverable (full reordering).
    bool reorder = false;
  };

  /// `scenario` must outlive the model (and all copies); the cores keep
  /// pointers into its analysis data. Throws std::invalid_argument if the
  /// scenario uses a process id >= 64 (the property bookkeeping is
  /// bitmask-backed).
  Model(const Scenario& scenario, Limits limits,
        proto::ManagerFault fault = proto::ManagerFault::None);

  /// Pre-start failure injection: the agent on `process` never reaches its
  /// safe state (drives the §4.4 rollback / re-plan chain).
  void set_fail_to_reset(config::ProcessId process, bool fail);

  /// Issues the scenario's single adaptation request (source -> target).
  void start();

  /// Enabled choices at this state, in deterministic order.
  std::vector<Choice> choices() const;

  /// Allocation-lean variant: clears and refills `out`. The explorer calls
  /// this once per expanded state with a per-worker scratch buffer, so the
  /// hot loop does not allocate a fresh vector per state.
  void choices(std::vector<Choice>& out) const;

  /// The choice the deterministic simulator would take: the enabled
  /// deliver/fire event with the smallest (due time, creation seq) — drops
  /// and duplicates never happen by themselves. Empty at quiescence.
  std::optional<Choice> sim_choice() const;

  /// Applies one choice; returns false if it is not currently enabled
  /// (stale seq — a replay against a diverged model). Any property
  /// violations it causes are appended to violations().
  bool apply(const Choice& choice);

  /// End-of-run checks (P5); call once no choices remain.
  void finalize();

  const std::vector<Violation>& violations() const { return violations_; }
  const std::optional<proto::AdaptationResult>& outcome() const { return outcome_; }
  const std::vector<TransitionRec>& transitions() const { return transitions_; }
  runtime::Time now() const { return now_; }
  std::size_t messages_in_flight() const { return in_flight_.size(); }

  /// Transition records exist for replay/conformance comparisons; the
  /// explorer turns them off, because copying a growing vector of strings at
  /// every fork dominated fork cost. Default on.
  void set_record_transitions(bool record) { record_transitions_ = record; }

  /// Hash of all protocol-relevant state: both cores, process blocked flags,
  /// channel contents, armed timers, and remaining adversary budgets.
  /// Timestamps are deliberately excluded — the cores' control flow never
  /// depends on them, so states differing only in time are equivalent.
  std::uint64_t fingerprint() const;

  /// Symmetry-reduced variant of fingerprint(): hashes a canonical orbit
  /// representative instead of the concrete state. Each agent contributes one
  /// self-contained sub-fingerprint (static role + core state + blocked flag
  /// + timer + its slice of the manager's per-process ack sets + both of its
  /// directed channels' message sequences in FIFO order); the sub-fingerprints
  /// are sorted before mixing, so states that differ only by a permutation of
  /// same-role agents — or by the creation-order interleaving of messages on
  /// distinct channels — hash identically. Used for deduplication only; never
  /// for replay (counterexample schedules stay concrete).
  std::uint64_t canonical_fingerprint() const;

  /// Footprint of one currently enabled choice, for the DPOR independence
  /// relation. Throws std::out_of_range on a stale seq.
  ChoiceFootprint choice_footprint(const Choice& choice) const;

 private:
  struct InFlight {
    bool to_manager = false;          ///< direction; `agent` is the other endpoint
    config::ProcessId agent = 0;
    runtime::MessagePtr message;
    std::uint64_t seq = 0;
    runtime::Time deliver_at = 0;
    /// Structural hash of `message`, computed once when the message enters
    /// the network. fingerprint() runs at every explored state and used to
    /// re-derive this through a dynamic_cast chain per in-flight message.
    std::uint64_t msg_fp = 0;
  };

  struct TimerSlot {
    bool armed = false;
    runtime::Time deadline = 0;
    std::uint64_t seq = 0;  ///< creation seq of the current arm
  };

  struct AgentEntity {
    proto::AgentCore core;
    TimerSlot timer;
    bool blocked = false;  ///< virtual process state (P4)
    int stage = 0;         ///< reset stage (static role data)
    /// Hash of the agent's static role: reset stage plus the names of the
    /// components hosted on its process. Two agents are interchangeable for
    /// symmetry reduction only if their roles match; also keys the orbit-
    /// stable sleep-set hash (see engine.cpp).
    std::uint64_t role_fp = 0;
    bool fail_to_reset = false;  ///< mirrors AgentCore fault injection
    explicit AgentEntity(proto::AgentConfig config) : core(config) {}
  };

  AgentEntity& agent_at(config::ProcessId process);
  const AgentEntity& agent_at(config::ProcessId process) const;
  bool deliverable(const InFlight& m) const;
  void deliver(const InFlight& m);
  void apply_manager_outputs(const std::vector<proto::Output>& outputs);
  void apply_agent_outputs(config::ProcessId process, const std::vector<proto::Output>& outputs);
  void dispatch_agent_local(config::ProcessId process, proto::AgentLocalEvent event);
  void check_manager_send(config::ProcessId to, const runtime::MessagePtr& message);
  void note_manager_delivery(config::ProcessId from, const runtime::MessagePtr& message);
  void violation(std::string description);

  const Scenario* scenario_;
  Limits limits_;

  proto::ManagerCore manager_;
  TimerSlot mgr_protocol_;
  TimerSlot mgr_stage_;
  /// Sorted by process id. Flat (not a std::map) because the explorer copies
  /// the whole model at every fork; lookups are linear over a handful of
  /// agents.
  std::vector<std::pair<config::ProcessId, AgentEntity>> agents_;

  util::SmallVector<InFlight, 8> in_flight_;  ///< ascending seq (push order)
  runtime::Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  int drops_left_ = 0;
  int dups_left_ = 0;
  bool record_transitions_ = true;

  // --- property bookkeeping (P2/P3), keyed by exact step attempt ------------
  // One flat record per step attempt instead of five StepKey-keyed node-based
  // maps: a run touches a bounded handful of step attempts, and the explorer
  // copies this bookkeeping at every fork.
  struct StepBook {
    proto::StepRef ref;
    util::IdSet64 reset_sent;
    util::IdSet64 adapt_delivered;  ///< adapt done (or subsuming resume done)
    util::IdSet64 resume_sent_to;
    util::IdSet64 rollback_sent_to;
    bool resume_announced = false;  ///< a resume for this step went out
  };
  StepBook& book_for(const proto::StepRef& ref);
  util::SmallVector<StepBook, 4> books_;

  std::vector<Violation> violations_;
  std::optional<proto::AdaptationResult> outcome_;
  std::vector<TransitionRec> transitions_;
};

}  // namespace sa::check
