#include "check/engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/fingerprint_set.hpp"
#include "util/rng.hpp"
#include "util/small_vector.hpp"

namespace sa::check {

namespace {

/// Upper bound on proto::AdaptationOutcome enumerators; leaf outcomes are
/// counted in a flat array indexed by the enum and stringified once at merge
/// time instead of hitting a map<string, size_t> per leaf.
constexpr std::size_t kOutcomeSlots = 8;

int effective_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Immutable reversed schedule: each frame holds the chain of choices that
/// produced it. Shared between a parent's children (shared_ptr refcounts are
/// atomic), so extending a schedule is O(1) instead of copying the prefix.
struct PathNode {
  Choice choice;
  std::shared_ptr<const PathNode> parent;
};
using PathPtr = std::shared_ptr<const PathNode>;

std::vector<Choice> unwind(const PathPtr& tip) {
  std::vector<Choice> schedule;
  for (const PathNode* node = tip.get(); node != nullptr; node = node->parent.get()) {
    schedule.push_back(node->choice);
  }
  std::reverse(schedule.begin(), schedule.end());
  return schedule;
}

/// Canonical order on counterexample schedules: shorter first, then
/// lexicographic on (kind, seq). Used to pick one witness deterministically
/// when parallel workers find violations concurrently.
bool schedule_less(const std::vector<Choice>& a, const std::vector<Choice>& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind) return a[i].kind < b[i].kind;
    if (a[i].seq != b[i].seq) return a[i].seq < b[i].seq;
  }
  return false;
}

/// DPOR sleep set: choices whose subtrees were (or will be) explored from an
/// earlier sibling and commute with everything executed since. Entries keep
/// their full footprint because independence tests against later choices and
/// the orbit-stable dedup hash both need it. Sleeping entries are always still
/// enabled: independence preserves enabledness, so a quiescent state always
/// has an empty sleep set and leaf accounting is unaffected by DPOR.
using SleepSet = util::SmallVector<ChoiceFootprint, 4>;

struct Frame {
  Model model;
  PathPtr path;
  int depth = 0;
  SleepSet sleep;
};

/// Orbit-stable hash of one sleeping choice: kind, channel direction, message
/// content / timer slot class, and the *role* fingerprint of the touched
/// agent — deliberately not the process id and not the seq, so two states
/// that canonicalize together under symmetry reduction also hash their sleep
/// sets together, keeping results thread-count independent.
std::uint64_t sleep_entry_hash(const ChoiceFootprint& fp) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(fp.kind));
  mix(fp.channel_to_manager ? 1 : 0);
  mix(fp.content);
  mix(fp.role);
  return h;
}

/// Commutative (order-independent) hash of a whole sleep set.
std::uint64_t sleep_hash(const SleepSet& sleep) {
  std::uint64_t sum = 0;
  for (const ChoiceFootprint& fp : sleep) sum += sleep_entry_hash(fp);
  return sum;
}

struct WorkerStats {
  std::size_t states_explored = 0;
  std::size_t states_deduped = 0;
  std::size_t runs_completed = 0;
  std::size_t depth_capped = 0;
  std::size_t sleep_pruned = 0;
  int max_depth_reached = 0;
  std::array<std::size_t, kOutcomeSlots> outcomes{};
};

/// Per-worker scratch buffers for expand_children, reused across frames so
/// the hot loop does not allocate.
struct Scratch {
  std::vector<Choice> choices;
  std::vector<Choice> awake;
  std::vector<ChoiceFootprint> footprints;
};

/// Orbit-stable ordering for DPOR sibling-sleep construction. The "earlier
/// siblings go to sleep in later children" rule depends on choice order, and
/// Model::choices() enumerates in-flight messages in global creation order —
/// which canonical_fingerprint() deliberately erases. Two representatives of
/// the same canonical state must build the same abstract (child, sleep) pairs
/// regardless of which one won the dedup race, so the awake list is
/// stable-sorted by this seq-free, pid-free key first. Ties are either
/// same-channel messages (stable sort keeps their FIFO order, which equal
/// canonical fingerprints also agree on) or fully symmetric twins (either
/// order yields orbit-equivalent children).
bool footprint_order_less(const ChoiceFootprint& a, const ChoiceFootprint& b) {
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.role != b.role) return a.role < b.role;
  if (a.channel_to_manager != b.channel_to_manager) {
    return a.channel_to_manager < b.channel_to_manager;
  }
  return a.content < b.content;
}

struct WorkerQueue {
  std::mutex mu;
  std::deque<Frame> frames;
};

class FrontierEngine {
 public:
  FrontierEngine(const ExploreOptions& options, int threads)
      : options_(&options),
        depth_limit_(options.max_depth > 0 ? options.max_depth
                                           : std::numeric_limits<int>::max()),
        visited_(options.max_states,
                 threads == 1 ? 1 : static_cast<std::size_t>(threads) * 2),
        queues_(static_cast<std::size_t>(threads)),
        stats_(static_cast<std::size_t>(threads)) {}

  /// Marks the root visited. Returns the root's dedup key insert result
  /// (always true on a fresh engine).
  bool insert_root(const Model& model) { return visited_.insert(dedup_key(model, {})); }

  /// Seeds the deques from `root` and runs the pool to completion.
  void run(Frame&& root, int threads) {
    if (threads == 1) {
      run_sequential(std::move(root));
      return;
    }
    seed_breadth_first(std::move(root), threads);
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([this, t] { worker_loop(t); });
    }
    for (std::thread& th : pool) th.join();
  }

  void merge_into(ExploreResult& result) {
    for (const WorkerStats& ws : stats_) {
      result.stats.states_explored += ws.states_explored;
      result.stats.states_deduped += ws.states_deduped;
      result.stats.runs_completed += ws.runs_completed;
      result.stats.depth_capped += ws.depth_capped;
      result.stats.sleep_pruned += ws.sleep_pruned;
      result.stats.max_depth_reached =
          std::max(result.stats.max_depth_reached, ws.max_depth_reached);
      for (std::size_t i = 0; i < kOutcomeSlots; ++i) {
        if (ws.outcomes[i] == 0) continue;
        result.stats.outcomes[std::string(
            to_string(static_cast<proto::AdaptationOutcome>(i)))] += ws.outcomes[i];
      }
    }
    if (counterexample_) result.counterexample = std::move(counterexample_);
    result.complete =
        !capped_.load(std::memory_order_relaxed) && !result.counterexample.has_value();
  }

 private:
  /// Expands one frame: quiescent leaves are finalized in place, depth-capped
  /// frames are counted and dropped, and otherwise each enabled choice is
  /// applied to a fork of the model with per-edge accounting (explored count,
  /// violation check, dedup insert, state-cap check).
  ///
  /// Surviving children are appended to `out` in REVERSE choice order, so
  /// popping a LIFO stack visits the first choice's subtree first. Children
  /// are constructed in place inside `out` (a deduped child is popped right
  /// back off) and the final child steals the parent's model: expanding a
  /// node with k children costs k-1 model copies and no extra moves.
  void expand_children(Frame&& frame, WorkerStats& ws, Scratch& scratch,
                       std::vector<Frame>& out) {
    frame.model.choices(scratch.choices);
    if (scratch.choices.empty()) {
      frame.model.finalize();
      if (!frame.model.violations().empty()) {
        record_violation(frame.path, nullptr, frame.model.violations());
      } else {
        ++ws.runs_completed;
        const auto idx = static_cast<std::size_t>(frame.model.outcome()->outcome);
        assert(idx < kOutcomeSlots);
        ++ws.outcomes[idx];
      }
      return;
    }
    // DPOR: a sleeping choice's subtree is explored (modulo reorderings of
    // independent choices) from an earlier sibling — skip it here.
    const bool dpor = options_->dpor;
    std::vector<Choice>* awake = &scratch.choices;
    if (dpor && !frame.sleep.empty()) {
      scratch.awake.clear();
      for (const Choice& c : scratch.choices) {
        bool sleeping = false;
        for (const ChoiceFootprint& s : frame.sleep) {
          if (s.choice == c) {
            sleeping = true;
            break;
          }
        }
        if (!sleeping) scratch.awake.push_back(c);
      }
      if (scratch.awake.empty()) {
        // Every enabled choice is asleep. This is neither quiescence nor a
        // depth cap — just a fully redundant interleaving; the search stays
        // complete.
        ++ws.sleep_pruned;
        return;
      }
      awake = &scratch.awake;
    }
    if (frame.depth >= depth_limit_) {
      ++ws.depth_capped;
      capped_.store(true, std::memory_order_relaxed);
      return;
    }
    if (dpor) {
      scratch.footprints.clear();
      for (const Choice& c : *awake) {
        scratch.footprints.push_back(frame.model.choice_footprint(c));
      }
      std::stable_sort(scratch.footprints.begin(), scratch.footprints.end(),
                       footprint_order_less);
    }
    const int child_depth = frame.depth + 1;
    for (std::size_t i = awake->size(); i > 0; --i) {
      if (stop_.load(std::memory_order_relaxed)) return;
      // Footprints are the source of truth for DPOR: they carry their choice
      // and were re-ordered by the orbit-stable sort above.
      const Choice choice = dpor ? scratch.footprints[i - 1].choice : (*awake)[i - 1];
      // Child sleep set, built before `choice` is applied (footprints refer
      // to the parent state): inherited entries that commute with `choice`,
      // plus every earlier awake sibling that commutes with `choice` — the
      // sibling's subtree covers the reordered schedule.
      SleepSet child_sleep;
      if (dpor) {
        const ChoiceFootprint& fp = scratch.footprints[i - 1];
        for (const ChoiceFootprint& s : frame.sleep) {
          if (!choices_dependent(s, fp)) child_sleep.push_back(s);
        }
        for (std::size_t j = 0; j + 1 < i; ++j) {
          if (!choices_dependent(scratch.footprints[j], fp)) {
            child_sleep.push_back(scratch.footprints[j]);
          }
        }
      }
      if (i == 1) {
        out.emplace_back(std::move(frame.model), frame.path, child_depth);
      } else {
        out.emplace_back(frame.model, frame.path, child_depth);
      }
      Frame& child = out.back();
      child.sleep = std::move(child_sleep);
      child.model.apply(choice);
      ++ws.states_explored;
      ws.max_depth_reached = std::max(ws.max_depth_reached, child_depth);
      if (!child.model.violations().empty()) {
        record_violation(frame.path, &choice, child.model.violations());
        out.pop_back();
        return;
      }
      if (!visited_.insert(dedup_key(child.model, child.sleep))) {
        ++ws.states_deduped;
        out.pop_back();
        continue;
      }
      if (visited_.size() >= options_->max_states) {
        capped_.store(true, std::memory_order_relaxed);
        stop_.store(true, std::memory_order_release);
        out.pop_back();
        return;
      }
      child.path = std::make_shared<const PathNode>(PathNode{choice, frame.path});
    }
  }

  /// Visited-set key. With symmetry reduction the state hash is the orbit
  /// representative's; with DPOR the sleep set's commutative hash is mixed in
  /// — revisiting a state with a *different* sleep set must re-explore it
  /// (sleep sets + state caching is otherwise unsound: the first visit may
  /// have skipped transitions the second visit still needs).
  std::uint64_t dedup_key(const Model& model, const SleepSet& sleep) const {
    std::uint64_t key =
        options_->symmetry ? model.canonical_fingerprint() : model.fingerprint();
    if (options_->dpor) {
      const std::uint64_t s = sleep_hash(sleep);
      key ^= s + 0x9e3779b97f4a7c15ULL + (key << 6) + (key >> 2);
    }
    return key;
  }

  /// Single-threaded fast path: a plain vector as the DFS stack, no locks, no
  /// atomics on the hot path, frames expanded in depth-first preorder.
  void run_sequential(Frame&& root) {
    WorkerStats& ws = stats_[0];
    Scratch scratch;
    std::vector<Frame> stack;
    stack.reserve(256);
    stack.push_back(std::move(root));
    while (!stack.empty() && !stop_.load(std::memory_order_relaxed)) {
      Frame frame = std::move(stack.back());
      stack.pop_back();
      expand_children(std::move(frame), ws, scratch, stack);
    }
  }

  /// Expands a breadth-first prefix of the tree until there are a few frames
  /// per worker, then deals the frontier round-robin across the deques.
  void seed_breadth_first(Frame&& root, int threads) {
    const std::size_t target = static_cast<std::size_t>(threads) * 8;
    std::deque<Frame> frontier;
    frontier.push_back(std::move(root));
    Scratch scratch;
    std::vector<Frame> buffer;
    while (!frontier.empty() && frontier.size() < target &&
           !stop_.load(std::memory_order_relaxed)) {
      Frame frame = std::move(frontier.front());
      frontier.pop_front();
      buffer.clear();
      expand_children(std::move(frame), stats_[0], scratch, buffer);
      // buffer is in reverse choice order; append backward to keep the
      // frontier in breadth-first choice order.
      for (std::size_t i = buffer.size(); i > 0; --i) {
        frontier.push_back(std::move(buffer[i - 1]));
      }
    }
    pending_.store(frontier.size(), std::memory_order_relaxed);
    std::size_t next_queue = 0;
    while (!frontier.empty()) {
      queues_[next_queue].frames.push_back(std::move(frontier.front()));
      frontier.pop_front();
      next_queue = (next_queue + 1) % queues_.size();
    }
  }

  std::optional<Frame> try_pop(int worker) {
    {
      WorkerQueue& own = queues_[static_cast<std::size_t>(worker)];
      std::lock_guard<std::mutex> lock(own.mu);
      if (!own.frames.empty()) {
        std::optional<Frame> frame(std::move(own.frames.back()));
        own.frames.pop_back();
        return frame;
      }
    }
    const int n = static_cast<int>(queues_.size());
    for (int step = 1; step < n; ++step) {
      WorkerQueue& victim = queues_[static_cast<std::size_t>((worker + step) % n)];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.frames.empty()) {
        std::optional<Frame> frame(std::move(victim.frames.front()));
        victim.frames.pop_front();
        return frame;
      }
    }
    return std::nullopt;
  }

  void worker_loop(int worker) {
    WorkerStats& ws = stats_[static_cast<std::size_t>(worker)];
    WorkerQueue& own = queues_[static_cast<std::size_t>(worker)];
    Scratch scratch;
    std::vector<Frame> buffer;
    while (!stop_.load(std::memory_order_relaxed) &&
           pending_.load(std::memory_order_acquire) != 0) {
      std::optional<Frame> frame = try_pop(worker);
      if (!frame) {
        // Nothing local, nothing to steal: sleep until a producer pushes or
        // the search drains. The timeout bounds termination latency when a
        // notify races the wait.
        std::unique_lock<std::mutex> lock(idle_mu_);
        sleepers_.fetch_add(1, std::memory_order_relaxed);
        idle_cv_.wait_for(lock, std::chrono::microseconds(200));
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      buffer.clear();
      expand_children(std::move(*frame), ws, scratch, buffer);
      if (!buffer.empty()) {
        pending_.fetch_add(buffer.size(), std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(own.mu);
          // buffer is in reverse choice order, so pushing forward puts the
          // first choice's child on top of the LIFO and local expansion stays
          // depth-first preorder.
          for (Frame& child : buffer) {
            own.frames.push_back(std::move(child));
          }
        }
        if (sleepers_.load(std::memory_order_relaxed) > 0) idle_cv_.notify_all();
      }
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(idle_mu_);
        idle_cv_.notify_all();
      }
    }
  }

  void record_violation(const PathPtr& path, const Choice* last,
                        const std::vector<Violation>& violations) {
    std::vector<Choice> schedule = unwind(path);
    if (last != nullptr) schedule.push_back(*last);
    std::lock_guard<std::mutex> lock(ce_mu_);
    if (!counterexample_ || schedule_less(schedule, counterexample_->schedule)) {
      Counterexample ce;
      ce.schedule = std::move(schedule);
      for (const Violation& v : violations) ce.violations.push_back(v.description);
      counterexample_ = std::move(ce);
    }
    stop_.store(true, std::memory_order_release);
  }

  const ExploreOptions* options_;
  const int depth_limit_;  ///< max_depth, or INT_MAX when <= 0 (unbounded)
  util::ShardedFingerprintSet visited_;
  std::vector<WorkerQueue> queues_;
  std::vector<WorkerStats> stats_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> capped_{false};
  std::atomic<int> sleepers_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::mutex ce_mu_;
  std::optional<Counterexample> counterexample_;
};

}  // namespace

ExploreResult frontier_search(const Scenario& scenario, const ExploreOptions& options) {
  const int threads = effective_threads(options.threads);
  ExploreResult result;
  Model root = make_model(scenario, options);
  root.set_record_transitions(false);
  FrontierEngine engine(options, threads);
  engine.insert_root(root);
  if (!root.violations().empty()) {
    Counterexample ce;
    for (const Violation& v : root.violations()) ce.violations.push_back(v.description);
    result.counterexample = std::move(ce);
    return result;
  }
  engine.run(Frame{std::move(root), nullptr, 0, {}}, threads);
  engine.merge_into(result);
  return result;
}

ExploreResult random_search(const Scenario& scenario, const ExploreOptions& options,
                            std::uint64_t seed, std::size_t runs) {
  // Safety cap well above any legal run length: every walk terminates on its
  // own (timers re-arm only across bounded retry rounds), this only guards
  // against a pathological regression looping forever.
  constexpr std::size_t kMaxWalkLength = 1'000'000;

  /// Everything one walk contributes to the result, held back until the merge
  /// so stats accumulate in run order regardless of which worker ran what.
  struct RunDelta {
    std::size_t explored = 0;
    int max_depth = 0;
    bool length_capped = false;
    bool completed = false;
    std::size_t outcome = 0;  ///< AdaptationOutcome index, valid iff completed
    bool violated = false;
    std::vector<Choice> schedule;        ///< valid iff violated
    std::vector<std::string> violations;  ///< valid iff violated
  };

  std::vector<RunDelta> deltas(runs);
  std::atomic<std::size_t> next{0};
  // Lowest run index with a violation: runs above it can never reach the
  // merged result (the merge stops there), so workers skip them.
  std::atomic<std::size_t> first_violation{runs};

  auto body = [&] {
    std::vector<Choice> scratch;
    for (;;) {
      const std::size_t run = next.fetch_add(1, std::memory_order_relaxed);
      if (run >= runs) return;
      if (run > first_violation.load(std::memory_order_acquire)) continue;
      RunDelta& delta = deltas[run];
      util::Rng rng(seed + run * 0x9e3779b97f4a7c15ULL);
      Model model = make_model(scenario, options);
      model.set_record_transitions(false);
      std::vector<Choice> path;
      bool violated = false;
      while (path.size() < kMaxWalkLength) {
        model.choices(scratch);
        if (scratch.empty()) break;
        const Choice choice = scratch[rng.next_below(scratch.size())];
        model.apply(choice);
        path.push_back(choice);
        ++delta.explored;
        delta.max_depth = std::max(delta.max_depth, static_cast<int>(path.size()));
        if (!model.violations().empty()) {
          violated = true;
          break;
        }
      }
      if (!violated) {
        model.choices(scratch);
        if (!scratch.empty()) {  // walk-length cap hit
          delta.length_capped = true;
          continue;
        }
        model.finalize();
        violated = !model.violations().empty();
      }
      if (violated) {
        delta.violated = true;
        delta.schedule = std::move(path);
        for (const Violation& v : model.violations()) {
          delta.violations.push_back(v.description);
        }
        std::size_t current = first_violation.load(std::memory_order_relaxed);
        while (run < current &&
               !first_violation.compare_exchange_weak(current, run,
                                                      std::memory_order_acq_rel)) {
        }
        continue;
      }
      delta.completed = true;
      delta.outcome = static_cast<std::size_t>(model.outcome()->outcome);
    }
  };

  const int threads =
      std::min<int>(effective_threads(options.threads),
                    static_cast<int>(std::max<std::size_t>(runs, 1)));
  if (threads <= 1) {
    body();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(body);
    for (std::thread& th : pool) th.join();
  }

  // Merge in run order, stopping at the first violating run — exactly the
  // sequential engine's early return, so results match for any thread count.
  ExploreResult result;
  for (std::size_t run = 0; run < runs; ++run) {
    const RunDelta& delta = deltas[run];
    result.stats.states_explored += delta.explored;
    result.stats.max_depth_reached =
        std::max(result.stats.max_depth_reached, delta.max_depth);
    if (delta.violated) {
      result.counterexample = Counterexample{delta.schedule, delta.violations};
      break;
    }
    if (delta.length_capped) {
      ++result.stats.depth_capped;
      continue;
    }
    if (delta.completed) {
      ++result.stats.runs_completed;
      ++result.stats.outcomes[std::string(
          to_string(static_cast<proto::AdaptationOutcome>(delta.outcome)))];
    }
  }
  return result;
}

}  // namespace sa::check
