// Model-checking scenarios: self-contained protocol instances the bounded
// interleaving explorer (check/explorer.hpp) runs against.
//
// A Scenario owns everything the sans-I/O cores need — component registry,
// invariant set, action table, the derived safe-configuration set / SAG /
// planner — plus the agent topology (process -> reset stage) and the
// source/target configurations of the one adaptation request each run issues.
// Three instances are provided:
//
//   tiny   one process, two components, a single-step plan. Small enough to
//          explore exhaustively, including the full §4.4 failure chain.
//   pair   two processes coupled by cross-process dependency invariants, so
//          the only path is a joint two-process step with staged resets. This
//          is the smallest scenario where the §4.3 global-safe-state rule has
//          teeth (a resume sent one adapt-done early is observable).
//   paper  the §5 case study (64->128-bit hardening, three processes) —
//          explored under depth/state bounds rather than exhaustively.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "actions/planner.hpp"
#include "actions/sag.hpp"
#include "config/enumerate.hpp"
#include "config/invariants.hpp"
#include "config/registry.hpp"
#include "proto/core/agent_core.hpp"
#include "proto/core/manager_core.hpp"

namespace sa::check {

struct Scenario {
  std::string name;

  // Analysis data; registry behind a stable address because the invariant
  // set, action table, and derived structures point into it.
  std::unique_ptr<config::ComponentRegistry> registry;
  std::unique_ptr<config::InvariantSet> invariants;
  std::unique_ptr<actions::ActionTable> actions;
  std::vector<config::Configuration> safe_configs;
  std::unique_ptr<actions::SafeAdaptationGraph> sag;
  std::unique_ptr<actions::PathPlanner> planner;

  /// Agent topology: process id -> reset stage (lower stages quiesce first).
  std::map<config::ProcessId, int> stages;

  config::Configuration source;
  config::Configuration target;

  proto::ManagerConfig manager_config;
  proto::AgentConfig agent_config;

  /// Virtual one-way message latency between manager and agents (both
  /// directions), mirroring the deterministic simulator's control channel.
  runtime::Time latency = runtime::ms(2);
};

Scenario make_tiny_scenario();
Scenario make_pair_scenario();
Scenario make_paper_check_scenario();

/// Dispatch by name ("tiny" | "pair" | "paper"); throws std::invalid_argument
/// on anything else.
Scenario make_scenario(std::string_view name);

}  // namespace sa::check
