#include "check/explorer.hpp"

#include <cctype>
#include <stdexcept>
#include <utility>

#include "check/engine.hpp"
#include "obs/export.hpp"

namespace sa::check {

Model make_model(const Scenario& scenario, const ExploreOptions& options) {
  Model model(scenario,
              Model::Limits{options.drop_budget, options.dup_budget, options.reorder},
              options.fault);
  for (const config::ProcessId process : options.fail_to_reset) {
    model.set_fail_to_reset(process, true);
  }
  model.start();
  return model;
}

ExploreResult explore_dfs(const Scenario& scenario, const ExploreOptions& options) {
  return frontier_search(scenario, options);
}

ExploreResult explore_random(const Scenario& scenario, const ExploreOptions& options,
                             std::uint64_t seed, std::size_t runs) {
  return random_search(scenario, options, seed, runs);
}

ReplayResult replay(const Scenario& scenario, const ExploreOptions& options,
                    const std::vector<Choice>& schedule) {
  Model model = make_model(scenario, options);
  ReplayResult result;
  for (const Choice& choice : schedule) {
    if (!model.apply(choice)) {
      result.schedule_valid = false;
      break;
    }
  }
  // Counterexample schedules stop at the violating choice; only a schedule
  // that actually drained the run gets the end-of-run checks.
  if (result.schedule_valid && model.choices().empty()) model.finalize();
  result.violations = model.violations();
  result.outcome = model.outcome();
  result.transitions = model.transitions();
  return result;
}

// --- ManagerFault names -----------------------------------------------------

const char* to_string(proto::ManagerFault fault) {
  switch (fault) {
    case proto::ManagerFault::None: return "none";
    case proto::ManagerFault::ResumeBeforeLastAdaptDone: return "resume-before-last-adapt-done";
    case proto::ManagerFault::RollbackAfterResume: return "rollback-after-resume";
  }
  return "?";
}

proto::ManagerFault fault_from_string(std::string_view name) {
  if (name == "none") return proto::ManagerFault::None;
  if (name == "resume-before-last-adapt-done" || name == "resume-early") {
    return proto::ManagerFault::ResumeBeforeLastAdaptDone;
  }
  if (name == "rollback-after-resume") return proto::ManagerFault::RollbackAfterResume;
  throw std::invalid_argument("unknown fault: " + std::string(name));
}

// --- JSON schedule files ----------------------------------------------------

std::string to_json(const ScheduleFile& file) {
  std::string json;
  json += "{\n  \"scenario\": \"";
  json += obs::json_escape(file.scenario);
  json += "\",\n  \"options\": {";
  json += "\"max_depth\": " + std::to_string(file.options.max_depth);
  json += ", \"max_states\": " + std::to_string(file.options.max_states);
  json += ", \"drop_budget\": " + std::to_string(file.options.drop_budget);
  json += ", \"dup_budget\": " + std::to_string(file.options.dup_budget);
  json += std::string(", \"reorder\": ") + (file.options.reorder ? "true" : "false");
  json += std::string(", \"fault\": \"") + to_string(file.options.fault) + "\"";
  json += ", \"threads\": " + std::to_string(file.options.threads);
  json += ", \"fail_to_reset\": [";
  for (std::size_t i = 0; i < file.options.fail_to_reset.size(); ++i) {
    if (i != 0) json += ", ";
    json += std::to_string(file.options.fail_to_reset[i]);
  }
  json += "]},\n  \"schedule\": [";
  for (std::size_t i = 0; i < file.schedule.size(); ++i) {
    if (i != 0) json += ", ";
    json += "{\"kind\": \"";
    json += to_string(file.schedule[i].kind);
    json += "\", \"seq\": ";
    json += std::to_string(file.schedule[i].seq);
    json += "}";
  }
  json += "],\n  \"violations\": [";
  for (std::size_t i = 0; i < file.violations.size(); ++i) {
    if (i != 0) json += ", ";
    json += "\"";
    json += obs::json_escape(file.violations[i]);
    json += "\"";
  }
  json += "]\n}\n";
  return json;
}

namespace {

/// Minimal JSON reader — just enough for schedule files. Throws
/// std::runtime_error with a byte offset on malformed input.
class JsonParser {
 public:
  struct Value {
    enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    const Value* find(const std::string& key) const {
      for (const auto& [k, v] : object) {
        if (k == key) return &v;
      }
      return nullptr;
    }
  };

  explicit JsonParser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("schedule JSON: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Value v;
      v.type = Value::Type::String;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      Value v;
      v.type = Value::Type::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      Value v;
      v.type = Value::Type::Bool;
      return v;
    }
    if (consume_literal("null")) return Value{};
    return parse_number();
  }

  Value parse_object() {
    Value v;
    v.type = Value::Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    Value v;
    v.type = Value::Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          // Schedule files never emit non-ASCII; pass the sequence through.
          out += "\\u";
          break;
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.type = Value::Type::Number;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

ScheduleFile schedule_from_json(const std::string& text) {
  using Value = JsonParser::Value;
  const Value root = JsonParser(text).parse();
  if (root.type != Value::Type::Object) throw std::runtime_error("schedule JSON: not an object");

  ScheduleFile file;
  if (const Value* scenario = root.find("scenario")) file.scenario = scenario->string;
  if (file.scenario.empty()) throw std::runtime_error("schedule JSON: missing scenario");

  if (const Value* options = root.find("options")) {
    auto number = [options](const char* key, auto fallback) {
      const Value* v = options->find(key);
      return v != nullptr ? static_cast<decltype(fallback)>(v->number) : fallback;
    };
    file.options.max_depth = number("max_depth", file.options.max_depth);
    file.options.max_states = number("max_states", file.options.max_states);
    file.options.drop_budget = number("drop_budget", file.options.drop_budget);
    file.options.dup_budget = number("dup_budget", file.options.dup_budget);
    file.options.threads = number("threads", file.options.threads);
    if (const Value* reorder = options->find("reorder")) file.options.reorder = reorder->boolean;
    if (const Value* fault = options->find("fault")) {
      file.options.fault = fault_from_string(fault->string);
    }
    if (const Value* fail = options->find("fail_to_reset")) {
      for (const Value& v : fail->array) {
        file.options.fail_to_reset.push_back(static_cast<config::ProcessId>(v.number));
      }
    }
  }

  if (const Value* schedule = root.find("schedule")) {
    for (const Value& entry : schedule->array) {
      Choice choice;
      const Value* kind = entry.find("kind");
      const Value* seq = entry.find("seq");
      if (kind == nullptr || seq == nullptr) {
        throw std::runtime_error("schedule JSON: schedule entry missing kind/seq");
      }
      if (kind->string == "deliver") {
        choice.kind = Choice::Kind::Deliver;
      } else if (kind->string == "drop") {
        choice.kind = Choice::Kind::Drop;
      } else if (kind->string == "duplicate") {
        choice.kind = Choice::Kind::Duplicate;
      } else if (kind->string == "fire") {
        choice.kind = Choice::Kind::Fire;
      } else {
        throw std::runtime_error("schedule JSON: unknown choice kind " + kind->string);
      }
      choice.seq = static_cast<std::uint64_t>(seq->number);
      file.schedule.push_back(choice);
    }
  }

  if (const Value* violations = root.find("violations")) {
    for (const Value& v : violations->array) file.violations.push_back(v.string);
  }
  return file;
}

}  // namespace sa::check
