#include "check/explorer.hpp"

#include <stdexcept>
#include <utility>

#include "check/engine.hpp"
#include "obs/export.hpp"
#include "util/json.hpp"

namespace sa::check {

Model make_model(const Scenario& scenario, const ExploreOptions& options) {
  Model model(scenario,
              Model::Limits{options.drop_budget, options.dup_budget, options.reorder},
              options.fault);
  for (const config::ProcessId process : options.fail_to_reset) {
    model.set_fail_to_reset(process, true);
  }
  model.start();
  return model;
}

ExploreResult explore_dfs(const Scenario& scenario, const ExploreOptions& options) {
  return frontier_search(scenario, options);
}

ExploreResult explore_random(const Scenario& scenario, const ExploreOptions& options,
                             std::uint64_t seed, std::size_t runs) {
  return random_search(scenario, options, seed, runs);
}

ReplayResult replay(const Scenario& scenario, const ExploreOptions& options,
                    const std::vector<Choice>& schedule) {
  Model model = make_model(scenario, options);
  ReplayResult result;
  for (const Choice& choice : schedule) {
    if (!model.apply(choice)) {
      result.schedule_valid = false;
      break;
    }
  }
  // Counterexample schedules stop at the violating choice; only a schedule
  // that actually drained the run gets the end-of-run checks.
  if (result.schedule_valid && model.choices().empty()) model.finalize();
  result.violations = model.violations();
  result.outcome = model.outcome();
  result.transitions = model.transitions();
  return result;
}

// --- ManagerFault names -----------------------------------------------------

const char* to_string(proto::ManagerFault fault) {
  switch (fault) {
    case proto::ManagerFault::None: return "none";
    case proto::ManagerFault::ResumeBeforeLastAdaptDone: return "resume-before-last-adapt-done";
    case proto::ManagerFault::RollbackAfterResume: return "rollback-after-resume";
  }
  return "?";
}

proto::ManagerFault fault_from_string(std::string_view name) {
  if (name == "none") return proto::ManagerFault::None;
  if (name == "resume-before-last-adapt-done" || name == "resume-early") {
    return proto::ManagerFault::ResumeBeforeLastAdaptDone;
  }
  if (name == "rollback-after-resume") return proto::ManagerFault::RollbackAfterResume;
  throw std::invalid_argument("unknown fault: " + std::string(name));
}

// --- JSON schedule files ----------------------------------------------------

std::string to_json(const ScheduleFile& file) {
  std::string json;
  json += "{\n  \"scenario\": \"";
  json += obs::json_escape(file.scenario);
  json += "\",\n  \"options\": {";
  json += "\"max_depth\": " + std::to_string(file.options.max_depth);
  json += ", \"max_states\": " + std::to_string(file.options.max_states);
  json += ", \"drop_budget\": " + std::to_string(file.options.drop_budget);
  json += ", \"dup_budget\": " + std::to_string(file.options.dup_budget);
  json += std::string(", \"reorder\": ") + (file.options.reorder ? "true" : "false");
  json += std::string(", \"fault\": \"") + to_string(file.options.fault) + "\"";
  json += ", \"threads\": " + std::to_string(file.options.threads);
  json += std::string(", \"dpor\": ") + (file.options.dpor ? "true" : "false");
  json += std::string(", \"symmetry\": ") + (file.options.symmetry ? "true" : "false");
  json += ", \"fail_to_reset\": [";
  for (std::size_t i = 0; i < file.options.fail_to_reset.size(); ++i) {
    if (i != 0) json += ", ";
    json += std::to_string(file.options.fail_to_reset[i]);
  }
  json += "]},\n  \"schedule\": [";
  for (std::size_t i = 0; i < file.schedule.size(); ++i) {
    if (i != 0) json += ", ";
    json += "{\"kind\": \"";
    json += to_string(file.schedule[i].kind);
    json += "\", \"seq\": ";
    json += std::to_string(file.schedule[i].seq);
    json += "}";
  }
  json += "],\n  \"violations\": [";
  for (std::size_t i = 0; i < file.violations.size(); ++i) {
    if (i != 0) json += ", ";
    json += "\"";
    json += obs::json_escape(file.violations[i]);
    json += "\"";
  }
  json += "]\n}\n";
  return json;
}

ScheduleFile schedule_from_json(const std::string& text) {
  using Value = util::JsonValue;
  const Value root = util::parse_json(text, "schedule JSON");
  if (root.type != Value::Type::Object) throw std::runtime_error("schedule JSON: not an object");

  ScheduleFile file;
  if (const Value* scenario = root.find("scenario")) file.scenario = scenario->string;
  if (file.scenario.empty()) throw std::runtime_error("schedule JSON: missing scenario");

  if (const Value* options = root.find("options")) {
    auto number = [options](const char* key, auto fallback) {
      const Value* v = options->find(key);
      return v != nullptr ? static_cast<decltype(fallback)>(v->number) : fallback;
    };
    file.options.max_depth = number("max_depth", file.options.max_depth);
    file.options.max_states = number("max_states", file.options.max_states);
    file.options.drop_budget = number("drop_budget", file.options.drop_budget);
    file.options.dup_budget = number("dup_budget", file.options.dup_budget);
    file.options.threads = number("threads", file.options.threads);
    if (const Value* reorder = options->find("reorder")) file.options.reorder = reorder->boolean;
    if (const Value* dpor = options->find("dpor")) file.options.dpor = dpor->boolean;
    if (const Value* symmetry = options->find("symmetry")) {
      file.options.symmetry = symmetry->boolean;
    }
    if (const Value* fault = options->find("fault")) {
      file.options.fault = fault_from_string(fault->string);
    }
    if (const Value* fail = options->find("fail_to_reset")) {
      for (const Value& v : fail->array) {
        file.options.fail_to_reset.push_back(static_cast<config::ProcessId>(v.number));
      }
    }
  }

  if (const Value* schedule = root.find("schedule")) {
    for (const Value& entry : schedule->array) {
      Choice choice;
      const Value* kind = entry.find("kind");
      const Value* seq = entry.find("seq");
      if (kind == nullptr || seq == nullptr) {
        throw std::runtime_error("schedule JSON: schedule entry missing kind/seq");
      }
      if (kind->string == "deliver") {
        choice.kind = Choice::Kind::Deliver;
      } else if (kind->string == "drop") {
        choice.kind = Choice::Kind::Drop;
      } else if (kind->string == "duplicate") {
        choice.kind = Choice::Kind::Duplicate;
      } else if (kind->string == "fire") {
        choice.kind = Choice::Kind::Fire;
      } else {
        throw std::runtime_error("schedule JSON: unknown choice kind " + kind->string);
      }
      choice.seq = static_cast<std::uint64_t>(seq->number);
      file.schedule.push_back(choice);
    }
  }

  if (const Value* violations = root.find("violations")) {
    for (const Value& v : violations->array) file.violations.push_back(v.string);
  }
  return file;
}

}  // namespace sa::check
