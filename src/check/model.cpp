#include "check/model.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <utility>

namespace sa::check {

namespace {

/// boost::hash_combine-style mixer, same spirit as the cores' fingerprints.
void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

void mix_string(std::uint64_t& h, const std::string& s) { mix(h, std::hash<std::string>{}(s)); }

void mix_step(std::uint64_t& h, const proto::StepRef& ref) {
  mix(h, ref.request_id);
  mix(h, ref.plan);
  mix(h, ref.step_index);
  mix(h, ref.attempt);
}

/// Structural hash of a protocol message: type, step coordinates, and the
/// payload fields that influence receiver behaviour. Timing payloads
/// (ResumeDone::blocked_for) are excluded on purpose — they never steer
/// control flow, and including them would make every state unique.
std::uint64_t message_fingerprint(const runtime::MessagePtr& message) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* proto_msg = dynamic_cast<const proto::ProtoMessage*>(message.get());
  if (proto_msg == nullptr) return h;
  mix_step(h, proto_msg->step);
  switch (proto_msg->kind()) {
    case proto::MsgKind::Reset: {
      const auto& reset = static_cast<const proto::ResetMsg&>(*proto_msg);
      mix(h, 1);
      mix(h, static_cast<std::uint64_t>(reset.drain));
      mix(h, static_cast<std::uint64_t>(reset.sole_participant));
      for (const auto& name : reset.command.remove) mix_string(h, name);
      for (const auto& name : reset.command.add) mix_string(h, name);
      break;
    }
    case proto::MsgKind::ResetDone: mix(h, 2); break;
    case proto::MsgKind::AdaptDone: mix(h, 3); break;
    case proto::MsgKind::Resume: mix(h, 4); break;
    case proto::MsgKind::ResumeDone: mix(h, 5); break;
    case proto::MsgKind::Rollback: mix(h, 6); break;
    case proto::MsgKind::RollbackDone: mix(h, 7); break;
  }
  return h;
}

}  // namespace

bool choices_dependent(const ChoiceFootprint& a, const ChoiceFootprint& b) {
  if (a.choice.seq == b.choice.seq) return true;  // same message / same timer
  if (a.entity != ChoiceFootprint::kEntityNone && a.entity == b.entity) return true;
  // Drops share the drop budget, duplicates the dup budget: executing one can
  // disable the other, so their order is never free.
  if (a.kind == Choice::Kind::Drop && b.kind == Choice::Kind::Drop) return true;
  if (a.kind == Choice::Kind::Duplicate && b.kind == Choice::Kind::Duplicate) return true;
  // A duplicate appends a copy to the tail of its channel. So does the
  // channel's producer core when it steps — swapping them reorders the FIFO.
  const auto dup_races_producer = [](const ChoiceFootprint& dup, const ChoiceFootprint& other) {
    if (dup.kind != Choice::Kind::Duplicate) return false;
    const std::uint8_t producer =
        dup.channel_to_manager ? dup.channel_agent : ChoiceFootprint::kEntityManager;
    return other.entity == producer;
  };
  if (dup_races_producer(a, b) || dup_races_producer(b, a)) return true;
  return false;
}

const char* to_string(Choice::Kind kind) {
  switch (kind) {
    case Choice::Kind::Deliver: return "deliver";
    case Choice::Kind::Drop: return "drop";
    case Choice::Kind::Duplicate: return "duplicate";
    case Choice::Kind::Fire: return "fire";
  }
  return "?";
}

Model::Model(const Scenario& scenario, Limits limits, proto::ManagerFault fault)
    : scenario_(&scenario), limits_(limits),
      manager_(*scenario.invariants, *scenario.actions, *scenario.planner,
               scenario.manager_config),
      drops_left_(limits.drop_budget), dups_left_(limits.dup_budget) {
  manager_.inject_fault(fault);
  manager_.set_current_configuration(scenario.source);
  agents_.reserve(scenario.stages.size());
  for (const auto& [process, stage] : scenario.stages) {  // std::map: ascending
    if (process >= 64) {
      throw std::invalid_argument("Model: process ids must be < 64 (bitmask bookkeeping)");
    }
    manager_.register_agent(process, stage);
    AgentEntity entity(scenario.agent_config);
    entity.stage = stage;
    entity.role_fp = 0x100000001b3ULL;
    mix(entity.role_fp, static_cast<std::uint64_t>(stage));
    // Hosted components are part of the role: agents are interchangeable only
    // if the manager would send them identical reset commands, and commands
    // are derived from the component names on each process.
    for (config::ComponentId id = 0; id < scenario.registry->size(); ++id) {
      const config::ComponentInfo& info = scenario.registry->info(id);
      if (info.process == process) mix_string(entity.role_fp, info.name);
    }
    agents_.emplace_back(process, std::move(entity));
  }
}

Model::AgentEntity& Model::agent_at(config::ProcessId process) {
  for (auto& [id, entity] : agents_) {
    if (id == process) return entity;
  }
  throw std::out_of_range("Model: unknown process " + std::to_string(process));
}

const Model::AgentEntity& Model::agent_at(config::ProcessId process) const {
  return const_cast<Model*>(this)->agent_at(process);
}

void Model::set_fail_to_reset(config::ProcessId process, bool fail) {
  AgentEntity& entity = agent_at(process);
  entity.core.set_fail_to_reset(fail);
  entity.fail_to_reset = fail;  // AgentCore::fingerprint skips config flags
}

void Model::start() {
  apply_manager_outputs(
      manager_.step(proto::ManagerInput{now_, proto::ManagerInput::AdaptCommand{scenario_->target}}));
}

bool Model::deliverable(const InFlight& m) const {
  if (limits_.reorder) return true;
  // FIFO per directed channel: deliverable iff no older in-flight message
  // shares the channel. in_flight_ is kept in creation order.
  for (const InFlight& other : in_flight_) {
    if (other.seq == m.seq) return true;  // m itself is the oldest
    if (other.to_manager == m.to_manager && other.agent == m.agent) return false;
  }
  return true;
}

std::vector<Choice> Model::choices() const {
  std::vector<Choice> result;
  choices(result);
  return result;
}

void Model::choices(std::vector<Choice>& out) const {
  out.clear();
  for (const InFlight& m : in_flight_) {
    if (!deliverable(m)) continue;
    out.push_back(Choice{Choice::Kind::Deliver, m.seq});
    if (drops_left_ > 0) out.push_back(Choice{Choice::Kind::Drop, m.seq});
    if (dups_left_ > 0) out.push_back(Choice{Choice::Kind::Duplicate, m.seq});
  }
  auto add_timer = [&out](const TimerSlot& slot) {
    if (slot.armed) out.push_back(Choice{Choice::Kind::Fire, slot.seq});
  };
  add_timer(mgr_protocol_);
  add_timer(mgr_stage_);
  for (const auto& [process, entity] : agents_) add_timer(entity.timer);
}

std::optional<Choice> Model::sim_choice() const {
  std::optional<Choice> best;
  runtime::Time best_time = 0;
  std::uint64_t best_seq = 0;
  auto consider = [&](Choice::Kind kind, std::uint64_t seq, runtime::Time due) {
    if (!best || due < best_time || (due == best_time && seq < best_seq)) {
      best = Choice{kind, seq};
      best_time = due;
      best_seq = seq;
    }
  };
  for (const InFlight& m : in_flight_) {
    if (deliverable(m)) consider(Choice::Kind::Deliver, m.seq, m.deliver_at);
  }
  auto consider_timer = [&consider](const TimerSlot& slot) {
    if (slot.armed) consider(Choice::Kind::Fire, slot.seq, slot.deadline);
  };
  consider_timer(mgr_protocol_);
  consider_timer(mgr_stage_);
  for (const auto& [process, entity] : agents_) consider_timer(entity.timer);
  return best;
}

bool Model::apply(const Choice& choice) {
  if (choice.kind == Choice::Kind::Fire) {
    auto fire = [this, &choice](TimerSlot& slot) {
      if (!slot.armed || slot.seq != choice.seq) return false;
      slot.armed = false;
      now_ = std::max(now_, slot.deadline);
      return true;
    };
    if (fire(mgr_protocol_)) {
      apply_manager_outputs(manager_.step(proto::ManagerInput{
          now_, proto::ManagerInput::TimerFired{proto::ManagerTimer::Protocol}}));
      return true;
    }
    if (fire(mgr_stage_)) {
      apply_manager_outputs(manager_.step(proto::ManagerInput{
          now_, proto::ManagerInput::TimerFired{proto::ManagerTimer::StageDelay}}));
      return true;
    }
    for (auto& [process, entity] : agents_) {
      if (fire(entity.timer)) {
        apply_agent_outputs(process, entity.core.step(proto::AgentInput{
                                         now_, proto::AgentInput::TimerFired{}}));
        return true;
      }
    }
    return false;
  }

  const auto it = std::find_if(in_flight_.begin(), in_flight_.end(),
                               [&choice](const InFlight& m) { return m.seq == choice.seq; });
  if (it == in_flight_.end() || !deliverable(*it)) return false;
  switch (choice.kind) {
    case Choice::Kind::Deliver: {
      const InFlight m = *it;
      in_flight_.erase(it);
      now_ = std::max(now_, m.deliver_at);
      deliver(m);
      return true;
    }
    case Choice::Kind::Drop:
      if (drops_left_ <= 0) return false;
      --drops_left_;
      in_flight_.erase(it);
      return true;
    case Choice::Kind::Duplicate: {
      if (dups_left_ <= 0) return false;
      --dups_left_;
      InFlight copy = *it;  // shares the immutable message payload (and its hash)
      copy.seq = next_seq_++;
      copy.deliver_at = now_ + scenario_->latency;
      in_flight_.push_back(std::move(copy));
      return true;
    }
    case Choice::Kind::Fire: break;  // handled above
  }
  return false;
}

void Model::deliver(const InFlight& m) {
  if (m.to_manager) {
    note_manager_delivery(m.agent, m.message);
    apply_manager_outputs(manager_.step(
        proto::ManagerInput{now_, proto::ManagerInput::MessageDelivered{m.agent, m.message}}));
  } else {
    apply_agent_outputs(m.agent,
                        agent_at(m.agent).core.step(proto::AgentInput{
                            now_, proto::AgentInput::MessageDelivered{m.message}}));
  }
}

Model::StepBook& Model::book_for(const proto::StepRef& ref) {
  // Newest-first: nearly every lookup targets the current step attempt.
  for (std::size_t i = books_.size(); i > 0; --i) {
    if (books_[i - 1].ref == ref) return books_[i - 1];
  }
  StepBook& book = books_.emplace_back();
  book.ref = ref;
  return book;
}

void Model::check_manager_send(config::ProcessId to, const runtime::MessagePtr& message) {
  const auto* proto_msg = dynamic_cast<const proto::ProtoMessage*>(message.get());
  if (proto_msg == nullptr) return;
  switch (proto_msg->kind()) {
    case proto::MsgKind::Reset:
      book_for(proto_msg->step).reset_sent.insert(to);
      return;
    case proto::MsgKind::Resume: {
      StepBook& book = book_for(proto_msg->step);
      // Each check fires once — per destination / per step — so retransmission
      // rounds don't repeat an already-reported violation.
      if (book.resume_sent_to.insert(to) && !book.reset_sent.contains(to)) {
        violation("resume for step " + proto_msg->step.describe() + " sent to process " +
                  std::to_string(to) + " before its reset (§4.3)");
      }
      if (!book.resume_announced) {
        book.resume_announced = true;
        for (const config::ProcessId process : book.reset_sent) {
          if (!book.adapt_delivered.contains(process)) {
            violation("resume for step " + proto_msg->step.describe() +
                      " sent before adapt done from process " + std::to_string(process) +
                      " was delivered (§4.3 global safe state)");
          }
        }
      }
      return;
    }
    case proto::MsgKind::Rollback: {
      StepBook& book = book_for(proto_msg->step);
      if (book.rollback_sent_to.insert(to) && book.resume_announced) {
        violation("rollback for step " + proto_msg->step.describe() +
                  " sent after its resume (§4.4 run-to-completion)");
      }
      return;
    }
    default:
      return;
  }
}

void Model::note_manager_delivery(config::ProcessId from, const runtime::MessagePtr& message) {
  const auto* proto_msg = dynamic_cast<const proto::ProtoMessage*>(message.get());
  if (proto_msg == nullptr) return;
  // A resume done subsumes the adapt done it implies (the manager treats it
  // as both acknowledgements when the adapt done itself was lost).
  if (proto_msg->kind() == proto::MsgKind::AdaptDone ||
      proto_msg->kind() == proto::MsgKind::ResumeDone) {
    book_for(proto_msg->step).adapt_delivered.insert(from);
  }
}

void Model::apply_manager_outputs(const std::vector<proto::Output>& outputs) {
  for (const proto::Output& out : outputs) {
    switch (out.kind) {
      case proto::OutputKind::Send:
        check_manager_send(out.process, out.message);
        in_flight_.push_back(InFlight{false, out.process, out.message, next_seq_++,
                                      now_ + scenario_->latency,
                                      message_fingerprint(out.message)});
        break;
      case proto::OutputKind::ArmTimer: {
        TimerSlot& slot =
            out.timer == proto::ManagerTimer::Protocol ? mgr_protocol_ : mgr_stage_;
        slot.armed = true;
        slot.deadline = now_ + out.delay;
        slot.seq = next_seq_++;
        break;
      }
      case proto::OutputKind::DisarmTimer:
        (out.timer == proto::ManagerTimer::Protocol ? mgr_protocol_ : mgr_stage_).armed = false;
        break;
      case proto::OutputKind::Transition:
        if (record_transitions_) {
          transitions_.push_back(TransitionRec{"manager", std::string(to_string(out.phase_from)),
                                               std::string(to_string(out.phase_to))});
        }
        break;
      case proto::OutputKind::StepCommitted:
        if (!scenario_->invariants->satisfied(out.config)) {
          std::string names;
          for (const auto& name : scenario_->invariants->violations(out.config)) {
            if (!names.empty()) names += ", ";
            names += name;
          }
          violation("step " + out.ref.describe() + " committed unsafe configuration " +
                    out.config.describe(*scenario_->registry) + " (violates: " + names + ")");
        }
        break;
      case proto::OutputKind::Outcome:
        outcome_ = out.result;
        if (out.result.outcome == proto::AdaptationOutcome::Success &&
            !(out.result.final_config == scenario_->target)) {
          violation("success outcome but final configuration " +
                    out.result.final_config.describe(*scenario_->registry) +
                    " differs from the target");
        }
        break;
      default:
        break;  // spans, notes, and metrics hints carry no model state
    }
  }
}

void Model::dispatch_agent_local(config::ProcessId process, proto::AgentLocalEvent event) {
  apply_agent_outputs(process,
                      agent_at(process).core.step(proto::AgentInput{now_, event}));
}

void Model::apply_agent_outputs(config::ProcessId process,
                                const std::vector<proto::Output>& outputs) {
  AgentEntity& entity = agent_at(process);
  for (const proto::Output& out : outputs) {
    switch (out.kind) {
      case proto::OutputKind::Send:
        in_flight_.push_back(
            InFlight{true, process, out.message, next_seq_++, now_ + scenario_->latency,
                     message_fingerprint(out.message)});
        break;
      case proto::OutputKind::ArmTimer:
        entity.timer.armed = true;
        entity.timer.deadline = now_ + out.delay;
        entity.timer.seq = next_seq_++;
        break;
      case proto::OutputKind::DisarmTimer:
        entity.timer.armed = false;
        break;
      case proto::OutputKind::Transition:
        if (record_transitions_) {
          transitions_.push_back(TransitionRec{"agent" + std::to_string(process),
                                               std::string(to_string(out.state_from)),
                                               std::string(to_string(out.state_to))});
        }
        break;
      case proto::OutputKind::ProcessPrepare:
        dispatch_agent_local(process, proto::AgentLocalEvent::PrepareSucceeded);
        break;
      case proto::OutputKind::ProcessReachSafe:
        entity.blocked = true;
        dispatch_agent_local(process, proto::AgentLocalEvent::SafeStateReached);
        break;
      case proto::OutputKind::ProcessAbortSafe:
        entity.blocked = false;
        break;
      case proto::OutputKind::ProcessApply:
        if (!entity.blocked) {
          violation("in-action for step " + out.ref.describe() + " executed on process " +
                    std::to_string(process) + " outside its safe state");
        }
        dispatch_agent_local(process, proto::AgentLocalEvent::ApplySucceeded);
        break;
      case proto::OutputKind::ProcessUndo:
        if (!entity.blocked) {
          violation("undo for step " + out.ref.describe() + " executed on process " +
                    std::to_string(process) + " outside its safe state");
        }
        break;
      case proto::OutputKind::ProcessResume:
        entity.blocked = false;
        break;
      default:
        break;  // cleanup and duplicate notes carry no model state
    }
  }
}

void Model::finalize() {
  if (!outcome_) {
    violation("run quiesced without a terminal adaptation outcome (deadlock)");
    return;
  }
  if (outcome_->outcome != proto::AdaptationOutcome::Success) return;
  for (const auto& [process, entity] : agents_) {
    if (entity.blocked) {
      violation("process " + std::to_string(process) +
                " still blocked after a successful adaptation");
    }
    if (entity.core.state() != proto::AgentState::Running) {
      violation("agent on process " + std::to_string(process) + " left in state " +
                std::string(to_string(entity.core.state())) +
                " after a successful adaptation");
    }
  }
}

void Model::violation(std::string description) {
  violations_.push_back(Violation{std::move(description)});
}

std::uint64_t Model::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  manager_.fingerprint(h);
  mix(h, mgr_protocol_.armed);
  mix(h, mgr_stage_.armed);
  for (const auto& [process, entity] : agents_) {
    mix(h, process);
    entity.core.fingerprint(h);
    mix(h, entity.blocked);
    mix(h, entity.timer.armed);
  }
  for (const InFlight& m : in_flight_) {
    mix(h, m.to_manager);
    mix(h, m.agent);
    mix(h, m.msg_fp);
  }
  mix(h, static_cast<std::uint64_t>(drops_left_));
  mix(h, static_cast<std::uint64_t>(dups_left_));
  mix(h, outcome_.has_value());
  // P2/P3 bookkeeping is intentionally not mixed in: for the current step it
  // is a function of the manager core's own per-step state (involved set,
  // acks, resume flag), and completed steps can never influence future sends.
  return h;
}

std::uint64_t Model::canonical_fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  manager_.fingerprint_shared(h);
  mix(h, mgr_protocol_.armed);
  mix(h, mgr_stage_.armed);
  util::SmallVector<std::uint64_t, 8> subs;
  for (const auto& [process, entity] : agents_) {
    std::uint64_t sub = 0x9ae16a3b2f90404fULL;
    mix(sub, entity.role_fp);
    mix(sub, entity.fail_to_reset);
    entity.core.fingerprint(sub);
    mix(sub, entity.blocked);
    mix(sub, entity.timer.armed);
    // The agent's slice of the manager's per-process bookkeeping travels with
    // the agent, not with the manager: a permutation of agents permutes these
    // bits the same way it permutes core states, so the sorted representative
    // stays consistent.
    mix(sub, manager_.process_fingerprint(process));
    // Both directed channels of this agent, in FIFO order. Hashing channels
    // here (instead of the global creation-order walk fingerprint() does)
    // also erases the interleaving of sends on *distinct* channels — already
    // unobservable, since delivery order across channels is unconstrained.
    std::uint64_t to_agent = 0xcbf29ce484222325ULL;
    std::uint64_t to_manager = 0xcbf29ce484222325ULL;
    for (const InFlight& m : in_flight_) {
      if (m.agent != process) continue;
      mix(m.to_manager ? to_manager : to_agent, m.msg_fp);
    }
    mix(sub, to_agent);
    mix(sub, to_manager);
    subs.push_back(sub);
  }
  std::sort(subs.begin(), subs.end());
  for (const std::uint64_t sub : subs) mix(h, sub);
  mix(h, static_cast<std::uint64_t>(drops_left_));
  mix(h, static_cast<std::uint64_t>(dups_left_));
  mix(h, outcome_.has_value());
  return h;
}

ChoiceFootprint Model::choice_footprint(const Choice& choice) const {
  ChoiceFootprint fp;
  fp.choice = choice;
  fp.kind = choice.kind;
  if (choice.kind == Choice::Kind::Fire) {
    // Timer slot classes: 0 = manager protocol, 1 = manager stage delay,
    // 2 = agent retransmission timer (role distinguishes which kind of agent).
    if (mgr_protocol_.armed && mgr_protocol_.seq == choice.seq) {
      fp.entity = ChoiceFootprint::kEntityManager;
      fp.content = 0;
      fp.role = ChoiceFootprint::kManagerRole;
      return fp;
    }
    if (mgr_stage_.armed && mgr_stage_.seq == choice.seq) {
      fp.entity = ChoiceFootprint::kEntityManager;
      fp.content = 1;
      fp.role = ChoiceFootprint::kManagerRole;
      return fp;
    }
    for (const auto& [process, entity] : agents_) {
      if (entity.timer.armed && entity.timer.seq == choice.seq) {
        fp.entity = static_cast<std::uint8_t>(process);
        fp.content = 2;
        fp.role = entity.role_fp;
        return fp;
      }
    }
    throw std::out_of_range("choice_footprint: no armed timer with seq " +
                            std::to_string(choice.seq));
  }
  const auto it = std::find_if(in_flight_.begin(), in_flight_.end(),
                               [&choice](const InFlight& m) { return m.seq == choice.seq; });
  if (it == in_flight_.end()) {
    throw std::out_of_range("choice_footprint: no in-flight message with seq " +
                            std::to_string(choice.seq));
  }
  fp.channel_agent = static_cast<std::uint8_t>(it->agent);
  fp.channel_to_manager = it->to_manager;
  fp.content = it->msg_fp;
  fp.role = agent_at(it->agent).role_fp;
  if (choice.kind == Choice::Kind::Deliver) {
    fp.entity = it->to_manager ? ChoiceFootprint::kEntityManager
                               : static_cast<std::uint8_t>(it->agent);
  }
  // Drop / Duplicate step no core: entity stays kEntityNone.
  return fp;
}

}  // namespace sa::check
