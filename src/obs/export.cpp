#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <vector>

namespace sa::obs {

namespace {

/// Integral values print as integers (timestamps, counts); everything else
/// with enough digits to round-trip. Deterministic for a given value.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_event_line(const Event& e, std::ostream& out, const std::string& prefix) {
  out << '{' << prefix << "\"seq\":" << e.seq << ",\"t\":" << e.time << ",\"kind\":\""
      << to_string(e.kind) << '"';
  if (e.track != kNoTrack) out << ",\"track\":" << e.track;
  if (is_message_event(e.kind)) out << ",\"from\":" << e.from << ",\"to\":" << e.to;
  if (e.coords.request != 0) {
    out << ",\"request\":" << e.coords.request << ",\"plan\":" << e.coords.plan
        << ",\"step\":" << e.coords.step << ",\"attempt\":" << e.coords.attempt;
  }
  if (e.span != 0) out << ",\"span\":" << e.span;
  if (e.parent_span != 0) out << ",\"parent\":" << e.parent_span;
  if (e.epoch != 0) out << ",\"epoch\":" << e.epoch;
  if (!e.name.empty()) out << ",\"name\":\"" << json_escape(e.name) << '"';
  if (!e.detail.empty()) out << ",\"detail\":\"" << json_escape(e.detail) << '"';
  if (e.has_value) out << ",\"value\":" << format_number(e.value);
  out << "}\n";
}

/// Shared body of the two recorder-backed write_jsonl overloads; `prefix` is
/// either empty or a rendered `"region":<n>,` fragment prepended to every line.
void write_jsonl_impl(const TraceRecorder& recorder, std::ostream& out,
                      const std::string& prefix) {
  // Track names lead the stream as meta lines so an analysis pass can label
  // tree nodes without access to the recorder.
  for (const auto& [track, name] : recorder.track_names()) {
    out << '{' << prefix << "\"meta\":\"track_name\",\"track\":" << track << ",\"name\":\""
        << json_escape(name) << "\"}\n";
  }
  for (const Event& e : recorder.events()) write_event_line(e, out, prefix);
}

}  // namespace

void write_jsonl(const TraceRecorder& recorder, std::ostream& out) {
  write_jsonl_impl(recorder, out, "");
}

void write_jsonl(const TraceRecorder& recorder, std::ostream& out, std::uint64_t region) {
  write_jsonl_impl(recorder, out, "\"region\":" + std::to_string(region) + ",");
}

void write_jsonl(const std::vector<Event>& events, std::ostream& out) {
  for (const Event& e : events) write_event_line(e, out, "");
}

namespace {

/// Chrome tids must be non-negative: the manager track (-1) becomes tid 0,
/// process p becomes tid p + 1.
std::int64_t tid_of(std::int64_t track) { return track + 1; }

std::string step_span_id(const StepCoords& c) {
  return "r" + std::to_string(c.request) + ".p" + std::to_string(c.plan) + ".s" +
         std::to_string(c.step) + ".a" + std::to_string(c.attempt);
}

struct ChromeWriter {
  std::ostream& out;
  bool first = true;

  void emit(const std::string& json) {
    if (!first) out << ",\n";
    first = false;
    out << "  " << json;
  }
};

}  // namespace

void write_chrome_trace(const TraceRecorder& recorder, std::ostream& out) {
  const std::vector<Event> events = recorder.events();
  const auto tracks = recorder.track_names();

  runtime::Time trace_start = 0;
  runtime::Time trace_end = 0;
  if (!events.empty()) {
    trace_start = events.front().time;
    for (const Event& e : events) {
      trace_start = std::min(trace_start, e.time);
      trace_end = std::max(trace_end, e.time);
    }
  }

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  ChromeWriter w{out};

  w.emit(R"({"ph":"M","name":"process_name","pid":0,"tid":0,"args":{"name":"safe-adaptation"}})");
  for (const auto& [track, name] : tracks) {
    w.emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" +
           std::to_string(tid_of(track)) + ",\"args\":{\"name\":\"" + json_escape(name) +
           "\"}}");
  }

  // Phase/state slices: each track's transition events cut its timeline into
  // complete ("X") slices; the slice before the first transition carries the
  // transition's from-state so every track starts at trace_start.
  std::map<std::int64_t, std::vector<const Event*>> transitions;
  for (const Event& e : events) {
    if (e.kind == EventKind::ManagerPhase || e.kind == EventKind::AgentState) {
      transitions[e.track].push_back(&e);
    }
  }
  for (const auto& [track, list] : transitions) {
    const std::int64_t tid = tid_of(track);
    const auto slice = [&](const std::string& name, runtime::Time begin, runtime::Time end) {
      w.emit("{\"ph\":\"X\",\"cat\":\"state\",\"name\":\"" + json_escape(name) +
             "\",\"pid\":0,\"tid\":" + std::to_string(tid) + ",\"ts\":" + std::to_string(begin) +
             ",\"dur\":" + std::to_string(std::max<runtime::Time>(end - begin, 0)) + "}");
    };
    if (!list.front()->detail.empty() && list.front()->time > trace_start) {
      slice(list.front()->detail, trace_start, list.front()->time);
    }
    for (std::size_t i = 0; i < list.size(); ++i) {
      const runtime::Time end = i + 1 < list.size() ? list[i + 1]->time : trace_end;
      slice(list[i]->name, list[i]->time, end);
    }
  }

  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::AdaptationRequested:
        w.emit("{\"ph\":\"b\",\"cat\":\"adaptation\",\"name\":\"adaptation\",\"id\":" +
               std::to_string(e.coords.request) + ",\"pid\":0,\"tid\":" +
               std::to_string(tid_of(kManagerTrack)) + ",\"ts\":" + std::to_string(e.time) +
               ",\"args\":{\"detail\":\"" + json_escape(e.detail) + "\"}}");
        break;
      case EventKind::AdaptationFinished:
        w.emit("{\"ph\":\"e\",\"cat\":\"adaptation\",\"name\":\"adaptation\",\"id\":" +
               std::to_string(e.coords.request) + ",\"pid\":0,\"tid\":" +
               std::to_string(tid_of(kManagerTrack)) + ",\"ts\":" + std::to_string(e.time) +
               ",\"args\":{\"outcome\":\"" + json_escape(e.name) + "\"}}");
        break;
      case EventKind::StepStarted:
        w.emit("{\"ph\":\"b\",\"cat\":\"step\",\"name\":\"" + json_escape(e.name) +
               "\",\"id\":\"" + step_span_id(e.coords) + "\",\"pid\":0,\"tid\":" +
               std::to_string(tid_of(kManagerTrack)) + ",\"ts\":" + std::to_string(e.time) + "}");
        break;
      case EventKind::StepCommitted:
      case EventKind::StepRolledBack:
        w.emit("{\"ph\":\"e\",\"cat\":\"step\",\"name\":\"" + json_escape(e.name) +
               "\",\"id\":\"" + step_span_id(e.coords) + "\",\"pid\":0,\"tid\":" +
               std::to_string(tid_of(kManagerTrack)) + ",\"ts\":" + std::to_string(e.time) +
               ",\"args\":{\"fate\":\"" +
               (e.kind == EventKind::StepCommitted ? "committed" : "rolled_back") + "\"}}");
        break;
      case EventKind::MessageSent:
      case EventKind::MessageDelivered:
      case EventKind::MessageDropped:
      case EventKind::MessageDuplicated: {
        // Attribute sends/drops/duplicates to the sender's track, deliveries
        // to the receiver's; endpoints without a track (e.g. application data
        // nodes) land on the manager row rather than vanishing.
        const runtime::NodeId endpoint =
            e.kind == EventKind::MessageDelivered ? e.to : e.from;
        const std::int64_t track = recorder.node_track(endpoint).value_or(kManagerTrack);
        w.emit("{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"message\",\"name\":\"" +
               std::string(e.kind == EventKind::MessageDelivered ? "recv " : "send ") +
               json_escape(e.name) + "\",\"pid\":0,\"tid\":" + std::to_string(tid_of(track)) +
               ",\"ts\":" + std::to_string(e.time) + ",\"args\":{\"kind\":\"" +
               std::string(to_string(e.kind)) + "\",\"from\":" + std::to_string(e.from) +
               ",\"to\":" + std::to_string(e.to) + "}}");
        break;
      }
      case EventKind::TimerArmed:
      case EventKind::TimerFired:
      case EventKind::TimerCancelled:
        w.emit("{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"timer\",\"name\":\"" +
               std::string(to_string(e.kind)) + " " + json_escape(e.name) +
               "\",\"pid\":0,\"tid\":" +
               std::to_string(tid_of(e.track == kNoTrack ? kManagerTrack : e.track)) +
               ",\"ts\":" + std::to_string(e.time) + "}");
        break;
      default:
        break;
    }
  }

  // Causal flow arrows: every event that names both its own span and its
  // parent gets an arrow from the parent span's first event. The child span
  // id doubles as the flow id (each child has exactly one parent), so
  // Perfetto renders one arrow per tree edge.
  std::map<std::uint64_t, const Event*> span_origin;
  for (const Event& e : events) {
    if (e.span != 0) span_origin.emplace(e.span, &e);  // first occurrence wins
  }
  std::set<std::pair<std::uint64_t, std::uint64_t>> linked;
  const auto tid_str = [](const Event& ev) {
    return std::to_string(tid_of(ev.track == kNoTrack ? kManagerTrack : ev.track));
  };
  for (const Event& e : events) {
    if (e.span == 0 || e.parent_span == 0) continue;
    const auto origin = span_origin.find(e.parent_span);
    if (origin == span_origin.end()) continue;
    if (!linked.insert({e.parent_span, e.span}).second) continue;
    const Event& p = *origin->second;
    w.emit("{\"ph\":\"s\",\"cat\":\"causal\",\"name\":\"causal\",\"id\":" +
           std::to_string(e.span) + ",\"pid\":0,\"tid\":" + tid_str(p) +
           ",\"ts\":" + std::to_string(p.time) + "}");
    w.emit("{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"causal\",\"name\":\"causal\",\"id\":" +
           std::to_string(e.span) + ",\"pid\":0,\"tid\":" + tid_str(e) +
           ",\"ts\":" + std::to_string(e.time) + "}");
  }

  out << "\n]}\n";
}

namespace {

/// Splices an le label into an already-rendered label string.
std::string with_le(const std::string& labels, const std::string& le) {
  if (labels.empty()) return "{le=\"" + le + "\"}";
  return labels.substr(0, labels.size() - 1) + ",le=\"" + le + "\"}";
}

}  // namespace

void write_prometheus(const MetricsRegistry& metrics, std::ostream& out) {
  for (const FamilySnapshot& family : metrics.snapshot()) {
    if (!family.help.empty()) out << "# HELP " << family.name << " " << family.help << "\n";
    out << "# TYPE " << family.name << " " << family.type << "\n";
    for (const SeriesSnapshot& series : family.series) {
      if (series.histogram) {
        const HistogramSnapshot& h = *series.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += h.counts[i];
          out << family.name << "_bucket" << with_le(series.labels, format_number(h.bounds[i]))
              << " " << cumulative << "\n";
        }
        cumulative += h.counts.back();
        out << family.name << "_bucket" << with_le(series.labels, "+Inf") << " " << cumulative
            << "\n";
        out << family.name << "_sum" << series.labels << " " << format_number(h.sum) << "\n";
        out << family.name << "_count" << series.labels << " " << h.count << "\n";
      } else {
        out << family.name << series.labels << " " << format_number(series.value) << "\n";
      }
    }
  }
}

}  // namespace sa::obs
