#include "obs/trace_recorder.hpp"

#include <algorithm>
#include <cstring>

namespace sa::obs {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::AdaptationRequested: return "adaptation_requested";
    case EventKind::PlanComputed: return "plan_computed";
    case EventKind::StepStarted: return "step_started";
    case EventKind::StepCommitted: return "step_committed";
    case EventKind::StepRolledBack: return "step_rolled_back";
    case EventKind::AdaptationFinished: return "adaptation_finished";
    case EventKind::ManagerPhase: return "manager_phase";
    case EventKind::AgentState: return "agent_state";
    case EventKind::MessageSent: return "message_sent";
    case EventKind::MessageDelivered: return "message_delivered";
    case EventKind::MessageDropped: return "message_dropped";
    case EventKind::MessageDuplicated: return "message_duplicated";
    case EventKind::TimerArmed: return "timer_armed";
    case EventKind::TimerFired: return "timer_fired";
    case EventKind::TimerCancelled: return "timer_cancelled";
    case EventKind::CoordinatorPhase: return "coordinator_phase";
    case EventKind::EpochOpened: return "epoch_opened";
    case EventKind::EpochSealed: return "epoch_sealed";
    case EventKind::EpochCompleted: return "epoch_completed";
    case EventKind::TicketSubmitted: return "ticket_submitted";
    case EventKind::TicketDone: return "ticket_done";
    case EventKind::FlowLink: return "flow_link";
    case EventKind::BlockedWindow: return "blocked_window";
  }
  return "?";
}

bool is_message_event(EventKind kind) {
  switch (kind) {
    case EventKind::MessageSent:
    case EventKind::MessageDelivered:
    case EventKind::MessageDropped:
    case EventKind::MessageDuplicated:
      return true;
    default:
      return false;
  }
}

namespace detail {

Ring::Ring(std::size_t capacity_pow2)
    : capacity(capacity_pow2), slots(new Slot[capacity_pow2]) {}

// Seqlock write (Boehm, "Can seqlocks get along with programming language
// memory models?"): odd seq marks the write in flight, a release fence
// orders it before the payload words, the even seq store publishes them.
void Ring::push(const PackedEvent& packed) {
  const std::uint64_t pos = wpos.load(std::memory_order_relaxed);
  Slot& slot = slots[pos & (capacity - 1)];
  slot.seq.store(2 * pos + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  std::uint64_t buf[kPackedWords];
  std::memcpy(buf, &packed, sizeof(packed));
  for (std::size_t i = 0; i < kPackedWords; ++i) {
    slot.words[i].store(buf[i], std::memory_order_relaxed);
  }
  slot.seq.store(2 * pos + 2, std::memory_order_release);
  wpos.store(pos + 1, std::memory_order_release);
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void pack(const Event& event, PackedEvent& out) {
  out.time = event.time;
  out.track = event.track;
  out.from = event.from;
  out.to = event.to;
  out.span = event.span;
  out.parent_span = event.parent_span;
  out.epoch = event.epoch;
  out.request = event.coords.request;
  out.value = event.value;
  out.plan = event.coords.plan;
  out.step = event.coords.step;
  out.attempt = event.coords.attempt;
  out.kind = static_cast<std::uint8_t>(event.kind);
  out.has_value = event.has_value ? 1 : 0;
  out.name_len = static_cast<std::uint8_t>(std::min(event.name.size(), kNameCap));
  out.detail_len = static_cast<std::uint8_t>(std::min(event.detail.size(), kDetailCap));
  std::memcpy(out.name, event.name.data(), out.name_len);
  std::memcpy(out.detail, event.detail.data(), out.detail_len);
}

Event unpack(const PackedEvent& packed) {
  Event event;
  event.time = packed.time;
  event.kind = static_cast<EventKind>(packed.kind);
  event.track = packed.track;
  event.from = packed.from;
  event.to = packed.to;
  event.span = packed.span;
  event.parent_span = packed.parent_span;
  event.epoch = packed.epoch;
  event.coords.request = packed.request;
  event.coords.plan = packed.plan;
  event.coords.step = packed.step;
  event.coords.attempt = packed.attempt;
  event.name.assign(packed.name, packed.name_len);
  event.detail.assign(packed.detail, packed.detail_len);
  event.value = packed.value;
  event.has_value = packed.has_value != 0;
  return event;
}

/// Seqlock read: acquire the slot's seq, copy the words relaxed, then
/// re-check the seq behind an acquire fence. A mismatch means the slot was
/// being overwritten while we copied — the caller counts it as dropped.
bool read_slot(const Slot& slot, std::uint64_t pos, PackedEvent& out) {
  const std::uint64_t want = 2 * pos + 2;
  if (slot.seq.load(std::memory_order_acquire) != want) return false;
  std::uint64_t buf[kPackedWords];
  for (std::size_t i = 0; i < kPackedWords; ++i) {
    buf[i] = slot.words[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.seq.load(std::memory_order_relaxed) != want) return false;
  std::memcpy(&out, buf, sizeof(out));
  return true;
}

struct TlsCache {
  std::uint64_t recorder_id = 0;
  Ring* ring = nullptr;
};
thread_local TlsCache tls_cache;

std::atomic<std::uint64_t> next_recorder_id{1};

}  // namespace

}  // namespace detail

TraceRecorder::TraceRecorder()
    : id_(detail::next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(16384) {}

TraceRecorder::~TraceRecorder() = default;

detail::Ring& TraceRecorder::ring_for_this_thread() {
  std::lock_guard lock(mutex_);
  const auto tid = std::this_thread::get_id();
  const auto it = thread_rings_.find(tid);
  if (it != thread_rings_.end()) return *rings_[it->second];
  rings_.push_back(std::make_unique<detail::Ring>(detail::round_up_pow2(capacity_)));
  thread_rings_.emplace(tid, rings_.size() - 1);
  return *rings_.back();
}

void TraceRecorder::record(const Event& event) {
  if (!wants(event.kind)) return;  // backstop for sites that only check enabled()
  detail::Ring* ring = detail::tls_cache.ring;
  if (detail::tls_cache.recorder_id != id_ || ring == nullptr) {
    ring = &ring_for_this_thread();
    detail::tls_cache.recorder_id = id_;
    detail::tls_cache.ring = ring;
  }
  detail::PackedEvent packed{};
  detail::pack(event, packed);
  ring->push(packed);
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
}

std::size_t TraceRecorder::capacity() const {
  std::lock_guard lock(mutex_);
  return capacity_;
}

void TraceRecorder::set_track_name(std::int64_t track, std::string name) {
  std::lock_guard lock(mutex_);
  tracks_[track] = std::move(name);
}

void TraceRecorder::set_node_track(runtime::NodeId node, std::int64_t track) {
  std::lock_guard lock(mutex_);
  node_tracks_[node] = track;
}

std::vector<Event> TraceRecorder::merge(std::size_t want_tail) const {
  // Snapshot the ring set under the mutex (producers only take it on their
  // first record), then read slots lock-free so draining never stalls them.
  std::vector<detail::Ring*> rings;
  {
    std::lock_guard lock(mutex_);
    rings.reserve(rings_.size());
    for (const auto& ring : rings_) rings.push_back(ring.get());
  }

  struct Keyed {
    detail::PackedEvent packed;
    std::size_t ring;
    std::uint64_t pos;
  };
  std::vector<Keyed> merged;
  for (std::size_t r = 0; r < rings.size(); ++r) {
    const detail::Ring& ring = *rings[r];
    const std::uint64_t end = ring.wpos.load(std::memory_order_acquire);
    std::uint64_t begin = end > ring.capacity ? end - ring.capacity : 0;
    if (want_tail != SIZE_MAX && end - begin > want_tail) begin = end - want_tail;
    for (std::uint64_t pos = begin; pos < end; ++pos) {
      Keyed keyed;
      keyed.ring = r;
      keyed.pos = pos;
      if (detail::read_slot(ring.slots[pos & (ring.capacity - 1)], pos, keyed.packed)) {
        merged.push_back(keyed);
      } else {
        torn_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Keyed& a, const Keyed& b) {
    if (a.packed.time != b.packed.time) return a.packed.time < b.packed.time;
    if (a.ring != b.ring) return a.ring < b.ring;
    return a.pos < b.pos;
  });
  if (want_tail != SIZE_MAX && merged.size() > want_tail) {
    merged.erase(merged.begin(), merged.end() - static_cast<std::ptrdiff_t>(want_tail));
  }

  std::vector<Event> events;
  events.reserve(merged.size());
  for (const Keyed& keyed : merged) {
    events.push_back(detail::unpack(keyed.packed));
    events.back().seq = events.size() - 1;
  }
  return events;
}

std::vector<Event> TraceRecorder::events() const { return merge(SIZE_MAX); }

std::vector<Event> TraceRecorder::tail(std::size_t n) const { return merge(n); }

std::map<std::int64_t, std::string> TraceRecorder::track_names() const {
  std::lock_guard lock(mutex_);
  return tracks_;
}

std::optional<std::int64_t> TraceRecorder::node_track(runtime::NodeId node) const {
  std::lock_guard lock(mutex_);
  const auto it = node_tracks_.find(node);
  if (it == node_tracks_.end()) return std::nullopt;
  return it->second;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t w = ring->wpos.load(std::memory_order_acquire);
    total += static_cast<std::size_t>(std::min<std::uint64_t>(w, ring->capacity));
  }
  return total;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = torn_.load(std::memory_order_relaxed);
  for (const auto& ring : rings_) {
    const std::uint64_t w = ring->wpos.load(std::memory_order_acquire);
    if (w > ring->capacity) total += w - ring->capacity;
  }
  return total;
}

void TraceRecorder::clear() {
  std::lock_guard lock(mutex_);
  for (const auto& ring : rings_) {
    for (std::size_t i = 0; i < ring->capacity; ++i) {
      ring->slots[i].seq.store(0, std::memory_order_relaxed);
    }
    ring->wpos.store(0, std::memory_order_release);
  }
  torn_.store(0, std::memory_order_relaxed);
}

}  // namespace sa::obs
