#include "obs/trace_recorder.hpp"

namespace sa::obs {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::AdaptationRequested: return "adaptation_requested";
    case EventKind::PlanComputed: return "plan_computed";
    case EventKind::StepStarted: return "step_started";
    case EventKind::StepCommitted: return "step_committed";
    case EventKind::StepRolledBack: return "step_rolled_back";
    case EventKind::AdaptationFinished: return "adaptation_finished";
    case EventKind::ManagerPhase: return "manager_phase";
    case EventKind::AgentState: return "agent_state";
    case EventKind::MessageSent: return "message_sent";
    case EventKind::MessageDelivered: return "message_delivered";
    case EventKind::MessageDropped: return "message_dropped";
    case EventKind::MessageDuplicated: return "message_duplicated";
    case EventKind::TimerArmed: return "timer_armed";
    case EventKind::TimerFired: return "timer_fired";
    case EventKind::TimerCancelled: return "timer_cancelled";
    case EventKind::CoordinatorPhase: return "coordinator_phase";
    case EventKind::EpochOpened: return "epoch_opened";
    case EventKind::EpochSealed: return "epoch_sealed";
    case EventKind::EpochCompleted: return "epoch_completed";
  }
  return "?";
}

bool is_message_event(EventKind kind) {
  switch (kind) {
    case EventKind::MessageSent:
    case EventKind::MessageDelivered:
    case EventKind::MessageDropped:
    case EventKind::MessageDuplicated:
      return true;
    default:
      return false;
  }
}

void TraceRecorder::record(Event event) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
}

void TraceRecorder::set_track_name(std::int64_t track, std::string name) {
  std::lock_guard lock(mutex_);
  tracks_[track] = std::move(name);
}

void TraceRecorder::set_node_track(runtime::NodeId node, std::int64_t track) {
  std::lock_guard lock(mutex_);
  node_tracks_[node] = track;
}

std::vector<Event> TraceRecorder::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::map<std::int64_t, std::string> TraceRecorder::track_names() const {
  std::lock_guard lock(mutex_);
  return tracks_;
}

std::optional<std::int64_t> TraceRecorder::node_track(runtime::NodeId node) const {
  std::lock_guard lock(mutex_);
  const auto it = node_tracks_.find(node);
  if (it == node_tracks_.end()) return std::nullopt;
  return it->second;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  next_seq_ = 0;
}

}  // namespace sa::obs
