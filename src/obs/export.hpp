// Exporters for the observability layer:
//
//   * write_jsonl        — one JSON object per event, in append (seq) order.
//                          On SimRuntime the stream is byte-identical across
//                          same-seed runs; scripts/check_trace.py validates
//                          the schema and the Fig. 1 / Fig. 2 state machines.
//   * write_chrome_trace — Chrome trace_event JSON: one track per process
//                          plus the manager (phase/state slices), async spans
//                          for adaptations and steps, instants for messages
//                          and timers. Opens directly in chrome://tracing or
//                          Perfetto.
//   * write_prometheus   — text exposition (counter/gauge/histogram with
//                          cumulative le buckets) of a metrics snapshot.
#pragma once

#include <iosfwd>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"

namespace sa::obs {

void write_jsonl(const TraceRecorder& recorder, std::ostream& out);
/// Fleet variant: every line (meta and event) leads with `"region":<region>`,
/// so per-region traces can be concatenated into one file and validated /
/// analysed per region.
void write_jsonl(const TraceRecorder& recorder, std::ostream& out, std::uint64_t region);
/// Serializes an already-merged event list (e.g. TraceRecorder::tail(n) for
/// post-mortem dumps) with the same per-event schema, no meta lines.
void write_jsonl(const std::vector<Event>& events, std::ostream& out);
void write_chrome_trace(const TraceRecorder& recorder, std::ostream& out);
void write_prometheus(const MetricsRegistry& metrics, std::ostream& out);

/// JSON string escaping shared by the exporters (quotes, backslashes,
/// control characters).
std::string json_escape(std::string_view text);

}  // namespace sa::obs
