// MessageObserver: the per-transport instrumentation helper behind
// Transport::set_observer().
//
// Both backends embed one by value and call on_sent / on_delivered /
// on_dropped / on_duplicated from their send and delivery paths. The helper
// turns each call into a typed message event (only when the recorder is
// enabled) and an sa_messages_total increment labeled by event and message
// type, caching the Counter* per (event, type) so the steady-state cost is a
// map-free atomic increment.
//
// Not internally synchronized: the owning transport serializes calls (the
// simulated network is single-threaded; ThreadedTransport calls under its
// own mutex).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"

namespace sa::obs {

class MessageObserver {
 public:
  /// Null pointers detach (and drop the counter cache, which points into the
  /// previous registry).
  void attach(TraceRecorder* recorder, MetricsRegistry* metrics);

  void on_sent(runtime::Time t, runtime::NodeId from, runtime::NodeId to,
               const std::string& type);
  void on_delivered(runtime::Time t, runtime::NodeId from, runtime::NodeId to,
                    const std::string& type);
  /// `reason` is "loss" or "partition".
  void on_dropped(runtime::Time t, runtime::NodeId from, runtime::NodeId to,
                  const std::string& type, std::string_view reason);
  void on_duplicated(runtime::Time t, runtime::NodeId from, runtime::NodeId to,
                     const std::string& type);

 private:
  void record(EventKind kind, runtime::Time t, runtime::NodeId from, runtime::NodeId to,
              const std::string& type, std::string_view detail);
  Counter* counter_for(std::string_view event, const std::string& type);

  TraceRecorder* recorder_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  std::map<std::pair<std::string, std::string>, Counter*> counters_;
};

}  // namespace sa::obs
