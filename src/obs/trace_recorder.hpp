// TraceRecorder: a lock-free flight recorder behind system.tracer().
//
// Instrumentation sites (manager, agents, coordinators, transports) hold a
// raw pointer and guard every record with enabled() — a relaxed atomic load —
// so a disabled recorder costs one branch per site and allocates nothing.
//
// When enabled, record() packs the event into a fixed-size POD slot and
// writes it into a per-thread single-producer ring buffer using a seqlock
// per slot: the producer never takes a lock, never allocates (after the
// ring exists), and drops the *oldest* events by overwriting once the ring
// wraps — the recorder is an always-on "recent history" whose worst case is
// a bounded window plus a dropped() counter, never backpressure. Readers
// (events(), tail(), size()) validate each slot's sequence word before and
// after copying it out; a slot torn by a concurrent overwrite is skipped
// and counted as dropped.
//
// Export order is deterministic: rings are merged by (clock time, ring
// registration index, slot position) and a dense seq is assigned at merge
// time. On SimRuntime a recorder is fed by one thread, so the merged order
// is exactly append order in virtual time and two same-seed runs produce
// byte-identical JSONL for any worker-thread count.
//
// Tracks give span exporters a stable row per protocol entity: the manager
// registers kManagerTrack, each agent registers its process id, coordinators
// register negative rows, and endpoint NodeIds map onto tracks so message
// events can be attributed to the endpoint that produced them. Track
// registration happens at wiring time (cold) and stays mutexed.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/event.hpp"

namespace sa::obs {

/// How much the recorder keeps when enabled. Full records every
/// instrumentation site; Causal records only the kinds the critical-path
/// analysis consumes (tickets, epochs, flow links, request spans, blocked
/// windows) — the always-on flight-recorder configuration, roughly 15% of
/// the Full event volume on the fleet workload.
enum class TraceDetail : std::uint8_t { Full, Causal };

constexpr std::uint32_t kind_bit(EventKind kind) {
  return 1u << static_cast<unsigned>(kind);
}

constexpr std::uint32_t detail_mask(TraceDetail detail) {
  return detail == TraceDetail::Full
             ? ~0u
             : kind_bit(EventKind::AdaptationRequested) |
                   kind_bit(EventKind::AdaptationFinished) |
                   kind_bit(EventKind::EpochOpened) | kind_bit(EventKind::EpochSealed) |
                   kind_bit(EventKind::EpochCompleted) |
                   kind_bit(EventKind::TicketSubmitted) | kind_bit(EventKind::TicketDone) |
                   kind_bit(EventKind::FlowLink) | kind_bit(EventKind::BlockedWindow);
}

namespace detail {

/// Fixed-size POD image of an Event. Strings are truncated into inline
/// buffers so a slot can be copied through relaxed atomic words (a seqlock
/// over std::string would be undefined behaviour).
inline constexpr std::size_t kNameCap = 48;
inline constexpr std::size_t kDetailCap = 104;

struct PackedEvent {
  std::int64_t time;
  std::int64_t track;
  std::uint64_t from;
  std::uint64_t to;
  std::uint64_t span;
  std::uint64_t parent_span;
  std::uint64_t epoch;
  std::uint64_t request;
  double value;
  std::uint32_t plan;
  std::uint32_t step;
  std::uint32_t attempt;
  std::uint8_t kind;
  std::uint8_t has_value;
  std::uint8_t name_len;
  std::uint8_t detail_len;
  char name[kNameCap];
  char detail[kDetailCap];
};
static_assert(sizeof(PackedEvent) % sizeof(std::uint64_t) == 0);
inline constexpr std::size_t kPackedWords = sizeof(PackedEvent) / sizeof(std::uint64_t);

/// One seqlock-protected slot. seq == 2*pos + 2 marks position `pos` fully
/// written; odd values mark a write in flight. Readers copy the words with
/// relaxed loads between two acquire-ordered checks of seq.
struct alignas(64) Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> words[kPackedWords];
};

/// A single-producer ring. The owning thread is the only writer of wpos and
/// of slot payloads; any thread may read. Capacity is a power of two and the
/// ring drops oldest entries by overwriting — there is no consumer cursor.
struct Ring {
  explicit Ring(std::size_t capacity_pow2);

  void push(const PackedEvent& packed);

  std::size_t capacity = 0;
  std::unique_ptr<Slot[]> slots;
  // Monotonic append count; slot for position p is slots[p & (capacity-1)].
  alignas(64) std::atomic<std::uint64_t> wpos{0};
};

}  // namespace detail

class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Recording gate; construction leaves it off so instrumentation is free
  /// until a caller (sa_run --trace-out, a test) opts in.
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Detail filter; construction selects Full. Instrumentation sites gate on
  /// wants(kind) *before* building the Event, so a filtered kind costs one
  /// branch and two relaxed loads — no strings, no ring traffic.
  void set_detail(TraceDetail detail) {
    kind_mask_.store(detail_mask(detail), std::memory_order_relaxed);
  }
  bool wants(EventKind kind) const {
    return enabled() &&
           (kind_mask_.load(std::memory_order_relaxed) & kind_bit(kind)) != 0;
  }

  /// Records `event` into the calling thread's ring when enabled; drops it
  /// otherwise. Lock-free after the thread's first record (which registers
  /// the ring under the recorder mutex). Strings longer than the slot
  /// buffers are truncated deterministically.
  void record(const Event& event);

  /// Per-thread ring capacity (power of two; values are rounded up) for
  /// rings created *after* the call. Call before recording starts.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Names a track for span exports ("manager", "agent-p0", ...).
  void set_track_name(std::int64_t track, std::string name);
  /// Associates a transport endpoint with a track, so message events recorded
  /// by the transports can be attributed to protocol entities at export time.
  void set_node_track(runtime::NodeId node, std::int64_t track);

  /// Merged view of every ring, ordered by (time, ring, position) with a
  /// dense seq assigned at merge time. Safe while producers are still
  /// appending (torn slots are skipped and counted), though a stable full
  /// trace requires quiescence.
  std::vector<Event> events() const;
  /// The most recent `n` merged events — the post-mortem view. Never blocks
  /// recording threads: readers take no lock the producers contend on.
  std::vector<Event> tail(std::size_t n) const;
  std::map<std::int64_t, std::string> track_names() const;
  std::optional<std::int64_t> node_track(runtime::NodeId node) const;

  /// Events currently readable across all rings (bounded by ring capacity).
  std::size_t size() const;
  /// Events lost to ring wrap-around plus slots torn by concurrent readers.
  std::uint64_t dropped() const;

  /// Resets every ring and counter. Requires producer quiescence.
  void clear();

 private:
  detail::Ring& ring_for_this_thread();
  std::vector<Event> merge(std::size_t want_tail) const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> kind_mask_{detail_mask(TraceDetail::Full)};
  const std::uint64_t id_;  ///< process-unique, never reused (TLS cache key)

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<std::unique_ptr<detail::Ring>> rings_;        ///< registration order
  std::map<std::thread::id, std::size_t> thread_rings_;     ///< thread -> ring index
  mutable std::atomic<std::uint64_t> torn_{0};
  std::map<std::int64_t, std::string> tracks_;
  std::map<runtime::NodeId, std::int64_t> node_tracks_;
};

}  // namespace sa::obs
