// TraceRecorder: the append-only, thread-safe event log behind system.tracer().
//
// Instrumentation sites (manager, agents, transports) hold a raw pointer and
// guard every record with enabled() — a relaxed atomic load — so a disabled
// recorder costs one branch per site and allocates nothing. When enabled,
// record() assigns a dense sequence number under the recorder mutex; on the
// deterministic backend, append order (and therefore the exported byte
// stream) is identical across same-seed runs.
//
// Tracks give span exporters a stable row per protocol entity: the manager
// registers kManagerTrack, each agent registers its process id, and endpoint
// NodeIds map onto tracks so message events can be attributed to the
// endpoint that produced them.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace sa::obs {

class TraceRecorder {
 public:
  /// Recording gate; construction leaves it off so instrumentation is free
  /// until a caller (sa_run --trace-out, a test) opts in.
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends `event` (assigning its seq) when enabled; drops it otherwise.
  void record(Event event);

  /// Names a track for span exports ("manager", "agent-p0", ...).
  void set_track_name(std::int64_t track, std::string name);
  /// Associates a transport endpoint with a track, so message events recorded
  /// by the transports can be attributed to protocol entities at export time.
  void set_node_track(runtime::NodeId node, std::int64_t track);

  /// Copies taken under the recorder lock — safe while runtime threads are
  /// still appending, though a stable full trace requires quiescence.
  std::vector<Event> events() const;
  std::map<std::int64_t, std::string> track_names() const;
  std::optional<std::int64_t> node_track(runtime::NodeId node) const;

  std::size_t size() const;
  void clear();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::uint64_t next_seq_ = 0;
  std::vector<Event> events_;
  std::map<std::int64_t, std::string> tracks_;
  std::map<runtime::NodeId, std::int64_t> node_tracks_;
};

}  // namespace sa::obs
