// Typed observability events for the safe-adaptation protocol.
//
// Every layer that participates in an adaptation — the manager's request /
// plan / step spans, the per-process Fig. 1 state machine, every control or
// data message crossing a transport, and the protocol timers that drive
// failure handling — reports what happened as one of these events. Events
// are timestamped through the backend's runtime::Clock, so on SimRuntime a
// trace is expressed in deterministic virtual time (two same-seed runs are
// byte-identical) and on ThreadedRuntime in steady-clock microseconds, with
// no change to the instrumentation sites.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "runtime/time.hpp"
#include "runtime/transport.hpp"

namespace sa::obs {

/// Track an event belongs to in span-oriented exports (one Perfetto track
/// per process plus one for the manager). Agent tracks use the process id.
inline constexpr std::int64_t kManagerTrack = -1;
/// Events not owned by a protocol entity (e.g. transport-level message
/// records, which are attributed to endpoints at export time instead).
inline constexpr std::int64_t kNoTrack = std::numeric_limits<std::int64_t>::min();

enum class EventKind : std::uint8_t {
  // --- adaptation-level span (manager) --------------------------------------
  AdaptationRequested,  ///< request accepted; span opens
  PlanComputed,         ///< MAP (or alternative / return-to-source path) ready
  StepStarted,          ///< per-step span opens (resets go out)
  StepCommitted,        ///< step span closes: configuration advanced
  StepRolledBack,       ///< step span closes: rollback completed
  AdaptationFinished,   ///< span closes with an AdaptationOutcome

  // --- state machines -------------------------------------------------------
  ManagerPhase,  ///< Fig. 2 phase transition (detail = from, name = to)
  AgentState,    ///< Fig. 1 state transition (detail = from, name = to)

  // --- message-level records (transports) -----------------------------------
  MessageSent,        ///< accepted onto the channel
  MessageDelivered,   ///< handed to the receiving endpoint
  MessageDropped,     ///< lost (detail = "loss" or "partition")
  MessageDuplicated,  ///< channel scheduled a duplicate delivery

  // --- protocol timers ------------------------------------------------------
  TimerArmed,      ///< value = timeout in µs, name = purpose
  TimerFired,      ///< the timeout elapsed and the callback ran
  TimerCancelled,  ///< disarmed before firing

  // --- manager tree (coordinators) ------------------------------------------
  CoordinatorPhase,  ///< epoch pipeline transition (detail = from, name = to)
  EpochOpened,       ///< a coordinator began batching (value = epoch number)
  EpochSealed,       ///< batch frozen (value = shard count, detail = coalesced)
  EpochCompleted,    ///< every subtree reported (value = µs commit latency)

  // --- causal tracing (tickets, flows, blocked windows) ----------------------
  TicketSubmitted,  ///< a ticket entered a coordinator's batch (span = ticket)
  TicketDone,       ///< the root coordinator resolved a ticket (value = µs)
  FlowLink,         ///< causal edge: span was caused by parent_span
  BlockedWindow,    ///< a process finished a blocked window (value = µs)
};

std::string_view to_string(EventKind kind);

/// True for the four message-level kinds (they carry from/to endpoints).
bool is_message_event(EventKind kind);

/// Step coordinates mirroring proto::StepRef; request == 0 means the event is
/// not scoped to an adaptation step.
struct StepCoords {
  std::uint64_t request = 0;
  std::uint32_t plan = 0;
  std::uint32_t step = 0;
  std::uint32_t attempt = 0;
};

struct Event {
  std::uint64_t seq = 0;     ///< dense, recorder-assigned append order
  runtime::Time time = 0;    ///< µs on the backend clock that produced it
  EventKind kind{};
  std::int64_t track = kNoTrack;
  runtime::NodeId from = 0;  ///< message events only
  runtime::NodeId to = 0;    ///< message events only
  StepCoords coords;
  std::string name;    ///< state / phase / action / message-type / timer label
  std::string detail;  ///< free-form (plan actions, outcome detail, ...)
  double value = 0;    ///< µs duration, cost, plan length, ...
  bool has_value = false;
  // Causal context: span identifies the unit of work this event belongs to
  // (an epoch, a ticket, an adaptation request), parent_span the unit that
  // caused it, epoch the coordinator epoch counter. Zero means "unset".
  std::uint64_t span = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t epoch = 0;
};

}  // namespace sa::obs
