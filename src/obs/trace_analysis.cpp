#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace sa::obs {

namespace {

/// Inverse of to_string(EventKind); the kinds table is small enough that a
/// linear probe over the enum is simpler than a map.
std::optional<EventKind> kind_from_string(std::string_view text) {
  for (int k = 0; k <= static_cast<int>(EventKind::BlockedWindow); ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (to_string(kind) == text) return kind;
  }
  return std::nullopt;
}

std::string unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 >= text.size()) {
      out += text[i];
      continue;
    }
    ++i;
    switch (text[i]) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u':
        // Exporter only emits \u00XX for control bytes.
        if (i + 4 < text.size()) {
          out += static_cast<char>(std::strtol(std::string(text.substr(i + 1, 4)).c_str(),
                                               nullptr, 16));
          i += 4;
        }
        break;
      default: out += text[i];
    }
  }
  return out;
}

/// Scans one flat exporter object ({"key":value,...}; values are numbers or
/// strings, never nested). Number tokens stay raw text so 64-bit span ids
/// can be re-parsed exactly (a double round-trip drops bits above 2^53).
/// Returns false on malformed input.
bool scan_pairs(std::string_view line,
                std::vector<std::pair<std::string, std::string>>& string_fields,
                std::vector<std::pair<std::string, std::string>>& number_fields) {
  std::size_t i = line.find('{');
  if (i == std::string_view::npos) return false;
  ++i;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ',' || line[i] == ' ')) ++i;
    if (i < line.size() && line[i] == '}') return true;
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    const std::size_t key_end = line.find('"', i);  // keys are never escaped
    if (key_end == std::string_view::npos) return false;
    const std::string key(line.substr(i, key_end - i));
    i = key_end + 1;
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    if (i < line.size() && line[i] == '"') {
      ++i;
      std::size_t end = i;
      while (end < line.size() && !(line[end] == '"' && line[end - 1] != '\\')) ++end;
      if (end >= line.size()) return false;
      string_fields.emplace_back(key, unescape(line.substr(i, end - i)));
      i = end + 1;
    } else {
      std::size_t end = i;
      while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
      number_fields.emplace_back(key, std::string(line.substr(i, end - i)));
      i = end;
    }
  }
  return false;  // no closing brace
}

}  // namespace

std::optional<TraceLine> parse_trace_line(std::string_view line) {
  if (line.find_first_not_of(" \t\r\n") == std::string_view::npos) return std::nullopt;
  std::vector<std::pair<std::string, std::string>> strings;
  std::vector<std::pair<std::string, std::string>> numbers;
  if (!scan_pairs(line, strings, numbers)) return std::nullopt;

  TraceLine out;
  const auto str = [&](std::string_view key) -> const std::string* {
    for (const auto& [k, v] : strings) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  const auto raw = [&](std::string_view key) -> const std::string* {
    for (const auto& [k, v] : numbers) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  const auto u64 = [&](std::string_view key) -> std::uint64_t {
    const std::string* token = raw(key);
    return token == nullptr ? 0 : std::strtoull(token->c_str(), nullptr, 10);
  };
  const auto i64 = [&](std::string_view key, std::int64_t fallback) -> std::int64_t {
    const std::string* token = raw(key);
    return token == nullptr ? fallback : std::strtoll(token->c_str(), nullptr, 10);
  };
  out.region = u64("region");

  if (const std::string* meta = str("meta")) {
    if (*meta != "track_name") return std::nullopt;
    out.meta = true;
    out.meta_track = i64("track", 0);
    if (const std::string* name = str("name")) out.meta_name = *name;
    return out;
  }

  const std::string* kind = str("kind");
  if (kind == nullptr) return std::nullopt;
  const std::optional<EventKind> parsed = kind_from_string(*kind);
  if (!parsed) return std::nullopt;
  Event& e = out.event;
  e.kind = *parsed;
  e.seq = u64("seq");
  e.time = static_cast<runtime::Time>(i64("t", 0));
  e.track = i64("track", kNoTrack);
  e.from = static_cast<runtime::NodeId>(u64("from"));
  e.to = static_cast<runtime::NodeId>(u64("to"));
  e.coords.request = u64("request");
  e.coords.plan = static_cast<std::uint32_t>(u64("plan"));
  e.coords.step = static_cast<std::uint32_t>(u64("step"));
  e.coords.attempt = static_cast<std::uint32_t>(u64("attempt"));
  e.span = u64("span");
  e.parent_span = u64("parent");
  e.epoch = u64("epoch");
  if (const std::string* name = str("name")) e.name = *name;
  if (const std::string* detail = str("detail")) e.detail = *detail;
  if (const std::string* value = raw("value")) {
    e.value = std::strtod(value->c_str(), nullptr);
    e.has_value = true;
  }
  return out;
}

namespace {

enum class SpanCategory : std::uint8_t { Epoch, Ticket, Request };

struct SpanInfo {
  SpanCategory category = SpanCategory::Epoch;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;  ///< causal parent span (0 = none / root)
  std::uint64_t epoch = 0;   ///< epoch number (Epoch spans)
  std::int64_t track = kNoTrack;
  runtime::Time begin = 0;
  runtime::Time end = 0;
  bool has_begin = false;
  bool has_end = false;
  bool parent_is_epoch = false;  ///< set after linking
};

struct RegionModel {
  std::map<std::uint64_t, SpanInfo> spans;
  std::map<std::uint64_t, std::vector<std::uint64_t>> children;  ///< parent -> children
  std::map<std::int64_t, std::string> track_names;
  std::vector<const Event*> blocked;  ///< BlockedWindow events
};

SpanInfo& span_slot(RegionModel& model, std::uint64_t span, SpanCategory category) {
  SpanInfo& info = model.spans[span];
  info.span = span;
  info.category = category;
  return info;
}

LatencyStats stats_of(std::vector<runtime::Time> values) {
  LatencyStats stats;
  stats.count = values.size();
  if (values.empty()) return stats;
  std::sort(values.begin(), values.end());
  const auto pick = [&](double q) {
    const std::size_t index =
        static_cast<std::size_t>(q * static_cast<double>(values.size() - 1) + 0.5);
    return values[std::min(index, values.size() - 1)];
  };
  stats.p50 = pick(0.50);
  stats.p99 = pick(0.99);
  stats.max = values.back();
  return stats;
}

std::string label_of(const RegionModel& model, const SpanInfo& info) {
  const auto it = model.track_names.find(info.track);
  if (it != model.track_names.end()) return it->second;
  if (info.track == kNoTrack) return "?";
  return "track" + std::to_string(info.track);
}

}  // namespace

TraceAnalysis analyze(const std::vector<TraceLine>& lines) {
  TraceAnalysis analysis;

  std::map<std::uint64_t, RegionModel> regions;
  for (const TraceLine& line : lines) {
    RegionModel& model = regions[line.region];
    if (line.meta) {
      model.track_names[line.meta_track] = line.meta_name;
      continue;
    }
    ++analysis.events;
    const Event& e = line.event;
    switch (e.kind) {
      case EventKind::EpochSealed: {
        SpanInfo& info = span_slot(model, e.span, SpanCategory::Epoch);
        info.begin = e.time;
        info.has_begin = true;
        info.epoch = e.epoch;
        info.track = e.track;
        break;
      }
      case EventKind::EpochCompleted: {
        SpanInfo& info = span_slot(model, e.span, SpanCategory::Epoch);
        info.end = e.time;
        info.has_end = true;
        info.epoch = e.epoch;
        if (info.track == kNoTrack) info.track = e.track;
        break;
      }
      case EventKind::FlowLink:
        if (e.span != 0 && e.parent_span != 0) {
          span_slot(model, e.span, SpanCategory::Epoch).parent = e.parent_span;
        }
        break;
      case EventKind::TicketSubmitted: {
        SpanInfo& info = span_slot(model, e.span, SpanCategory::Ticket);
        info.begin = e.time;
        info.has_begin = true;
        info.track = e.track;
        break;
      }
      case EventKind::TicketDone: {
        SpanInfo& info = span_slot(model, e.span, SpanCategory::Ticket);
        info.end = e.time;
        info.has_end = true;
        if (info.track == kNoTrack) info.track = e.track;
        break;
      }
      case EventKind::AdaptationRequested: {
        SpanInfo& info = span_slot(model, e.span, SpanCategory::Request);
        info.begin = e.time;
        info.has_begin = true;
        info.track = e.track;
        if (e.parent_span != 0) info.parent = e.parent_span;
        break;
      }
      case EventKind::AdaptationFinished: {
        SpanInfo& info = span_slot(model, e.span, SpanCategory::Request);
        info.end = e.time;
        info.has_end = true;
        if (info.track == kNoTrack) info.track = e.track;
        if (e.parent_span != 0 && info.parent == 0) info.parent = e.parent_span;
        break;
      }
      case EventKind::BlockedWindow:
        model.blocked.push_back(&e);
        break;
      default:
        break;
    }
  }
  analysis.regions = regions.size();

  std::vector<runtime::Time> root_latencies;
  std::vector<runtime::Time> epoch_latencies;
  std::vector<runtime::Time> request_latencies;
  std::vector<runtime::Time> ticket_latencies;

  for (auto& [region, model] : regions) {
    // Link children and classify parents. A root epoch's causal parent is a
    // ticket span (or missing); an interior epoch's parent is another epoch.
    for (auto& [span, info] : model.spans) {
      if (info.parent == 0) continue;
      const auto parent = model.spans.find(info.parent);
      info.parent_is_epoch =
          parent != model.spans.end() && parent->second.category == SpanCategory::Epoch;
      if (info.parent_is_epoch) model.children[info.parent].push_back(span);
    }

    // Span levels: BFS down from each root epoch. Requests with no causal
    // parent (single-system traces) stay at level 0.
    std::map<std::uint64_t, std::size_t> level;
    for (const auto& [span, info] : model.spans) {
      if (info.category != SpanCategory::Epoch || info.parent_is_epoch) continue;
      // Root epoch: walk its subtree.
      std::vector<std::pair<std::uint64_t, std::size_t>> frontier{{span, 0}};
      while (!frontier.empty()) {
        const auto [node, depth] = frontier.back();
        frontier.pop_back();
        level[node] = depth;
        const auto kids = model.children.find(node);
        if (kids == model.children.end()) continue;
        for (const std::uint64_t child : kids->second) {
          frontier.emplace_back(child, depth + 1);
        }
      }
    }

    for (const auto& [span, info] : model.spans) {
      if (!info.has_begin || !info.has_end) continue;
      const runtime::Time latency = info.end - info.begin;
      switch (info.category) {
        case SpanCategory::Epoch: epoch_latencies.push_back(latency); break;
        case SpanCategory::Request: request_latencies.push_back(latency); break;
        case SpanCategory::Ticket: ticket_latencies.push_back(latency); break;
      }
    }

    for (const Event* e : model.blocked) {
      const auto it = level.find(e->span);
      const std::size_t l = it != level.end() ? it->second : 0;
      analysis.blocked_us_by_level[l] += e->value;
      analysis.blocked_us_total += e->value;
    }

    // Critical path per root epoch: repeatedly descend into the child whose
    // completion is latest (ties break toward the smaller span id for
    // determinism). Contributions telescope against the root's seal time.
    for (const auto& [span, info] : model.spans) {
      if (info.category != SpanCategory::Epoch || info.parent_is_epoch) continue;
      if (!info.has_begin || !info.has_end) continue;

      EpochCriticalPath path;
      path.region = region;
      path.epoch = info.epoch;
      path.span = span;
      path.sealed = info.begin;
      path.completed = info.end;
      path.latency = info.end - info.begin;
      root_latencies.push_back(path.latency);

      const SpanInfo* node = &info;
      std::size_t depth = 0;
      while (true) {
        CriticalPathNode entry;
        entry.span = node->span;
        entry.label = label_of(model, *node);
        entry.level = depth;
        entry.begin = node->begin;
        entry.end = node->end;

        const SpanInfo* critical = nullptr;
        const auto kids = model.children.find(node->span);
        if (kids != model.children.end()) {
          for (const std::uint64_t child_span : kids->second) {
            const auto child = model.spans.find(child_span);
            if (child == model.spans.end() || !child->second.has_end) continue;
            if (critical == nullptr || child->second.end > critical->end ||
                (child->second.end == critical->end && child->second.span < critical->span)) {
              critical = &child->second;
            }
          }
        }
        if (critical == nullptr) {
          entry.contribution = node->end - path.sealed;  // deepest closes the sum
          path.path.push_back(std::move(entry));
          break;
        }
        entry.contribution = node->end - critical->end;
        path.path.push_back(std::move(entry));
        node = critical;
        ++depth;
      }
      analysis.epochs.push_back(std::move(path));
    }
  }

  std::sort(analysis.epochs.begin(), analysis.epochs.end(),
            [](const EpochCriticalPath& a, const EpochCriticalPath& b) {
              if (a.region != b.region) return a.region < b.region;
              if (a.sealed != b.sealed) return a.sealed < b.sealed;
              return a.span < b.span;
            });

  analysis.latencies["root_epoch"] = stats_of(std::move(root_latencies));
  analysis.latencies["epoch"] = stats_of(std::move(epoch_latencies));
  analysis.latencies["request"] = stats_of(std::move(request_latencies));
  analysis.latencies["ticket"] = stats_of(std::move(ticket_latencies));
  return analysis;
}

namespace {

std::string json_string(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string format_blocked(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string to_json(const TraceAnalysis& analysis) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"regions\": " << analysis.regions << ",\n";
  out << "  \"events\": " << analysis.events << ",\n";

  out << "  \"latency_us\": {";
  bool first = true;
  for (const auto& [category, stats] : analysis.latencies) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    " << json_string(category) << ": {\"count\": " << stats.count
        << ", \"p50\": " << stats.p50 << ", \"p99\": " << stats.p99
        << ", \"max\": " << stats.max << "}";
  }
  out << "\n  },\n";

  out << "  \"blocked_us_total\": " << format_blocked(analysis.blocked_us_total) << ",\n";
  out << "  \"blocked_us_by_level\": {";
  first = true;
  for (const auto& [level, blocked] : analysis.blocked_us_by_level) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    \"" << level << "\": " << format_blocked(blocked);
  }
  out << (analysis.blocked_us_by_level.empty() ? "},\n" : "\n  },\n");

  out << "  \"root_epochs\": [";
  first = true;
  for (const EpochCriticalPath& epoch : analysis.epochs) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"region\": " << epoch.region << ", \"epoch\": " << epoch.epoch
        << ", \"span\": " << epoch.span << ", \"sealed\": " << epoch.sealed
        << ", \"completed\": " << epoch.completed << ", \"latency_us\": " << epoch.latency
        << ", \"critical_path\": [";
    bool first_node = true;
    for (const CriticalPathNode& node : epoch.path) {
      out << (first_node ? "\n" : ",\n");
      first_node = false;
      out << "      {\"span\": " << node.span << ", \"label\": " << json_string(node.label)
          << ", \"level\": " << node.level << ", \"begin\": " << node.begin
          << ", \"end\": " << node.end << ", \"contribution_us\": " << node.contribution
          << "}";
    }
    out << (epoch.path.empty() ? "]}" : "\n    ]}");
  }
  out << (analysis.epochs.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

}  // namespace sa::obs
