// MetricsRegistry: counters, gauges, and fixed-bucket histograms behind
// system.metrics().
//
// A metric family (name + type + help) owns one series per label set;
// counter(), gauge(), and histogram() are get-or-create and return a
// reference that stays valid for the registry's lifetime, so hot paths look
// the series up once and then touch an atomic. Counters and gauges are
// lock-free; histograms take a per-series mutex (protocol-rate observations,
// never on a data fast path). snapshot() copies everything in name order, so
// the Prometheus exposition is deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sa::obs {

/// Label pairs, rendered in the order given ({{"type","reset"}} ->
/// {type="reset"}). Callers keep the order stable per series.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

struct HistogramSnapshot {
  std::vector<double> bounds;          ///< ascending upper bounds; +Inf implicit
  std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 buckets
  double sum = 0;
  std::uint64_t count = 0;
};

class Histogram {
 public:
  /// `bounds` are ascending inclusive upper bounds; an implicit +Inf bucket
  /// catches everything above the last bound.
  explicit Histogram(std::vector<double> bounds);

  /// Lock-free: a relaxed add on the bucket and count, a CAS loop on the
  /// sum. Concurrent observers never serialize on a mutex.
  void observe(double v);
  HistogramSnapshot snapshot() const;
  double sum() const;
  std::uint64_t count() const;

 private:
  std::vector<double> bounds_;                          ///< immutable after construction
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds_.size() + 1
  std::atomic<double> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Bucket bounds (µs) covering the protocol's time scales: sub-millisecond
/// agent actions up through multi-second stalled adaptations.
std::vector<double> default_time_buckets_us();

struct SeriesSnapshot {
  std::string labels;  ///< rendered "{k=\"v\",...}" or "" when unlabeled
  double value = 0;    ///< counter / gauge value
  std::optional<HistogramSnapshot> histogram;
};

struct FamilySnapshot {
  std::string name;
  std::string type;  ///< "counter" | "gauge" | "histogram"
  std::string help;
  std::vector<SeriesSnapshot> series;  ///< sorted by rendered labels
};

class MetricsRegistry {
 public:
  /// Get-or-create. Throws std::logic_error if `name` already exists with a
  /// different metric type (one family, one type — Prometheus rules).
  Counter& counter(std::string_view name, Labels labels = {}, std::string_view help = "");
  Gauge& gauge(std::string_view name, Labels labels = {}, std::string_view help = "");
  Histogram& histogram(std::string_view name, std::vector<double> bounds, Labels labels = {},
                       std::string_view help = "");

  /// Deterministic copy of every family and series, in name / label order.
  std::vector<FamilySnapshot> snapshot() const;

  /// Sum of `sum` across all series of histogram family `name` (0 when the
  /// family does not exist) — e.g. total blocked time across processes.
  double histogram_family_sum(std::string_view name) const;

 private:
  struct Series {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string type;
    std::string help;
    std::map<std::string, Series> series;  ///< key: rendered labels
  };

  Family& family_of(std::string_view name, std::string_view type, std::string_view help);

  mutable std::mutex mutex_;
  std::map<std::string, Family, std::less<>> families_;
};

/// Renders labels as {k="v",k2="v2"}; empty labels render as "".
std::string render_labels(const Labels& labels);

}  // namespace sa::obs
