#include "obs/message_observer.hpp"

namespace sa::obs {

void MessageObserver::attach(TraceRecorder* recorder, MetricsRegistry* metrics) {
  recorder_ = recorder;
  metrics_ = metrics;
  counters_.clear();
}

Counter* MessageObserver::counter_for(std::string_view event, const std::string& type) {
  if (!metrics_) return nullptr;
  const auto key = std::make_pair(std::string(event), type);
  const auto it = counters_.find(key);
  if (it != counters_.end()) return it->second;
  Counter& counter =
      metrics_->counter("sa_messages_total", {{"event", key.first}, {"type", type}},
                        "Transport messages by lifecycle event and message type");
  counters_.emplace(key, &counter);
  return &counter;
}

void MessageObserver::record(EventKind kind, runtime::Time t, runtime::NodeId from,
                             runtime::NodeId to, const std::string& type,
                             std::string_view detail) {
  if (Counter* counter = counter_for(to_string(kind).substr(sizeof("message_") - 1), type)) {
    counter->inc();
  }
  if (recorder_ && recorder_->enabled()) {
    Event e;
    e.time = t;
    e.kind = kind;
    e.from = from;
    e.to = to;
    e.name = type;
    e.detail = std::string(detail);
    recorder_->record(std::move(e));
  }
}

void MessageObserver::on_sent(runtime::Time t, runtime::NodeId from, runtime::NodeId to,
                              const std::string& type) {
  record(EventKind::MessageSent, t, from, to, type, {});
}

void MessageObserver::on_delivered(runtime::Time t, runtime::NodeId from, runtime::NodeId to,
                                   const std::string& type) {
  record(EventKind::MessageDelivered, t, from, to, type, {});
}

void MessageObserver::on_dropped(runtime::Time t, runtime::NodeId from, runtime::NodeId to,
                                 const std::string& type, std::string_view reason) {
  record(EventKind::MessageDropped, t, from, to, type, reason);
}

void MessageObserver::on_duplicated(runtime::Time t, runtime::NodeId from, runtime::NodeId to,
                                    const std::string& type) {
  record(EventKind::MessageDuplicated, t, from, to, type, {});
}

}  // namespace sa::obs
