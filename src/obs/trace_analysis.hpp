// Causal trace analysis: critical-path attribution over the span tree.
//
// A causal trace (obs::write_jsonl) links every fleet adaptation into one
// span tree per root epoch: the submitting ticket's span parents the root
// coordinator's epoch span, interior epochs parent the epochs of the
// children they commit through, leaf epochs parent the per-set adaptation
// request spans, and each request span owns its agents' blocked windows.
//
// analyze() rebuilds that tree per region and answers the questions the §7
// scalability story needs:
//
//   * per-root-epoch critical path — the chain of spans whose completions
//     gate the root commit, attributed by tree node. Contributions telescope
//     (node i contributes end_i - end_{i+1}; the deepest node closes against
//     the root's seal time), so a path's contributions sum *exactly* to the
//     root epoch's seal -> complete latency. sa_trace --check enforces this.
//   * blocked-time breakdown by tree level — where §4.3 disruption
//     accumulates as the hierarchy deepens.
//   * p50/p99 latencies per span category (root epoch, epoch, request,
//     ticket).
//
// The input is parsed JSONL — parse_trace_line() understands both plain and
// region-tagged lines — so the analysis runs offline on a trace file without
// access to the recorder that produced it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.hpp"

namespace sa::obs {

/// One parsed JSONL trace line: either an event or a track_name meta line.
struct TraceLine {
  std::uint64_t region = 0;  ///< 0 for single-system (untagged) traces
  bool meta = false;
  // meta == true:
  std::int64_t meta_track = 0;
  std::string meta_name;
  // meta == false:
  Event event;
};

/// Parses one exporter line. Returns std::nullopt for blank lines or lines
/// that are not trace-schema objects (unknown "kind" values fail).
std::optional<TraceLine> parse_trace_line(std::string_view line);

struct CriticalPathNode {
  std::uint64_t span = 0;
  std::string label;       ///< track name when known, else "track<id>"
  std::size_t level = 0;   ///< 0 at the root epoch
  runtime::Time begin = 0;
  runtime::Time end = 0;
  /// Telescoped share of the root latency (virtual us); the per-node answer
  /// to "who gated the commit".
  runtime::Time contribution = 0;
};

struct EpochCriticalPath {
  std::uint64_t region = 0;
  std::uint64_t epoch = 0;  ///< root coordinator epoch number
  std::uint64_t span = 0;   ///< root epoch span id
  runtime::Time sealed = 0;
  runtime::Time completed = 0;
  runtime::Time latency = 0;  ///< completed - sealed
  std::vector<CriticalPathNode> path;  ///< root first
};

struct LatencyStats {
  std::size_t count = 0;
  runtime::Time p50 = 0;
  runtime::Time p99 = 0;
  runtime::Time max = 0;
};

struct TraceAnalysis {
  std::size_t regions = 0;
  std::size_t events = 0;
  std::vector<EpochCriticalPath> epochs;  ///< root epochs, (region, seal, span) order
  /// Blocked time (us) summed over BlockedWindow events, keyed by the tree
  /// level of the owning request span (requests with no causal parent sit at
  /// level 0).
  std::map<std::size_t, double> blocked_us_by_level;
  double blocked_us_total = 0;
  std::map<std::string, LatencyStats> latencies;  ///< by span category
};

TraceAnalysis analyze(const std::vector<TraceLine>& lines);

/// Deterministic JSON rendering of the analysis (single object, two-space
/// indent); ends with a newline.
std::string to_json(const TraceAnalysis& analysis);

}  // namespace sa::obs
