#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace sa::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram bounds must be ascending");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  std::lock_guard lock(mutex_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  sum_ += v;
  ++count_;
}

HistogramSnapshot Histogram::snapshot() const {
  std::lock_guard lock(mutex_);
  return HistogramSnapshot{bounds_, counts_, sum_, count_};
}

double Histogram::sum() const {
  std::lock_guard lock(mutex_);
  return sum_;
}

std::uint64_t Histogram::count() const {
  std::lock_guard lock(mutex_);
  return count_;
}

std::vector<double> default_time_buckets_us() {
  return {100,    250,    500,     1'000,   2'500,     5'000,    10'000,
          25'000, 50'000, 100'000, 250'000, 1'000'000, 5'000'000};
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    for (const char c : value) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  out += "}";
  return out;
}

MetricsRegistry::Family& MetricsRegistry::family_of(std::string_view name, std::string_view type,
                                                    std::string_view help) {
  const auto it = families_.find(name);
  if (it != families_.end()) {
    if (it->second.type != type) {
      throw std::logic_error("metric family " + std::string(name) + " registered as " +
                             it->second.type + ", requested as " + std::string(type));
    }
    return it->second;
  }
  Family& family = families_[std::string(name)];
  family.type = std::string(type);
  family.help = std::string(help);
  return family;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels, std::string_view help) {
  std::lock_guard lock(mutex_);
  Series& series = family_of(name, "counter", help).series[render_labels(labels)];
  if (!series.counter) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels, std::string_view help) {
  std::lock_guard lock(mutex_);
  Series& series = family_of(name, "gauge", help).series[render_labels(labels)];
  if (!series.gauge) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds,
                                      Labels labels, std::string_view help) {
  std::lock_guard lock(mutex_);
  Series& series = family_of(name, "histogram", help).series[render_labels(labels)];
  if (!series.histogram) series.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *series.histogram;
}

std::vector<FamilySnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot fs;
    fs.name = name;
    fs.type = family.type;
    fs.help = family.help;
    for (const auto& [labels, series] : family.series) {
      SeriesSnapshot ss;
      ss.labels = labels;
      if (series.counter) ss.value = static_cast<double>(series.counter->value());
      if (series.gauge) ss.value = series.gauge->value();
      if (series.histogram) ss.histogram = series.histogram->snapshot();
      fs.series.push_back(std::move(ss));
    }
    out.push_back(std::move(fs));
  }
  return out;
}

double MetricsRegistry::histogram_family_sum(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = families_.find(name);
  if (it == families_.end()) return 0;
  double total = 0;
  for (const auto& [labels, series] : it->second.series) {
    if (series.histogram) total += series.histogram->sum();
  }
  return total;
}

}  // namespace sa::obs
