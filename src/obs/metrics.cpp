#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace sa::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram bounds must be ascending");
  }
  counts_.reset(new std::atomic<std::uint64_t>[bounds_.size() + 1]);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v, std::memory_order_relaxed)) {
  }
  count_.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.bounds = bounds_;
  out.counts.reserve(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out.counts.push_back(counts_[i].load(std::memory_order_relaxed));
  }
  out.sum = sum_.load(std::memory_order_relaxed);
  out.count = count_.load(std::memory_order_relaxed);
  return out;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::uint64_t Histogram::count() const { return count_.load(std::memory_order_relaxed); }

std::vector<double> default_time_buckets_us() {
  return {100,    250,    500,     1'000,   2'500,     5'000,    10'000,
          25'000, 50'000, 100'000, 250'000, 1'000'000, 5'000'000};
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    for (const char c : value) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  out += "}";
  return out;
}

MetricsRegistry::Family& MetricsRegistry::family_of(std::string_view name, std::string_view type,
                                                    std::string_view help) {
  const auto it = families_.find(name);
  if (it != families_.end()) {
    if (it->second.type != type) {
      throw std::logic_error("metric family " + std::string(name) + " registered as " +
                             it->second.type + ", requested as " + std::string(type));
    }
    return it->second;
  }
  Family& family = families_[std::string(name)];
  family.type = std::string(type);
  family.help = std::string(help);
  return family;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels, std::string_view help) {
  std::lock_guard lock(mutex_);
  Series& series = family_of(name, "counter", help).series[render_labels(labels)];
  if (!series.counter) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels, std::string_view help) {
  std::lock_guard lock(mutex_);
  Series& series = family_of(name, "gauge", help).series[render_labels(labels)];
  if (!series.gauge) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds,
                                      Labels labels, std::string_view help) {
  std::lock_guard lock(mutex_);
  Series& series = family_of(name, "histogram", help).series[render_labels(labels)];
  if (!series.histogram) series.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *series.histogram;
}

std::vector<FamilySnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot fs;
    fs.name = name;
    fs.type = family.type;
    fs.help = family.help;
    for (const auto& [labels, series] : family.series) {
      SeriesSnapshot ss;
      ss.labels = labels;
      if (series.counter) ss.value = static_cast<double>(series.counter->value());
      if (series.gauge) ss.value = series.gauge->value();
      if (series.histogram) ss.histogram = series.histogram->snapshot();
      fs.series.push_back(std::move(ss));
    }
    out.push_back(std::move(fs));
  }
  return out;
}

double MetricsRegistry::histogram_family_sum(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = families_.find(name);
  if (it == families_.end()) return 0;
  double total = 0;
  for (const auto& [labels, series] : it->second.series) {
    if (series.histogram) total += series.histogram->sum();
  }
  return total;
}

}  // namespace sa::obs
