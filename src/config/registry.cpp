#include "config/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace sa::config {

ComponentId ComponentRegistry::add(std::string name, ProcessId process, std::string description) {
  if (name.empty()) throw std::invalid_argument("component name must be non-empty");
  if (by_name_.contains(name)) {
    throw std::invalid_argument("duplicate component name: " + name);
  }
  if (components_.size() >= 64) {
    throw std::invalid_argument("ComponentRegistry supports at most 64 components");
  }
  const ComponentId id = static_cast<ComponentId>(components_.size());
  by_name_.emplace(name, id);
  components_.push_back(ComponentInfo{std::move(name), process, std::move(description)});
  return id;
}

std::optional<ComponentId> ComponentRegistry::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

ComponentId ComponentRegistry::require(const std::string& name) const {
  const auto id = find(name);
  if (!id) throw std::out_of_range("unknown component: " + name);
  return *id;
}

std::vector<ProcessId> ComponentRegistry::processes() const {
  std::vector<ProcessId> out;
  for (const auto& component : components_) out.push_back(component.process);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace sa::config
