// A system configuration: the set of components currently composed into the
// running system (paper §3.1).  Stored as a 64-bit mask indexed by
// ComponentId; cheap value semantics so planners can enumerate and hash
// millions of configurations.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "config/registry.hpp"

namespace sa::config {

class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(std::uint64_t bits) : bits_(bits) {}

  /// Builds a configuration from component names, resolving via `registry`.
  static Configuration of(const ComponentRegistry& registry,
                          std::initializer_list<const char*> names);

  /// Parses a paper-style bit string, MSB = highest ComponentId.  E.g. with 7
  /// components registered E1..D5, "0100101" is the paper's source
  /// configuration {D4, D1, E1}. Throws on length mismatch or non-binary
  /// characters.
  static Configuration from_bit_string(const std::string& bits, std::size_t component_count);

  std::uint64_t bits() const { return bits_; }

  bool contains(ComponentId id) const { return (bits_ >> id) & 1U; }
  bool empty() const { return bits_ == 0; }
  std::size_t count() const;

  Configuration with(ComponentId id) const { return Configuration(bits_ | (1ULL << id)); }
  Configuration without(ComponentId id) const { return Configuration(bits_ & ~(1ULL << id)); }

  /// Components present in this configuration but not in `other`, and vice
  /// versa — the components an adaptation must add / remove.
  Configuration minus(const Configuration& other) const {
    return Configuration(bits_ & ~other.bits_);
  }
  Configuration intersect(const Configuration& other) const {
    return Configuration(bits_ & other.bits_);
  }
  Configuration unite(const Configuration& other) const {
    return Configuration(bits_ | other.bits_);
  }

  /// Paper-style bit string, MSB = highest ComponentId.
  std::string to_bit_string(std::size_t component_count) const;

  /// Comma-separated component names, highest ComponentId first — matches the
  /// "configuration" column of the paper's Table 1 (e.g. "D5,D4,D1,E1").
  std::string describe(const ComponentRegistry& registry) const;

  /// Ids of all present components, ascending.
  std::vector<ComponentId> components(std::size_t component_count) const;

  auto operator<=>(const Configuration&) const = default;

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace sa::config

template <>
struct std::hash<sa::config::Configuration> {
  std::size_t operator()(const sa::config::Configuration& config) const noexcept {
    return std::hash<std::uint64_t>{}(config.bits());
  }
};
