#include "config/enumerate.hpp"

#include <algorithm>
#include <numeric>

namespace sa::config {

namespace {

/// Union-find over component ids.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0U);
  }

  ComponentId find(ComponentId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(ComponentId a, ComponentId b) { parent_[find(a)] = find(b); }

 private:
  std::vector<ComponentId> parent_;
};

}  // namespace

std::vector<Configuration> enumerate_safe_exhaustive(const InvariantSet& invariants) {
  const std::size_t n = invariants.registry().size();
  std::vector<Configuration> safe;
  const std::uint64_t limit = n >= 64 ? 0 : (1ULL << n);
  for (std::uint64_t bits = 0; bits < limit; ++bits) {
    const Configuration config(bits);
    if (invariants.satisfied(config)) safe.push_back(config);
  }
  return safe;
}

std::vector<Configuration> enumerate_safe_pruned(const InvariantSet& invariants) {
  const std::size_t n = invariants.registry().size();
  const auto& predicates = invariants.invariants();

  // checkpoint[d] = invariants whose highest-referenced component id is d:
  // once bit d has been assigned, those invariants are fully determined.
  std::vector<std::vector<std::size_t>> checkpoint(n);
  std::vector<std::size_t> variable_free;  // invariants referencing no component
  for (std::size_t i = 0; i < predicates.size(); ++i) {
    const auto ids = invariants.referenced_components(i);
    if (ids.empty()) {
      variable_free.push_back(i);
      continue;
    }
    const ComponentId highest = *std::max_element(ids.begin(), ids.end());
    checkpoint[highest].push_back(i);
  }

  std::vector<Configuration> safe;
  const auto& registry = invariants.registry();

  // A constant-false invariant (e.g. "false") empties the safe set outright.
  for (const std::size_t i : variable_free) {
    const Configuration empty_config;
    const auto assignment = [&](const std::string& name) {
      return empty_config.contains(registry.require(name));
    };
    if (!predicates[i].predicate->evaluate(assignment)) return safe;
  }

  // Iterative DFS over bit assignments, lowest component id first.
  struct Frame {
    std::uint64_t bits;
    std::size_t depth;  // number of assigned bits
  };
  std::vector<Frame> stack{{0, 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.depth == n) {
      safe.emplace_back(frame.bits);
      continue;
    }
    // Try bit `depth` = 1 first then 0 so that popping yields ascending order.
    for (const std::uint64_t bit : {1ULL, 0ULL}) {
      const std::uint64_t bits = frame.bits | (bit << frame.depth);
      const Configuration partial(bits);
      const auto assignment = [&](const std::string& name) {
        return partial.contains(registry.require(name));
      };
      bool viable = true;
      for (const std::size_t i : checkpoint[frame.depth]) {
        if (!predicates[i].predicate->evaluate(assignment)) {
          viable = false;
          break;
        }
      }
      if (viable) stack.push_back(Frame{bits, frame.depth + 1});
    }
  }
  std::sort(safe.begin(), safe.end());
  return safe;
}

std::vector<std::vector<ComponentId>> collaborative_sets(const InvariantSet& invariants) {
  const std::size_t n = invariants.registry().size();
  DisjointSets sets(n);
  for (std::size_t i = 0; i < invariants.invariants().size(); ++i) {
    const auto ids = invariants.referenced_components(i);
    for (std::size_t j = 1; j < ids.size(); ++j) sets.unite(ids[0], ids[j]);
  }
  std::vector<std::vector<ComponentId>> grouped(n);
  for (ComponentId id = 0; id < n; ++id) grouped[sets.find(id)].push_back(id);
  std::vector<std::vector<ComponentId>> out;
  for (auto& group : grouped) {
    if (!group.empty()) out.push_back(std::move(group));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

namespace {

/// Safe local assignments of `members`: every invariant fully contained in the
/// member set is evaluated with non-members fixed to false (legitimate because
/// by construction no invariant straddles two collaborative sets).
std::vector<std::uint64_t> safe_masks_for_set(const InvariantSet& invariants,
                                              const std::vector<ComponentId>& members) {
  const auto& registry = invariants.registry();
  std::vector<std::size_t> local_invariants;
  for (std::size_t i = 0; i < invariants.invariants().size(); ++i) {
    const auto ids = invariants.referenced_components(i);
    if (ids.empty()) continue;
    const bool inside = std::all_of(ids.begin(), ids.end(), [&](ComponentId id) {
      return std::find(members.begin(), members.end(), id) != members.end();
    });
    if (inside) local_invariants.push_back(i);
  }

  std::vector<std::uint64_t> masks;
  const std::uint64_t limit = 1ULL << members.size();
  for (std::uint64_t local = 0; local < limit; ++local) {
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < members.size(); ++j) {
      if ((local >> j) & 1U) bits |= 1ULL << members[j];
    }
    const Configuration config(bits);
    const auto assignment = [&](const std::string& name) {
      return config.contains(registry.require(name));
    };
    bool ok = true;
    for (const std::size_t i : local_invariants) {
      if (!invariants.invariants()[i].predicate->evaluate(assignment)) {
        ok = false;
        break;
      }
    }
    if (ok) masks.push_back(bits);
  }
  return masks;
}

bool has_constant_false_invariant(const InvariantSet& invariants) {
  for (std::size_t i = 0; i < invariants.invariants().size(); ++i) {
    if (!invariants.referenced_components(i).empty()) continue;
    const auto assignment = [](const std::string&) { return false; };
    if (!invariants.invariants()[i].predicate->evaluate(assignment)) return true;
  }
  return false;
}

}  // namespace

std::vector<Configuration> enumerate_safe_decomposed(const InvariantSet& invariants) {
  if (has_constant_false_invariant(invariants)) return {};
  std::vector<Configuration> combined{Configuration{}};
  for (const auto& members : collaborative_sets(invariants)) {
    const auto masks = safe_masks_for_set(invariants, members);
    std::vector<Configuration> next;
    next.reserve(combined.size() * masks.size());
    for (const Configuration& partial : combined) {
      for (const std::uint64_t mask : masks) {
        next.emplace_back(partial.bits() | mask);
      }
    }
    combined = std::move(next);
    if (combined.empty()) break;
  }
  std::sort(combined.begin(), combined.end());
  return combined;
}

std::uint64_t count_safe_decomposed(const InvariantSet& invariants) {
  if (has_constant_false_invariant(invariants)) return 0;
  std::uint64_t product = 1;
  for (const auto& members : collaborative_sets(invariants)) {
    product *= safe_masks_for_set(invariants, members).size();
    if (product == 0) break;
  }
  return product;
}

}  // namespace sa::config
