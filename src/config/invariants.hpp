// Invariant sets: the paper's dependency relationships I (§3.1, §4.1).
//
// An InvariantSet is the conjunction of named dependency-relationship
// predicates over registered components.  A configuration is *safe* iff it
// satisfies every invariant when each component present is assigned true and
// each component absent is assigned false (paper, "Safe Configurations").
#pragma once

#include <string>
#include <vector>

#include "config/configuration.hpp"
#include "config/registry.hpp"
#include "expr/ast.hpp"
#include "expr/parser.hpp"

namespace sa::config {

struct Invariant {
  std::string name;        ///< human-readable label, e.g. "security constraint"
  expr::ExprPtr predicate; ///< expression over component names
};

class InvariantSet {
 public:
  explicit InvariantSet(const ComponentRegistry& registry) : registry_(&registry) {}

  /// Adds an invariant; throws std::out_of_range if the expression references
  /// a component name that is not registered (catches invariant typos at
  /// analysis time, not during a runtime adaptation).
  void add(std::string name, expr::ExprPtr predicate);

  /// Convenience: parses `expression_text` with sa::expr::parse.
  void add(std::string name, std::string_view expression_text);

  const std::vector<Invariant>& invariants() const { return invariants_; }
  const ComponentRegistry& registry() const { return *registry_; }

  /// True iff `config` satisfies every invariant.
  bool satisfied(const Configuration& config) const;

  /// Names of invariants violated by `config` (empty iff safe).
  std::vector<std::string> violations(const Configuration& config) const;

  /// ComponentIds referenced by invariant `index`.
  std::vector<ComponentId> referenced_components(std::size_t index) const;

 private:
  const ComponentRegistry* registry_;
  std::vector<Invariant> invariants_;
  // Per-invariant resolved variable ids, parallel to invariants_.
  std::vector<std::vector<ComponentId>> variable_ids_;
};

}  // namespace sa::config
