#include "config/configuration.hpp"

#include <bit>
#include <stdexcept>

namespace sa::config {

Configuration Configuration::of(const ComponentRegistry& registry,
                                std::initializer_list<const char*> names) {
  Configuration config;
  for (const char* name : names) {
    config = config.with(registry.require(name));
  }
  return config;
}

Configuration Configuration::from_bit_string(const std::string& bits,
                                             std::size_t component_count) {
  if (bits.size() != component_count) {
    throw std::invalid_argument("bit string length " + std::to_string(bits.size()) +
                                " != component count " + std::to_string(component_count));
  }
  Configuration config;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[i];
    if (c != '0' && c != '1') throw std::invalid_argument("bit string must be binary");
    if (c == '1') {
      config = config.with(static_cast<ComponentId>(component_count - 1 - i));
    }
  }
  return config;
}

std::size_t Configuration::count() const { return static_cast<std::size_t>(std::popcount(bits_)); }

std::string Configuration::to_bit_string(std::size_t component_count) const {
  std::string out(component_count, '0');
  for (std::size_t i = 0; i < component_count; ++i) {
    if (contains(static_cast<ComponentId>(component_count - 1 - i))) out[i] = '1';
  }
  return out;
}

std::string Configuration::describe(const ComponentRegistry& registry) const {
  std::string out;
  for (std::size_t i = registry.size(); i-- > 0;) {
    const auto id = static_cast<ComponentId>(i);
    if (!contains(id)) continue;
    if (!out.empty()) out += ',';
    out += registry.name(id);
  }
  return out;
}

std::vector<ComponentId> Configuration::components(std::size_t component_count) const {
  std::vector<ComponentId> out;
  for (std::size_t i = 0; i < component_count; ++i) {
    if (contains(static_cast<ComponentId>(i))) out.push_back(static_cast<ComponentId>(i));
  }
  return out;
}

}  // namespace sa::config
