#include "config/invariants.hpp"

namespace sa::config {

namespace {

expr::Assignment make_assignment(const ComponentRegistry& registry, const Configuration& config) {
  return [&registry, &config](const std::string& name) {
    return config.contains(registry.require(name));
  };
}

}  // namespace

void InvariantSet::add(std::string name, expr::ExprPtr predicate) {
  std::vector<ComponentId> ids;
  for (const std::string& variable : predicate->variables()) {
    ids.push_back(registry_->require(variable));  // throws on unknown names
  }
  invariants_.push_back(Invariant{std::move(name), std::move(predicate)});
  variable_ids_.push_back(std::move(ids));
}

void InvariantSet::add(std::string name, std::string_view expression_text) {
  add(std::move(name), expr::parse(expression_text));
}

bool InvariantSet::satisfied(const Configuration& config) const {
  const auto assignment = make_assignment(*registry_, config);
  for (const Invariant& invariant : invariants_) {
    if (!invariant.predicate->evaluate(assignment)) return false;
  }
  return true;
}

std::vector<std::string> InvariantSet::violations(const Configuration& config) const {
  const auto assignment = make_assignment(*registry_, config);
  std::vector<std::string> out;
  for (const Invariant& invariant : invariants_) {
    if (!invariant.predicate->evaluate(assignment)) out.push_back(invariant.name);
  }
  return out;
}

std::vector<ComponentId> InvariantSet::referenced_components(std::size_t index) const {
  return variable_ids_.at(index);
}

}  // namespace sa::config
