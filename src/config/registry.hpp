// Registry of adaptable components known to the adaptation manager.
//
// Each component has a unique name (the identifier used in dependency
// expressions, e.g. "E1", "D3"), lives on exactly one process, and gets a
// dense ComponentId used as its bit position in Configuration vectors.
// Registration order therefore determines the paper-style bit-vector layout:
// registering E1, E2, D1, D2, D3, D4, D5 yields the paper's
// (D5, D4, D3, D2, D1, E2, E1) vector when printed MSB-first.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace sa::config {

using ComponentId = std::uint32_t;
using ProcessId = std::uint32_t;

struct ComponentInfo {
  std::string name;
  ProcessId process = 0;
  std::string description;
};

class ComponentRegistry {
 public:
  /// Registers a component; throws std::invalid_argument on duplicate names
  /// or once the 64-component Configuration capacity is exhausted.
  ComponentId add(std::string name, ProcessId process, std::string description = "");

  std::size_t size() const { return components_.size(); }
  const ComponentInfo& info(ComponentId id) const { return components_.at(id); }
  const std::string& name(ComponentId id) const { return info(id).name; }
  ProcessId process(ComponentId id) const { return info(id).process; }

  std::optional<ComponentId> find(const std::string& name) const;

  /// Like find() but throws std::out_of_range with the name in the message.
  ComponentId require(const std::string& name) const;

  /// All distinct process ids hosting at least one component, sorted.
  std::vector<ProcessId> processes() const;

 private:
  std::vector<ComponentInfo> components_;
  std::unordered_map<std::string, ComponentId> by_name_;
};

}  // namespace sa::config
