// Safe-configuration enumeration (paper §4.2 step 1 and §7 scalability).
//
// Three strategies, all returning identical sets:
//   * exhaustive  — check all 2^n configurations against every invariant; the
//                   baseline the paper describes (exponential in n).
//   * pruned      — depth-first assignment of component bits; an invariant is
//                   checked as soon as all of its variables are assigned, and
//                   the subtree is pruned on violation.
//   * decomposed  — the paper's §7 proposal: partition components into
//                   *collaborative sets* (connected via shared invariants),
//                   enumerate each set independently, and combine; complexity
//                   drops from 2^n to Σ 2^|set_i| (+ product materialization).
#pragma once

#include <cstdint>
#include <vector>

#include "config/invariants.hpp"

namespace sa::config {

/// All safe configurations, ascending by bit pattern. O(2^n * |I|).
std::vector<Configuration> enumerate_safe_exhaustive(const InvariantSet& invariants);

/// Same result set via pruned DFS; ascending by bit pattern.
std::vector<Configuration> enumerate_safe_pruned(const InvariantSet& invariants);

/// Collaborative sets: components connected transitively through invariants
/// that mention both. Components mentioned by no invariant form singleton
/// sets. Sets are returned sorted by their smallest member; members ascend.
std::vector<std::vector<ComponentId>> collaborative_sets(const InvariantSet& invariants);

/// Decomposed enumeration: per-set safe sub-configurations combined via
/// cartesian product. Equals the exhaustive set (ascending) whenever every
/// invariant's variables fall within a single collaborative set — which the
/// construction guarantees.
std::vector<Configuration> enumerate_safe_decomposed(const InvariantSet& invariants);

/// Count-only variant of the decomposed strategy (no product materialization):
/// Π per-set-count. Useful when the full set would not fit in memory.
std::uint64_t count_safe_decomposed(const InvariantSet& invariants);

}  // namespace sa::config
