// Safe adaptation graph (paper §3.1 and §4.2 step 2).
//
// Vertices are safe configurations; an arc (config1, config2) exists iff some
// adaptive action maps config1 to config2 (both safe), weighted by the
// action's cost.  Parallel arcs with different actions are kept — the planner
// needs the cheapest, and the failure handler may fall back to others.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "actions/action.hpp"
#include "graph/digraph.hpp"

namespace sa::actions {

class SafeAdaptationGraph {
 public:
  /// Builds the SAG over `safe_configs` using every applicable action in
  /// `table`. Configurations are deduplicated; node order follows first
  /// occurrence in `safe_configs`.
  SafeAdaptationGraph(const ActionTable& table,
                      const std::vector<config::Configuration>& safe_configs);

  const graph::Digraph& graph() const { return graph_; }
  const ActionTable& table() const { return *table_; }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return graph_.edge_count(); }

  const config::Configuration& configuration(graph::NodeId node) const { return nodes_.at(node); }
  std::optional<graph::NodeId> node_of(const config::Configuration& config) const;

  /// Action labelling edge `edge`.
  const AdaptiveAction& action_of_edge(graph::EdgeId edge) const;

  /// Human-readable dump: one line per edge,
  /// "D4,D1,E1 --A2 (10ms)--> D4,D2,E1".
  std::string describe() const;

  /// Graphviz rendering of the SAG (paper Figure 4): nodes are labelled with
  /// the configuration's bit vector and component list, edges with the action
  /// name and cost. Optionally highlights a path (e.g. the MAP) in bold.
  std::string to_dot(const std::vector<graph::EdgeId>& highlighted_edges = {}) const;

 private:
  const ActionTable* table_;
  std::vector<config::Configuration> nodes_;
  std::unordered_map<config::Configuration, graph::NodeId> node_index_;
  graph::Digraph graph_;
};

}  // namespace sa::actions
