// Adaptive actions (paper §3.1): functions from one configuration to another,
// each with a fixed cost assigned during the analysis phase (§4.1, the A
// component of P = (S, I, T, R, A)).
//
// An action is modelled by the component sets it removes and adds.  It is
// applicable to a configuration C iff C contains everything it removes and
// nothing it adds, and applying it yields (C \ removes) ∪ adds.  This uniform
// shape covers the paper's three adaptation kinds:
//   insertion    — removes = ∅          (Table 2: A17 "+D5")
//   removal      — adds = ∅             (Table 2: A16 "-D4")
//   replacement  — both non-empty       (Table 2: A2 "D1 -> D2")
// and their multi-component combinations (A6..A15).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "config/configuration.hpp"
#include "config/invariants.hpp"

namespace sa::actions {

using ActionId = std::uint32_t;

struct AdaptiveAction {
  ActionId id = 0;
  std::string name;          ///< e.g. "A2"
  std::string description;   ///< e.g. "replace D1 with D2"
  config::Configuration removes;
  config::Configuration adds;
  double cost = 0.0;         ///< fixed cost (the paper uses packet delay in ms)

  bool applicable_to(const config::Configuration& from) const;
  config::Configuration apply(const config::Configuration& from) const;

  /// Processes whose agents must participate: hosts of every component the
  /// action touches (removed or added).
  std::vector<config::ProcessId> affected_processes(const config::ComponentRegistry& registry,
                                                    std::size_t component_count) const;

  /// Table-2 style operation text, e.g. "D1 -> D2", "+D5", "-D4".
  std::string operation_text(const config::ComponentRegistry& registry) const;
};

/// The analysis-phase action table T with costs A (paper §4.1).
class ActionTable {
 public:
  explicit ActionTable(const config::ComponentRegistry& registry) : registry_(&registry) {}

  /// Adds a replacement/insertion/removal action described by component
  /// names. Either list may be empty (but not both). Throws on unknown
  /// component names, duplicate action names, or negative cost.
  ActionId add(std::string name, std::vector<std::string> removes_names,
               std::vector<std::string> adds_names, double cost, std::string description = "");

  std::size_t size() const { return actions_.size(); }
  const AdaptiveAction& action(ActionId id) const { return actions_.at(id); }
  const std::vector<AdaptiveAction>& actions() const { return actions_; }
  const config::ComponentRegistry& registry() const { return *registry_; }

  std::optional<ActionId> find(const std::string& name) const;
  ActionId require(const std::string& name) const;

 private:
  const config::ComponentRegistry* registry_;
  std::vector<AdaptiveAction> actions_;
};

}  // namespace sa::actions
