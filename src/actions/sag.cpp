#include "actions/sag.hpp"

#include <algorithm>
#include <sstream>

namespace sa::actions {

SafeAdaptationGraph::SafeAdaptationGraph(const ActionTable& table,
                                         const std::vector<config::Configuration>& safe_configs)
    : table_(&table) {
  for (const config::Configuration& config : safe_configs) {
    if (node_index_.contains(config)) continue;
    const graph::NodeId node = graph_.add_nodes(1);
    node_index_.emplace(config, node);
    nodes_.push_back(config);
  }
  for (graph::NodeId from = 0; from < nodes_.size(); ++from) {
    for (const AdaptiveAction& action : table.actions()) {
      if (!action.applicable_to(nodes_[from])) continue;
      const config::Configuration result = action.apply(nodes_[from]);
      const auto it = node_index_.find(result);
      if (it == node_index_.end()) continue;  // result is not a safe configuration
      graph_.add_edge(from, it->second, action.cost, static_cast<std::int64_t>(action.id));
    }
  }
}

std::optional<graph::NodeId> SafeAdaptationGraph::node_of(
    const config::Configuration& config) const {
  const auto it = node_index_.find(config);
  if (it == node_index_.end()) return std::nullopt;
  return it->second;
}

const AdaptiveAction& SafeAdaptationGraph::action_of_edge(graph::EdgeId edge) const {
  return table_->action(static_cast<ActionId>(graph_.edge(edge).label));
}

std::string SafeAdaptationGraph::to_dot(const std::vector<graph::EdgeId>& highlighted_edges) const {
  const auto& registry = table_->registry();
  std::ostringstream out;
  out << "digraph SAG {\n";
  out << "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (graph::NodeId node = 0; node < nodes_.size(); ++node) {
    out << "  n" << node << " [label=\"" << nodes_[node].to_bit_string(registry.size()) << "\\n"
        << nodes_[node].describe(registry) << "\"];\n";
  }
  for (graph::EdgeId edge = 0; edge < graph_.edge_count(); ++edge) {
    const graph::Edge& e = graph_.edge(edge);
    const AdaptiveAction& action = action_of_edge(edge);
    const bool highlighted = std::find(highlighted_edges.begin(), highlighted_edges.end(),
                                       edge) != highlighted_edges.end();
    out << "  n" << e.from << " -> n" << e.to << " [label=\"" << action.name << " ("
        << e.cost << "ms)\"" << (highlighted ? ", penwidth=3, color=red" : "") << "];\n";
  }
  out << "}\n";
  return out.str();
}

std::string SafeAdaptationGraph::describe() const {
  std::ostringstream out;
  const auto& registry = table_->registry();
  out << node_count() << " safe configurations, " << edge_count() << " adaptation steps\n";
  for (graph::EdgeId edge = 0; edge < graph_.edge_count(); ++edge) {
    const graph::Edge& e = graph_.edge(edge);
    const AdaptiveAction& action = action_of_edge(edge);
    out << "  " << nodes_[e.from].describe(registry) << " --" << action.name << " (" << e.cost
        << "ms)--> " << nodes_[e.to].describe(registry) << "\n";
  }
  return out.str();
}

}  // namespace sa::actions
