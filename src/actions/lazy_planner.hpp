// Heuristic partial-SAG planning (paper §7, future work).
//
// The baseline pipeline materializes the full safe configuration set and SAG
// before running Dijkstra — exponential in the number of components even when
// the adaptation only touches a corner of the system.  The paper proposes
// "heuristic-based algorithms that perform partial exploration of the SAG".
//
// LazyPathPlanner implements that idea as A* directly over configurations:
// successors are generated on demand by applying applicable actions and
// checking invariants on the fly, so only the region of the SAG between the
// source and target is ever visited.  The heuristic is admissible (see
// min_cost_per_component_change), so results are cost-optimal and always
// agree with the eager planner.
#pragma once

#include <cstddef>
#include <optional>

#include "actions/planner.hpp"
#include "config/invariants.hpp"

namespace sa::actions {

class LazyPathPlanner {
 public:
  LazyPathPlanner(const ActionTable& table, const config::InvariantSet& invariants);

  /// Cost-optimal safe path from `source` to `target`, or nullopt when either
  /// endpoint is unsafe or no safe path exists. An identical-endpoint request
  /// yields an empty plan.
  std::optional<AdaptationPlan> minimum_path(const config::Configuration& source,
                                             const config::Configuration& target) const;

  struct SearchStats {
    std::size_t expanded = 0;   ///< configurations popped and settled
    std::size_t generated = 0;  ///< successor configurations produced
    std::size_t safe_checked = 0;  ///< invariant evaluations performed
  };
  /// Statistics of the most recent minimum_path() call.
  const SearchStats& last_stats() const { return stats_; }

  /// The admissible per-component-change lower bound used by the heuristic:
  /// min over actions of cost / (|removes| + |adds|).
  double min_cost_per_component_change() const { return min_cost_per_change_; }

 private:
  const ActionTable* table_;
  const config::InvariantSet* invariants_;
  double min_cost_per_change_;
  mutable SearchStats stats_;
};

}  // namespace sa::actions
