// Path planning over the SAG (paper §4.2 step 3 and §4.4).
//
// The planner finds the minimum adaptation path (MAP) with Dijkstra, and —
// for the failure-handling strategy chain — the k-th minimum path via Yen's
// algorithm and return-to-source paths from any intermediate configuration.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "actions/sag.hpp"
#include "graph/shortest_path.hpp"

namespace sa::actions {

/// One adaptation step: an ordered configuration pair realized by an action.
struct PlanStep {
  config::Configuration from;
  config::Configuration to;
  ActionId action = 0;
  double cost = 0.0;

  bool operator==(const PlanStep&) const = default;
};

/// A safe adaptation path: consecutive steps from source to target.
struct AdaptationPlan {
  std::vector<PlanStep> steps;
  double total_cost = 0.0;

  bool empty() const { return steps.empty(); }
  config::Configuration source() const;
  config::Configuration target() const;

  /// "A2, A17, A1, A16, A4" — the form the paper quotes for the MAP.
  std::string action_names(const ActionTable& table) const;

  bool operator==(const AdaptationPlan&) const = default;
};

class PathPlanner {
 public:
  explicit PathPlanner(const SafeAdaptationGraph& sag) : sag_(&sag) {}

  /// Minimum adaptation path; nullopt when source/target are not safe
  /// configurations or no safe path connects them. A request whose source
  /// equals its target yields an empty plan with cost 0.
  std::optional<AdaptationPlan> minimum_path(const config::Configuration& source,
                                             const config::Configuration& target) const;

  /// The k cheapest loopless paths in nondecreasing cost order (k >= 1);
  /// element 0 is the MAP, element 1 the paper's "second minimum adaptation
  /// path" fallback, and so on.
  std::vector<AdaptationPlan> ranked_paths(const config::Configuration& source,
                                           const config::Configuration& target,
                                           std::size_t k) const;

  const SafeAdaptationGraph& sag() const { return *sag_; }

 private:
  AdaptationPlan to_plan(const graph::Path& path) const;

  const SafeAdaptationGraph* sag_;
};

}  // namespace sa::actions
