#include "actions/action.hpp"

#include <algorithm>
#include <stdexcept>

namespace sa::actions {

bool AdaptiveAction::applicable_to(const config::Configuration& from) const {
  const bool has_all_removed = removes.intersect(from) == removes;
  const bool has_no_added = adds.intersect(from).empty();
  return has_all_removed && has_no_added;
}

config::Configuration AdaptiveAction::apply(const config::Configuration& from) const {
  return from.minus(removes).unite(adds);
}

std::vector<config::ProcessId> AdaptiveAction::affected_processes(
    const config::ComponentRegistry& registry, std::size_t component_count) const {
  std::vector<config::ProcessId> out;
  const config::Configuration touched = removes.unite(adds);
  for (const config::ComponentId id : touched.components(component_count)) {
    out.push_back(registry.process(id));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string AdaptiveAction::operation_text(const config::ComponentRegistry& registry) const {
  const std::string removed = removes.describe(registry);
  const std::string added = adds.describe(registry);
  if (removed.empty()) return "+" + added;
  if (added.empty()) return "-" + removed;
  return removed + " -> " + added;
}

ActionId ActionTable::add(std::string name, std::vector<std::string> removes_names,
                          std::vector<std::string> adds_names, double cost,
                          std::string description) {
  if (removes_names.empty() && adds_names.empty()) {
    throw std::invalid_argument("action must add or remove at least one component");
  }
  if (cost < 0.0) throw std::invalid_argument("action cost must be non-negative");
  if (find(name)) throw std::invalid_argument("duplicate action name: " + name);

  AdaptiveAction action;
  action.id = static_cast<ActionId>(actions_.size());
  action.name = std::move(name);
  action.description = std::move(description);
  action.cost = cost;
  for (const std::string& component : removes_names) {
    action.removes = action.removes.with(registry_->require(component));
  }
  for (const std::string& component : adds_names) {
    action.adds = action.adds.with(registry_->require(component));
  }
  if (!action.removes.intersect(action.adds).empty()) {
    throw std::invalid_argument("action removes and adds the same component");
  }
  actions_.push_back(std::move(action));
  return actions_.back().id;
}

std::optional<ActionId> ActionTable::find(const std::string& name) const {
  for (const AdaptiveAction& action : actions_) {
    if (action.name == name) return action.id;
  }
  return std::nullopt;
}

ActionId ActionTable::require(const std::string& name) const {
  const auto id = find(name);
  if (!id) throw std::out_of_range("unknown action: " + name);
  return *id;
}

}  // namespace sa::actions
