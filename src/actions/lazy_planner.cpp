#include "actions/lazy_planner.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <queue>
#include <tuple>
#include <unordered_map>

namespace sa::actions {

namespace {

/// Number of components on which two configurations disagree.
std::size_t diff_size(const config::Configuration& a, const config::Configuration& b) {
  return static_cast<std::size_t>(std::popcount(a.bits() ^ b.bits()));
}

}  // namespace

LazyPathPlanner::LazyPathPlanner(const ActionTable& table,
                                 const config::InvariantSet& invariants)
    : table_(&table), invariants_(&invariants) {
  double best = std::numeric_limits<double>::infinity();
  for (const AdaptiveAction& action : table.actions()) {
    const std::size_t changed = action.removes.count() + action.adds.count();
    if (changed > 0) best = std::min(best, action.cost / static_cast<double>(changed));
  }
  min_cost_per_change_ = best == std::numeric_limits<double>::infinity() ? 0.0 : best;
}

std::optional<AdaptationPlan> LazyPathPlanner::minimum_path(
    const config::Configuration& source, const config::Configuration& target) const {
  stats_ = SearchStats{};

  const auto is_safe = [this](const config::Configuration& config) {
    ++stats_.safe_checked;
    return invariants_->satisfied(config);
  };
  if (!is_safe(source) || !is_safe(target)) return std::nullopt;
  if (source == target) return AdaptationPlan{};

  const auto heuristic = [this, &target](const config::Configuration& config) {
    return static_cast<double>(diff_size(config, target)) * min_cost_per_change_;
  };

  struct Reached {
    double g = std::numeric_limits<double>::infinity();
    config::Configuration parent;
    ActionId via = 0;
    bool settled = false;
  };
  std::unordered_map<config::Configuration, Reached> reached;
  reached[source].g = 0.0;

  // (f, g, config): larger g wins ties on f — deeper nodes are closer to done.
  using Entry = std::tuple<double, double, config::Configuration>;
  const auto later = [](const Entry& a, const Entry& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) > std::get<0>(b);
    return std::get<1>(a) < std::get<1>(b);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(later)> open(later);
  open.emplace(heuristic(source), 0.0, source);

  while (!open.empty()) {
    const auto [f, g, config] = open.top();
    open.pop();
    Reached& node = reached[config];
    if (node.settled || g > node.g) continue;
    node.settled = true;
    ++stats_.expanded;

    if (config == target) {
      AdaptationPlan plan;
      plan.total_cost = g;
      config::Configuration cursor = target;
      while (!(cursor == source)) {
        const Reached& info = reached.at(cursor);
        PlanStep step;
        step.from = info.parent;
        step.to = cursor;
        step.action = info.via;
        step.cost = table_->action(info.via).cost;
        plan.steps.push_back(step);
        cursor = info.parent;
      }
      std::reverse(plan.steps.begin(), plan.steps.end());
      return plan;
    }

    for (const AdaptiveAction& action : table_->actions()) {
      if (!action.applicable_to(config)) continue;
      const config::Configuration next = action.apply(config);
      ++stats_.generated;
      if (!is_safe(next)) continue;
      const double next_g = g + action.cost;
      Reached& next_node = reached[next];
      // Deterministic tie-break: on equal cost prefer the smaller action id,
      // matching the eager planner's edge-id preference.
      if (next_g < next_node.g ||
          (next_g == next_node.g && !next_node.settled && action.id < next_node.via)) {
        next_node.g = next_g;
        next_node.parent = config;
        next_node.via = action.id;
        open.emplace(next_g + heuristic(next), next_g, next);
      }
    }
  }
  return std::nullopt;
}

}  // namespace sa::actions
