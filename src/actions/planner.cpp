#include "actions/planner.hpp"

#include <stdexcept>

namespace sa::actions {

config::Configuration AdaptationPlan::source() const {
  if (steps.empty()) throw std::logic_error("empty plan has no source");
  return steps.front().from;
}

config::Configuration AdaptationPlan::target() const {
  if (steps.empty()) throw std::logic_error("empty plan has no target");
  return steps.back().to;
}

std::string AdaptationPlan::action_names(const ActionTable& table) const {
  std::string out;
  for (const PlanStep& step : steps) {
    if (!out.empty()) out += ", ";
    out += table.action(step.action).name;
  }
  return out;
}

AdaptationPlan PathPlanner::to_plan(const graph::Path& path) const {
  AdaptationPlan plan;
  plan.total_cost = path.cost;
  for (std::size_t i = 0; i < path.edges.size(); ++i) {
    const graph::Edge& edge = sag_->graph().edge(path.edges[i]);
    PlanStep step;
    step.from = sag_->configuration(edge.from);
    step.to = sag_->configuration(edge.to);
    step.action = static_cast<ActionId>(edge.label);
    step.cost = edge.cost;
    plan.steps.push_back(step);
  }
  return plan;
}

std::optional<AdaptationPlan> PathPlanner::minimum_path(const config::Configuration& source,
                                                        const config::Configuration& target) const {
  const auto from = sag_->node_of(source);
  const auto to = sag_->node_of(target);
  if (!from || !to) return std::nullopt;
  const auto path = graph::dijkstra(sag_->graph(), *from, *to);
  if (!path) return std::nullopt;
  return to_plan(*path);
}

std::vector<AdaptationPlan> PathPlanner::ranked_paths(const config::Configuration& source,
                                                      const config::Configuration& target,
                                                      std::size_t k) const {
  std::vector<AdaptationPlan> plans;
  const auto from = sag_->node_of(source);
  const auto to = sag_->node_of(target);
  if (!from || !to) return plans;
  for (const graph::Path& path : graph::k_shortest_paths(sag_->graph(), *from, *to, k)) {
    plans.push_back(to_plan(path));
  }
  return plans;
}

}  // namespace sa::actions
