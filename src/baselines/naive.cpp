#include "baselines/naive.hpp"

#include "util/log.hpp"

namespace sa::baselines {

NaiveHotSwapAdapter::NaiveHotSwapAdapter(runtime::Clock& clock,
                                         const config::ComponentRegistry& registry,
                                         std::map<config::ProcessId, ProcessBinding> bindings,
                                         runtime::Time per_process_lag)
    : clock_(&clock), registry_(&registry), bindings_(std::move(bindings)),
      per_process_lag_(per_process_lag) {}

bool NaiveHotSwapAdapter::adapt(const config::Configuration& from,
                                const config::Configuration& to) {
  const std::size_t n = registry_->size();
  const config::Configuration removed = from.minus(to);
  const config::Configuration added = to.minus(from);

  // Validate up front that every added component is instantiable.
  for (const config::ComponentId id : added.components(n)) {
    const auto it = bindings_.find(registry_->process(id));
    if (it == bindings_.end() || !it->second.factory ||
        !it->second.factory(registry_->name(id))) {
      return false;
    }
  }

  runtime::Time lag = 0;
  for (auto& [process, binding] : bindings_) {
    std::vector<std::string> to_remove;
    std::vector<std::string> to_add;
    for (const config::ComponentId id : removed.components(n)) {
      if (registry_->process(id) == process) to_remove.push_back(registry_->name(id));
    }
    for (const config::ComponentId id : added.components(n)) {
      if (registry_->process(id) == process) to_add.push_back(registry_->name(id));
    }
    if (to_remove.empty() && to_add.empty()) continue;

    // Each process swaps when its command arrives — staggered, uncoordinated,
    // and without waiting for quiescence.
    components::FilterChain* chain = binding.chain;
    proto::FilterFactory factory = binding.factory;
    clock_->schedule_after(lag, [chain, factory, to_remove, to_add] {
      for (const std::string& name : to_remove) {
        if (!chain->remove_filter(name)) {
          SA_WARN("naive-baseline") << chain->name() << ": filter " << name << " absent";
        }
      }
      for (const std::string& name : to_add) {
        chain->append_filter(factory(name));
      }
    });
    lag += per_process_lag_;
  }
  return true;
}

}  // namespace sa::baselines
