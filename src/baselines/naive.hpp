// Naive hot-swap baseline: recompose immediately, with no coordination, no
// blocking, and no safe-configuration planning.
//
// This is the comparator the paper argues against (§1, §3): the swap happens
// whenever the command arrives at each process, so packets already encoded
// under the old scheme meet the new decoders (or vice versa), mid-packet
// state is discarded, and transient configurations may violate dependency
// invariants.  The safety benchmarks count the resulting corrupted /
// undecodable packets.
#pragma once

#include <map>

#include "components/filter_chain.hpp"
#include "config/configuration.hpp"
#include "proto/adaptable_process.hpp"
#include "runtime/clock.hpp"

namespace sa::baselines {

/// What an adapter needs to touch one process's MetaSocket. `stage` orders
/// processes along the data flow (0 = sender side); the quiescence baseline
/// uses it to passivate senders before draining receivers.
struct ProcessBinding {
  components::FilterChain* chain = nullptr;
  proto::FilterFactory factory;
  int stage = 0;
};

class NaiveHotSwapAdapter {
 public:
  NaiveHotSwapAdapter(runtime::Clock& clock, const config::ComponentRegistry& registry,
                      std::map<config::ProcessId, ProcessBinding> bindings,
                      runtime::Time per_process_lag = runtime::ms(3));

  /// Applies the `from` -> `to` component diff: each process performs its
  /// share the moment its (staggered) command arrives. Returns false if some
  /// component could not be instantiated or found.
  bool adapt(const config::Configuration& from, const config::Configuration& to);

 private:
  runtime::Clock* clock_;
  const config::ComponentRegistry* registry_;
  std::map<config::ProcessId, ProcessBinding> bindings_;
  runtime::Time per_process_lag_;
};

}  // namespace sa::baselines
