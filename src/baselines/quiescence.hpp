// Global-quiescence baseline, in the spirit of Kramer & Magee's "evolving
// philosophers" change management (paper §6): before ANY structural change,
// EVERY process in the system — involved in the change or not — is driven to
// quiescence and blocked; the whole source->target diff is then applied in
// one shot and everything resumes.
//
// This is safe but maximally disruptive: it performs no path planning, takes
// no advantage of intermediate safe configurations, and blocks uninvolved
// processes.  The benchmarks contrast its blocking time and packet delay
// against the paper's staged safe adaptation.
#pragma once

#include <functional>
#include <map>

#include "baselines/naive.hpp"
#include "config/configuration.hpp"
#include "runtime/clock.hpp"

namespace sa::baselines {

class GlobalQuiescenceAdapter {
 public:
  GlobalQuiescenceAdapter(runtime::Clock& clock, const config::ComponentRegistry& registry,
                          std::map<config::ProcessId, ProcessBinding> bindings,
                          runtime::Time flush_delay = runtime::ms(15));

  /// Quiesces every bound process (drain mode), applies the whole diff,
  /// resumes, then invokes `done(success)`.
  void adapt(const config::Configuration& from, const config::Configuration& to,
             std::function<void(bool)> done);

  /// Total wall (virtual) time between the first block request and resume.
  runtime::Time last_blocked_duration() const { return last_blocked_duration_; }

 private:
  void quiesce_receivers();
  void apply_and_resume();

  runtime::Clock* clock_;
  const config::ComponentRegistry* registry_;
  std::map<config::ProcessId, ProcessBinding> bindings_;
  runtime::Time flush_delay_;

  config::Configuration from_;
  config::Configuration to_;
  std::function<void(bool)> done_;
  std::size_t quiescent_count_ = 0;
  std::size_t sender_count_ = 0;
  std::size_t receiver_count_ = 0;
  int min_stage_ = 0;
  runtime::Time started_ = 0;
  runtime::Time last_blocked_duration_ = 0;
  bool in_progress_ = false;
};

}  // namespace sa::baselines
