#include "baselines/quiescence.hpp"

#include <climits>
#include <stdexcept>

#include "util/log.hpp"

namespace sa::baselines {

GlobalQuiescenceAdapter::GlobalQuiescenceAdapter(
    runtime::Clock& clock, const config::ComponentRegistry& registry,
    std::map<config::ProcessId, ProcessBinding> bindings, runtime::Time flush_delay)
    : clock_(&clock), registry_(&registry), bindings_(std::move(bindings)),
      flush_delay_(flush_delay) {}

void GlobalQuiescenceAdapter::adapt(const config::Configuration& from,
                                    const config::Configuration& to,
                                    std::function<void(bool)> done) {
  if (in_progress_) throw std::logic_error("global quiescence adaptation already in progress");
  in_progress_ = true;
  from_ = from;
  to_ = to;
  done_ = std::move(done);
  quiescent_count_ = 0;
  started_ = clock_->now();

  // Phase 1 — passivate the sender side: every minimum-stage process stops
  // initiating new transactions (blocks after its in-flight packet).
  min_stage_ = INT_MAX;
  for (const auto& [process, binding] : bindings_) min_stage_ = std::min(min_stage_, binding.stage);
  std::size_t senders = 0;
  for (const auto& [process, binding] : bindings_) {
    if (binding.stage == min_stage_) ++senders;
  }
  sender_count_ = senders;
  for (auto& [process, binding] : bindings_) {
    if (binding.stage != min_stage_) continue;
    binding.chain->request_quiescence([this] {
      if (++quiescent_count_ == sender_count_) quiesce_receivers();
    }, components::FilterChain::QuiescenceMode::Packet);
  }
  if (sender_count_ == 0) quiesce_receivers();
}

void GlobalQuiescenceAdapter::quiesce_receivers() {
  // Phase 2 — after in-flight data has reached the receivers, drain and
  // block every remaining process, involved in the change or not.
  clock_->schedule_after(flush_delay_, [this] {
    std::size_t receivers = 0;
    for (const auto& [process, binding] : bindings_) {
      if (binding.stage != min_stage_) ++receivers;
    }
    if (receivers == 0) {
      apply_and_resume();
      return;
    }
    quiescent_count_ = 0;
    receiver_count_ = receivers;
    for (auto& [process, binding] : bindings_) {
      if (binding.stage == min_stage_) continue;
      binding.chain->request_quiescence([this] {
        if (++quiescent_count_ == receiver_count_) apply_and_resume();
      }, components::FilterChain::QuiescenceMode::Drain);
    }
  });
}

void GlobalQuiescenceAdapter::apply_and_resume() {
  const std::size_t n = registry_->size();
  const config::Configuration removed = from_.minus(to_);
  const config::Configuration added = to_.minus(from_);
  bool ok = true;
  for (auto& [process, binding] : bindings_) {
    for (const config::ComponentId id : removed.components(n)) {
      if (registry_->process(id) != process) continue;
      if (!binding.chain->remove_filter(registry_->name(id))) ok = false;
    }
    for (const config::ComponentId id : added.components(n)) {
      if (registry_->process(id) != process) continue;
      components::FilterPtr filter =
          binding.factory ? binding.factory(registry_->name(id)) : nullptr;
      if (!filter) {
        ok = false;
        continue;
      }
      binding.chain->append_filter(std::move(filter));
    }
  }
  for (auto& [process, binding] : bindings_) binding.chain->resume();
  last_blocked_duration_ = clock_->now() - started_;
  in_progress_ = false;
  if (done_) {
    auto handler = std::move(done_);
    done_ = nullptr;
    handler(ok);
  }
}

}  // namespace sa::baselines
