#include "core/composite.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "runtime/sim_runtime.hpp"
#include "util/log.hpp"

namespace sa::core {

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0U);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

CompositeAdaptationSystem::CompositeAdaptationSystem(CompositeConfig config)
    : config_(config),
      owned_runtime_(std::make_unique<runtime::SimRuntime>(config.seed)),
      runtime_(owned_runtime_.get()) {}

CompositeAdaptationSystem::CompositeAdaptationSystem(runtime::Runtime& rt, CompositeConfig config)
    : config_(config), runtime_(&rt) {}

sim::Simulator& CompositeAdaptationSystem::simulator() {
  auto* backend = dynamic_cast<runtime::SimRuntime*>(runtime_);
  if (!backend) throw std::logic_error("simulator() requires the sim runtime backend");
  return backend->simulator();
}

sim::Network& CompositeAdaptationSystem::network() {
  auto* backend = dynamic_cast<runtime::SimRuntime*>(runtime_);
  if (!backend) throw std::logic_error("network() requires the sim runtime backend");
  return backend->network();
}

CompositeAdaptationSystem::~CompositeAdaptationSystem() = default;

void CompositeAdaptationSystem::add_invariant(std::string name, std::string_view expression) {
  if (finalized()) throw std::logic_error("cannot add invariants after finalize()");
  expr::ExprPtr predicate = expr::parse(expression);
  // Validate component names eagerly, like InvariantSet::add does.
  for (const std::string& variable : predicate->variables()) registry_.require(variable);
  pending_invariants_.push_back(PendingInvariant{std::move(name), std::move(predicate)});
}

void CompositeAdaptationSystem::add_action(std::string name, std::vector<std::string> removes,
                                           std::vector<std::string> adds, double cost,
                                           std::string description) {
  if (finalized()) throw std::logic_error("cannot add actions after finalize()");
  for (const std::string& component : removes) registry_.require(component);
  for (const std::string& component : adds) registry_.require(component);
  pending_actions_.push_back(
      PendingAction{std::move(name), std::move(removes), std::move(adds), cost,
                    std::move(description)});
}

void CompositeAdaptationSystem::attach_process(config::ProcessId process,
                                               proto::AdaptableProcess& target, int stage) {
  if (finalized()) throw std::logic_error("cannot attach processes after finalize()");
  pending_processes_.push_back(PendingProcess{process, &target, stage});
}

void CompositeAdaptationSystem::finalize() {
  if (finalized()) throw std::logic_error("finalize() called twice");
  finalized_ = true;
  const std::size_t n = registry_.size();

  // Collaborative sets: components connected through an invariant OR an
  // action collaborate and must be planned together.
  UnionFind sets(n);
  for (const PendingInvariant& invariant : pending_invariants_) {
    const auto variables = invariant.predicate->variables();
    for (std::size_t i = 1; i < variables.size(); ++i) {
      sets.unite(registry_.require(variables[0]), registry_.require(variables[i]));
    }
  }
  for (const PendingAction& action : pending_actions_) {
    std::vector<std::string> all = action.removes;
    all.insert(all.end(), action.adds.begin(), action.adds.end());
    for (std::size_t i = 1; i < all.size(); ++i) {
      sets.unite(registry_.require(all[0]), registry_.require(all[i]));
    }
  }

  std::map<std::size_t, std::vector<config::ComponentId>> grouped;
  for (config::ComponentId id = 0; id < n; ++id) {
    grouped[sets.find(id)].push_back(id);
  }

  for (auto& [root, members] : grouped) {
    auto shard = std::make_unique<Shard>();
    shard->members = members;  // ascending by construction
    shard->registry = std::make_unique<config::ComponentRegistry>();
    for (const config::ComponentId id : members) {
      const auto& info = registry_.info(id);
      shard->registry->add(info.name, info.process, info.description);
    }
    shard->invariants = std::make_unique<config::InvariantSet>(*shard->registry);
    for (const PendingInvariant& invariant : pending_invariants_) {
      const auto variables = invariant.predicate->variables();
      const bool belongs =
          variables.empty() ||  // constant invariants constrain every shard
          std::all_of(variables.begin(), variables.end(), [&](const std::string& name) {
            return shard->registry->find(name).has_value();
          });
      if (belongs) shard->invariants->add(invariant.name, invariant.predicate);
    }
    shard->actions = std::make_unique<actions::ActionTable>(*shard->registry);
    for (const PendingAction& action : pending_actions_) {
      const std::string* probe =
          !action.removes.empty() ? &action.removes.front() : &action.adds.front();
      if (!shard->registry->find(*probe)) continue;
      shard->actions->add(action.name, action.removes, action.adds, action.cost,
                          action.description);
    }

    const runtime::NodeId manager_node =
        runtime_->transport().add_node("manager-s" + std::to_string(shards_.size()));
    shard->manager_node = manager_node;
    shard->manager = std::make_unique<proto::AdaptationManager>(
        *runtime_, manager_node, *shard->invariants, *shard->actions, config_.manager);
    shard->manager->set_observability(&tracer_, &metrics_);
    tracer_.set_node_track(manager_node, obs::kManagerTrack);
    // All shard managers share the manager track; their events stay
    // distinguishable through per-request spans.
    tracer_.set_track_name(obs::kManagerTrack, "managers");

    // Agents: one per process hosting a member of this shard.
    for (const PendingProcess& pending : pending_processes_) {
      const bool hosts_member =
          std::any_of(members.begin(), members.end(), [&](config::ComponentId id) {
            return registry_.process(id) == pending.process;
          });
      if (!hosts_member) continue;
      const runtime::NodeId agent_node = runtime_->transport().add_node(
          "agent-s" + std::to_string(shards_.size()) + "-p" + std::to_string(pending.process));
      runtime_->transport().connect_bidirectional(manager_node, agent_node,
                                                  config_.control_channel);
      shard->agents.push_back(std::make_unique<proto::AdaptationAgent>(
          runtime_->clock(), runtime_->transport(), agent_node, manager_node, *pending.target,
          config_.agent));
      shard->agents.back()->set_observability(&tracer_, &metrics_,
                                              static_cast<std::int64_t>(pending.process));
      tracer_.set_track_name(static_cast<std::int64_t>(pending.process),
                             "process-" + std::to_string(pending.process));
      shard->manager->register_agent(pending.process, agent_node, pending.stage);
      shard->processes.push_back(pending.process);
    }
    shards_.push_back(std::move(shard));
  }

  // Lanes: shards sharing a process must serialize (their agents drive the
  // same AdaptableProcess); process-disjoint shards may adapt concurrently.
  UnionFind lanes(shards_.size());
  for (std::size_t a = 0; a < shards_.size(); ++a) {
    for (std::size_t b = a + 1; b < shards_.size(); ++b) {
      const auto& pa = shards_[a]->processes;
      const auto& pb = shards_[b]->processes;
      const bool overlap = std::any_of(pa.begin(), pa.end(), [&](config::ProcessId p) {
        return std::find(pb.begin(), pb.end(), p) != pb.end();
      });
      if (overlap) lanes.unite(a, b);
    }
  }
  std::map<std::size_t, std::size_t> lane_index;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::size_t root = lanes.find(i);
    shards_[i]->lane = lane_index.emplace(root, lane_index.size()).first->second;
  }
  lane_count_ = lane_index.size();

  build_tree();
  SA_INFO("composite") << shards_.size() << " collaborative set(s) in " << lane_count_
                       << " concurrency lane(s) under " << coordinators_.size()
                       << " coordinator(s), " << levels_ << " level(s)";
}

void CompositeAdaptationSystem::build_tree() {
  const std::size_t lanes_per_leaf = std::max<std::size_t>(1, config_.topology.lanes_per_leaf);
  const std::size_t fanout = std::clamp<std::size_t>(config_.topology.fanout, 2, 64);
  const std::size_t leaf_count =
      lane_count_ == 0 ? 1 : (lane_count_ + lanes_per_leaf - 1) / lanes_per_leaf;

  levels_ = 1;
  for (std::size_t m = leaf_count; m > 1; m = (m + fanout - 1) / fanout) ++levels_;

  struct Built {
    std::size_t index = 0;                  ///< into coordinators_
    std::vector<std::uint32_t> covered;     ///< global shard ids, ascending
  };

  const auto make_coordinator = [&](std::size_t depth, std::size_t position) {
    proto::CoordinatorConfig cc;
    cc.epoch_window = depth == 0 ? config_.topology.epoch_window : runtime::Time{0};
    const std::size_t height = (levels_ - 1) - depth;  // 0 at the leaves
    cc.commit_timeout =
        config_.topology.commit_timeout * static_cast<runtime::Time>(height + 1);
    const runtime::NodeId node = runtime_->transport().add_node(
        "coord-d" + std::to_string(depth) + "-" + std::to_string(position));
    coordinators_.push_back(std::make_unique<proto::AdaptationCoordinator>(
        *runtime_, node, cc, static_cast<int>(depth)));
    const std::int64_t track = -static_cast<std::int64_t>(100 + coordinators_.size());
    tracer_.set_track_name(track, runtime_->transport().node_name(node));
    tracer_.set_node_track(node, track);
    coordinators_.back()->set_observability(&tracer_, &metrics_, track);
    return coordinators_.size() - 1;
  };

  // Leaves: group lanes by lane / lanes_per_leaf; a leaf executes its lanes'
  // shards directly (serial per lane, concurrent across lanes).
  std::vector<Built> level;
  for (std::size_t leaf = 0; leaf < leaf_count; ++leaf) {
    Built built;
    built.index = make_coordinator(levels_ - 1, leaf);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s]->lane / lanes_per_leaf != leaf) continue;
      coordinators_[built.index]->add_local_shard(static_cast<std::uint32_t>(s),
                                                  static_cast<std::uint32_t>(shards_[s]->lane),
                                                  *shards_[s]->manager);
      built.covered.push_back(static_cast<std::uint32_t>(s));
    }
    level.push_back(std::move(built));
  }

  // Interior levels, bottom-up: every `fanout` nodes share a parent.
  std::size_t depth = levels_ - 1;
  while (level.size() > 1) {
    --depth;
    std::vector<Built> next;
    for (std::size_t begin = 0; begin < level.size(); begin += fanout) {
      Built parent;
      parent.index = make_coordinator(depth, next.size());
      proto::AdaptationCoordinator& coordinator = *coordinators_[parent.index];
      const std::size_t end = std::min(begin + fanout, level.size());
      for (std::size_t c = begin; c < end; ++c) {
        proto::AdaptationCoordinator& child = *coordinators_[level[c].index];
        runtime_->transport().connect_bidirectional(coordinator.node(), child.node(),
                                                    config_.control_channel);
        coordinator.add_child(child.node(), level[c].covered);
        child.set_parent(coordinator.node());
        coordinator_links_.emplace_back(coordinator.node(), child.node());
        parent.covered.insert(parent.covered.end(), level[c].covered.begin(),
                              level[c].covered.end());
      }
      std::sort(parent.covered.begin(), parent.covered.end());
      next.push_back(std::move(parent));
    }
    level = std::move(next);
  }
  root_ = level.front().index;
}

const std::vector<config::ComponentId>& CompositeAdaptationSystem::shard_members(
    std::size_t index) const {
  return shards_.at(index)->members;
}

proto::AdaptationManager& CompositeAdaptationSystem::shard_manager(std::size_t index) {
  return *shards_.at(index)->manager;
}

std::vector<runtime::NodeId> CompositeAdaptationSystem::manager_nodes() const {
  std::vector<runtime::NodeId> nodes;
  nodes.reserve(shards_.size());
  for (const auto& shard : shards_) nodes.push_back(shard->manager_node);
  return nodes;
}

config::Configuration CompositeAdaptationSystem::to_local(
    const Shard& shard, const config::Configuration& global) const {
  config::Configuration local;
  for (std::size_t i = 0; i < shard.members.size(); ++i) {
    if (global.contains(shard.members[i])) local = local.with(static_cast<config::ComponentId>(i));
  }
  return local;
}

config::Configuration CompositeAdaptationSystem::to_global(
    const Shard& shard, const config::Configuration& local) const {
  config::Configuration global;
  for (std::size_t i = 0; i < shard.members.size(); ++i) {
    if (local.contains(static_cast<config::ComponentId>(i))) {
      global = global.with(shard.members[i]);
    }
  }
  return global;
}

void CompositeAdaptationSystem::set_current_configuration(config::Configuration global) {
  if (!finalized()) throw std::logic_error("system not finalized");
  for (const auto& shard : shards_) {
    shard->manager->set_current_configuration(to_local(*shard, global));
  }
}

config::Configuration CompositeAdaptationSystem::current_configuration() const {
  config::Configuration global;
  for (const auto& shard : shards_) {
    global = global.unite(to_global(*shard, shard->manager->current_configuration()));
  }
  return global;
}

std::vector<proto::ShardTarget> CompositeAdaptationSystem::shard_targets(
    const config::Configuration& global_target) const {
  // Sub-requests per shard whose slice of the target differs from its state.
  std::vector<proto::ShardTarget> targets;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto local_target = to_local(*shards_[s], global_target);
    if (local_target == shards_[s]->manager->current_configuration()) continue;
    targets.push_back(proto::ShardTarget{static_cast<std::uint32_t>(s), local_target});
  }
  return targets;
}

void CompositeAdaptationSystem::request_adaptation(config::Configuration global_target,
                                                   CompletionHandler handler) {
  if (!finalized()) throw std::logic_error("system not finalized");
  if (request_in_flight_.exchange(true)) {
    throw std::logic_error("composite adaptation request while another is in flight");
  }
  submit_adaptation(std::move(global_target),
                    [this, handler = std::move(handler)](const CompositeResult& result) {
                      request_in_flight_ = false;
                      if (handler) handler(result);
                    });
}

std::uint64_t CompositeAdaptationSystem::submit_adaptation(config::Configuration global_target,
                                                           CompletionHandler handler) {
  if (!finalized()) throw std::logic_error("system not finalized");
  return root_coordinator().submit(
      shard_targets(global_target),
      [this, handler = std::move(handler)](
          const proto::AdaptationCoordinator::TicketResult& ticket) {
        CompositeResult result;
        result.started = ticket.started;
        result.finished = ticket.finished;
        result.epoch = ticket.epoch;
        result.success = true;
        for (const proto::ShardOutcome& outcome : ticket.outcomes) {
          result.orphaned += outcome.reported ? 0 : 1;
          result.success =
              result.success && outcome.result.outcome == proto::AdaptationOutcome::Success;
          result.shard_results.push_back(outcome.result);
        }
        result.outcomes = ticket.outcomes;
        result.final_config = current_configuration();
        if (handler) handler(result);
      });
}

CompositeResult CompositeAdaptationSystem::adapt_and_wait(config::Configuration global_target,
                                                          std::size_t max_events) {
  // The completion handler may fire on a runtime thread, so the result slot
  // is guarded for the threaded backend; on the simulator this is free.
  std::mutex mutex;
  std::optional<CompositeResult> result;
  request_adaptation(global_target, [&](const CompositeResult& r) {
    std::lock_guard lock(mutex);
    result = r;
  });
  runtime_->wait_until(
      [&] {
        std::lock_guard lock(mutex);
        return result.has_value();
      },
      max_events);
  std::lock_guard lock(mutex);
  if (!result) throw std::runtime_error("composite adaptation did not terminate");
  return *result;
}

}  // namespace sa::core
