// Fully assembled Figure-3 application: one video server multicasting a
// DES-encoded synthetic stream to the hand-held and laptop clients, with the
// adaptation manager and per-process agents wired over control channels.
//
// Integration tests, the experiment benches, and the examples all build on
// this testbed so they measure exactly the same system.
#pragma once

#include <memory>

#include "core/paper_scenario.hpp"
#include "core/system.hpp"
#include "spec/monitor.hpp"
#include "spec/monitored_process.hpp"
#include "video/client.hpp"
#include "video/server.hpp"

namespace sa::core {

struct TestbedConfig {
  SystemConfig system;
  /// When set, the testbed runs over this caller-owned runtime backend (e.g.
  /// a fault-injection decorator stack) instead of owning a SimRuntime; it
  /// must outlive the testbed. The simulator()/network() escape hatches throw
  /// unless the runtime bottoms out in a SimRuntime.
  runtime::Runtime* runtime = nullptr;
  video::StreamConfig stream;
  /// Data-plane channels (server -> clients); UDP-like by default.
  runtime::ChannelConfig data_channel{runtime::ms(5), runtime::ms(2), 0.0, /*fifo=*/false};
  crypto::DesKeys keys;
  /// Slice of Table 2 to register (ablations force a specific action tier).
  PaperActionSet action_set = PaperActionSet::All;
  /// When set, each client's local safe state is derived by a §7-style
  /// SafeStateMonitor instead of plain chain quiescence: a frame's packets
  /// form a keyed critical communication segment, so decoders are only
  /// swapped on frame boundaries. (Requires lossless data channels: a frame
  /// with a lost packet would hold its segment open indefinitely.)
  bool frame_aligned_clients = false;
};

class VideoTestbed {
 public:
  explicit VideoTestbed(TestbedConfig config = {});

  SafeAdaptationSystem& system() { return *system_; }
  runtime::Runtime& runtime() { return system_->runtime(); }
  sim::Simulator& simulator() { return system_->simulator(); }
  sim::Network& network() { return system_->network(); }

  video::VideoServer& server() { return *server_; }
  video::VideoClient& handheld() { return *handheld_; }
  video::VideoClient& laptop() { return *laptop_; }

  config::Configuration source() const { return paper_source(system_->registry()); }
  config::Configuration target() const { return paper_target(system_->registry()); }

  void start_stream() { server_->start(); }
  void stop_stream() { server_->stop(); }

  /// Runs the backend for `duration`: virtual time on the simulator, real
  /// time on the threaded runtime.
  void run_for(runtime::Time duration) { runtime().advance(duration); }

  /// The configuration implied by what is actually installed in the three
  /// filter chains right now — used to check invariants against reality, not
  /// just the manager's bookkeeping.
  config::Configuration installed_configuration() const;

  /// Sum of intact packets across both clients.
  std::uint64_t total_intact() const;
  std::uint64_t total_corrupted() const;
  std::uint64_t total_undecodable() const;

  runtime::NodeId server_data_node() const { return server_data_; }
  runtime::NodeId handheld_data_node() const { return handheld_data_; }
  runtime::NodeId laptop_data_node() const { return laptop_data_; }

  /// Frame-boundary safe-state monitors (only when frame_aligned_clients).
  spec::SafeStateMonitor* handheld_monitor() { return handheld_monitor_.get(); }
  spec::SafeStateMonitor* laptop_monitor() { return laptop_monitor_.get(); }

 private:
  TestbedConfig config_;
  std::unique_ptr<SafeAdaptationSystem> system_;
  runtime::NodeId server_data_ = 0;
  runtime::NodeId handheld_data_ = 0;
  runtime::NodeId laptop_data_ = 0;
  std::unique_ptr<video::VideoServer> server_;
  std::unique_ptr<video::VideoClient> handheld_;
  std::unique_ptr<video::VideoClient> laptop_;

  std::unique_ptr<spec::SafeStateMonitor> handheld_monitor_;
  std::unique_ptr<spec::SafeStateMonitor> laptop_monitor_;
  std::unique_ptr<spec::MonitoredProcess> handheld_monitored_;
  std::unique_ptr<spec::MonitoredProcess> laptop_monitored_;
};

}  // namespace sa::core
