// The paper's §5 case study, exactly as published: the component set,
// system/dependency invariants, the Table 2 action table with costs, and the
// source/target configurations of the 64-bit -> 128-bit hardening request.
//
// Tests and benchmarks use this module to reproduce Table 1 (safe
// configuration set), Figure 4 (SAG), and the MAP "A2, A17, A1, A16, A4".
#pragma once

#include <memory>

#include "actions/action.hpp"
#include "config/enumerate.hpp"
#include "config/invariants.hpp"
#include "crypto/codec_filters.hpp"
#include "proto/adaptable_process.hpp"

namespace sa::core {

/// Process ids of the case study (Figure 3).
inline constexpr config::ProcessId kServerProcess = 0;   ///< video sender
inline constexpr config::ProcessId kHandheldProcess = 1; ///< iPAQ-class client
inline constexpr config::ProcessId kLaptopProcess = 2;   ///< Toughbook-class client

/// Registers E1, E2 (server), D1, D2, D3 (hand-held), D4, D5 (laptop) in the
/// order that makes Configuration bit strings match the paper's
/// (D5, D4, D3, D2, D1, E2, E1) vectors.
void register_paper_components(config::ComponentRegistry& registry);

/// The paper's invariants:
///   resource constraint  one(D1, D2, D3)
///   security constraint  one(E1, E2)
///   dependency           E1 -> (D1 | D2) & D4
///   dependency           E2 -> (D3 | D2) & D5
void add_paper_invariants(config::InvariantSet& invariants);

/// Table 2: actions A1..A17 with the published packet-delay costs (ms).
void add_paper_actions(actions::ActionTable& table);

/// Source (0100101) = {D4, D1, E1} and target (1010010) = {D5, D3, E2}.
config::Configuration paper_source(const config::ComponentRegistry& registry);
config::Configuration paper_target(const config::ComponentRegistry& registry);

/// Filter factory instantiating the case study's codec components by name
/// (E1/E2 encoders, D1..D5 decoders) with shared `keys`.
proto::FilterFactory paper_filter_factory(crypto::DesKeys keys = {});

class SafeAdaptationSystem;

/// Which slice of Table 2 to register — used by ablation experiments that
/// force the planner onto a particular action tier.
enum class PaperActionSet {
  All,           ///< A1..A17 (the paper's table)
  SinglesOnly,   ///< A1..A5, A16, A17 (one component per action)
  CombinedOnly,  ///< A6..A15 pair/triple actions, plus structural A16/A17
};

/// Registers the paper's components, invariants, and Table 2 actions on a
/// not-yet-finalized SafeAdaptationSystem.
void configure_paper_system(SafeAdaptationSystem& system,
                            PaperActionSet action_set = PaperActionSet::All);

/// Everything above bundled, for harnesses. The registry lives behind a
/// unique_ptr because the invariant set and action table point into it:
/// a stable address makes the struct safely movable (no reliance on NRVO).
struct PaperScenario {
  std::unique_ptr<config::ComponentRegistry> registry;
  std::unique_ptr<config::InvariantSet> invariants;
  std::unique_ptr<actions::ActionTable> actions;
  config::Configuration source;
  config::Configuration target;
};

PaperScenario make_paper_scenario();

}  // namespace sa::core
