#include "core/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/composite.hpp"
#include "obs/export.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/threaded_runtime.hpp"

namespace sa::core {

namespace {

/// splitmix64 finalizer — the campaign's digest mixer.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

/// A fleet agent: always ready, quiesces instantly. The campaign measures
/// coordination cost, not application work.
struct FleetProcess : proto::AdaptableProcess {
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override { return true; }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override {}
};

struct RegionEndpoints {
  config::Configuration source;  ///< every cluster on X
  config::Configuration target;  ///< every cluster on Y
};

/// Adds `count` X/Y clusters (global ids starting at `first`) to `system`:
/// one process, one one(X,Y) invariant, and one swap action per cluster, so
/// every cluster is its own collaborative set on its own lane.
RegionEndpoints build_region(CompositeAdaptationSystem& system, std::size_t first,
                             std::size_t count,
                             std::vector<std::unique_ptr<FleetProcess>>& processes) {
  for (std::size_t c = 0; c < count; ++c) {
    const std::string s = std::to_string(first + c);
    system.registry().add("X" + s, static_cast<config::ProcessId>(c));
    system.registry().add("Y" + s, static_cast<config::ProcessId>(c));
  }
  for (std::size_t c = 0; c < count; ++c) {
    const std::string s = std::to_string(first + c);
    system.add_invariant("one" + s, "one(X" + s + ", Y" + s + ")");
    system.add_action("swap" + s, {"X" + s}, {"Y" + s}, 10);
  }
  for (std::size_t c = 0; c < count; ++c) {
    processes.push_back(std::make_unique<FleetProcess>());
    system.attach_process(static_cast<config::ProcessId>(c), *processes.back(), 0);
  }
  system.finalize();

  RegionEndpoints endpoints;
  for (std::size_t c = 0; c < count; ++c) {
    const std::string s = std::to_string(first + c);
    endpoints.source = endpoints.source.with(system.registry().require("X" + s));
    endpoints.target = endpoints.target.with(system.registry().require("Y" + s));
  }
  return endpoints;
}

CompositeConfig region_config(const FleetSpec& spec, std::size_t region) {
  CompositeConfig config;
  // Zero jitter: per-process blocked time then depends only on the pipeline
  // shape, which is what the flatness acceptance gate compares across scales.
  config.control_channel = runtime::ChannelConfig{runtime::ms(2), 0, 0.0, true};
  config.topology.lanes_per_leaf = spec.lanes_per_leaf;
  config.topology.fanout = spec.fanout;
  config.topology.epoch_window = spec.epoch_window;
  config.seed = mix(spec.seed, region);
  return config;
}

RegionReport run_region(const FleetSpec& spec, std::size_t region, std::size_t first,
                        std::size_t count) {
  RegionReport report;
  report.region = region;
  report.clusters = count;

  runtime::SimRuntime rt(mix(spec.seed, region));
  CompositeAdaptationSystem system(rt, region_config(spec, region));
  if (spec.trace) {
    system.tracer().set_capacity(spec.trace_capacity);
    system.tracer().set_detail(spec.trace_full ? obs::TraceDetail::Full
                                               : obs::TraceDetail::Causal);
    system.tracer().set_enabled(true);
  }
  std::vector<std::unique_ptr<FleetProcess>> processes;
  const RegionEndpoints endpoints = build_region(system, first, count, processes);

  report.shards = system.shard_count();
  report.lanes = system.lane_count();
  report.coordinators = system.coordinator_count();
  report.depth = system.tree_depth();

  system.set_current_configuration(endpoints.source);
  const CompositeResult result = system.adapt_and_wait(endpoints.target, spec.max_events);

  report.success = result.success && result.orphaned == 0 &&
                   system.current_configuration() == endpoints.target;
  report.epochs = system.root_coordinator().epochs_completed();
  report.orphaned = result.orphaned;
  report.virtual_time = result.finished - result.started;
  report.blocked_us_per_process =
      count == 0 ? 0.0
                 : system.metrics().histogram_family_sum("sa_blocked_time_us") /
                       static_cast<double>(count);

  std::uint64_t digest = mix(spec.seed, region);
  digest = mix(digest, result.epoch);
  digest = mix(digest, result.final_config.bits());
  digest = mix(digest, static_cast<std::uint64_t>(report.virtual_time));
  digest = mix(digest, report.success ? 1 : 0);
  for (const proto::ShardOutcome& outcome : result.outcomes) {
    digest = mix(digest, (static_cast<std::uint64_t>(outcome.shard) << 8) ^
                             (static_cast<std::uint64_t>(outcome.result.outcome) << 1) ^
                             (outcome.reported ? 1 : 0));
  }
  report.digest = digest;

  if (spec.trace) {
    report.trace_events = system.tracer().size();
    report.trace_dropped = system.tracer().dropped();
    if (spec.trace_export) {
      // A region runs entirely on one worker thread over SimRuntime, so the
      // recorder's merged order is append order in virtual time and this
      // serialization is a pure function of (seed, region, spec).
      std::ostringstream trace;
      obs::write_jsonl(system.tracer(), trace, region);
      report.trace_jsonl = trace.str();
    }
  }
  return report;
}

}  // namespace

FleetReport run_fleet(const FleetSpec& spec) {
  const std::size_t per_region = std::clamp<std::size_t>(spec.clusters_per_region, 1, 32);
  const std::size_t region_count =
      spec.clusters == 0 ? 0 : (spec.clusters + per_region - 1) / per_region;

  FleetReport report;
  report.clusters = spec.clusters;
  report.success = true;
  report.regions.resize(region_count);
  if (region_count == 0) return report;

  // Slot-per-region results behind an atomic cursor: any worker count yields
  // the identical report because each region is a pure function of the spec.
  std::atomic<std::size_t> cursor{0};
  const std::size_t workers = std::clamp<std::size_t>(spec.threads, 1, region_count);
  const auto work = [&] {
    for (std::size_t r = cursor.fetch_add(1); r < region_count; r = cursor.fetch_add(1)) {
      const std::size_t first = r * per_region;
      const std::size_t count = std::min(per_region, spec.clusters - first);
      try {
        report.regions[r] = run_region(spec, r, first, count);
      } catch (const std::exception&) {
        report.regions[r].region = r;
        report.regions[r].clusters = count;
        report.regions[r].success = false;  // e.g. event budget exhausted
      }
    }
  };
  if (workers == 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
  }

  double blocked_weighted = 0;
  for (const RegionReport& region : report.regions) {
    report.success = report.success && region.success;
    report.coordinators += region.coordinators;
    report.depth = std::max(report.depth, region.depth);
    report.epochs += region.epochs;
    report.orphaned += region.orphaned;
    report.virtual_time = std::max(report.virtual_time, region.virtual_time);
    blocked_weighted += region.blocked_us_per_process * static_cast<double>(region.clusters);
    report.digest = mix(report.digest, region.digest);
    report.trace_events += region.trace_events;
    report.trace_dropped += region.trace_dropped;
  }
  report.blocked_us_per_process =
      spec.clusters == 0 ? 0.0 : blocked_weighted / static_cast<double>(spec.clusters);
  return report;
}

std::string describe(const FleetReport& report) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "fleet: clusters=%zu regions=%zu\n", report.clusters,
                report.regions.size());
  out << line;
  for (const RegionReport& region : report.regions) {
    std::snprintf(line, sizeof(line),
                  "region %04zu: %s clusters=%zu shards=%zu lanes=%zu coords=%zu depth=%zu "
                  "epochs=%llu orphaned=%llu blocked_us/proc=%.3f virtual_us=%lld "
                  "digest=%016llx\n",
                  region.region, region.success ? "ok" : "FAIL", region.clusters,
                  region.shards, region.lanes, region.coordinators, region.depth,
                  static_cast<unsigned long long>(region.epochs),
                  static_cast<unsigned long long>(region.orphaned),
                  region.blocked_us_per_process,
                  static_cast<long long>(region.virtual_time),
                  static_cast<unsigned long long>(region.digest));
    out << line;
  }
  std::snprintf(line, sizeof(line),
                "fleet: %s coords=%zu depth=%zu epochs=%llu orphaned=%llu "
                "blocked_us/proc=%.3f virtual_us=%lld digest=%016llx\n",
                report.success ? "success" : "FAILURE", report.coordinators, report.depth,
                static_cast<unsigned long long>(report.epochs),
                static_cast<unsigned long long>(report.orphaned),
                report.blocked_us_per_process, static_cast<long long>(report.virtual_time),
                static_cast<unsigned long long>(report.digest));
  out << line;
  return out.str();
}

ThreadedCampaignReport run_threaded_campaign(const ThreadedCampaignSpec& spec) {
  ThreadedCampaignReport report;
  const std::size_t per_region = std::clamp<std::size_t>(spec.clusters_per_region, 1, 32);
  const std::size_t regions = std::max<std::size_t>(1, spec.regions);
  const std::size_t submitters = std::max<std::size_t>(1, spec.submitters_per_region);
  report.clusters = regions * per_region;
  report.threads = regions * submitters;

  runtime::ThreadedRuntimeOptions options;
  options.workers = std::max<std::size_t>(1, spec.runtime_workers);
  options.seed = spec.seed;
  options.wait_cap = spec.wait_cap;
  runtime::ThreadedRuntime rt(options);

  std::vector<std::unique_ptr<CompositeAdaptationSystem>> systems;
  std::vector<std::vector<std::unique_ptr<FleetProcess>>> processes(regions);
  std::vector<RegionEndpoints> endpoints;
  FleetSpec shape;  // reuse the per-region tree shape defaults
  shape.seed = spec.seed;
  for (std::size_t r = 0; r < regions; ++r) {
    systems.push_back(std::make_unique<CompositeAdaptationSystem>(rt, region_config(shape, r)));
    endpoints.push_back(build_region(*systems[r], r * per_region, per_region, processes[r]));
    systems[r]->set_current_configuration(endpoints[r].source);
  }

  std::atomic<std::uint64_t> done{0};
  std::mutex failures_mutex;
  const auto fail = [&](std::string what) {
    std::lock_guard lock(failures_mutex);
    report.failures.push_back(std::move(what));
  };

  // The storm: every submitter races the same all-Y target into its region's
  // root. Same-epoch submissions coalesce into one batch; later ones observe
  // the target reached and complete through no-op epochs. Each submission
  // still gets its own ticket and must terminate.
  std::vector<std::thread> storm;
  storm.reserve(report.threads);
  for (std::size_t r = 0; r < regions; ++r) {
    for (std::size_t s = 0; s < submitters; ++s) {
      storm.emplace_back([&, r] {
        systems[r]->submit_adaptation(
            endpoints[r].target, [&, r](const CompositeResult& result) {
              if (!result.success || result.orphaned != 0) {
                fail("region " + std::to_string(r) + ": ticket epoch " +
                     std::to_string(result.epoch) + " failed (orphaned=" +
                     std::to_string(result.orphaned) + ")");
              }
              done.fetch_add(1, std::memory_order_release);
            });
      });
    }
  }
  for (std::thread& t : storm) t.join();

  const std::uint64_t expected = report.threads;
  if (!rt.wait_until(
          [&] { return done.load(std::memory_order_acquire) >= expected; })) {
    fail("campaign did not quiesce: " + std::to_string(done.load()) + "/" +
         std::to_string(expected) + " tickets completed within the wait cap");
  }
  report.tickets = done.load();

  for (std::size_t r = 0; r < regions; ++r) {
    report.epochs += systems[r]->root_coordinator().epochs_completed();
    if (systems[r]->current_configuration() != endpoints[r].target) {
      fail("region " + std::to_string(r) + " did not rest at the all-Y target");
    }
  }

  // Quiesce the runtime while the systems (its transport handlers) are alive.
  rt.shutdown();
  report.success = report.failures.empty();
  return report;
}

}  // namespace sa::core
