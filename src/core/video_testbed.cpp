#include "core/video_testbed.hpp"

#include <algorithm>

namespace sa::core {

VideoTestbed::VideoTestbed(TestbedConfig config) : config_(config) {
  system_ = config_.runtime != nullptr
                ? std::make_unique<SafeAdaptationSystem>(*config_.runtime, config_.system)
                : std::make_unique<SafeAdaptationSystem>(config_.system);
  configure_paper_system(*system_, config_.action_set);

  runtime::Clock& clock = system_->runtime().clock();
  runtime::Transport& net = system_->runtime().transport();
  server_data_ = net.add_node("server-data");
  handheld_data_ = net.add_node("handheld-data");
  laptop_data_ = net.add_node("laptop-data");
  net.connect(server_data_, handheld_data_, config_.data_channel);
  net.connect(server_data_, laptop_data_, config_.data_channel);

  const auto factory = paper_filter_factory(config_.keys);
  server_ =
      std::make_unique<video::VideoServer>(clock, net, server_data_, config_.stream, factory);
  server_->subscribe(handheld_data_);
  server_->subscribe(laptop_data_);
  handheld_ = std::make_unique<video::VideoClient>(clock, net, handheld_data_, "handheld", factory);
  laptop_ = std::make_unique<video::VideoClient>(clock, net, laptop_data_, "laptop", factory);

  // Initial composition = the paper's source configuration {D4, D1, E1}.
  server_->chain().append_filter(factory("E1"));
  handheld_->chain().append_filter(factory("D1"));
  laptop_->chain().append_filter(factory("D4"));

  system_->attach_process(kServerProcess, server_->process(), /*stage=*/0);
  if (config_.frame_aligned_clients) {
    // §7 safe-state derivation: a frame's packets are a keyed critical
    // communication segment; the agent only blocks a client on a frame
    // boundary. Events come from the decoded-packet stream.
    const std::uint32_t ppf = std::max(1u, config_.stream.packets_per_frame);
    const auto install = [ppf](video::VideoClient& client,
                               spec::SafeStateMonitor& monitor) {
      monitor.declare_segment({"frame", "frame_start", "frame_end", /*keyed=*/true});
      client.set_packet_observer([ppf, &monitor](const components::Packet& packet) {
        const std::uint64_t frame = packet.sequence / ppf;
        const std::uint64_t position = packet.sequence % ppf;
        if (position == 0) monitor.on_event("frame_start", frame);
        if (position == ppf - 1) monitor.on_event("frame_end", frame);
      });
    };
    handheld_monitor_ = std::make_unique<spec::SafeStateMonitor>();
    laptop_monitor_ = std::make_unique<spec::SafeStateMonitor>();
    install(*handheld_, *handheld_monitor_);
    install(*laptop_, *laptop_monitor_);
    handheld_monitored_ =
        std::make_unique<spec::MonitoredProcess>(handheld_->process(), *handheld_monitor_);
    laptop_monitored_ =
        std::make_unique<spec::MonitoredProcess>(laptop_->process(), *laptop_monitor_);
    system_->attach_process(kHandheldProcess, *handheld_monitored_, /*stage=*/1);
    system_->attach_process(kLaptopProcess, *laptop_monitored_, /*stage=*/1);
  } else {
    system_->attach_process(kHandheldProcess, handheld_->process(), /*stage=*/1);
    system_->attach_process(kLaptopProcess, laptop_->process(), /*stage=*/1);
  }
  system_->finalize();
  system_->set_current_configuration(source());
}

config::Configuration VideoTestbed::installed_configuration() const {
  const auto& registry = system_->registry();
  config::Configuration installed;
  const auto scan = [&](const components::FilterChain& chain) {
    for (const std::string& name : chain.filter_names()) {
      if (const auto id = registry.find(name)) installed = installed.with(*id);
    }
  };
  scan(server_->chain());
  scan(handheld_->chain());
  scan(laptop_->chain());
  return installed;
}

std::uint64_t VideoTestbed::total_intact() const {
  return handheld_->player_stats().intact + laptop_->player_stats().intact;
}

std::uint64_t VideoTestbed::total_corrupted() const {
  return handheld_->player_stats().corrupted + laptop_->player_stats().corrupted;
}

std::uint64_t VideoTestbed::total_undecodable() const {
  return handheld_->player_stats().undecodable + laptop_->player_stats().undecodable;
}

}  // namespace sa::core
