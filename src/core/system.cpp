#include "core/system.hpp"

#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "runtime/sim_runtime.hpp"

namespace sa::core {

SafeAdaptationSystem::SafeAdaptationSystem(SystemConfig config)
    : config_(config),
      owned_runtime_(std::make_unique<runtime::SimRuntime>(config.seed)),
      runtime_(owned_runtime_.get()),
      invariants_(registry_),
      actions_(registry_) {
  manager_node_ = runtime_->transport().add_node("manager");
}

SafeAdaptationSystem::SafeAdaptationSystem(runtime::Runtime& rt, SystemConfig config)
    : config_(config),
      runtime_(&rt),
      invariants_(registry_),
      actions_(registry_) {
  manager_node_ = runtime_->transport().add_node("manager");
}

sim::Simulator& SafeAdaptationSystem::simulator() {
  auto* backend = dynamic_cast<runtime::SimRuntime*>(runtime_);
  if (!backend) throw std::logic_error("simulator() requires the sim runtime backend");
  return backend->simulator();
}

sim::Network& SafeAdaptationSystem::network() {
  auto* backend = dynamic_cast<runtime::SimRuntime*>(runtime_);
  if (!backend) throw std::logic_error("network() requires the sim runtime backend");
  return backend->network();
}

SafeAdaptationSystem::~SafeAdaptationSystem() {
  // A caller-owned runtime (threaded backend) outlives this system: detach
  // the transport observer so late deliveries cannot reach the recorder and
  // registry that are about to be destroyed.
  if (finalized()) runtime_->transport().set_observer(nullptr, nullptr);
}

void SafeAdaptationSystem::add_invariant(std::string name, std::string_view expression) {
  if (finalized()) throw std::logic_error("cannot add invariants after finalize()");
  invariants_.add(std::move(name), expression);
}

actions::ActionId SafeAdaptationSystem::add_action(std::string name,
                                                   std::vector<std::string> removes,
                                                   std::vector<std::string> adds, double cost,
                                                   std::string description) {
  if (finalized()) throw std::logic_error("cannot add actions after finalize()");
  return actions_.add(std::move(name), std::move(removes), std::move(adds), cost,
                      std::move(description));
}

void SafeAdaptationSystem::attach_process(config::ProcessId process,
                                          proto::AdaptableProcess& target, int stage) {
  if (finalized()) throw std::logic_error("cannot attach processes after finalize()");
  pending_.push_back(PendingProcess{process, &target, stage});
}

void SafeAdaptationSystem::finalize() {
  if (finalized()) throw std::logic_error("finalize() called twice");
  manager_ = std::make_unique<proto::AdaptationManager>(*runtime_, manager_node_, invariants_,
                                                        actions_, config_.manager);
  tracer_.set_track_name(obs::kManagerTrack, "manager");
  tracer_.set_node_track(manager_node_, obs::kManagerTrack);
  manager_->set_observability(&tracer_, &metrics_);
  for (const PendingProcess& pending : pending_) {
    const runtime::NodeId node =
        runtime_->transport().add_node("agent-p" + std::to_string(pending.process));
    runtime_->transport().connect_bidirectional(manager_node_, node, config_.control_channel);
    agents_[pending.process] = std::make_unique<proto::AdaptationAgent>(
        runtime_->clock(), runtime_->transport(), node, manager_node_, *pending.target,
        config_.agent);
    agent_nodes_[pending.process] = node;
    manager_->register_agent(pending.process, node, pending.stage);
    const auto track = static_cast<std::int64_t>(pending.process);
    tracer_.set_track_name(track, runtime_->transport().node_name(node));
    tracer_.set_node_track(node, track);
    agents_[pending.process]->set_observability(&tracer_, &metrics_, track);
  }
  runtime_->transport().set_observer(&tracer_, &metrics_);
}

void SafeAdaptationSystem::set_current_configuration(config::Configuration config) {
  manager().set_current_configuration(config);
}

config::Configuration SafeAdaptationSystem::current_configuration() const {
  if (!manager_) throw std::logic_error("system not finalized");
  return manager_->current_configuration();
}

proto::AdaptationManager& SafeAdaptationSystem::manager() {
  if (!manager_) throw std::logic_error("system not finalized");
  return *manager_;
}

proto::AdaptationAgent& SafeAdaptationSystem::agent(config::ProcessId process) {
  const auto it = agents_.find(process);
  if (it == agents_.end()) throw std::out_of_range("no agent for process");
  return *it->second;
}

runtime::NodeId SafeAdaptationSystem::agent_node(config::ProcessId process) const {
  const auto it = agent_nodes_.find(process);
  if (it == agent_nodes_.end()) throw std::out_of_range("no agent for process");
  return it->second;
}

void SafeAdaptationSystem::request_adaptation(
    config::Configuration target, proto::AdaptationManager::CompletionHandler handler) {
  manager().request_adaptation(target, std::move(handler));
}

proto::AdaptationResult SafeAdaptationSystem::adapt_and_wait(config::Configuration target,
                                                             std::size_t max_events) {
  // The completion handler may fire on a runtime thread, so the result slot
  // is guarded for the threaded backend; on the simulator this is free. The
  // handler co-owns the slot: if wait_until gives up (threaded real-time cap)
  // this function throws while the manager still holds the handler, and a
  // late completion must write into the shared block, not through dangling
  // references into our dead stack frame.
  struct WaitState {
    std::mutex mutex;
    std::optional<proto::AdaptationResult> result;
  };
  auto state = std::make_shared<WaitState>();
  manager().request_adaptation(target, [state](const proto::AdaptationResult& r) {
    std::lock_guard lock(state->mutex);
    state->result = r;
  });
  runtime_->wait_until(
      [&] {
        std::lock_guard lock(state->mutex);
        return state->result.has_value();
      },
      max_events);
  std::lock_guard lock(state->mutex);
  if (!state->result) throw std::runtime_error("adaptation did not terminate within event budget");
  return *state->result;
}

}  // namespace sa::core
