#include "core/system.hpp"

#include <stdexcept>

namespace sa::core {

SafeAdaptationSystem::SafeAdaptationSystem(SystemConfig config)
    : config_(config),
      network_(sim_, config.seed),
      invariants_(registry_),
      actions_(registry_) {
  manager_node_ = network_.add_node("manager");
}

SafeAdaptationSystem::~SafeAdaptationSystem() = default;

void SafeAdaptationSystem::add_invariant(std::string name, std::string_view expression) {
  if (finalized()) throw std::logic_error("cannot add invariants after finalize()");
  invariants_.add(std::move(name), expression);
}

actions::ActionId SafeAdaptationSystem::add_action(std::string name,
                                                   std::vector<std::string> removes,
                                                   std::vector<std::string> adds, double cost,
                                                   std::string description) {
  if (finalized()) throw std::logic_error("cannot add actions after finalize()");
  return actions_.add(std::move(name), std::move(removes), std::move(adds), cost,
                      std::move(description));
}

void SafeAdaptationSystem::attach_process(config::ProcessId process,
                                          proto::AdaptableProcess& target, int stage) {
  if (finalized()) throw std::logic_error("cannot attach processes after finalize()");
  pending_.push_back(PendingProcess{process, &target, stage});
}

void SafeAdaptationSystem::finalize() {
  if (finalized()) throw std::logic_error("finalize() called twice");
  manager_ = std::make_unique<proto::AdaptationManager>(network_, manager_node_, invariants_,
                                                        actions_, config_.manager);
  for (const PendingProcess& pending : pending_) {
    const sim::NodeId node =
        network_.add_node("agent-p" + std::to_string(pending.process));
    network_.link_bidirectional(manager_node_, node, config_.control_channel);
    agents_[pending.process] = std::make_unique<proto::AdaptationAgent>(
        network_, node, manager_node_, *pending.target, config_.agent);
    agent_nodes_[pending.process] = node;
    manager_->register_agent(pending.process, node, pending.stage);
  }
}

void SafeAdaptationSystem::set_current_configuration(config::Configuration config) {
  manager().set_current_configuration(config);
}

const config::Configuration& SafeAdaptationSystem::current_configuration() const {
  if (!manager_) throw std::logic_error("system not finalized");
  return manager_->current_configuration();
}

proto::AdaptationManager& SafeAdaptationSystem::manager() {
  if (!manager_) throw std::logic_error("system not finalized");
  return *manager_;
}

proto::AdaptationAgent& SafeAdaptationSystem::agent(config::ProcessId process) {
  const auto it = agents_.find(process);
  if (it == agents_.end()) throw std::out_of_range("no agent for process");
  return *it->second;
}

sim::NodeId SafeAdaptationSystem::agent_node(config::ProcessId process) const {
  const auto it = agent_nodes_.find(process);
  if (it == agent_nodes_.end()) throw std::out_of_range("no agent for process");
  return it->second;
}

void SafeAdaptationSystem::request_adaptation(
    config::Configuration target, proto::AdaptationManager::CompletionHandler handler) {
  manager().request_adaptation(target, std::move(handler));
}

proto::AdaptationResult SafeAdaptationSystem::adapt_and_wait(config::Configuration target,
                                                             std::size_t max_events) {
  std::optional<proto::AdaptationResult> result;
  manager().request_adaptation(target,
                               [&result](const proto::AdaptationResult& r) { result = r; });
  std::size_t events = 0;
  while (!result && events < max_events && sim_.step()) ++events;
  if (!result) throw std::runtime_error("adaptation did not terminate within event budget");
  return *result;
}

}  // namespace sa::core
