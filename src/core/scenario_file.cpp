#include "core/scenario_file.hpp"

#include <cctype>
#include <istream>
#include <sstream>
#include <vector>

#include "util/strings.hpp"

namespace sa::core {

namespace {

/// Splits a scenario line into whitespace-separated tokens, keeping quoted
/// strings ("...") as single tokens with the quotes stripped.
std::vector<std::string> tokenize(const std::string& line, std::size_t line_number) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '#') break;  // comment to end of line
    if (line[i] == '"') {
      const std::size_t close = line.find('"', i + 1);
      if (close == std::string::npos) {
        throw ScenarioParseError("unterminated quoted string", line_number);
      }
      tokens.push_back(line.substr(i + 1, close - i - 1));
      i = close + 1;
      continue;
    }
    std::size_t end = i;
    while (end < line.size() && !std::isspace(static_cast<unsigned char>(line[end])) &&
           line[end] != '#') {
      ++end;
    }
    tokens.push_back(line.substr(i, end - i));
    i = end;
  }
  return tokens;
}

/// Parses "key=value" into value if the token has the given key.
std::optional<std::string> keyed(const std::string& token, std::string_view key) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return std::nullopt;
  return token.substr(prefix.size());
}

std::vector<std::string> split_names(const std::string& list) {
  std::vector<std::string> names;
  for (const std::string& part : util::split(list, ',')) {
    const auto trimmed = util::trim(part);
    if (!trimmed.empty()) names.emplace_back(trimmed);
  }
  return names;
}

config::Configuration parse_configuration(const std::string& text,
                                          const config::ComponentRegistry& registry,
                                          std::size_t line_number) {
  const bool is_bits = text.find_first_not_of("01") == std::string::npos &&
                       text.size() == registry.size() && !text.empty();
  try {
    if (is_bits) return config::Configuration::from_bit_string(text, registry.size());
    config::Configuration config;
    for (const std::string& name : split_names(text)) {
      config = config.with(registry.require(name));
    }
    return config;
  } catch (const std::exception& e) {
    throw ScenarioParseError(e.what(), line_number);
  }
}

}  // namespace

ParsedScenario parse_scenario(std::istream& input) {
  ParsedScenario scenario;
  scenario.registry = std::make_unique<config::ComponentRegistry>();
  scenario.invariants = std::make_unique<config::InvariantSet>(*scenario.registry);
  scenario.actions = std::make_unique<actions::ActionTable>(*scenario.registry);

  std::string line;
  std::size_t line_number = 0;
  bool components_frozen = false;

  while (std::getline(input, line)) {
    ++line_number;
    const auto tokens = tokenize(line, line_number);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    try {
      if (directive == "component") {
        if (components_frozen) {
          throw ScenarioParseError("components must be declared before invariants/actions",
                                   line_number);
        }
        if (tokens.size() < 3) {
          throw ScenarioParseError("component needs a name and process=<id>", line_number);
        }
        const auto process = keyed(tokens[2], "process");
        if (!process) throw ScenarioParseError("expected process=<id>", line_number);
        const std::string description = tokens.size() > 3 ? tokens[3] : "";
        scenario.registry->add(tokens[1],
                              static_cast<config::ProcessId>(std::stoul(*process)), description);
      } else if (directive == "invariant") {
        components_frozen = true;
        if (tokens.size() < 3) {
          throw ScenarioParseError("invariant needs a name and an expression", line_number);
        }
        // The expression is everything after the name on the original line.
        const std::size_t name_pos = line.find('"');
        const std::size_t name_end = line.find('"', name_pos + 1);
        if (name_pos == std::string::npos || name_end == std::string::npos) {
          throw ScenarioParseError("invariant name must be quoted", line_number);
        }
        const std::string expression(util::trim(line.substr(name_end + 1)));
        scenario.invariants->add(tokens[1], expression);
      } else if (directive == "action") {
        components_frozen = true;
        if (tokens.size() < 3) {
          throw ScenarioParseError("action needs a name and cost=<ms>", line_number);
        }
        std::vector<std::string> removes;
        std::vector<std::string> adds;
        std::optional<double> cost;
        std::string description;
        for (std::size_t t = 2; t < tokens.size(); ++t) {
          if (const auto value = keyed(tokens[t], "remove")) {
            removes = split_names(*value);
          } else if (const auto added = keyed(tokens[t], "add")) {
            adds = split_names(*added);
          } else if (const auto c = keyed(tokens[t], "cost")) {
            cost = std::stod(*c);
          } else {
            description = tokens[t];
          }
        }
        if (!cost) throw ScenarioParseError("action needs cost=<ms>", line_number);
        scenario.actions->add(tokens[1], removes, adds, *cost, description);
      } else if (directive == "source" || directive == "target") {
        if (tokens.size() != 2) {
          throw ScenarioParseError(directive + " needs one configuration", line_number);
        }
        const auto config = parse_configuration(tokens[1], *scenario.registry, line_number);
        (directive == "source" ? scenario.source : scenario.target) = config;
      } else {
        throw ScenarioParseError("unknown directive '" + directive + "'", line_number);
      }
    } catch (const ScenarioParseError&) {
      throw;
    } catch (const std::exception& e) {
      throw ScenarioParseError(e.what(), line_number);
    }
  }
  return scenario;
}

ParsedScenario parse_scenario_text(std::string_view text) {
  std::istringstream stream{std::string(text)};
  return parse_scenario(stream);
}

}  // namespace sa::core
