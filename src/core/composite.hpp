// Collaborative-set sharding (paper §7): "To handle the complexity, we can
// divide the adaptive components of a system into multiple collaborative sets
// where component collaborations occur only within each set. The component
// adaptation of each set can be handled independently, thereby reducing the
// complexity."
//
// CompositeAdaptationSystem computes the collaborative sets (components
// connected through shared invariants OR shared actions), builds one
// AdaptationManager per set over a *projected* sub-scenario — its own
// sub-registry, invariants, action table, SAG — and splits every adaptation
// request into per-set sub-requests. Sets whose process footprints are
// disjoint adapt CONCURRENTLY; sets sharing a process are serialized into a
// lane (their agents drive the same underlying AdaptableProcess, which can
// only quiesce for one step at a time).
//
// At fleet scale the flat fan-out becomes a MANAGER TREE: lanes group into
// leaf coordinators, leaves group under interior coordinators up to a single
// root (region -> shard -> collaborative set). Requests enter at the root and
// batch per epoch — submissions landing in the same epoch window group-commit
// (same-shard targets coalesce, later wins), the sealed batch fans down the
// tree as EpochCommitMsg slices, per-shard §4.4 results aggregate back up as
// EpochDoneMsg lists, and a commit timeout orphans partitioned subtrees so
// one unreachable region cannot wedge the pipeline. Lane serialization
// generalizes: each leaf runs its lanes' shards sequentially per lane,
// concurrently across lanes, and disjoint subtrees commit concurrently.
//
// Planning cost per request drops from O(2^n) to O(Σ 2^|set|), and wall-clock
// realization time for multi-set requests drops to the slowest lane.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "proto/agent.hpp"
#include "proto/coordinator.hpp"
#include "proto/manager.hpp"
#include "runtime/runtime.hpp"

namespace sa::sim {
class Simulator;
class Network;
}  // namespace sa::sim

namespace sa::runtime {
class SimRuntime;
}  // namespace sa::runtime

namespace sa::core {

/// Shape of the coordinator tree built over the concurrency lanes.
struct FleetTopology {
  /// Lanes per leaf coordinator (a leaf executes its lanes concurrently).
  std::size_t lanes_per_leaf = 8;
  /// Children per interior coordinator; clamped to [2, 64].
  std::size_t fanout = 8;
  /// The root's batching window: submissions landing inside it group-commit
  /// into one epoch. Interior nodes use window 0 (their parent batched).
  runtime::Time epoch_window = runtime::us(500);
  /// Base commit timeout at the leaves; each level up multiplies it by one
  /// more, so a parent never orphans a child that is still within budget.
  runtime::Time commit_timeout = runtime::seconds(30);
};

struct CompositeConfig {
  std::uint64_t seed = 42;
  runtime::ChannelConfig control_channel{runtime::ms(2), runtime::us(500), 0.0, true};
  proto::ManagerConfig manager;
  proto::AgentConfig agent;
  FleetTopology topology;
};

struct CompositeResult {
  bool success = false;  ///< every involved shard reached its sub-target
  std::vector<proto::AdaptationResult> shard_results;  ///< involved shards, ascending shard id
  /// Same results with shard ids and orphan flags (outcomes[i].result is
  /// shard_results[i]); `reported == false` marks a shard synthesized by a
  /// commit timeout rather than reported by its subtree.
  std::vector<proto::ShardOutcome> outcomes;
  config::Configuration final_config;                  ///< stitched, global
  runtime::Time started = 0;
  runtime::Time finished = 0;
  std::uint64_t epoch = 0;     ///< the root epoch that committed the request
  std::size_t orphaned = 0;    ///< shards synthesized by a commit timeout
};

class CompositeAdaptationSystem {
 public:
  /// Default: owns a deterministic SimRuntime seeded from `config.seed`.
  explicit CompositeAdaptationSystem(CompositeConfig config = {});
  /// Runs over a caller-owned runtime backend; it must outlive the system.
  explicit CompositeAdaptationSystem(runtime::Runtime& rt, CompositeConfig config = {});
  ~CompositeAdaptationSystem();

  CompositeAdaptationSystem(const CompositeAdaptationSystem&) = delete;
  CompositeAdaptationSystem& operator=(const CompositeAdaptationSystem&) = delete;

  // --- analysis phase --------------------------------------------------------
  config::ComponentRegistry& registry() { return registry_; }
  void add_invariant(std::string name, std::string_view expression);
  void add_action(std::string name, std::vector<std::string> removes,
                  std::vector<std::string> adds, double cost, std::string description = "");
  void attach_process(config::ProcessId process, proto::AdaptableProcess& target, int stage = 0);

  /// Computes collaborative sets, builds the per-set managers and agents, and
  /// erects the coordinator tree over the concurrency lanes.
  void finalize();
  bool finalized() const { return finalized_; }

  /// Number of collaborative sets (valid after finalize()).
  std::size_t shard_count() const { return shards_.size(); }
  /// Global component ids of shard `index`, ascending.
  const std::vector<config::ComponentId>& shard_members(std::size_t index) const;
  std::size_t lane_count() const { return lane_count_; }

  // --- the manager tree ------------------------------------------------------
  std::size_t coordinator_count() const { return coordinators_.size(); }
  /// Levels in the tree (1 = the root alone executes every lane).
  std::size_t tree_depth() const { return levels_; }
  proto::AdaptationCoordinator& root_coordinator() { return *coordinators_.at(root_); }
  proto::AdaptationCoordinator& coordinator(std::size_t index) {
    return *coordinators_.at(index);
  }
  /// Parent -> child transport links, for fault injection over the tree.
  const std::vector<std::pair<runtime::NodeId, runtime::NodeId>>& coordinator_links() const {
    return coordinator_links_;
  }
  /// Manager endpoints, for trace conformance over the whole tree.
  std::vector<runtime::NodeId> manager_nodes() const;

  // --- runtime -----------------------------------------------------------------
  void set_current_configuration(config::Configuration global);
  config::Configuration current_configuration() const;

  using CompletionHandler = std::function<void(const CompositeResult&)>;
  /// One request at a time (throws if one is in flight); see
  /// submit_adaptation for the group-commit entry point.
  void request_adaptation(config::Configuration global_target, CompletionHandler handler);
  /// Group-commit entry point: submissions may overlap, and those landing in
  /// the same root epoch window merge into one epoch (same-shard targets
  /// coalesce, later wins). Returns the root ticket id.
  std::uint64_t submit_adaptation(config::Configuration global_target,
                                  CompletionHandler handler);
  CompositeResult adapt_and_wait(config::Configuration global_target,
                                 std::size_t max_events = 5'000'000);

  runtime::Runtime& runtime() { return *runtime_; }
  /// Owned observability: disabled-by-default trace recorder and the metrics
  /// registry every manager, agent, and coordinator reports into.
  obs::TraceRecorder& tracer() { return tracer_; }
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Deterministic-backend escape hatches; throw std::logic_error when the
  /// system runs over a non-simulated runtime.
  sim::Simulator& simulator();
  sim::Network& network();
  proto::AdaptationManager& shard_manager(std::size_t index);

 private:
  struct Shard {
    std::vector<config::ComponentId> members;            // global ids, ascending
    std::unique_ptr<config::ComponentRegistry> registry; // local names = global names
    std::unique_ptr<config::InvariantSet> invariants;
    std::unique_ptr<actions::ActionTable> actions;
    std::unique_ptr<proto::AdaptationManager> manager;
    runtime::NodeId manager_node = 0;
    std::vector<std::unique_ptr<proto::AdaptationAgent>> agents;
    std::vector<config::ProcessId> processes;            // footprint
    std::size_t lane = 0;
  };

  config::Configuration to_local(const Shard& shard, const config::Configuration& global) const;
  config::Configuration to_global(const Shard& shard, const config::Configuration& local) const;
  void build_tree();
  /// Involved-shard targets for `global_target` (shards already there skip).
  std::vector<proto::ShardTarget> shard_targets(const config::Configuration& global_target) const;

  CompositeConfig config_;
  std::unique_ptr<runtime::SimRuntime> owned_runtime_;  ///< default backend
  runtime::Runtime* runtime_;
  config::ComponentRegistry registry_;
  bool finalized_ = false;

  // Declared before the protocol entities: instrumentation sites hold raw
  // pointers into these, so they must outlive every manager and coordinator.
  obs::TraceRecorder tracer_;
  obs::MetricsRegistry metrics_;

  // pre-finalize staging
  struct PendingInvariant {
    std::string name;
    expr::ExprPtr predicate;
  };
  struct PendingAction {
    std::string name;
    std::vector<std::string> removes;
    std::vector<std::string> adds;
    double cost;
    std::string description;
  };
  struct PendingProcess {
    config::ProcessId process;
    proto::AdaptableProcess* target;
    int stage;
  };
  std::vector<PendingInvariant> pending_invariants_;
  std::vector<PendingAction> pending_actions_;
  std::vector<PendingProcess> pending_processes_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t lane_count_ = 0;

  // The manager tree, leaves first; destroyed before the shards they drive.
  std::vector<std::unique_ptr<proto::AdaptationCoordinator>> coordinators_;
  std::size_t root_ = 0;
  std::size_t levels_ = 0;
  std::vector<std::pair<runtime::NodeId, runtime::NodeId>> coordinator_links_;

  std::atomic<bool> request_in_flight_{false};
};

}  // namespace sa::core
