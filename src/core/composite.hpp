// Collaborative-set sharding (paper §7): "To handle the complexity, we can
// divide the adaptive components of a system into multiple collaborative sets
// where component collaborations occur only within each set. The component
// adaptation of each set can be handled independently, thereby reducing the
// complexity."
//
// CompositeAdaptationSystem computes the collaborative sets (components
// connected through shared invariants OR shared actions), builds one
// AdaptationManager per set over a *projected* sub-scenario — its own
// sub-registry, invariants, action table, SAG — and splits every adaptation
// request into per-set sub-requests. Sets whose process footprints are
// disjoint adapt CONCURRENTLY; sets sharing a process are serialized into a
// lane (their agents drive the same underlying AdaptableProcess, which can
// only quiesce for one step at a time).
//
// Planning cost per request drops from O(2^n) to O(Σ 2^|set|), and wall-clock
// realization time for multi-set requests drops to the slowest lane.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "proto/agent.hpp"
#include "proto/manager.hpp"
#include "runtime/runtime.hpp"

namespace sa::sim {
class Simulator;
class Network;
}  // namespace sa::sim

namespace sa::runtime {
class SimRuntime;
}  // namespace sa::runtime

namespace sa::core {

struct CompositeConfig {
  std::uint64_t seed = 42;
  runtime::ChannelConfig control_channel{runtime::ms(2), runtime::us(500), 0.0, true};
  proto::ManagerConfig manager;
  proto::AgentConfig agent;
};

struct CompositeResult {
  bool success = false;  ///< every involved shard reached its sub-target
  std::vector<proto::AdaptationResult> shard_results;  ///< involved shards only
  config::Configuration final_config;                  ///< stitched, global
  runtime::Time started = 0;
  runtime::Time finished = 0;
};

class CompositeAdaptationSystem {
 public:
  /// Default: owns a deterministic SimRuntime seeded from `config.seed`.
  explicit CompositeAdaptationSystem(CompositeConfig config = {});
  /// Runs over a caller-owned runtime backend; it must outlive the system.
  explicit CompositeAdaptationSystem(runtime::Runtime& rt, CompositeConfig config = {});
  ~CompositeAdaptationSystem();

  CompositeAdaptationSystem(const CompositeAdaptationSystem&) = delete;
  CompositeAdaptationSystem& operator=(const CompositeAdaptationSystem&) = delete;

  // --- analysis phase --------------------------------------------------------
  config::ComponentRegistry& registry() { return registry_; }
  void add_invariant(std::string name, std::string_view expression);
  void add_action(std::string name, std::vector<std::string> removes,
                  std::vector<std::string> adds, double cost, std::string description = "");
  void attach_process(config::ProcessId process, proto::AdaptableProcess& target, int stage = 0);

  /// Computes collaborative sets and builds the per-set managers and agents.
  void finalize();
  bool finalized() const { return !shards_.empty() || finalized_; }

  /// Number of collaborative sets (valid after finalize()).
  std::size_t shard_count() const { return shards_.size(); }
  /// Global component ids of shard `index`, ascending.
  const std::vector<config::ComponentId>& shard_members(std::size_t index) const;

  // --- runtime -----------------------------------------------------------------
  void set_current_configuration(config::Configuration global);
  config::Configuration current_configuration() const;

  using CompletionHandler = std::function<void(const CompositeResult&)>;
  void request_adaptation(config::Configuration global_target, CompletionHandler handler);
  CompositeResult adapt_and_wait(config::Configuration global_target,
                                 std::size_t max_events = 5'000'000);

  runtime::Runtime& runtime() { return *runtime_; }

  /// Deterministic-backend escape hatches; throw std::logic_error when the
  /// system runs over a non-simulated runtime.
  sim::Simulator& simulator();
  sim::Network& network();
  proto::AdaptationManager& shard_manager(std::size_t index);

 private:
  struct Shard {
    std::vector<config::ComponentId> members;            // global ids, ascending
    std::unique_ptr<config::ComponentRegistry> registry; // local names = global names
    std::unique_ptr<config::InvariantSet> invariants;
    std::unique_ptr<actions::ActionTable> actions;
    std::unique_ptr<proto::AdaptationManager> manager;
    std::vector<std::unique_ptr<proto::AdaptationAgent>> agents;
    std::vector<config::ProcessId> processes;            // footprint
    std::size_t lane = 0;
  };

  config::Configuration to_local(const Shard& shard, const config::Configuration& global) const;
  config::Configuration to_global(const Shard& shard, const config::Configuration& local) const;

  CompositeConfig config_;
  std::unique_ptr<runtime::SimRuntime> owned_runtime_;  ///< default backend
  runtime::Runtime* runtime_;
  config::ComponentRegistry registry_;
  bool finalized_ = false;

  // pre-finalize staging
  struct PendingInvariant {
    std::string name;
    expr::ExprPtr predicate;
  };
  struct PendingAction {
    std::string name;
    std::vector<std::string> removes;
    std::vector<std::string> adds;
    double cost;
    std::string description;
  };
  struct PendingProcess {
    config::ProcessId process;
    proto::AdaptableProcess* target;
    int stage;
  };
  std::vector<PendingInvariant> pending_invariants_;
  std::vector<PendingAction> pending_actions_;
  std::vector<PendingProcess> pending_processes_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t lane_count_ = 0;
  bool request_in_flight_ = false;
};

}  // namespace sa::core
