// Fleet-scale adaptation campaigns over the hierarchical composite system.
//
// A fleet is `clusters` independent two-component (X/Y) clusters — the same
// unit workload the §7 scalability experiment uses — partitioned into
// REGIONS. Configuration is a 64-bit word, so one composite system carries at
// most 32 such clusters; larger fleets shard into regions automatically, each
// region a fresh deterministic SimRuntime hosting one
// CompositeAdaptationSystem whose coordinator tree (region -> shard ->
// collaborative set) group-commits the region's mass adaptation in epochs.
//
// Regions are pure functions of (seed, region index, spec): run_fleet fans
// them over a worker pool and writes results into per-region slots, so the
// report — including every digest — is bit-identical for any `threads`
// value. That is the property the CI fleet-smoke job diffs.
//
// run_threaded_campaign is the non-simulated counterpart: many composite
// systems share one ThreadedRuntime while ~a thousand short-lived submitter
// threads race submit_adaptation against the root coordinators, exercising
// the epoch pipeline under real preemption.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/time.hpp"

namespace sa::core {

struct FleetSpec {
  std::size_t clusters = 64;  ///< total X/Y clusters; 2 agents each
  /// Clusters per region; clamped to [1, 32] (64-bit Configuration).
  std::size_t clusters_per_region = 32;
  std::size_t lanes_per_leaf = 4;  ///< coordinator tree shape, per region
  std::size_t fanout = 4;
  runtime::Time epoch_window = runtime::us(500);
  std::uint64_t seed = 42;
  std::size_t threads = 1;  ///< workers over regions; never changes results
  std::size_t max_events = 5'000'000;  ///< per-region simulator budget
  /// Record causal traces: each region serializes its recorder into
  /// RegionReport::trace_jsonl (region-tagged lines), so concatenating the
  /// regions in order yields one fleet trace that is bit-identical for any
  /// `threads` value.
  bool trace = false;
  /// Serialize the recorder into RegionReport::trace_jsonl after the run.
  /// Off leaves the recorder armed but skips the export, which is how the
  /// fleet bench isolates the recording cost from the (on-demand) export.
  bool trace_export = true;
  /// Record every event kind instead of the causal subset. The default
  /// (Causal detail) is the always-on configuration the ≤5% overhead gate
  /// covers: tickets, epochs, flow links, request spans, blocked windows —
  /// everything the critical-path analysis consumes, ~15% of the full
  /// volume. Full adds phases, steps, and timers for post-mortem debugging.
  bool trace_full = false;
  /// Per-thread flight-recorder ring capacity while tracing (slots). A
  /// region holds at most 32 clusters, which records a few hundred causal
  /// events (a few thousand at full detail) regardless of fleet size.
  std::size_t trace_capacity = 1 << 10;
};

struct RegionReport {
  std::size_t region = 0;
  bool success = false;
  std::size_t clusters = 0;
  std::size_t shards = 0;
  std::size_t lanes = 0;
  std::size_t coordinators = 0;
  std::size_t depth = 0;        ///< coordinator tree levels
  std::uint64_t epochs = 0;     ///< root epochs completed
  std::uint64_t orphaned = 0;   ///< shards lost to commit timeouts (expect 0)
  /// Mean §4.3 blocked time per process (sa_blocked_time_us / processes) —
  /// the flatness signal: it must not grow with fleet size.
  double blocked_us_per_process = 0.0;
  runtime::Time virtual_time = 0;  ///< request start -> finish, virtual us
  std::uint64_t digest = 0;        ///< outcome fingerprint, deterministic
  // Populated only when FleetSpec::trace is set.
  std::string trace_jsonl;          ///< region-tagged causal trace lines
  std::uint64_t trace_events = 0;   ///< events captured by the recorder
  std::uint64_t trace_dropped = 0;  ///< ring overwrites + torn slots
};

struct FleetReport {
  bool success = false;
  std::size_t clusters = 0;
  std::size_t coordinators = 0;  ///< summed over regions
  std::size_t depth = 0;         ///< deepest region tree
  std::uint64_t epochs = 0;      ///< summed over regions
  std::uint64_t orphaned = 0;
  double blocked_us_per_process = 0.0;  ///< cluster-weighted mean
  runtime::Time virtual_time = 0;       ///< slowest region (regions overlap)
  std::uint64_t digest = 0;             ///< region digests mixed in order
  std::uint64_t trace_events = 0;       ///< summed over regions (trace runs)
  std::uint64_t trace_dropped = 0;
  std::vector<RegionReport> regions;
};

/// Runs the mass X -> Y adaptation over every region and aggregates.
FleetReport run_fleet(const FleetSpec& spec);

/// Deterministic multi-line rendering; identical text for any spec.threads.
std::string describe(const FleetReport& report);

struct ThreadedCampaignSpec {
  std::size_t regions = 8;              ///< composite systems on the runtime
  std::size_t clusters_per_region = 8;  ///< clamped to [1, 32]
  /// Submitter threads per region; total threads = regions * this. Every
  /// submitter races the same all-Y target into its region's root, so
  /// same-epoch submissions coalesce and later ones ride no-op epochs.
  std::size_t submitters_per_region = 4;
  std::size_t runtime_workers = 4;  ///< ThreadedRuntime executor pool
  std::uint64_t seed = 42;
  runtime::Time wait_cap = runtime::seconds(120);  ///< real-time budget
};

struct ThreadedCampaignReport {
  bool success = false;
  std::size_t threads = 0;    ///< submitter threads launched
  std::size_t clusters = 0;
  std::uint64_t tickets = 0;  ///< completed root tickets
  std::uint64_t epochs = 0;   ///< root epochs, summed over regions
  std::vector<std::string> failures;  ///< oracle violations, empty on success
};

/// Launches the submitter storm on a ThreadedRuntime and checks the oracles:
/// every ticket terminates successfully with no orphans, and every region
/// rests at the all-Y target.
ThreadedCampaignReport run_threaded_campaign(const ThreadedCampaignSpec& spec);

}  // namespace sa::core
