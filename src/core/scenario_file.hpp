// Textual scenario format: the analysis-phase artifacts (components,
// dependency invariants, adaptive actions with costs, source/target
// configurations) as a declarative file, so the planning pipeline can be
// driven without writing C++. Used by the `sa_plan` command-line tool.
//
// Line-oriented grammar ('#' starts a comment; blank lines ignored):
//
//   component <name> process=<id> ["description"]
//   invariant "<name>" <dependency expression>
//   action <name> [remove=<c1,c2>] [add=<c3>] cost=<ms> ["description"]
//   source <bit-string | comma-separated component names>
//   target <bit-string | comma-separated component names>
//
// Example (the paper's case study lives in examples/paper.scenario):
//
//   component E1 process=0 "DES 64-bit encoder"
//   invariant "security constraint" one(E1, E2)
//   action A1 remove=E1 add=E2 cost=10 "replace E1 with E2"
//   source 0100101
//   target D5,D3,E2
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "actions/action.hpp"
#include "config/invariants.hpp"

namespace sa::core {

/// Error with the 1-based line number of the offending input.
class ScenarioParseError : public std::runtime_error {
 public:
  ScenarioParseError(const std::string& message, std::size_t line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// The registry lives behind a unique_ptr because the invariant set and
/// action table hold pointers into it: keeping its address stable makes the
/// whole struct safely movable.
struct ParsedScenario {
  std::unique_ptr<config::ComponentRegistry> registry;
  std::unique_ptr<config::InvariantSet> invariants;
  std::unique_ptr<actions::ActionTable> actions;
  std::optional<config::Configuration> source;
  std::optional<config::Configuration> target;
};

ParsedScenario parse_scenario(std::istream& input);
ParsedScenario parse_scenario_text(std::string_view text);

}  // namespace sa::core
