// Multi-process supervisor for the distributed (socket) deployment.
//
// The paper evaluated its protocol on real hosts (iPAQ / Toughbook over
// wireless); this module reproduces that deployment shape on one machine:
// the manager and each agent run as separate OS processes (`sa_node`
// binaries) talking over SocketTransport on 127.0.0.1, and the supervisor
//
//   * writes the JSON topology file and spawns every node,
//   * runs the endpoint exchange (each node binds an ephemeral port and
//     reports it in a `<name>.port` file; the supervisor collects them into
//     `endpoints.json`, which every node polls for before sending),
//   * executes FaultPlan Crash windows as REAL process faults: `kill -9` at
//     the window open, re-exec at the window close (the respawned agent
//     recovers §4.4-style from its on-disk journal),
//   * reaps children (no zombies), propagates nonzero exits, and collects
//     per-node artifacts: result.json, state files, and wall-clock-stamped
//     trace files merged into one cross-process conformance trace.
//
// The high-level entry point run_distributed_paper() drives the paper's §5
// scenario (1 manager + 3 agents) end to end and returns everything the
// campaign oracles need; sa_run --distributed and the socket fuzz backend
// are thin wrappers around it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <sys/types.h>
#include <vector>

#include "runtime/time.hpp"
#include "runtime/transport.hpp"

namespace sa::core {

/// Low-level child-process lifecycle: spawn / kill / reap. Used directly by
/// tests; run_distributed_paper() builds on it.
class Supervisor {
 public:
  ~Supervisor();  ///< SIGKILLs and reaps anything still alive

  struct Exit {
    pid_t pid = -1;
    std::string name;
    bool signaled = false;
    int code = 0;  ///< exit status, or the terminating signal when signaled
  };

  /// fork/execs `program` with `args` (argv[1..]), stdout+stderr appended to
  /// `log_path`. Returns the child pid; throws std::runtime_error when the
  /// fork fails (an exec failure surfaces as exit code 127).
  pid_t spawn(const std::string& program, const std::vector<std::string>& args,
              const std::string& name, const std::string& log_path);

  /// SIGKILL. True if the signal was delivered to a live child of ours.
  bool kill9(pid_t pid);

  /// Nonblocking reap of every exited child (waitpid WNOHANG loop); each
  /// exit is returned exactly once.
  std::vector<Exit> poll_exits();

  /// True while the child exists and has not been reaped.
  bool alive(pid_t pid) const;

  /// Blocks until `pid` exits (reaping it) or `timeout` real time passes.
  /// Returns the Exit, or std::nullopt-like sentinel pid=-1 on timeout.
  Exit wait_exit(pid_t pid, runtime::Time timeout);

  /// SIGTERM every live child, wait `grace` for each, then SIGKILL + reap
  /// stragglers. Returns all exits (forced ones report signaled SIGKILL).
  std::vector<Exit> terminate_all(runtime::Time grace);

  std::size_t live_count() const { return live_.size(); }

 private:
  std::map<pid_t, std::string> live_;  ///< pid -> node name
};

/// One Crash window translated to supervisor actions: kill -9 the named node
/// `start` after the run begins, re-exec it at `end`.
struct CrashWindow {
  runtime::Time start = 0;
  runtime::Time end = 0;
  std::string node;
};

struct DistributedOptions {
  std::uint64_t seed = 42;
  /// Path to the sa_node binary; empty = discover (SA_NODE env var, then
  /// next to /proc/self/exe).
  std::string sa_node;
  /// Working directory for topology/artifacts; empty = fresh mkdtemp.
  std::string workdir;
  /// Scenario forwarded to the manager; "paper" is the only distributed one.
  std::string scenario = "paper";
  /// FaultPlan JSON forwarded verbatim to every node (Crash events inside it
  /// are ignored by nodes — list them in `crashes` instead). Empty = no plan.
  std::string plan_json;
  std::vector<CrashWindow> crashes;
  /// Manager mutation-gate name (check::to_string(ManagerFault)); empty = none.
  std::string manager_fault;
  /// Cap on the manager process's lifetime (real time).
  runtime::Time max_wait = runtime::seconds(60);
  bool keep_workdir = false;
};

struct DistributedReport {
  /// Infrastructure verdict: spawns, exits, timeouts, artifact parsing. A
  /// run can be infra-clean and still violate protocol oracles (and vice
  /// versa); `infra_errors` feed the campaign as "supervisor:" violations.
  bool infra_ok = true;
  std::vector<std::string> infra_errors;

  // --- manager's result.json -------------------------------------------------
  std::string outcome;  ///< to_string(AdaptationOutcome), "" when missing
  std::uint64_t final_config_bits = 0;
  std::vector<std::string> committed_actions;
  std::uint64_t steps_committed = 0;
  std::uint64_t step_failures = 0;
  runtime::Time total_blocked = 0;

  /// name -> AgentState string from each agent's shutdown state file.
  std::map<std::string, std::string> agent_states;
  /// name -> recovery journal replays observed (respawn evidence).
  std::map<std::string, std::uint64_t> agent_recoveries;

  /// All nodes' delivered/dropped control messages, decoded and merged by
  /// wall-clock epoch — the input to the cross-process conformance check.
  std::vector<runtime::TraceEntry> merged_trace;

  std::uint64_t kills = 0;     ///< crash-window SIGKILLs executed
  std::uint64_t respawns = 0;  ///< crash-window re-execs executed
  double wall_ms = 0.0;
  std::string workdir;  ///< retained when keep_workdir or infra errors
};

/// Locates the sa_node binary: $SA_NODE, else "sa_node" beside the calling
/// executable, else "" (caller must error out).
std::string find_sa_node();

/// Node names used by the distributed paper scenario, in topology order:
/// {"manager", "server-agent", "handheld-agent", "laptop-agent"}. The name's
/// index IS its NodeId; agents map to processes 0..2 in order.
const std::vector<std::string>& distributed_paper_nodes();

/// Runs the paper's 1-manager/3-agent scenario as real processes end to end.
DistributedReport run_distributed_paper(const DistributedOptions& options);

}  // namespace sa::core
