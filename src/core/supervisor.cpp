#include "core/supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "proto/wire_codecs.hpp"
#include "runtime/socket_runtime.hpp"  // wall_clock_us
#include "runtime/wire.hpp"
#include "util/json.hpp"

namespace sa::core {

namespace {

namespace fs = std::filesystem;

void sleep_us(runtime::Time t) { std::this_thread::sleep_for(std::chrono::microseconds(t)); }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Write-then-rename so concurrent readers never observe a partial file.
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << content;
  }
  std::rename(tmp.c_str(), path.c_str());
}

}  // namespace

Supervisor::~Supervisor() {
  for (const auto& [pid, name] : live_) ::kill(pid, SIGKILL);
  for (const auto& [pid, name] : live_) ::waitpid(pid, nullptr, 0);
  live_.clear();
}

pid_t Supervisor::spawn(const std::string& program, const std::vector<std::string>& args,
                        const std::string& name, const std::string& log_path) {
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("supervisor: fork failed: " + std::string(strerror(errno)));
  if (pid == 0) {
    const int log = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log >= 0) {
      ::dup2(log, STDOUT_FILENO);
      ::dup2(log, STDERR_FILENO);
      ::close(log);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(program.c_str()));
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(program.c_str(), argv.data());
    _exit(127);
  }
  live_.emplace(pid, name);
  return pid;
}

bool Supervisor::kill9(pid_t pid) {
  if (!live_.contains(pid)) return false;
  return ::kill(pid, SIGKILL) == 0;
}

std::vector<Supervisor::Exit> Supervisor::poll_exits() {
  // Per-pid waits, NOT waitpid(-1): several Supervisors may coexist in one
  // process (sa_fuzz --backend socket --threads N), and a wildcard wait
  // would reap a sibling supervisor's children.
  std::vector<Exit> exits;
  for (auto it = live_.begin(); it != live_.end();) {
    int status = 0;
    const pid_t pid = ::waitpid(it->first, &status, WNOHANG);
    if (pid != it->first) {
      ++it;
      continue;
    }
    Exit exit;
    exit.pid = pid;
    exit.name = it->second;
    if (WIFSIGNALED(status)) {
      exit.signaled = true;
      exit.code = WTERMSIG(status);
    } else {
      exit.code = WEXITSTATUS(status);
    }
    exits.push_back(std::move(exit));
    it = live_.erase(it);
  }
  return exits;
}

bool Supervisor::alive(pid_t pid) const { return live_.contains(pid); }

Supervisor::Exit Supervisor::wait_exit(pid_t pid, runtime::Time timeout) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::microseconds(timeout);
  while (live_.contains(pid)) {
    for (Exit& exit : poll_exits()) {
      if (exit.pid == pid) return exit;
      // Someone else exited; their Exit is lost to this caller by design
      // (wait_exit is for single-child tests; the run loop uses poll_exits).
    }
    if (std::chrono::steady_clock::now() >= deadline) return Exit{};
    sleep_us(runtime::ms(2));
  }
  return Exit{};
}

std::vector<Supervisor::Exit> Supervisor::terminate_all(runtime::Time grace) {
  for (const auto& [pid, name] : live_) ::kill(pid, SIGTERM);
  std::vector<Exit> exits;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::microseconds(grace);
  while (!live_.empty() && std::chrono::steady_clock::now() < deadline) {
    for (Exit& exit : poll_exits()) exits.push_back(std::move(exit));
    if (!live_.empty()) sleep_us(runtime::ms(2));
  }
  if (!live_.empty()) {
    for (const auto& [pid, name] : live_) ::kill(pid, SIGKILL);
    while (!live_.empty()) {
      for (Exit& exit : poll_exits()) exits.push_back(std::move(exit));
      if (!live_.empty()) sleep_us(runtime::ms(2));
    }
  }
  return exits;
}

std::string find_sa_node() {
  if (const char* env = std::getenv("SA_NODE"); env != nullptr && *env != '\0') return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    const fs::path candidate = fs::path(buf).parent_path() / "sa_node";
    std::error_code ec;
    if (fs::exists(candidate, ec)) return candidate.string();
  }
  return {};
}

const std::vector<std::string>& distributed_paper_nodes() {
  static const std::vector<std::string> nodes{"manager", "server-agent", "handheld-agent",
                                              "laptop-agent"};
  return nodes;
}

namespace {

std::string topology_json() {
  std::ostringstream out;
  out << "{\n  \"nodes\": [\n";
  const auto& names = distributed_paper_nodes();
  for (std::size_t i = 0; i < names.size(); ++i) {
    out << "    {\"name\": \"" << names[i] << "\", ";
    if (i == 0) {
      out << "\"role\": \"manager\"}";
    } else {
      // Stage assignment mirrors the in-process campaign: the server (the
      // upstream sender) quiesces in stage 0, both clients in stage 1.
      out << "\"role\": \"agent\", \"process\": " << (i - 1) << ", \"stage\": "
          << (i == 1 ? 0 : 1) << '}';
    }
    out << (i + 1 < names.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

struct NodeProc {
  std::string name;
  pid_t pid = -1;
  std::vector<std::string> args;
  std::string log_path;
};

/// Parses one trace JSONL line into a TraceEntry, re-decoding the embedded
/// wire frame so conformance checking sees the typed message.
bool parse_trace_line(const std::string& line, runtime::TraceEntry& entry,
                      std::string& error) {
  if (line.empty()) return false;
  util::JsonValue value;
  try {
    value = util::parse_json(line, "trace line");
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  const util::JsonValue* t = value.find("t");
  const util::JsonValue* from = value.find("from");
  const util::JsonValue* to = value.find("to");
  const util::JsonValue* type = value.find("type");
  const util::JsonValue* delivered = value.find("delivered");
  const util::JsonValue* frame_hex = value.find("frame");
  if (t == nullptr || from == nullptr || to == nullptr || type == nullptr ||
      delivered == nullptr) {
    error = "trace line missing fields";
    return false;
  }
  entry.time = static_cast<runtime::Time>(t->number);
  entry.from = static_cast<runtime::NodeId>(from->number);
  entry.to = static_cast<runtime::NodeId>(to->number);
  entry.type = type->string;
  entry.delivered = delivered->boolean;
  entry.message = nullptr;
  if (frame_hex != nullptr && !frame_hex->string.empty()) {
    try {
      const std::vector<std::uint8_t> bytes = runtime::from_hex(frame_hex->string);
      entry.message = runtime::decode_frame(bytes.data(), bytes.size()).message;
    } catch (const std::exception& e) {
      error = e.what();
      return false;
    }
  }
  return true;
}

}  // namespace

DistributedReport run_distributed_paper(const DistributedOptions& options) {
  proto::register_wire_codecs();  // trace merge re-decodes frames

  DistributedReport report;
  const auto t_begin = std::chrono::steady_clock::now();
  const auto infra = [&report](const std::string& what) {
    report.infra_ok = false;
    report.infra_errors.push_back(what);
  };

  // --- workdir + inputs ------------------------------------------------------
  std::string workdir = options.workdir;
  if (workdir.empty()) {
    char tmpl[] = "/tmp/sa_dist.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      infra("supervisor: mkdtemp failed");
      return report;
    }
    workdir = tmpl;
  } else {
    std::error_code ec;
    fs::create_directories(workdir, ec);
  }
  report.workdir = workdir;

  const std::string sa_node = options.sa_node.empty() ? find_sa_node() : options.sa_node;
  if (sa_node.empty()) {
    infra("supervisor: sa_node binary not found (set $SA_NODE)");
    return report;
  }

  write_file_atomic(workdir + "/topology.json", topology_json());
  if (!options.plan_json.empty()) {
    write_file_atomic(workdir + "/plan.json", options.plan_json);
  }

  // --- spawn -----------------------------------------------------------------
  Supervisor supervisor;
  const auto& names = distributed_paper_nodes();
  std::map<std::string, NodeProc> procs;
  for (const std::string& name : names) {
    NodeProc proc;
    proc.name = name;
    proc.log_path = workdir + "/" + name + ".log";
    proc.args = {"--topology", workdir + "/topology.json", "--node", name,
                 "--workdir", workdir,
                 "--seed", std::to_string(options.seed),
                 "--scenario", options.scenario,
                 "--max-wait-ms", std::to_string(options.max_wait / 1000)};
    if (!options.plan_json.empty()) {
      proc.args.insert(proc.args.end(), {"--plan", workdir + "/plan.json"});
    }
    if (name == "manager" && !options.manager_fault.empty()) {
      proc.args.insert(proc.args.end(), {"--fault", options.manager_fault});
    }
    try {
      proc.pid = supervisor.spawn(sa_node, proc.args, name, proc.log_path);
    } catch (const std::exception& e) {
      infra(std::string("supervisor: ") + e.what());
      return report;
    }
    procs.emplace(name, std::move(proc));
  }

  // --- endpoint exchange -----------------------------------------------------
  // Every node binds an ephemeral port and writes <name>.port; once all have
  // reported, endpoints.json publishes the full address table and the nodes
  // proceed. A node dying during the exchange fails the run immediately.
  {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(15);
    bool all = false;
    while (!all) {
      all = true;
      for (const std::string& name : names) {
        if (read_file(workdir + "/" + name + ".port").empty()) {
          all = false;
          break;
        }
      }
      if (all) break;
      for (const Supervisor::Exit& exit : supervisor.poll_exits()) {
        infra("supervisor: node " + exit.name + " died during endpoint exchange (" +
              (exit.signaled ? "signal " : "exit ") + std::to_string(exit.code) + ")");
      }
      if (!report.infra_ok || std::chrono::steady_clock::now() >= deadline) {
        if (report.infra_ok) infra("supervisor: endpoint exchange timed out");
        return report;
      }
      sleep_us(runtime::ms(2));
    }
    std::ostringstream endpoints;
    endpoints << "{\n";
    for (std::size_t i = 0; i < names.size(); ++i) {
      std::string port = read_file(workdir + "/" + names[i] + ".port");
      port.erase(std::remove_if(port.begin(), port.end(),
                                [](unsigned char c) { return std::isspace(c); }),
                 port.end());
      endpoints << "  \"" << names[i] << "\": " << port
                << (i + 1 < names.size() ? ",\n" : "\n");
    }
    endpoints << "}\n";
    write_file_atomic(workdir + "/endpoints.json", endpoints.str());
  }

  // --- run loop: crash windows + manager completion --------------------------
  // t0 anchors plan-relative times. Nodes arm their own (in-transport) fault
  // windows relative to when they observe endpoints.json; the supervisor's
  // crash clock is necessarily a few ms offset from each node's — fault
  // windows are stochastic stress, not precision events, and the oracles
  // never depend on exact timing.
  struct CrashAction {
    runtime::Time at = 0;
    bool kill = false;  ///< true = SIGKILL, false = respawn
    std::string node;
  };
  std::vector<CrashAction> actions;
  for (const CrashWindow& window : options.crashes) {
    actions.push_back({window.start, true, window.node});
    actions.push_back({window.end, false, window.node});
  }
  std::stable_sort(actions.begin(), actions.end(),
                   [](const CrashAction& a, const CrashAction& b) { return a.at < b.at; });

  const auto t0 = std::chrono::steady_clock::now();
  const auto hard_deadline = t0 + std::chrono::microseconds(options.max_wait) +
                             std::chrono::seconds(15);
  std::size_t next_action = 0;
  bool manager_done = false;
  while (!manager_done) {
    const runtime::Time elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                                      std::chrono::steady_clock::now() - t0)
                                      .count();
    while (next_action < actions.size() && actions[next_action].at <= elapsed) {
      const CrashAction& action = actions[next_action++];
      NodeProc& proc = procs.at(action.node);
      if (action.kill) {
        if (supervisor.kill9(proc.pid)) ++report.kills;
      } else if (!supervisor.alive(proc.pid)) {
        try {
          proc.pid = supervisor.spawn(sa_node, proc.args, proc.name, proc.log_path);
          ++report.respawns;
        } catch (const std::exception& e) {
          infra(std::string("supervisor: respawn failed: ") + e.what());
        }
      }
    }

    for (const Supervisor::Exit& exit : supervisor.poll_exits()) {
      if (exit.name == "manager") {
        manager_done = true;
        if (exit.signaled || exit.code != 0) {
          infra(std::string("supervisor: manager exited abnormally (") +
                (exit.signaled ? "signal " : "exit ") + std::to_string(exit.code) + ")");
        }
      } else if (exit.signaled && exit.code == SIGKILL) {
        // Expected: our own crash-window kill. The respawn action revives it.
      } else {
        infra("supervisor: node " + exit.name + " exited unexpectedly (" +
              (exit.signaled ? "signal " : "exit ") + std::to_string(exit.code) + ")");
      }
    }

    if (std::chrono::steady_clock::now() >= hard_deadline) {
      infra("supervisor: manager did not exit within the deadline");
      break;
    }
    if (!manager_done) sleep_us(runtime::ms(2));
  }

  // --- revive crash victims the run outlived ---------------------------------
  // A crash window can still be open when the manager terminates (e.g. it
  // gave up on the dead agent); its respawn action never fired. Re-exec such
  // nodes now so every agent performs §4.4 journal recovery and can write its
  // terminal state file on the SIGTERM below.
  {
    bool revived = false;
    for (const CrashWindow& window : options.crashes) {
      NodeProc& proc = procs.at(window.node);
      if (supervisor.alive(proc.pid)) continue;
      try {
        proc.pid = supervisor.spawn(sa_node, proc.args, proc.name, proc.log_path);
        ++report.respawns;
        revived = true;
      } catch (const std::exception& e) {
        infra(std::string("supervisor: respawn failed: ") + e.what());
      }
    }
    // Let revived nodes get past startup (bind, journal restore, SIGTERM
    // handler installation) before the shutdown signal lands.
    if (revived) sleep_us(runtime::ms(250));
  }

  // --- shutdown agents; they write state + trace files on SIGTERM ------------
  for (const Supervisor::Exit& exit : supervisor.terminate_all(runtime::seconds(5))) {
    if (exit.name == "manager") continue;
    if (exit.signaled && exit.code == SIGKILL) {
      infra("supervisor: node " + exit.name + " ignored SIGTERM and was killed");
    } else if (!exit.signaled && exit.code != 0) {
      infra("supervisor: node " + exit.name + " exited with status " +
            std::to_string(exit.code) + " on shutdown");
    }
  }

  // --- collect artifacts -----------------------------------------------------
  const std::string result_text = read_file(workdir + "/result.json");
  if (result_text.empty()) {
    infra("supervisor: manager produced no result.json");
  } else {
    try {
      const util::JsonValue result = util::parse_json(result_text, "result.json");
      if (const auto* v = result.find("outcome")) report.outcome = v->string;
      if (const auto* v = result.find("final_config_bits")) {
        report.final_config_bits = static_cast<std::uint64_t>(v->number);
      }
      if (const auto* v = result.find("committed_actions")) {
        for (const util::JsonValue& a : v->array) report.committed_actions.push_back(a.string);
      }
      if (const auto* v = result.find("steps_committed")) {
        report.steps_committed = static_cast<std::uint64_t>(v->number);
      }
      if (const auto* v = result.find("step_failures")) {
        report.step_failures = static_cast<std::uint64_t>(v->number);
      }
      if (const auto* v = result.find("total_blocked_us")) {
        report.total_blocked = static_cast<runtime::Time>(v->number);
      }
    } catch (const std::exception& e) {
      infra(std::string("supervisor: malformed result.json: ") + e.what());
    }
  }

  for (std::size_t i = 1; i < names.size(); ++i) {
    const std::string text = read_file(workdir + "/" + names[i] + ".state.json");
    if (text.empty()) {
      infra("supervisor: agent " + names[i] + " produced no state file");
      continue;
    }
    try {
      const util::JsonValue state = util::parse_json(text, "agent state");
      if (const auto* v = state.find("state")) report.agent_states[names[i]] = v->string;
      if (const auto* v = state.find("recoveries")) {
        report.agent_recoveries[names[i]] = static_cast<std::uint64_t>(v->number);
      }
    } catch (const std::exception& e) {
      infra("supervisor: malformed state file for " + names[i] + ": " + e.what());
    }
  }

  // --- merge traces by wall-clock epoch --------------------------------------
  for (const std::string& name : names) {
    std::ifstream in(workdir + "/" + name + ".trace.jsonl");
    std::string line;
    std::uint64_t bad_lines = 0;
    while (std::getline(in, line)) {
      runtime::TraceEntry entry;
      std::string error;
      if (parse_trace_line(line, entry, error)) {
        report.merged_trace.push_back(std::move(entry));
      } else if (!line.empty()) {
        ++bad_lines;
      }
    }
    if (bad_lines != 0) {
      infra("supervisor: " + std::to_string(bad_lines) + " unparseable trace lines from " +
            name);
    }
  }
  std::stable_sort(report.merged_trace.begin(), report.merged_trace.end(),
                   [](const runtime::TraceEntry& a, const runtime::TraceEntry& b) {
                     return a.time < b.time;
                   });

  report.wall_ms = std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
                       std::chrono::steady_clock::now() - t_begin)
                       .count();

  if (!options.keep_workdir && report.infra_ok) {
    std::error_code ec;
    fs::remove_all(workdir, ec);
    report.workdir.clear();
  }
  return report;
}

}  // namespace sa::core
