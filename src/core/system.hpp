// SafeAdaptationSystem: the top-level facade a downstream user programs
// against.
//
// It bundles the analysis-phase data structure P = (S, I, T, R, A) with the
// runtime machinery (simulator, network, manager, agents):
//
//   SafeAdaptationSystem system;
//   system.registry().add("E1", 0);
//   ...
//   system.add_invariant("security", "one(E1, E2)");
//   system.add_action("A1", {"E1"}, {"E2"}, 10);
//   system.attach_process(0, server_process, /*stage=*/0);
//   system.finalize();
//   system.set_current_configuration(source);
//   auto result = system.adapt_and_wait(target);
//
// The facade owns the simulator so single-threaded deterministic runs are the
// default; callers needing to interleave application traffic drive
// simulator() themselves and use the asynchronous request_adaptation().
#pragma once

#include <memory>
#include <optional>

#include "proto/agent.hpp"
#include "proto/manager.hpp"
#include "sim/network.hpp"

namespace sa::core {

struct SystemConfig {
  std::uint64_t seed = 42;
  sim::ChannelConfig control_channel{sim::ms(2), sim::us(500), 0.0, true};
  proto::ManagerConfig manager;
  proto::AgentConfig agent;
};

class SafeAdaptationSystem {
 public:
  explicit SafeAdaptationSystem(SystemConfig config = {});
  ~SafeAdaptationSystem();

  SafeAdaptationSystem(const SafeAdaptationSystem&) = delete;
  SafeAdaptationSystem& operator=(const SafeAdaptationSystem&) = delete;

  // --- analysis phase (before finalize) -------------------------------------
  config::ComponentRegistry& registry() { return registry_; }
  void add_invariant(std::string name, std::string_view expression);
  actions::ActionId add_action(std::string name, std::vector<std::string> removes,
                               std::vector<std::string> adds, double cost,
                               std::string description = "");

  /// Attaches the adaptable process `target` as the owner of `process`.
  /// Creates the agent node and control channels at finalize() time.
  void attach_process(config::ProcessId process, proto::AdaptableProcess& target, int stage = 0);

  /// Builds the manager, agents, and control links. Invariants, actions and
  /// processes are frozen afterwards.
  void finalize();
  bool finalized() const { return manager_ != nullptr; }

  // --- runtime ----------------------------------------------------------------
  void set_current_configuration(config::Configuration config);
  const config::Configuration& current_configuration() const;

  /// Asynchronous request; completion handler fires from simulator context.
  void request_adaptation(config::Configuration target, proto::AdaptationManager::CompletionHandler handler);

  /// Convenience: requests and runs the simulator until the request
  /// terminates (bounded by `max_events` as a runaway guard).
  proto::AdaptationResult adapt_and_wait(config::Configuration target,
                                         std::size_t max_events = 2'000'000);

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return network_; }
  proto::AdaptationManager& manager();
  const config::InvariantSet& invariants() const { return invariants_; }
  const actions::ActionTable& action_table() const { return actions_; }
  proto::AdaptationAgent& agent(config::ProcessId process);
  sim::NodeId manager_node() const { return manager_node_; }
  sim::NodeId agent_node(config::ProcessId process) const;

 private:
  SystemConfig config_;
  sim::Simulator sim_;
  sim::Network network_;
  config::ComponentRegistry registry_;
  config::InvariantSet invariants_;
  actions::ActionTable actions_;

  struct PendingProcess {
    config::ProcessId process;
    proto::AdaptableProcess* target;
    int stage;
  };
  std::vector<PendingProcess> pending_;

  sim::NodeId manager_node_ = 0;
  std::unique_ptr<proto::AdaptationManager> manager_;
  std::map<config::ProcessId, sim::NodeId> agent_nodes_;
  std::map<config::ProcessId, std::unique_ptr<proto::AdaptationAgent>> agents_;
};

}  // namespace sa::core
