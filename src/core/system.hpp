// SafeAdaptationSystem: the top-level facade a downstream user programs
// against.
//
// It bundles the analysis-phase data structure P = (S, I, T, R, A) with the
// runtime machinery (simulator, network, manager, agents):
//
//   SafeAdaptationSystem system;
//   system.registry().add("E1", 0);
//   ...
//   system.add_invariant("security", "one(E1, E2)");
//   system.add_action("A1", {"E1"}, {"E2"}, 10);
//   system.attach_process(0, server_process, /*stage=*/0);
//   system.finalize();
//   system.set_current_configuration(source);
//   auto result = system.adapt_and_wait(target);
//
// The facade owns the simulator so single-threaded deterministic runs are the
// default; callers needing to interleave application traffic drive
// simulator() themselves and use the asynchronous request_adaptation().
#pragma once

#include <memory>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "proto/agent.hpp"
#include "proto/manager.hpp"
#include "runtime/runtime.hpp"

namespace sa::sim {
class Simulator;
class Network;
}  // namespace sa::sim

namespace sa::runtime {
class SimRuntime;
}  // namespace sa::runtime

namespace sa::core {

struct SystemConfig {
  std::uint64_t seed = 42;
  runtime::ChannelConfig control_channel{runtime::ms(2), runtime::us(500), 0.0, true};
  proto::ManagerConfig manager;
  proto::AgentConfig agent;
};

class SafeAdaptationSystem {
 public:
  /// Default: owns a deterministic SimRuntime seeded from `config.seed`.
  explicit SafeAdaptationSystem(SystemConfig config = {});
  /// Runs over a caller-owned runtime backend (e.g. ThreadedRuntime); the
  /// runtime must outlive the system.
  explicit SafeAdaptationSystem(runtime::Runtime& rt, SystemConfig config = {});
  ~SafeAdaptationSystem();

  SafeAdaptationSystem(const SafeAdaptationSystem&) = delete;
  SafeAdaptationSystem& operator=(const SafeAdaptationSystem&) = delete;

  // --- analysis phase (before finalize) -------------------------------------
  config::ComponentRegistry& registry() { return registry_; }
  void add_invariant(std::string name, std::string_view expression);
  actions::ActionId add_action(std::string name, std::vector<std::string> removes,
                               std::vector<std::string> adds, double cost,
                               std::string description = "");

  /// Attaches the adaptable process `target` as the owner of `process`.
  /// Creates the agent node and control channels at finalize() time.
  void attach_process(config::ProcessId process, proto::AdaptableProcess& target, int stage = 0);

  /// Builds the manager, agents, and control links. Invariants, actions and
  /// processes are frozen afterwards.
  void finalize();
  bool finalized() const { return manager_ != nullptr; }

  // --- runtime ----------------------------------------------------------------
  void set_current_configuration(config::Configuration config);
  config::Configuration current_configuration() const;

  /// Asynchronous request; completion handler fires from simulator context.
  void request_adaptation(config::Configuration target, proto::AdaptationManager::CompletionHandler handler);

  /// Convenience: requests and drives the runtime until the request
  /// terminates (`max_events` bounds simulated backends as a runaway guard;
  /// the threaded backend uses its real-time cap instead).
  proto::AdaptationResult adapt_and_wait(config::Configuration target,
                                         std::size_t max_events = 2'000'000);

  runtime::Runtime& runtime() { return *runtime_; }

  // --- observability ----------------------------------------------------------
  /// Protocol-aware trace recorder wired through the manager, every agent,
  /// and the transport at finalize() time. Disabled by default; call
  /// `tracer().set_enabled(true)` (before or after finalize) to capture
  /// events, then hand the recorder to an obs::export function.
  obs::TraceRecorder& tracer() { return tracer_; }
  /// Protocol metrics (latency/blocking histograms, message and outcome
  /// counters). Always on — counters are cheap — and exportable with
  /// obs::write_prometheus.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Deterministic-backend escape hatches; throw std::logic_error when the
  /// system runs over a non-simulated runtime.
  sim::Simulator& simulator();
  sim::Network& network();
  proto::AdaptationManager& manager();
  const config::InvariantSet& invariants() const { return invariants_; }
  const actions::ActionTable& action_table() const { return actions_; }
  proto::AdaptationAgent& agent(config::ProcessId process);
  runtime::NodeId manager_node() const { return manager_node_; }
  runtime::NodeId agent_node(config::ProcessId process) const;

 private:
  SystemConfig config_;
  std::unique_ptr<runtime::SimRuntime> owned_runtime_;  ///< default backend
  runtime::Runtime* runtime_;
  config::ComponentRegistry registry_;
  config::InvariantSet invariants_;
  actions::ActionTable actions_;

  /// Declared before the manager/agents (which hold raw pointers into them)
  /// so destruction runs protocol entities first, observability last.
  obs::TraceRecorder tracer_;
  obs::MetricsRegistry metrics_;

  struct PendingProcess {
    config::ProcessId process;
    proto::AdaptableProcess* target;
    int stage;
  };
  std::vector<PendingProcess> pending_;

  runtime::NodeId manager_node_ = 0;
  std::unique_ptr<proto::AdaptationManager> manager_;
  std::map<config::ProcessId, runtime::NodeId> agent_nodes_;
  std::map<config::ProcessId, std::unique_ptr<proto::AdaptationAgent>> agents_;
};

}  // namespace sa::core
