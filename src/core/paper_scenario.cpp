#include "core/paper_scenario.hpp"

#include "core/system.hpp"

namespace sa::core {

void configure_paper_system(SafeAdaptationSystem& system, PaperActionSet action_set) {
  register_paper_components(system.registry());
  system.add_invariant("resource constraint", "one(D1, D2, D3)");
  system.add_invariant("security constraint", "one(E1, E2)");
  system.add_invariant("E1 dependency", "E1 -> (D1 | D2) & D4");
  system.add_invariant("E2 dependency", "E2 -> (D3 | D2) & D5");

  const bool singles = action_set != PaperActionSet::CombinedOnly;
  const bool combined = action_set != PaperActionSet::SinglesOnly;
  if (singles) {
    system.add_action("A1", {"E1"}, {"E2"}, 10, "replace E1 with E2");
    system.add_action("A2", {"D1"}, {"D2"}, 10, "replace D1 with D2");
    system.add_action("A3", {"D1"}, {"D3"}, 10, "replace D1 with D3");
    system.add_action("A4", {"D2"}, {"D3"}, 10, "replace D2 with D3");
    system.add_action("A5", {"D4"}, {"D5"}, 10, "replace D4 with D5");
  }
  if (combined) {
    system.add_action("A6", {"D1", "E1"}, {"D2", "E2"}, 100, "A1 and A2");
    system.add_action("A7", {"D1", "E1"}, {"D3", "E2"}, 100, "A1 and A3");
    system.add_action("A8", {"D2", "E1"}, {"D3", "E2"}, 100, "A1 and A4");
    system.add_action("A9", {"D4", "E1"}, {"D5", "E2"}, 100, "A1 and A5");
    system.add_action("A10", {"D1", "D4"}, {"D2", "D5"}, 50, "A2 and A5");
    system.add_action("A11", {"D1", "D4"}, {"D3", "D5"}, 50, "A3 and A5");
    system.add_action("A12", {"D2", "D4"}, {"D3", "D5"}, 50, "A4 and A5");
    system.add_action("A13", {"D1", "D4", "E1"}, {"D2", "D5", "E2"}, 150, "A1 and A10");
    system.add_action("A14", {"D1", "D4", "E1"}, {"D3", "D5", "E2"}, 150, "A1 and A11");
    system.add_action("A15", {"D2", "D4", "E1"}, {"D3", "D5", "E2"}, 150, "A1 and A12");
  }
  system.add_action("A16", {"D4"}, {}, 10, "remove D4");
  system.add_action("A17", {}, {"D5"}, 10, "insert D5");
}

void register_paper_components(config::ComponentRegistry& registry) {
  registry.add("E1", kServerProcess, "DES 64-bit encoder");
  registry.add("E2", kServerProcess, "DES 128-bit encoder");
  registry.add("D1", kHandheldProcess, "DES 64-bit decoder");
  registry.add("D2", kHandheldProcess, "DES 128/64-bit compatible decoder");
  registry.add("D3", kHandheldProcess, "DES 128-bit decoder");
  registry.add("D4", kLaptopProcess, "DES 64-bit decoder");
  registry.add("D5", kLaptopProcess, "DES 128-bit decoder");
}

void add_paper_invariants(config::InvariantSet& invariants) {
  // "One of the receivers, the hand-held device, allows only one DES decoder
  // in the system at a given time due to computing power constraints."
  invariants.add("resource constraint", "one(D1, D2, D3)");
  // "The sender should have one encoder in the system so that the data is
  // encoded during the adaptation."
  invariants.add("security constraint", "one(E1, E2)");
  // "E1 encoder requires the D1 or D2 decoder to work with the D4 decoder."
  invariants.add("E1 dependency", "E1 -> (D1 | D2) & D4");
  // "E2 encoder requires the D3 or D2 decoder to work with the D5 decoder."
  invariants.add("E2 dependency", "E2 -> (D3 | D2) & D5");
}

void add_paper_actions(actions::ActionTable& table) {
  // Table 2: adaptive actions and corresponding cost (packet delay in ms).
  table.add("A1", {"E1"}, {"E2"}, 10, "replace E1 with E2");
  table.add("A2", {"D1"}, {"D2"}, 10, "replace D1 with D2");
  table.add("A3", {"D1"}, {"D3"}, 10, "replace D1 with D3");
  table.add("A4", {"D2"}, {"D3"}, 10, "replace D2 with D3");
  table.add("A5", {"D4"}, {"D5"}, 10, "replace D4 with D5");
  table.add("A6", {"D1", "E1"}, {"D2", "E2"}, 100, "A1 and A2");
  table.add("A7", {"D1", "E1"}, {"D3", "E2"}, 100, "A1 and A3");
  table.add("A8", {"D2", "E1"}, {"D3", "E2"}, 100, "A1 and A4");
  table.add("A9", {"D4", "E1"}, {"D5", "E2"}, 100, "A1 and A5");
  table.add("A10", {"D1", "D4"}, {"D2", "D5"}, 50, "A2 and A5");
  table.add("A11", {"D1", "D4"}, {"D3", "D5"}, 50, "A3 and A5");
  table.add("A12", {"D2", "D4"}, {"D3", "D5"}, 50, "A4 and A5");
  table.add("A13", {"D1", "D4", "E1"}, {"D2", "D5", "E2"}, 150, "A1 and A10");
  table.add("A14", {"D1", "D4", "E1"}, {"D3", "D5", "E2"}, 150, "A1 and A11");
  table.add("A15", {"D2", "D4", "E1"}, {"D3", "D5", "E2"}, 150, "A1 and A12");
  table.add("A16", {"D4"}, {}, 10, "remove D4");
  table.add("A17", {}, {"D5"}, 10, "insert D5");
}

config::Configuration paper_source(const config::ComponentRegistry& registry) {
  return config::Configuration::from_bit_string("0100101", registry.size());
}

config::Configuration paper_target(const config::ComponentRegistry& registry) {
  return config::Configuration::from_bit_string("1010010", registry.size());
}

proto::FilterFactory paper_filter_factory(crypto::DesKeys keys) {
  return [keys](const std::string& name) -> components::FilterPtr {
    if (name == "E1") return crypto::make_encoder_e1(keys);
    if (name == "E2") return crypto::make_encoder_e2(keys);
    if (name == "D1") return crypto::make_decoder("D1", /*accept64=*/true, /*accept128=*/false, keys);
    if (name == "D2") return crypto::make_decoder("D2", /*accept64=*/true, /*accept128=*/true, keys);
    if (name == "D3") return crypto::make_decoder("D3", /*accept64=*/false, /*accept128=*/true, keys);
    if (name == "D4") return crypto::make_decoder("D4", /*accept64=*/true, /*accept128=*/false, keys);
    if (name == "D5") return crypto::make_decoder("D5", /*accept64=*/false, /*accept128=*/true, keys);
    return nullptr;
  };
}

PaperScenario make_paper_scenario() {
  PaperScenario scenario;
  scenario.registry = std::make_unique<config::ComponentRegistry>();
  register_paper_components(*scenario.registry);
  scenario.invariants = std::make_unique<config::InvariantSet>(*scenario.registry);
  add_paper_invariants(*scenario.invariants);
  scenario.actions = std::make_unique<actions::ActionTable>(*scenario.registry);
  add_paper_actions(*scenario.actions);
  scenario.source = paper_source(*scenario.registry);
  scenario.target = paper_target(*scenario.registry);
  return scenario;
}

}  // namespace sa::core
