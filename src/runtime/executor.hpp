// Executor: deferred task posting with deterministic FIFO semantics — tasks
// begin execution in the order they were posted. The simulator backend maps
// post() onto schedule_after(0), so a posted task runs as a fresh event after
// everything already queued at the current timestamp; the threaded backend
// drains a FIFO queue on its worker pool.
#pragma once

#include <functional>

namespace sa::runtime {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Enqueues `fn`. Tasks start in posting order (FIFO); the call never runs
  /// `fn` synchronously.
  virtual void post(std::function<void()> fn) = 0;
};

}  // namespace sa::runtime
