// Transport: named endpoints connected by directed channels with
// configurable latency, jitter, loss, duplication, and partitions.
//
// This is the abstraction the protocol (manager/agent), the video testbed,
// and the experiment harnesses send messages through. Backends:
// sa::sim::Network (virtual-time discrete-event delivery) and
// ThreadedRuntime's in-process queue transport (real threads, per-endpoint
// FIFO mailboxes).
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/message.hpp"
#include "runtime/time.hpp"

namespace sa::obs {
class TraceRecorder;
class MetricsRegistry;
}  // namespace sa::obs

namespace sa::runtime {

using NodeId = std::uint32_t;

/// A handler invoked when a message reaches an endpoint: (sender, message).
using ReceiveHandler = std::function<void(NodeId, MessagePtr)>;

struct ChannelConfig {
  Time latency = ms(1);     ///< base one-way delay
  Time jitter = 0;          ///< uniform extra delay in [0, jitter]
  double loss_probability = 0.0;
  bool fifo = true;         ///< enforce in-order delivery despite jitter
  /// Probability that an accepted message is delivered twice (retransmission
  /// artifacts); protocol participants must deduplicate.
  double duplicate_probability = 0.0;
  /// Link capacity in bytes/second; 0 = unlimited. Transmissions serialize:
  /// a message must finish its size_bytes()/bandwidth transmission before the
  /// next one starts, so sustained overload builds queueing delay.
  std::uint64_t bytes_per_second = 0;
};

/// Validates a probability-valued fault knob (loss / duplication) before it
/// reaches a channel. NaN and values outside [0, 1] throw
/// std::invalid_argument; 0.0 and 1.0 are accepted. Every transport backend
/// funnels its knobs through this so the sim and threaded transports agree on
/// boundary behavior, and a fuzz campaign cannot silently install a plan
/// whose "30% loss" was actually NaN (NaN compares false everywhere, so a
/// NaN probability would quietly disable the fault).
inline double checked_probability(double p, const char* what) {
  if (std::isnan(p) || p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string(what) + " must be a probability in [0, 1], got " +
                                std::to_string(p));
  }
  return p;
}

/// Validates a duration-valued channel knob (latency / jitter): negative
/// values throw std::invalid_argument.
inline Time checked_duration(Time t, const char* what) {
  if (t < 0) {
    throw std::invalid_argument(std::string(what) + " must be non-negative, got " +
                                std::to_string(t));
  }
  return t;
}

/// Validates every stochastic field of a channel config in one place;
/// backends call this from connect()/link().
inline const ChannelConfig& checked_channel_config(const ChannelConfig& config) {
  checked_duration(config.latency, "channel latency");
  checked_duration(config.jitter, "channel jitter");
  checked_probability(config.loss_probability, "channel loss_probability");
  checked_probability(config.duplicate_probability, "channel duplicate_probability");
  return config;
}

struct ChannelStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_partition = 0;
};

/// Trace record of a delivered (or dropped) message, for protocol tests and
/// conformance checking. `message` keeps the payload alive so checkers can
/// downcast to concrete message types.
struct TraceEntry {
  Time time = 0;
  NodeId from = 0;
  NodeId to = 0;
  std::string type;
  bool delivered = true;
  MessagePtr message;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers an endpoint; `name` appears in traces. Handler may be bound
  /// later via set_handler (endpoints are often created before their owners).
  virtual NodeId add_node(std::string name, ReceiveHandler handler = nullptr) = 0;
  /// Rebinds (or, with nullptr, detaches) the endpoint's receive handler.
  /// Detaching is a synchronization point: it must not return while a
  /// delivery is mid-handler on another thread, so a driver destructor that
  /// detaches first can safely free the object the handler captured.
  /// Detaching from inside the endpoint's own handler is undefined.
  virtual void set_handler(NodeId node, ReceiveHandler handler) = 0;
  virtual const std::string& node_name(NodeId node) const = 0;
  virtual std::size_t node_count() const = 0;

  /// Creates (or reconfigures) the directed channel from -> to.
  virtual void connect(NodeId from, NodeId to, ChannelConfig config = {}) = 0;
  /// Both directions with the same config.
  virtual void connect_bidirectional(NodeId a, NodeId b, ChannelConfig config = {}) = 0;
  virtual bool has_channel(NodeId from, NodeId to) const = 0;

  /// Sends over the from->to channel; throws std::out_of_range when no such
  /// channel exists. Returns false if the channel dropped the message.
  virtual bool send(NodeId from, NodeId to, MessagePtr message) = 0;

  // --- fault-injection knobs -------------------------------------------------
  virtual void partition_node(NodeId node, bool partitioned) = 0;
  virtual void partition_pair(NodeId a, NodeId b, bool partitioned) = 0;
  virtual void set_loss(NodeId from, NodeId to, double probability) = 0;

  virtual ChannelStats channel_stats(NodeId from, NodeId to) const = 0;

  /// Enables trace recording; entries accumulate in trace(). Under the
  /// threaded backend, read trace() only once the system is quiescent.
  virtual void set_tracing(bool enabled) = 0;
  virtual const std::vector<TraceEntry>& trace() const = 0;
  virtual void clear_trace() = 0;

  /// Wires the observability layer into this transport: every send / deliver
  /// / drop / duplicate becomes a typed event (when the recorder is enabled)
  /// and a labeled sa_messages_total increment. Null pointers detach. The
  /// default does nothing so transports without instrumentation keep working.
  virtual void set_observer(obs::TraceRecorder* /*recorder*/, obs::MetricsRegistry* /*metrics*/) {}
};

}  // namespace sa::runtime
