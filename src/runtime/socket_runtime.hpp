// SocketRuntime: the distributed backend. Same Runtime surface the simulator
// and ThreadedRuntime present, but the Transport really crosses process
// boundaries over 127.0.0.1 sockets — this is the backend `sa_node` runs,
// one process per protocol participant, reproducing the paper's testbed
// shape (manager and agents on separate hosts).
//
//   * SocketTransport — one UDP socket + one TCP listener per LOCAL node.
//     Control messages travel as single UDP datagrams (wire.hpp frames);
//     frames above `max_datagram` fall back to a length-prefixed one-shot
//     TCP connection. A single receiver thread polls every local fd and
//     invokes handlers directly, so deliveries to one endpoint are
//     serialized exactly like the other backends.
//
//     FIFO across the wire: each sender stamps frames with a per-(from,to)
//     sequence number and a per-process-lifetime `incarnation`; the receiver
//     delivers only frames that advance the (incarnation, seq) watermark.
//     Duplicates and late reorders are dropped — indistinguishable from
//     loss, which the protocol's retransmission machinery already survives —
//     and a respawned sender's fresh incarnation resets the watermark, so
//     `kill -9` + re-exec does not mute the channel.
//
//     Fault knobs (partition_node / partition_pair / set_loss, plus the
//     campaign's set_extra_loss / set_extra_duplication) are implemented
//     natively under the transport mutex: FaultPlan partitions become
//     in-transport drops on BOTH sides of the cut (each process arms its own
//     windows), no iptables required. The FaultyTransport decorator is
//     single-threaded by design and must NOT be layered on this backend.
//
//     ChannelConfig latency/jitter/bandwidth knobs are accepted but not
//     simulated — the loopback is the real link; loss/duplication knobs are
//     honored.
//
//   * SocketClock — ThreadedClock plus an atomic skew factor, so FaultPlan
//     TimerSkew windows work without the (single-threaded) FaultyClock.
//
//   * Trace entries are stamped with CLOCK_REALTIME microseconds, not
//     steady-clock-since-start: the supervisor merges per-process trace
//     files by wall-clock epoch into one cross-process conformance trace.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"
#include "runtime/threaded_runtime.hpp"
#include "util/rng.hpp"

namespace sa::runtime {

/// CLOCK_REALTIME in microseconds since the Unix epoch — the timestamp
/// domain of cross-process trace merging.
Time wall_clock_us();

struct SocketEndpoint {
  std::string name;
  /// UDP + TCP port on 127.0.0.1. 0 for a local endpoint means "bind an
  /// ephemeral port" (read it back with local_port); 0 for a remote endpoint
  /// means "unknown yet" (fill in with set_endpoint_port before sending).
  std::uint16_t port = 0;
};

struct SocketTransportOptions {
  /// The global node table; NodeId == index, identical in every process.
  std::vector<SocketEndpoint> topology;
  /// Which topology entries THIS process hosts (binds sockets for).
  std::vector<NodeId> local;
  std::uint64_t seed = 42;
  /// Frames at most this large travel as one UDP datagram; larger ones use
  /// the TCP fallback.
  std::size_t max_datagram = 60'000;
};

class SocketTransport final : public Transport {
 public:
  /// Binds every local endpoint (UDP + TCP listener on the same port number,
  /// retrying ephemeral picks until both protocols bind) and starts the
  /// receiver thread. Throws std::runtime_error when a requested port cannot
  /// be bound.
  explicit SocketTransport(SocketTransportOptions options);
  ~SocketTransport() override;

  // --- Transport interface ---------------------------------------------------
  /// Claims the (local) topology entry named `name`; the returned NodeId is
  /// its topology index. Unknown names throw std::invalid_argument.
  NodeId add_node(std::string name, ReceiveHandler handler = nullptr) override;
  void set_handler(NodeId node, ReceiveHandler handler) override;
  const std::string& node_name(NodeId node) const override;
  std::size_t node_count() const override;

  void connect(NodeId from, NodeId to, ChannelConfig config = {}) override;
  void connect_bidirectional(NodeId a, NodeId b, ChannelConfig config = {}) override;
  bool has_channel(NodeId from, NodeId to) const override;

  bool send(NodeId from, NodeId to, MessagePtr message) override;

  void partition_node(NodeId node, bool partitioned) override;
  void partition_pair(NodeId a, NodeId b, bool partitioned) override;
  void set_loss(NodeId from, NodeId to, double probability) override;

  ChannelStats channel_stats(NodeId from, NodeId to) const override;

  void set_tracing(bool enabled) override;
  /// Only safe to read once the system is quiescent (receiver drained).
  const std::vector<TraceEntry>& trace() const override { return trace_; }
  void clear_trace() override;

  // --- socket specifics ------------------------------------------------------
  /// Actual bound port of a local endpoint.
  std::uint16_t local_port(NodeId node) const;
  /// Fills in a remote endpoint's port learned after construction (the
  /// supervisor's endpoint exchange). Sends to a port-0 endpoint drop.
  void set_endpoint_port(NodeId node, std::uint16_t port);

  /// Campaign knobs: extra loss / duplication applied to every outbound
  /// frame, layered on the per-channel config (FaultPlan Loss / Duplicate).
  void set_extra_loss(double probability);
  void set_extra_duplication(double probability);

  /// Datagrams that failed frame decoding (garbage, truncation, unknown
  /// codec) and frames dropped by the FIFO watermark, respectively.
  std::uint64_t malformed_frames() const { return malformed_frames_.load(); }
  std::uint64_t stale_frames() const { return stale_frames_.load(); }

  /// Joins the receiver thread and closes every socket. Idempotent; later
  /// sends drop (return false).
  void stop();

 private:
  struct ChannelState {
    ChannelConfig config;
    ChannelStats stats;
    bool pair_partitioned = false;
  };
  /// Receiver-side FIFO watermark for one (from, to) ordered channel.
  struct RecvWatermark {
    std::uint64_t incarnation = 0;
    std::uint64_t seq = 0;
  };
  struct LocalSocket {
    NodeId node = 0;
    int udp_fd = -1;
    int tcp_listen_fd = -1;
  };
  /// One accepted TCP fallback connection mid-reassembly.
  struct TcpConn {
    int fd = -1;
    std::vector<std::uint8_t> buf;
  };

  void bind_local(NodeId node);
  void receiver_loop();
  void handle_datagram(const std::uint8_t* data, std::size_t size);
  /// Consumes complete [u32 length][frame] records from a TCP buffer.
  bool drain_tcp_buffer(TcpConn& conn);
  void record(Time time, NodeId from, NodeId to, const std::string& type, bool delivered,
              MessagePtr message);

  SocketTransportOptions options_;
  const std::uint64_t incarnation_;

  mutable std::mutex mutex_;
  std::condition_variable handler_cv_;  ///< signalled when in_handler_ clears
  util::Rng rng_;
  std::vector<ReceiveHandler> handlers_;      ///< by NodeId; non-local stay null
  std::vector<bool> in_handler_;              ///< delivery mid-handler (per node)
  std::map<std::pair<NodeId, NodeId>, ChannelState> channels_;
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> send_seq_;
  std::map<std::pair<NodeId, NodeId>, RecvWatermark> recv_seq_;
  std::vector<bool> node_partitioned_;
  double extra_loss_ = 0.0;
  double extra_duplication_ = 0.0;

  std::vector<LocalSocket> local_sockets_;
  int send_fd_ = -1;      ///< shared unbound UDP socket for outbound datagrams
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe to interrupt poll() on stop
  std::thread receiver_;
  std::atomic<bool> stopping_{false};
  std::once_flag stop_once_;

  std::atomic<bool> tracing_{false};
  std::vector<TraceEntry> trace_;
  std::atomic<std::uint64_t> malformed_frames_{0};
  std::atomic<std::uint64_t> stale_frames_{0};
};

/// ThreadedClock with a FaultPlan TimerSkew knob: every delay scheduled while
/// skew != 1 is scaled. Safe to flip from any thread.
class SocketClock final : public Clock {
 public:
  Time now() const override { return inner_.now(); }
  TimerId schedule_at(Time t, std::function<void()> fn) override;
  TimerId schedule_after(Time delay, std::function<void()> fn) override;
  bool cancel(TimerId id) override { return inner_.cancel(id); }

  void set_skew(double factor) { skew_.store(factor); }
  void stop() { inner_.stop(); }

 private:
  ThreadedClock inner_;
  std::atomic<double> skew_{1.0};
};

struct SocketRuntimeOptions {
  SocketTransportOptions transport;
  std::size_t workers = 2;
  /// wait_until() gives up after this much real time.
  Time wait_cap = seconds(60);
  Time wait_poll_interval = us(200);
};

class SocketRuntime final : public Runtime {
 public:
  explicit SocketRuntime(SocketRuntimeOptions options);
  ~SocketRuntime() override;

  Clock& clock() override { return clock_; }
  Executor& executor() override { return executor_; }
  Transport& transport() override { return transport_; }
  std::string_view backend_name() const override { return "socket"; }

  /// Sleeps; the receiver and timer threads make progress meanwhile.
  void advance(Time duration) override;
  /// Polls `done` until true or the real-time cap expires; `max_events` is
  /// meaningless on this backend and ignored.
  bool wait_until(const std::function<bool()>& done,
                  std::size_t max_events = SIZE_MAX) override;

  SocketClock& socket_clock() { return clock_; }
  SocketTransport& socket_transport() { return transport_; }

  /// Stops timers first (no new protocol actions), then the receiver, then
  /// drains the worker pool. Called by the destructor.
  void shutdown();

 private:
  SocketRuntimeOptions options_;
  SocketClock clock_;
  ThreadedExecutor executor_;
  SocketTransport transport_;
};

}  // namespace sa::runtime
