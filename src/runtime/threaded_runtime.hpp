// ThreadedRuntime: the real-time backend. Runs the same protocol logic the
// simulator runs, but on actual OS threads:
//
//   * Clock     — a steady_clock timer thread firing callbacks in deadline
//                 order (FIFO tie-break on schedule order, like the sim);
//   * Executor  — a worker pool draining one global FIFO task queue, so
//                 tasks *start* in posting order;
//   * Transport — an in-process queue transport: sends compute an arrival
//                 deadline (latency + jitter + bandwidth serialization, with
//                 the same per-channel FIFO clamp as the simulated network),
//                 a timer enqueues the message into the destination
//                 endpoint's mailbox at that deadline, and mailboxes drain
//                 on the worker pool one-at-a-time per endpoint, so each
//                 endpoint's handler runs serialized and in arrival order.
//
// Loss, duplication, and partition injection use the same knobs and the same
// Rng family as the simulated network, so failure experiments port across
// backends unchanged. Entities whose handlers share state across endpoints
// and timers (manager, agents) serialize themselves with their own mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/message_observer.hpp"
#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace sa::runtime {

class ThreadedClock final : public Clock {
 public:
  ThreadedClock();
  ~ThreadedClock() override;

  Time now() const override;
  TimerId schedule_at(Time t, std::function<void()> fn) override;
  TimerId schedule_after(Time delay, std::function<void()> fn) override;
  bool cancel(TimerId id) override;

  /// Stops the timer thread; pending timers are dropped, and later
  /// schedule calls drop their callback and return 0. Idempotent.
  void stop();

 private:
  void run();

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Deadline-ordered pending timers; the id key gives the FIFO tie-break.
  std::map<std::pair<Time, TimerId>, std::function<void()>> timers_;
  std::map<TimerId, Time> deadline_of_;  ///< id -> deadline, for cancel()
  TimerId next_id_ = 1;
  bool stopping_ = false;
  std::thread thread_;
};

class ThreadedExecutor final : public Executor {
 public:
  explicit ThreadedExecutor(std::size_t workers);
  ~ThreadedExecutor() override;

  void post(std::function<void()> fn) override;

  /// Finishes queued tasks, then joins the workers. Idempotent.
  void stop();

 private:
  void run();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

class ThreadedTransport final : public Transport {
 public:
  ThreadedTransport(Clock& clock, Executor& executor, std::uint64_t seed);

  NodeId add_node(std::string name, ReceiveHandler handler = nullptr) override;
  void set_handler(NodeId node, ReceiveHandler handler) override;
  const std::string& node_name(NodeId node) const override;
  std::size_t node_count() const override;

  void connect(NodeId from, NodeId to, ChannelConfig config = {}) override;
  void connect_bidirectional(NodeId a, NodeId b, ChannelConfig config = {}) override;
  bool has_channel(NodeId from, NodeId to) const override;

  bool send(NodeId from, NodeId to, MessagePtr message) override;

  void partition_node(NodeId node, bool partitioned) override;
  void partition_pair(NodeId a, NodeId b, bool partitioned) override;
  void set_loss(NodeId from, NodeId to, double probability) override;

  ChannelStats channel_stats(NodeId from, NodeId to) const override;

  void set_tracing(bool enabled) override;
  /// Only safe to read once the system is quiescent (no sends in flight).
  const std::vector<TraceEntry>& trace() const override { return trace_; }
  void clear_trace() override;

  void set_observer(obs::TraceRecorder* recorder, obs::MetricsRegistry* metrics) override;

 private:
  struct ChannelState {
    ChannelConfig config;
    ChannelStats stats;
    bool partitioned = false;
    Time last_delivery = 0;  // FIFO clamp
    Time link_free_at = 0;   // bandwidth serialization
  };
  struct Delivery {
    NodeId from;
    MessagePtr message;
  };
  struct Endpoint {
    std::string name;
    ReceiveHandler handler;
    std::deque<Delivery> mailbox;
    bool draining = false;
    /// True while a worker runs this endpoint's handler outside mutex_;
    /// set_handler(node, nullptr) waits on it (see Transport::set_handler).
    bool in_handler = false;
  };

  void enqueue_delivery(NodeId to, NodeId from, MessagePtr message);
  void drain_mailbox(NodeId node);

  Clock* clock_;
  Executor* executor_;
  mutable std::mutex mutex_;
  std::condition_variable handler_cv_;  ///< signalled when in_handler clears
  util::Rng rng_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::map<std::pair<NodeId, NodeId>, ChannelState> channels_;
  std::atomic<bool> tracing_{false};
  std::vector<TraceEntry> trace_;
  obs::MessageObserver observer_;  ///< guarded by mutex_
};

struct ThreadedRuntimeOptions {
  std::size_t workers = 4;
  std::uint64_t seed = 42;
  /// wait_until() gives up after this much real time.
  Time wait_cap = seconds(60);
  Time wait_poll_interval = us(200);
};

class ThreadedRuntime final : public Runtime {
 public:
  using Options = ThreadedRuntimeOptions;

  explicit ThreadedRuntime(Options options = {});
  ~ThreadedRuntime() override;

  Clock& clock() override { return clock_; }
  Executor& executor() override { return executor_; }
  Transport& transport() override { return transport_; }
  std::string_view backend_name() const override { return "threaded"; }

  /// Sleeps; the timer thread and workers make progress meanwhile.
  void advance(Time duration) override;

  /// Polls `done` until true or the real-time cap expires. `max_events` is
  /// meaningless on this backend and ignored.
  bool wait_until(const std::function<bool()>& done,
                  std::size_t max_events = SIZE_MAX) override;

  /// Stops timers first (no new deliveries), then drains the worker pool.
  /// Called by the destructor; call earlier for a deterministic quiesce.
  void shutdown();

 private:
  Options options_;
  ThreadedClock clock_;
  ThreadedExecutor executor_;
  ThreadedTransport transport_;
};

}  // namespace sa::runtime
