// Time base shared by every runtime backend.
//
// All protocol timeouts, filter processing times, and trace timestamps are
// expressed in these units regardless of whether they are driven by the
// deterministic simulator (virtual time) or the threaded backend (steady
// clock since runtime start).
#pragma once

#include <cstdint>

namespace sa::runtime {

/// Time in microseconds. Virtual under SimRuntime; microseconds since
/// runtime construction under ThreadedRuntime.
using Time = std::int64_t;

constexpr Time us(std::int64_t v) { return v; }
constexpr Time ms(std::int64_t v) { return v * 1000; }
constexpr Time seconds(std::int64_t v) { return v * 1'000'000; }

/// Identifier of a scheduled timer; 0 is never a valid id, so callers can use
/// it as the "no timer armed" sentinel.
using TimerId = std::uint64_t;

}  // namespace sa::runtime
