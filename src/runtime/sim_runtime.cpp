#include "runtime/sim_runtime.hpp"

namespace sa::runtime {

SimRuntime::SimRuntime(std::uint64_t seed)
    : owned_sim_(std::make_unique<sim::Simulator>()),
      owned_network_(std::make_unique<sim::Network>(*owned_sim_, seed)),
      sim_(owned_sim_.get()),
      network_(owned_network_.get()),
      executor_(*sim_) {}

SimRuntime::SimRuntime(sim::Simulator& sim, sim::Network& network)
    : sim_(&sim), network_(&network), executor_(*sim_) {}

bool SimRuntime::wait_until(const std::function<bool()>& done, std::size_t max_events) {
  std::size_t events = 0;
  while (!done() && events < max_events && sim_->step()) ++events;
  return done();
}

}  // namespace sa::runtime
