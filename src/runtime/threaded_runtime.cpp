#include "runtime/threaded_runtime.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sa::runtime {

// --- ThreadedClock -----------------------------------------------------------

ThreadedClock::ThreadedClock()
    : epoch_(std::chrono::steady_clock::now()), thread_([this] { run(); }) {}

ThreadedClock::~ThreadedClock() { stop(); }

Time ThreadedClock::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TimerId ThreadedClock::schedule_at(Time t, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("timer callback must be non-empty");
  std::lock_guard lock(mutex_);
  // Match ThreadedExecutor::post's shutdown semantics: work arriving after
  // stop() (e.g. from a worker still draining a mailbox) is dropped rather
  // than inserted as a timer that can never fire.
  if (stopping_) return 0;
  // Real time keeps moving while the caller computes deadlines, so a "past"
  // deadline is not an error here: it fires as soon as possible.
  const TimerId id = next_id_++;
  timers_.emplace(std::make_pair(t, id), std::move(fn));
  deadline_of_.emplace(id, t);
  cv_.notify_all();
  return id;
}

TimerId ThreadedClock::schedule_after(Time delay, std::function<void()> fn) {
  return schedule_at(now() + std::max<Time>(delay, 0), std::move(fn));
}

bool ThreadedClock::cancel(TimerId id) {
  std::lock_guard lock(mutex_);
  const auto it = deadline_of_.find(id);
  if (it == deadline_of_.end()) return false;
  timers_.erase(std::make_pair(it->second, id));
  deadline_of_.erase(it);
  cv_.notify_all();
  return true;
}

void ThreadedClock::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    timers_.clear();
    deadline_of_.clear();
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void ThreadedClock::run() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    if (timers_.empty()) {
      cv_.wait(lock);
      continue;
    }
    const auto next = timers_.begin();
    const Time deadline = next->first.first;
    if (now() < deadline) {
      cv_.wait_until(lock, epoch_ + std::chrono::microseconds(deadline));
      continue;  // re-evaluate: an earlier timer or a cancel may have landed
    }
    auto fn = std::move(next->second);
    deadline_of_.erase(next->first.second);
    timers_.erase(next);
    lock.unlock();
    fn();  // entities serialize themselves; see header
    lock.lock();
  }
}

// --- ThreadedExecutor --------------------------------------------------------

ThreadedExecutor::ThreadedExecutor(std::size_t workers) {
  workers_.reserve(std::max<std::size_t>(workers, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(workers, 1); ++i) {
    workers_.emplace_back([this] { run(); });
  }
}

ThreadedExecutor::~ThreadedExecutor() { stop(); }

void ThreadedExecutor::post(std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("posted task must be non-empty");
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;  // shutting down: new work is dropped
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadedExecutor::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadedExecutor::run() {
  std::unique_lock lock(mutex_);
  while (true) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    auto fn = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    fn();
    lock.lock();
  }
}

// --- ThreadedTransport -------------------------------------------------------

ThreadedTransport::ThreadedTransport(Clock& clock, Executor& executor, std::uint64_t seed)
    : clock_(&clock), executor_(&executor), rng_(seed) {}

NodeId ThreadedTransport::add_node(std::string name, ReceiveHandler handler) {
  std::lock_guard lock(mutex_);
  const NodeId id = static_cast<NodeId>(endpoints_.size());
  auto endpoint = std::make_unique<Endpoint>();
  endpoint->name = std::move(name);
  endpoint->handler = std::move(handler);
  endpoints_.push_back(std::move(endpoint));
  return id;
}

void ThreadedTransport::set_handler(NodeId node, ReceiveHandler handler) {
  std::unique_lock lock(mutex_);
  Endpoint& endpoint = *endpoints_.at(node);
  endpoint.handler = std::move(handler);
  // Detach must not return while a worker is mid-handler: the caller is
  // typically a destructor about to free the object the handler captured.
  if (!endpoint.handler) {
    handler_cv_.wait(lock, [&] { return !endpoint.in_handler; });
  }
}

const std::string& ThreadedTransport::node_name(NodeId node) const {
  std::lock_guard lock(mutex_);
  return endpoints_.at(node)->name;
}

std::size_t ThreadedTransport::node_count() const {
  std::lock_guard lock(mutex_);
  return endpoints_.size();
}

void ThreadedTransport::connect(NodeId from, NodeId to, ChannelConfig config) {
  std::lock_guard lock(mutex_);
  if (from >= endpoints_.size() || to >= endpoints_.size()) {
    throw std::out_of_range("ThreadedTransport::connect: unknown node");
  }
  checked_channel_config(config);
  channels_[{from, to}] = ChannelState{config, {}, false, 0, 0};
}

void ThreadedTransport::connect_bidirectional(NodeId a, NodeId b, ChannelConfig config) {
  connect(a, b, config);
  connect(b, a, config);
}

bool ThreadedTransport::has_channel(NodeId from, NodeId to) const {
  std::lock_guard lock(mutex_);
  return channels_.contains({from, to});
}

bool ThreadedTransport::send(NodeId from, NodeId to, MessagePtr message) {
  {
    std::lock_guard lock(mutex_);
    const auto it = channels_.find({from, to});
    if (it == channels_.end()) {
      throw std::out_of_range("no channel " + endpoints_.at(from)->name + " -> " +
                              endpoints_.at(to)->name);
    }
    ChannelState& ch = it->second;
    ++ch.stats.sent;
    const bool dropped_partition = ch.partitioned;
    const bool dropped_loss = !dropped_partition && ch.config.loss_probability > 0.0 &&
                              rng_.next_bool(ch.config.loss_probability);
    if (dropped_partition || dropped_loss) {
      if (dropped_partition) {
        ++ch.stats.dropped_partition;
      } else {
        ++ch.stats.dropped_loss;
      }
      if (tracing_.load(std::memory_order_relaxed)) {
        trace_.push_back(TraceEntry{clock_->now(), from, to, message->type_name(), false, nullptr});
      }
      observer_.on_dropped(clock_->now(), from, to, message->type_name(),
                           dropped_partition ? "partition" : "loss");
      return false;
    }

    // Same arrival-time math as the simulated channel: optional bandwidth
    // serialization, latency + jitter, and a FIFO clamp per channel.
    Time send_complete = clock_->now();
    if (ch.config.bytes_per_second > 0) {
      const Time start = std::max(send_complete, ch.link_free_at);
      const Time transmission =
          static_cast<Time>((static_cast<__int128>(message->size_bytes()) * 1'000'000) /
                            ch.config.bytes_per_second);
      send_complete = start + transmission;
      ch.link_free_at = send_complete;
    }
    Time delay = ch.config.latency;
    if (ch.config.jitter > 0) {
      delay += static_cast<Time>(rng_.next_below(static_cast<std::uint64_t>(ch.config.jitter) + 1));
    }
    Time arrival = send_complete + delay;
    if (ch.config.fifo && arrival < ch.last_delivery) arrival = ch.last_delivery;
    ch.last_delivery = arrival;
    ++ch.stats.delivered;

    Time copy_arrival = -1;
    if (ch.config.duplicate_probability > 0.0 && rng_.next_bool(ch.config.duplicate_probability)) {
      copy_arrival =
          arrival + 1 +
          (ch.config.jitter > 0
               ? static_cast<Time>(rng_.next_below(static_cast<std::uint64_t>(ch.config.jitter) + 1))
               : ch.config.latency);
      if (ch.config.fifo && copy_arrival < ch.last_delivery) copy_arrival = ch.last_delivery;
      ch.last_delivery = std::max(ch.last_delivery, copy_arrival);
      ++ch.stats.duplicated;
    }

    observer_.on_sent(clock_->now(), from, to, message->type_name());
    if (copy_arrival >= 0) observer_.on_duplicated(clock_->now(), from, to, message->type_name());

    // Schedule while still holding mutex_: two racing sends on a FIFO channel
    // can be clamped to the same arrival time, and only the (deadline, id)
    // tie-break keeps them ordered — so the clock must hand out ids in clamp
    // order. ThreadedClock::schedule_at takes only its own lock, so there is
    // no lock-order cycle (the timer thread calls back without holding it).
    clock_->schedule_at(arrival, [this, to, from, message] { enqueue_delivery(to, from, message); });
    if (copy_arrival >= 0) {
      clock_->schedule_at(copy_arrival,
                          [this, to, from, message] { enqueue_delivery(to, from, message); });
    }
  }
  return true;
}

void ThreadedTransport::enqueue_delivery(NodeId to, NodeId from, MessagePtr message) {
  bool start_drain = false;
  {
    std::lock_guard lock(mutex_);
    Endpoint& endpoint = *endpoints_.at(to);
    endpoint.mailbox.push_back(Delivery{from, std::move(message)});
    if (!endpoint.draining) {
      endpoint.draining = true;
      start_drain = true;
    }
  }
  if (start_drain) executor_->post([this, to] { drain_mailbox(to); });
}

void ThreadedTransport::drain_mailbox(NodeId node) {
  std::unique_lock lock(mutex_);
  // The Endpoint object is stable across unlocks (endpoints_ holds owning
  // pointers and nodes are never removed), even if the vector grows.
  Endpoint& endpoint = *endpoints_.at(node);
  while (!endpoint.mailbox.empty()) {
    Delivery delivery = std::move(endpoint.mailbox.front());
    endpoint.mailbox.pop_front();
    ReceiveHandler handler = endpoint.handler;
    if (tracing_.load(std::memory_order_relaxed)) {
      trace_.push_back(TraceEntry{clock_->now(), delivery.from, node,
                                  delivery.message->type_name(), true, delivery.message});
    }
    observer_.on_delivered(clock_->now(), delivery.from, node, delivery.message->type_name());
    if (handler) {
      // Run the handler unlocked (it re-enters the transport to send), but
      // flag the window so a concurrent detach waits instead of letting its
      // caller free the handler's captures mid-call.
      endpoint.in_handler = true;
      lock.unlock();
      handler(delivery.from, std::move(delivery.message));
      lock.lock();
      endpoint.in_handler = false;
      handler_cv_.notify_all();
    }
  }
  endpoint.draining = false;
}

void ThreadedTransport::partition_node(NodeId node, bool partitioned) {
  std::lock_guard lock(mutex_);
  for (auto& [key, channel] : channels_) {
    if (key.first == node || key.second == node) channel.partitioned = partitioned;
  }
}

void ThreadedTransport::partition_pair(NodeId a, NodeId b, bool partitioned) {
  std::lock_guard lock(mutex_);
  for (auto& [key, channel] : channels_) {
    if ((key.first == a && key.second == b) || (key.first == b && key.second == a)) {
      channel.partitioned = partitioned;
    }
  }
}

void ThreadedTransport::set_loss(NodeId from, NodeId to, double probability) {
  checked_probability(probability, "loss probability");
  std::lock_guard lock(mutex_);
  channels_.at({from, to}).config.loss_probability = probability;
}

ChannelStats ThreadedTransport::channel_stats(NodeId from, NodeId to) const {
  std::lock_guard lock(mutex_);
  return channels_.at({from, to}).stats;
}

void ThreadedTransport::set_tracing(bool enabled) {
  std::lock_guard lock(mutex_);
  tracing_.store(enabled, std::memory_order_relaxed);
}

void ThreadedTransport::clear_trace() {
  std::lock_guard lock(mutex_);
  trace_.clear();
}

void ThreadedTransport::set_observer(obs::TraceRecorder* recorder, obs::MetricsRegistry* metrics) {
  std::lock_guard lock(mutex_);
  observer_.attach(recorder, metrics);
}

// --- ThreadedRuntime ---------------------------------------------------------

ThreadedRuntime::ThreadedRuntime(Options options)
    : options_(options),
      executor_(options.workers),
      transport_(clock_, executor_, options.seed) {}

ThreadedRuntime::~ThreadedRuntime() { shutdown(); }

void ThreadedRuntime::shutdown() {
  clock_.stop();      // no further timer fires => no new transport deliveries
  executor_.stop();   // drain queued mailbox work, then join the pool
}

void ThreadedRuntime::advance(Time duration) {
  std::this_thread::sleep_for(std::chrono::microseconds(std::max<Time>(duration, 0)));
}

bool ThreadedRuntime::wait_until(const std::function<bool()>& done, std::size_t /*max_events*/) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(options_.wait_cap);
  while (!done() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(options_.wait_poll_interval));
  }
  return done();
}

}  // namespace sa::runtime
