// Clock: the scheduling interface every layer above sa_graph programs
// against. Backends: sa::sim::Simulator (deterministic virtual time) and
// ThreadedRuntime's steady-clock timer wheel (real time).
#pragma once

#include <functional>

#include "runtime/time.hpp"

namespace sa::runtime {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds.
  virtual Time now() const = 0;

  /// Schedules `fn` at absolute time `t` (>= now()). Returns an id usable
  /// with cancel(), or 0 if the backend is shutting down and dropped `fn`.
  virtual TimerId schedule_at(Time t, std::function<void()> fn) = 0;

  /// Schedules `fn` `delay` microseconds from now(). Same shutdown semantics
  /// as schedule_at().
  virtual TimerId schedule_after(Time delay, std::function<void()> fn) = 0;

  /// Cancels a pending timer; returns false if it already fired or was
  /// cancelled. Safe to call from inside timer callbacks.
  virtual bool cancel(TimerId id) = 0;
};

}  // namespace sa::runtime
