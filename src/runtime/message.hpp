// Base class for everything sent through a Transport. Concrete protocol and
// application messages derive from it; receivers downcast via dynamic_cast
// or the type tag.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace sa::runtime {

struct Message {
  virtual ~Message() = default;
  /// Short type tag for traces, e.g. "reset", "video-packet".
  virtual std::string type_name() const = 0;
  /// Wire size used by bandwidth-limited channels; the default models a
  /// small control message.
  virtual std::size_t size_bytes() const { return 64; }
};

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace sa::runtime
