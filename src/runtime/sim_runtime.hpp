// SimRuntime: the deterministic backend — a thin adapter bundling the
// discrete-event Simulator (as Clock) and the simulated Network (as
// Transport) behind the Runtime interface.
//
// This is the ONLY translation unit family outside src/sim/ that includes the
// sim headers directly (enforced by scripts/check_include_hygiene.sh); every
// protocol/component/video/decision/baseline layer sees the interfaces only.
// The adapter adds no buffering, reordering, or extra events, so executions
// through SimRuntime are byte-identical to executions against the Simulator
// and Network directly — the exact-reproduction tests rely on this.
#pragma once

#include <memory>

#include "runtime/runtime.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace sa::runtime {

/// Executor over the simulator: post() == schedule_after(0), which the
/// simulator's stable FIFO tie-break turns into deterministic FIFO ordering.
class SimExecutor final : public Executor {
 public:
  explicit SimExecutor(sim::Simulator& sim) : sim_(&sim) {}
  void post(std::function<void()> fn) override { sim_->schedule_after(0, std::move(fn)); }

 private:
  sim::Simulator* sim_;
};

class SimRuntime final : public Runtime {
 public:
  /// Owning: creates a fresh Simulator and Network seeded with `seed`.
  explicit SimRuntime(std::uint64_t seed = 42);

  /// Non-owning: wraps an existing simulator/network pair (tests that drive
  /// the simulator directly).
  SimRuntime(sim::Simulator& sim, sim::Network& network);

  sim::Simulator& simulator() { return *sim_; }
  sim::Network& network() { return *network_; }

  Clock& clock() override { return *sim_; }
  Executor& executor() override { return executor_; }
  Transport& transport() override { return *network_; }
  std::string_view backend_name() const override { return "sim"; }

  void advance(Time duration) override { sim_->run_until(sim_->now() + duration); }

  bool wait_until(const std::function<bool()>& done, std::size_t max_events) override;

 private:
  std::unique_ptr<sim::Simulator> owned_sim_;
  std::unique_ptr<sim::Network> owned_network_;
  sim::Simulator* sim_;
  sim::Network* network_;
  SimExecutor executor_;
};

}  // namespace sa::runtime
