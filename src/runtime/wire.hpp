// Wire format for messages crossing process boundaries (SocketTransport).
//
// Frames are little-endian and fully length-checked:
//
//   magic "SADP" (u32) | version (u8) | codec id (u16) | from (u32) |
//   to (u32) | incarnation (u64) | seq (u64) | payload length (u32) | payload
//
// The payload encoding is owned by a per-message-type codec registered under
// a stable 16-bit id (register_wire_codec); the runtime layer knows nothing
// about concrete message types, so the registry is how proto / video messages
// plug in without inverting the layering. `incarnation` identifies one
// process lifetime of the sending transport: a respawned process starts a
// fresh sequence space, and receivers use the (incarnation, seq) pair to keep
// the FIFO channel contract across crashes (see socket_runtime.hpp).
//
// Decoding never trusts the peer: WireReader bounds-checks every read and
// throws WireError on truncation, length overruns, unknown codec ids, bad
// magic, or trailing bytes — a garbage or hostile datagram is rejected
// without undefined behavior (fuzzed in socket_wire_test.cpp under ASan).
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/message.hpp"
#include "runtime/transport.hpp"

namespace sa::runtime {

/// Malformed frame or payload; decoding rejects the input with this (and only
/// this) exception so receivers can drop bad datagrams without crashing.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// u32 length prefix + raw bytes.
  void str(std::string_view s);
  void bytes(const std::uint8_t* data, std::size_t size);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str();
  /// Bulk copy of `size` raw bytes into `out`.
  void bytes(std::uint8_t* out, std::size_t size);

  std::size_t remaining() const { return size_ - pos_; }
  /// Validates a decoder-claimed element count against the bytes left: a
  /// hostile length field cannot force a huge allocation because every
  /// element must occupy at least `min_element_bytes` of real input.
  std::size_t vec_len(std::size_t min_element_bytes, const char* what);
  /// Throws unless the reader consumed exactly its input.
  void expect_done(const char* what);

 private:
  void need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

using WireEncodeFn = std::function<void(const Message&, WireWriter&)>;
using WireDecodeFn = std::function<MessagePtr(WireReader&)>;

/// Registers the codec for one concrete Message subtype. `type_name` must
/// match Message::type_name() of the instances encoded (that is the encode
/// dispatch key). Re-registering the same (id, type_name) is a no-op so
/// library registration hooks are idempotent; a conflicting re-registration
/// throws std::logic_error.
void register_wire_codec(std::uint16_t id, std::string type_name, WireEncodeFn encode,
                         WireDecodeFn decode);
bool wire_codec_registered(std::uint16_t id);

/// One decoded frame. `codec_id` is exposed for diagnostics.
struct WireFrame {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t incarnation = 0;
  std::uint64_t seq = 0;
  std::uint16_t codec_id = 0;
  MessagePtr message;
};

inline constexpr std::uint32_t kWireMagic = 0x50444153;  // "SADP" little-endian
inline constexpr std::uint8_t kWireVersion = 1;
/// Fixed frame header size in bytes (everything before the payload).
inline constexpr std::size_t kWireHeaderBytes = 4 + 1 + 2 + 4 + 4 + 8 + 8 + 4;

/// Throws std::logic_error when no codec is registered for the message's
/// type_name (a programming error, not a wire condition).
std::vector<std::uint8_t> encode_frame(NodeId from, NodeId to, std::uint64_t incarnation,
                                       std::uint64_t seq, const Message& message);
/// Throws WireError on any malformed input.
WireFrame decode_frame(const std::uint8_t* data, std::size_t size);

/// Hex helpers for embedding frames in JSONL trace artifacts.
std::string to_hex(const std::uint8_t* data, std::size_t size);
/// Throws WireError on odd length or non-hex characters.
std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace sa::runtime
