// Runtime: bundles the three backend interfaces (Clock, Executor, Transport)
// a distributed mechanism needs, plus the minimal driving hooks harness code
// uses to make progress without knowing which backend it is on.
//
// Backends:
//   * SimRuntime      — thin adapter over sa::sim::{Simulator, Network};
//                       single-threaded, deterministic, virtual time.
//   * ThreadedRuntime — steady-clock timers, a worker pool with per-endpoint
//                       FIFO mailboxes, in-process queue transport.
#pragma once

#include <cstddef>
#include <functional>
#include <string_view>

#include "runtime/clock.hpp"
#include "runtime/executor.hpp"
#include "runtime/transport.hpp"

namespace sa::runtime {

class Runtime {
 public:
  virtual ~Runtime() = default;

  virtual Clock& clock() = 0;
  virtual Executor& executor() = 0;
  virtual Transport& transport() = 0;

  /// "sim" or "threaded"; shows up in logs and experiment records.
  virtual std::string_view backend_name() const = 0;

  /// Makes `duration` microseconds of progress: the simulator runs events up
  /// to now+duration, the threaded backend sleeps while its threads work.
  virtual void advance(Time duration) = 0;

  /// Drives the backend until `done()` returns true. The simulator steps
  /// events (at most `max_events`, returning early when the queue drains);
  /// the threaded backend polls with a generous real-time cap. Returns the
  /// final value of done().
  virtual bool wait_until(const std::function<bool()>& done,
                          std::size_t max_events = SIZE_MAX) = 0;
};

}  // namespace sa::runtime
