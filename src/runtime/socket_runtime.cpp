#include "runtime/socket_runtime.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "runtime/wire.hpp"

namespace sa::runtime {

namespace {

/// Upper bound for a TCP-fallback frame; a hostile length prefix beyond this
/// closes the connection instead of allocating.
constexpr std::uint32_t kMaxTcpFrame = 16u << 20;

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Time wall_clock_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

SocketTransport::SocketTransport(SocketTransportOptions options)
    : options_(std::move(options)),
      // Wall-clock microseconds strictly order the lifetimes of successive
      // incarnations of one endpoint on one machine, which is all the FIFO
      // watermark needs across a kill -9 + re-exec.
      incarnation_(static_cast<std::uint64_t>(wall_clock_us())),
      rng_(options_.seed) {
  handlers_.resize(options_.topology.size());
  in_handler_.assign(options_.topology.size(), false);
  node_partitioned_.assign(options_.topology.size(), false);

  send_fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (send_fd_ < 0) throw std::runtime_error("socket transport: cannot create send socket");
  if (::pipe(wake_pipe_) != 0) {
    close_fd(send_fd_);
    throw std::runtime_error("socket transport: cannot create wake pipe");
  }
  set_nonblocking(wake_pipe_[0]);

  try {
    for (const NodeId node : options_.local) {
      if (node >= options_.topology.size()) {
        throw std::runtime_error("socket transport: local node id out of range");
      }
      bind_local(node);
    }
  } catch (...) {
    for (LocalSocket& s : local_sockets_) {
      close_fd(s.udp_fd);
      close_fd(s.tcp_listen_fd);
    }
    close_fd(send_fd_);
    close_fd(wake_pipe_[0]);
    close_fd(wake_pipe_[1]);
    throw;
  }

  receiver_ = std::thread([this] { receiver_loop(); });
}

SocketTransport::~SocketTransport() { stop(); }

void SocketTransport::bind_local(NodeId node) {
  // UDP and TCP port spaces are disjoint, but the frame header carries only
  // one port per endpoint — so both sockets must share the number. When the
  // caller asked for an ephemeral port, a number free for UDP may be taken
  // for TCP; retry with a fresh ephemeral pick until both bind.
  const std::uint16_t requested = options_.topology[node].port;
  const int attempts = requested != 0 ? 1 : 64;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const int udp = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (udp < 0) throw std::runtime_error("socket transport: cannot create UDP socket");
    sockaddr_in addr = loopback_addr(requested);
    if (::bind(udp, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(udp);
      if (requested != 0) {
        throw std::runtime_error("socket transport: cannot bind UDP port " +
                                 std::to_string(requested) + ": " + std::strerror(errno));
      }
      continue;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(udp, reinterpret_cast<sockaddr*>(&addr), &len);
    const std::uint16_t port = ntohs(addr.sin_port);

    const int tcp = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp < 0) {
      ::close(udp);
      throw std::runtime_error("socket transport: cannot create TCP socket");
    }
    // A respawned node must rebind the exact port its peers learned, even
    // while the previous incarnation's connections linger in TIME_WAIT.
    const int one = 1;
    ::setsockopt(tcp, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in tcp_addr = loopback_addr(port);
    if (::bind(tcp, reinterpret_cast<sockaddr*>(&tcp_addr), sizeof(tcp_addr)) != 0 ||
        ::listen(tcp, 16) != 0) {
      ::close(udp);
      ::close(tcp);
      if (requested != 0) {
        throw std::runtime_error("socket transport: cannot bind TCP port " +
                                 std::to_string(requested) + ": " + std::strerror(errno));
      }
      continue;
    }
    set_nonblocking(udp);
    set_nonblocking(tcp);
    options_.topology[node].port = port;
    local_sockets_.push_back(LocalSocket{node, udp, tcp});
    return;
  }
  throw std::runtime_error("socket transport: exhausted ephemeral port attempts for node " +
                           options_.topology[node].name);
}

NodeId SocketTransport::add_node(std::string name, ReceiveHandler handler) {
  for (NodeId id = 0; id < options_.topology.size(); ++id) {
    if (options_.topology[id].name != name) continue;
    if (handler) set_handler(id, std::move(handler));
    return id;
  }
  throw std::invalid_argument("socket transport: node \"" + name + "\" not in topology");
}

void SocketTransport::set_handler(NodeId node, ReceiveHandler handler) {
  std::unique_lock lock(mutex_);
  if (node >= handlers_.size()) throw std::out_of_range("socket transport: bad node id");
  if (!handler) {
    // Detach is a synchronization point (see Transport::set_handler): wait
    // out any delivery currently running this endpoint's handler.
    handler_cv_.wait(lock, [this, node] { return !in_handler_[node]; });
  }
  handlers_[node] = std::move(handler);
}

const std::string& SocketTransport::node_name(NodeId node) const {
  if (node >= options_.topology.size()) {
    throw std::out_of_range("socket transport: bad node id");
  }
  return options_.topology[node].name;
}

std::size_t SocketTransport::node_count() const { return options_.topology.size(); }

void SocketTransport::connect(NodeId from, NodeId to, ChannelConfig config) {
  checked_channel_config(config);
  if (from >= options_.topology.size() || to >= options_.topology.size()) {
    throw std::out_of_range("socket transport: bad node id in connect");
  }
  std::lock_guard lock(mutex_);
  channels_[{from, to}].config = config;
}

void SocketTransport::connect_bidirectional(NodeId a, NodeId b, ChannelConfig config) {
  connect(a, b, config);
  connect(b, a, config);
}

bool SocketTransport::has_channel(NodeId from, NodeId to) const {
  std::lock_guard lock(mutex_);
  return channels_.contains({from, to});
}

bool SocketTransport::send(NodeId from, NodeId to, MessagePtr message) {
  if (!message) throw std::invalid_argument("socket transport: null message");
  std::lock_guard lock(mutex_);
  const auto it = channels_.find({from, to});
  if (it == channels_.end()) {
    throw std::out_of_range("socket transport: no channel " + std::to_string(from) + " -> " +
                            std::to_string(to));
  }
  ChannelState& channel = it->second;
  ++channel.stats.sent;
  if (stopping_.load()) return false;

  if (node_partitioned_[from] || node_partitioned_[to] || channel.pair_partitioned) {
    ++channel.stats.dropped_partition;
    record(wall_clock_us(), from, to, message->type_name(), false, message);
    return false;
  }
  const double loss =
      std::min(1.0, channel.config.loss_probability + extra_loss_);
  if (loss > 0.0 && rng_.next_bool(loss)) {
    ++channel.stats.dropped_loss;
    record(wall_clock_us(), from, to, message->type_name(), false, message);
    return false;
  }

  const std::uint16_t port = options_.topology[to].port;
  if (port == 0) {
    // Destination address not learned yet (endpoint exchange still running);
    // indistinguishable from wire loss, and retransmission recovers.
    ++channel.stats.dropped_loss;
    record(wall_clock_us(), from, to, message->type_name(), false, message);
    return false;
  }

  const double dup =
      std::min(1.0, channel.config.duplicate_probability + extra_duplication_);
  int copies = 1;
  if (dup > 0.0 && rng_.next_bool(dup)) {
    ++copies;
    ++channel.stats.duplicated;
  }

  bool sent = false;
  for (int copy = 0; copy < copies; ++copy) {
    // Each copy takes a fresh sequence number: the receiver's FIFO watermark
    // would swallow a same-seq duplicate, but the point of the Duplicate
    // fault is to hand the DRIVERS a duplicate to deduplicate by StepRef.
    const std::uint64_t seq = ++send_seq_[{from, to}];
    const std::vector<std::uint8_t> frame =
        encode_frame(from, to, incarnation_, seq, *message);
    const sockaddr_in dest = loopback_addr(port);
    if (frame.size() <= options_.max_datagram) {
      const ssize_t n = ::sendto(send_fd_, frame.data(), frame.size(), 0,
                                 reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
      sent = sent || n == static_cast<ssize_t>(frame.size());
    } else {
      // TCP fallback: one-shot length-prefixed connection. Loopback connect
      // either completes immediately or fails fast (dead peer), so doing it
      // under the transport mutex is acceptable for the rare oversized frame.
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) continue;
      bool ok = ::connect(fd, reinterpret_cast<const sockaddr*>(&dest), sizeof(dest)) == 0;
      if (ok) {
        std::uint8_t prefix[4];
        const auto len = static_cast<std::uint32_t>(frame.size());
        for (int i = 0; i < 4; ++i) prefix[i] = static_cast<std::uint8_t>(len >> (8 * i));
        const auto write_all = [fd](const std::uint8_t* data, std::size_t size) {
          std::size_t done = 0;
          while (done < size) {
            const ssize_t n = ::write(fd, data + done, size - done);
            if (n <= 0) return false;
            done += static_cast<std::size_t>(n);
          }
          return true;
        };
        ok = write_all(prefix, 4) && write_all(frame.data(), frame.size());
      }
      ::close(fd);
      sent = sent || ok;
    }
  }
  if (!sent) ++channel.stats.dropped_loss;
  return sent;
}

void SocketTransport::partition_node(NodeId node, bool partitioned) {
  std::lock_guard lock(mutex_);
  if (node >= node_partitioned_.size()) {
    throw std::out_of_range("socket transport: bad node id in partition_node");
  }
  node_partitioned_[node] = partitioned;
}

void SocketTransport::partition_pair(NodeId a, NodeId b, bool partitioned) {
  std::lock_guard lock(mutex_);
  channels_[{a, b}].pair_partitioned = partitioned;
  channels_[{b, a}].pair_partitioned = partitioned;
}

void SocketTransport::set_loss(NodeId from, NodeId to, double probability) {
  checked_probability(probability, "socket loss probability");
  std::lock_guard lock(mutex_);
  channels_[{from, to}].config.loss_probability = probability;
}

ChannelStats SocketTransport::channel_stats(NodeId from, NodeId to) const {
  std::lock_guard lock(mutex_);
  const auto it = channels_.find({from, to});
  return it == channels_.end() ? ChannelStats{} : it->second.stats;
}

void SocketTransport::set_tracing(bool enabled) { tracing_.store(enabled); }

void SocketTransport::clear_trace() {
  std::lock_guard lock(mutex_);
  trace_.clear();
}

std::uint16_t SocketTransport::local_port(NodeId node) const {
  for (const LocalSocket& s : local_sockets_) {
    if (s.node == node) return options_.topology[node].port;
  }
  throw std::invalid_argument("socket transport: node " + std::to_string(node) +
                              " is not local");
}

void SocketTransport::set_endpoint_port(NodeId node, std::uint16_t port) {
  std::lock_guard lock(mutex_);
  if (node >= options_.topology.size()) {
    throw std::out_of_range("socket transport: bad node id in set_endpoint_port");
  }
  options_.topology[node].port = port;
}

void SocketTransport::set_extra_loss(double probability) {
  checked_probability(probability, "socket extra loss");
  std::lock_guard lock(mutex_);
  extra_loss_ = probability;
}

void SocketTransport::set_extra_duplication(double probability) {
  checked_probability(probability, "socket extra duplication");
  std::lock_guard lock(mutex_);
  extra_duplication_ = probability;
}

void SocketTransport::record(Time time, NodeId from, NodeId to, const std::string& type,
                             bool delivered, MessagePtr message) {
  if (!tracing_.load()) return;
  // Callers hold mutex_.
  trace_.push_back(TraceEntry{time, from, to, type, delivered, std::move(message)});
}

void SocketTransport::handle_datagram(const std::uint8_t* data, std::size_t size) {
  WireFrame frame;
  try {
    frame = decode_frame(data, size);
  } catch (const WireError&) {
    malformed_frames_.fetch_add(1);
    return;
  }
  if (frame.to >= handlers_.size() || frame.from >= handlers_.size()) {
    malformed_frames_.fetch_add(1);
    return;
  }

  ReceiveHandler handler;
  {
    std::lock_guard lock(mutex_);
    // FIFO-over-the-wire: deliver only frames that advance the
    // (incarnation, seq) watermark. Stale incarnations are frames from a
    // predecessor process that died; stale seqs are duplicates or late
    // reorders (possible when a TCP-fallback frame loses the race against a
    // later datagram) — both are dropped like wire loss, which the
    // protocol's retransmissions already survive.
    RecvWatermark& wm = recv_seq_[{frame.from, frame.to}];
    if (frame.incarnation < wm.incarnation) {
      stale_frames_.fetch_add(1);
      return;
    }
    if (frame.incarnation > wm.incarnation) {
      wm.incarnation = frame.incarnation;
      wm.seq = 0;
    }
    if (frame.seq <= wm.seq) {
      stale_frames_.fetch_add(1);
      return;
    }
    wm.seq = frame.seq;

    ChannelState& channel = channels_[{frame.from, frame.to}];
    if (node_partitioned_[frame.from] || node_partitioned_[frame.to] ||
        channel.pair_partitioned) {
      // Receiver-side half of a partition window: the peer may not have
      // armed (or opened) its window yet, so the cut must hold here too.
      ++channel.stats.dropped_partition;
      record(wall_clock_us(), frame.from, frame.to, frame.message->type_name(), false,
             frame.message);
      return;
    }
    handler = handlers_[frame.to];
    if (!handler) {
      ++channel.stats.dropped_loss;
      return;
    }
    ++channel.stats.delivered;
    record(wall_clock_us(), frame.from, frame.to, frame.message->type_name(), true,
           frame.message);
    in_handler_[frame.to] = true;
  }
  handler(frame.from, frame.message);
  {
    std::lock_guard lock(mutex_);
    in_handler_[frame.to] = false;
  }
  handler_cv_.notify_all();
}

bool SocketTransport::drain_tcp_buffer(TcpConn& conn) {
  std::size_t offset = 0;
  while (conn.buf.size() - offset >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(conn.buf[offset + i]) << (8 * i);
    }
    if (len > kMaxTcpFrame) {
      malformed_frames_.fetch_add(1);
      return false;  // poisoned stream; caller closes the connection
    }
    if (conn.buf.size() - offset - 4 < len) break;
    handle_datagram(conn.buf.data() + offset + 4, len);
    offset += 4 + len;
  }
  conn.buf.erase(conn.buf.begin(), conn.buf.begin() + static_cast<std::ptrdiff_t>(offset));
  return true;
}

void SocketTransport::receiver_loop() {
  std::vector<TcpConn> conns;
  std::vector<std::uint8_t> datagram(70 * 1024);

  while (!stopping_.load()) {
    std::vector<pollfd> fds;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const LocalSocket& s : local_sockets_) {
      fds.push_back({s.udp_fd, POLLIN, 0});
      fds.push_back({s.tcp_listen_fd, POLLIN, 0});
    }
    for (const TcpConn& c : conns) fds.push_back({c.fd, POLLIN, 0});

    if (::poll(fds.data(), fds.size(), /*timeout_ms=*/200) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;

    std::size_t index = 0;
    if (fds[index].revents & POLLIN) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    ++index;

    for (const LocalSocket& s : local_sockets_) {
      if (fds[index].revents & POLLIN) {
        while (true) {
          const ssize_t n = ::recvfrom(s.udp_fd, datagram.data(), datagram.size(), 0,
                                       nullptr, nullptr);
          if (n < 0) break;  // EWOULDBLOCK: drained
          handle_datagram(datagram.data(), static_cast<std::size_t>(n));
        }
      }
      ++index;
      if (fds[index].revents & POLLIN) {
        while (true) {
          const int fd = ::accept(s.tcp_listen_fd, nullptr, nullptr);
          if (fd < 0) break;
          set_nonblocking(fd);
          conns.push_back(TcpConn{fd, {}});
        }
      }
      ++index;
    }

    // Drain accepted fallback connections; `conns` may have grown above, but
    // new entries have no pollfd yet and are picked up next iteration.
    for (std::size_t c = 0; c < conns.size() && index < fds.size(); ++c, ++index) {
      if (!(fds[index].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      TcpConn& conn = conns[c];
      bool open = true;
      while (true) {
        std::uint8_t chunk[16 * 1024];
        const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
        if (n > 0) {
          conn.buf.insert(conn.buf.end(), chunk, chunk + n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        open = false;  // EOF or error
        break;
      }
      if (!drain_tcp_buffer(conn)) open = false;
      if (!open) {
        if (!conn.buf.empty()) malformed_frames_.fetch_add(1);
        close_fd(conn.fd);
        conn.fd = -1;
      }
    }
    std::erase_if(conns, [](const TcpConn& c) { return c.fd < 0; });
  }

  for (TcpConn& c : conns) close_fd(c.fd);
}

void SocketTransport::stop() {
  std::call_once(stop_once_, [this] {
    stopping_.store(true);
    const char wake = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &wake, 1);
    if (receiver_.joinable()) receiver_.join();
    for (LocalSocket& s : local_sockets_) {
      close_fd(s.udp_fd);
      close_fd(s.tcp_listen_fd);
    }
    close_fd(send_fd_);
    close_fd(wake_pipe_[0]);
    close_fd(wake_pipe_[1]);
  });
}

TimerId SocketClock::schedule_at(Time t, std::function<void()> fn) {
  const Time base = std::max<Time>(0, t - inner_.now());
  return schedule_after(base, std::move(fn));
}

TimerId SocketClock::schedule_after(Time delay, std::function<void()> fn) {
  const double factor = skew_.load();
  Time scaled = delay;
  if (factor != 1.0) {
    scaled = static_cast<Time>(static_cast<double>(delay) * std::max(0.0, factor));
  }
  return inner_.schedule_after(scaled, std::move(fn));
}

SocketRuntime::SocketRuntime(SocketRuntimeOptions options)
    : options_(options),
      executor_(options.workers),
      transport_(std::move(options.transport)) {}

SocketRuntime::~SocketRuntime() { shutdown(); }

void SocketRuntime::advance(Time duration) {
  std::this_thread::sleep_for(std::chrono::microseconds(duration));
}

bool SocketRuntime::wait_until(const std::function<bool()>& done, std::size_t /*max_events*/) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(options_.wait_cap);
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(options_.wait_poll_interval));
  }
  return true;
}

void SocketRuntime::shutdown() {
  clock_.stop();
  transport_.stop();
  executor_.stop();
}

}  // namespace sa::runtime
