#include "runtime/wire.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

namespace sa::runtime {

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void WireWriter::bytes(const std::uint8_t* data, std::size_t size) {
  buf_.insert(buf_.end(), data, data + size);
}

void WireReader::need(std::size_t n) {
  if (size_ - pos_ < n) throw WireError("wire: truncated input");
}

std::uint8_t WireReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::string WireReader::str() {
  const std::uint32_t len = u32();
  if (len > remaining()) throw WireError("wire: string length exceeds input");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

void WireReader::bytes(std::uint8_t* out, std::size_t size) {
  need(size);
  std::copy(data_ + pos_, data_ + pos_ + size, out);
  pos_ += size;
}

std::size_t WireReader::vec_len(std::size_t min_element_bytes, const char* what) {
  const std::uint32_t count = u32();
  if (min_element_bytes != 0 && count > remaining() / min_element_bytes) {
    throw WireError(std::string("wire: ") + what + " count exceeds input");
  }
  return count;
}

void WireReader::expect_done(const char* what) {
  if (pos_ != size_) throw WireError(std::string("wire: trailing bytes after ") + what);
}

namespace {

struct Codec {
  std::uint16_t id = 0;
  std::string type_name;
  WireEncodeFn encode;
  WireDecodeFn decode;
};

struct Registry {
  std::mutex mutex;
  std::map<std::uint16_t, Codec> by_id;
  std::map<std::string, std::uint16_t> by_name;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

void register_wire_codec(std::uint16_t id, std::string type_name, WireEncodeFn encode,
                         WireDecodeFn decode) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  if (const auto it = reg.by_id.find(id); it != reg.by_id.end()) {
    if (it->second.type_name == type_name) return;  // idempotent re-registration
    throw std::logic_error("wire codec id " + std::to_string(id) + " already bound to \"" +
                           it->second.type_name + "\", cannot rebind to \"" + type_name + '"');
  }
  if (reg.by_name.contains(type_name)) {
    throw std::logic_error("wire codec for \"" + type_name + "\" already registered");
  }
  reg.by_name.emplace(type_name, id);
  reg.by_id.emplace(id, Codec{id, std::move(type_name), std::move(encode), std::move(decode)});
}

bool wire_codec_registered(std::uint16_t id) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  return reg.by_id.contains(id);
}

std::vector<std::uint8_t> encode_frame(NodeId from, NodeId to, std::uint64_t incarnation,
                                       std::uint64_t seq, const Message& message) {
  Registry& reg = registry();
  const Codec* codec = nullptr;
  {
    std::lock_guard lock(reg.mutex);
    const auto name_it = reg.by_name.find(message.type_name());
    if (name_it == reg.by_name.end()) {
      throw std::logic_error("no wire codec registered for message type \"" +
                             message.type_name() + '"');
    }
    codec = &reg.by_id.at(name_it->second);
  }
  // Codec pointers are stable: registrations are permanent and never erased.
  WireWriter payload;
  codec->encode(message, payload);

  WireWriter frame;
  frame.u32(kWireMagic);
  frame.u8(kWireVersion);
  frame.u16(codec->id);
  frame.u32(from);
  frame.u32(to);
  frame.u64(incarnation);
  frame.u64(seq);
  frame.u32(static_cast<std::uint32_t>(payload.data().size()));
  frame.bytes(payload.data().data(), payload.data().size());
  return frame.take();
}

WireFrame decode_frame(const std::uint8_t* data, std::size_t size) {
  WireReader reader(data, size);
  if (reader.u32() != kWireMagic) throw WireError("wire: bad frame magic");
  if (reader.u8() != kWireVersion) throw WireError("wire: unsupported frame version");
  WireFrame frame;
  frame.codec_id = reader.u16();
  frame.from = reader.u32();
  frame.to = reader.u32();
  frame.incarnation = reader.u64();
  frame.seq = reader.u64();
  const std::uint32_t payload_len = reader.u32();
  if (payload_len != reader.remaining()) {
    throw WireError("wire: payload length disagrees with frame size");
  }

  WireDecodeFn decode;
  {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    const auto it = reg.by_id.find(frame.codec_id);
    if (it == reg.by_id.end()) {
      throw WireError("wire: unknown codec id " + std::to_string(frame.codec_id));
    }
    decode = it->second.decode;
  }
  WireReader payload(data + (size - payload_len), payload_len);
  frame.message = decode(payload);
  payload.expect_done("message payload");
  if (!frame.message) throw WireError("wire: codec returned null message");
  return frame;
}

std::string to_hex(const std::uint8_t* data, std::size_t size) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(size * 2);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw WireError("wire: odd-length hex string");
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw WireError("wire: invalid hex character");
  };
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(nibble(hex[i]) << 4 | nibble(hex[i + 1])));
  }
  return out;
}

}  // namespace sa::runtime
