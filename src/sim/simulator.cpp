#include "sim/simulator.hpp"

#include <stdexcept>

namespace sa::sim {

EventId Simulator::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("cannot schedule event in the past");
  if (!fn) throw std::invalid_argument("event callback must be non-empty");
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  alive_.insert(id);
  return id;
}

EventId Simulator::schedule_after(Time delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  // Only live events are cancelable: an id that already fired (including one
  // that fired earlier at this very timestamp) reports false and leaves no
  // residue behind.
  if (alive_.erase(id) == 0) return false;
  cancelled_.insert(id);
  // Cancelled ids stay in the queue and are skipped when popped; the set
  // entry is erased at pop time, keeping both structures bounded.
  return true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    if (const auto it = cancelled_.find(event.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    alive_.erase(event.id);
    now_ = event.time;
    event.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && step()) ++count;
  return count;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.contains(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.time > deadline) break;
    step();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace sa::sim
