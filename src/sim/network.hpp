// Simulated network: named nodes connected by directed channels with
// configurable latency, jitter, loss, and partitions.
//
// This substitutes for the paper's physical testbed (802.11 multicast between
// a server, an iPAQ hand-held, and a Toughbook laptop).  Channels can be
// FIFO-ordered (a TCP-like manager/agent control connection) or unordered and
// lossy (UDP-like data multicast); partitions model the paper's "long-term
// network failure" that triggers loss-of-message handling.
//
// The Network IS the sim backend's runtime::Transport: protocol and
// application layers talk to that interface and reach this implementation
// through the SimRuntime adapter. Message, channel, and trace types are the
// runtime layer's, re-exported here under sa::sim for source compatibility.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/message_observer.hpp"
#include "runtime/transport.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace sa::sim {

using NodeId = runtime::NodeId;
using Message = runtime::Message;
using MessagePtr = runtime::MessagePtr;
using ReceiveHandler = runtime::ReceiveHandler;
using ChannelConfig = runtime::ChannelConfig;
using ChannelStats = runtime::ChannelStats;
using TraceEntry = runtime::TraceEntry;

class Channel {
 public:
  Channel(Simulator& sim, util::Rng& rng, NodeId from, NodeId to, ChannelConfig config)
      : sim_(&sim), rng_(&rng), from_(from), to_(to), config_(config) {}

  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  const ChannelConfig& config() const { return config_; }
  const ChannelStats& stats() const { return stats_; }

  /// Failure injection: while partitioned, every message is dropped.
  void set_partitioned(bool partitioned) { partitioned_ = partitioned; }
  bool partitioned() const { return partitioned_; }

  void set_loss_probability(double p) {
    config_.loss_probability = runtime::checked_probability(p, "loss probability");
  }

  /// Queues `message` for delivery to `deliver` subject to loss/partition;
  /// returns true if the message was accepted (i.e. not dropped).
  bool send(MessagePtr message, const std::function<void(NodeId, MessagePtr)>& deliver);

 private:
  Simulator* sim_;
  util::Rng* rng_;
  NodeId from_;
  NodeId to_;
  ChannelConfig config_;
  ChannelStats stats_;
  bool partitioned_ = false;
  Time last_delivery_ = 0;   // FIFO clamp
  Time link_free_at_ = 0;    // bandwidth serialization
};

class Network final : public runtime::Transport {
 public:
  Network(Simulator& sim, std::uint64_t seed = 42) : sim_(&sim), rng_(seed) {}

  /// Registers a node; `name` appears in traces. Handler may be bound later
  /// via set_handler (nodes are often constructed before their owners).
  NodeId add_node(std::string name, ReceiveHandler handler = nullptr) override;
  void set_handler(NodeId node, ReceiveHandler handler) override;
  const std::string& node_name(NodeId node) const override { return names_.at(node); }
  std::size_t node_count() const override { return names_.size(); }

  /// Creates (or reconfigures) the directed channel from -> to.
  Channel& link(NodeId from, NodeId to, ChannelConfig config = {});

  /// Both directions with the same config.
  void link_bidirectional(NodeId a, NodeId b, ChannelConfig config = {});

  /// Transport interface spellings of link()/link_bidirectional().
  void connect(NodeId from, NodeId to, ChannelConfig config = {}) override;
  void connect_bidirectional(NodeId a, NodeId b, ChannelConfig config = {}) override;

  Channel& channel(NodeId from, NodeId to);
  bool has_channel(NodeId from, NodeId to) const override;

  /// Sends over the from->to channel; throws std::out_of_range when no such
  /// channel exists. Returns false if the channel dropped the message.
  bool send(NodeId from, NodeId to, MessagePtr message) override;

  /// Failure injection helpers for the loss-of-message experiments.
  void partition_node(NodeId node, bool partitioned) override;
  void partition_pair(NodeId a, NodeId b, bool partitioned) override;
  void set_loss(NodeId from, NodeId to, double probability) override;

  ChannelStats channel_stats(NodeId from, NodeId to) const override;

  /// Enables trace recording; entries accumulate in trace().
  void set_tracing(bool enabled) override { tracing_ = enabled; }
  const std::vector<TraceEntry>& trace() const override { return trace_; }
  void clear_trace() override { trace_.clear(); }

  void set_observer(obs::TraceRecorder* recorder, obs::MetricsRegistry* metrics) override {
    observer_.attach(recorder, metrics);
  }

  Simulator& simulator() { return *sim_; }
  util::Rng& rng() { return rng_; }

 private:
  Simulator* sim_;
  util::Rng rng_;
  std::vector<std::string> names_;
  std::vector<ReceiveHandler> handlers_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Channel>> channels_;
  bool tracing_ = false;
  std::vector<TraceEntry> trace_;
  obs::MessageObserver observer_;
};

}  // namespace sa::sim
