// Simulated network: named nodes connected by directed channels with
// configurable latency, jitter, loss, and partitions.
//
// This substitutes for the paper's physical testbed (802.11 multicast between
// a server, an iPAQ hand-held, and a Toughbook laptop).  Channels can be
// FIFO-ordered (a TCP-like manager/agent control connection) or unordered and
// lossy (UDP-like data multicast); partitions model the paper's "long-term
// network failure" that triggers loss-of-message handling.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace sa::sim {

using NodeId = std::uint32_t;

/// Base class for everything sent through the network. Concrete protocol and
/// application messages derive from it; receivers downcast via dynamic_cast
/// or the type tag.
struct Message {
  virtual ~Message() = default;
  /// Short type tag for traces, e.g. "reset", "video-packet".
  virtual std::string type_name() const = 0;
  /// Wire size used by bandwidth-limited channels; the default models a
  /// small control message.
  virtual std::size_t size_bytes() const { return 64; }
};

using MessagePtr = std::shared_ptr<const Message>;

struct ChannelConfig {
  Time latency = ms(1);     ///< base one-way delay
  Time jitter = 0;          ///< uniform extra delay in [0, jitter]
  double loss_probability = 0.0;
  bool fifo = true;         ///< enforce in-order delivery despite jitter
  /// Probability that an accepted message is delivered twice (retransmission
  /// artifacts); protocol participants must deduplicate.
  double duplicate_probability = 0.0;
  /// Link capacity in bytes/second; 0 = unlimited. Transmissions serialize:
  /// a message must finish its size_bytes()/bandwidth transmission before the
  /// next one starts, so sustained overload builds queueing delay.
  std::uint64_t bytes_per_second = 0;
};

struct ChannelStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_partition = 0;
};

class Channel {
 public:
  Channel(Simulator& sim, util::Rng& rng, NodeId from, NodeId to, ChannelConfig config)
      : sim_(&sim), rng_(&rng), from_(from), to_(to), config_(config) {}

  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  const ChannelConfig& config() const { return config_; }
  const ChannelStats& stats() const { return stats_; }

  /// Failure injection: while partitioned, every message is dropped.
  void set_partitioned(bool partitioned) { partitioned_ = partitioned; }
  bool partitioned() const { return partitioned_; }

  void set_loss_probability(double p) { config_.loss_probability = p; }

  /// Queues `message` for delivery to `deliver` subject to loss/partition;
  /// returns true if the message was accepted (i.e. not dropped).
  bool send(MessagePtr message, const std::function<void(NodeId, MessagePtr)>& deliver);

 private:
  Simulator* sim_;
  util::Rng* rng_;
  NodeId from_;
  NodeId to_;
  ChannelConfig config_;
  ChannelStats stats_;
  bool partitioned_ = false;
  Time last_delivery_ = 0;   // FIFO clamp
  Time link_free_at_ = 0;    // bandwidth serialization
};

/// A handler invoked when a message reaches a node: (sender, message).
using ReceiveHandler = std::function<void(NodeId, MessagePtr)>;

/// Trace record of a delivered (or dropped) message, for protocol tests and
/// conformance checking. `message` keeps the payload alive so checkers can
/// downcast to concrete message types.
struct TraceEntry {
  Time time = 0;
  NodeId from = 0;
  NodeId to = 0;
  std::string type;
  bool delivered = true;
  MessagePtr message;
};

class Network {
 public:
  Network(Simulator& sim, std::uint64_t seed = 42) : sim_(&sim), rng_(seed) {}

  /// Registers a node; `name` appears in traces. Handler may be bound later
  /// via set_handler (nodes are often constructed before their owners).
  NodeId add_node(std::string name, ReceiveHandler handler = nullptr);
  void set_handler(NodeId node, ReceiveHandler handler);
  const std::string& node_name(NodeId node) const { return names_.at(node); }
  std::size_t node_count() const { return names_.size(); }

  /// Creates (or reconfigures) the directed channel from -> to.
  Channel& link(NodeId from, NodeId to, ChannelConfig config = {});

  /// Both directions with the same config.
  void link_bidirectional(NodeId a, NodeId b, ChannelConfig config = {});

  Channel& channel(NodeId from, NodeId to);
  bool has_channel(NodeId from, NodeId to) const;

  /// Sends over the from->to channel; throws std::out_of_range when no such
  /// channel exists. Returns false if the channel dropped the message.
  bool send(NodeId from, NodeId to, MessagePtr message);

  /// Failure injection helpers for the loss-of-message experiments.
  void partition_node(NodeId node, bool partitioned);
  void partition_pair(NodeId a, NodeId b, bool partitioned);

  /// Enables trace recording; entries accumulate in trace().
  void set_tracing(bool enabled) { tracing_ = enabled; }
  const std::vector<TraceEntry>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  Simulator& simulator() { return *sim_; }
  util::Rng& rng() { return rng_; }

 private:
  Simulator* sim_;
  util::Rng rng_;
  std::vector<std::string> names_;
  std::vector<ReceiveHandler> handlers_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Channel>> channels_;
  bool tracing_ = false;
  std::vector<TraceEntry> trace_;
};

}  // namespace sa::sim
