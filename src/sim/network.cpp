#include "sim/network.hpp"

#include <algorithm>

#include <stdexcept>

#include "util/log.hpp"

namespace sa::sim {

bool Channel::send(MessagePtr message, const std::function<void(NodeId, MessagePtr)>& deliver) {
  ++stats_.sent;
  if (partitioned_) {
    ++stats_.dropped_partition;
    return false;
  }
  if (config_.loss_probability > 0.0 && rng_->next_bool(config_.loss_probability)) {
    ++stats_.dropped_loss;
    return false;
  }
  Time send_complete = sim_->now();
  if (config_.bytes_per_second > 0) {
    // Serialize on the link: transmission starts when the link frees up and
    // occupies it for size/bandwidth.
    const Time start = std::max(sim_->now(), link_free_at_);
    const Time transmission = static_cast<Time>(
        (static_cast<__int128>(message->size_bytes()) * 1'000'000) / config_.bytes_per_second);
    send_complete = start + transmission;
    link_free_at_ = send_complete;
  }

  Time delay = config_.latency;
  if (config_.jitter > 0) {
    delay += static_cast<Time>(rng_->next_below(static_cast<std::uint64_t>(config_.jitter) + 1));
  }
  Time arrival = send_complete + delay;
  if (config_.fifo && arrival < last_delivery_) arrival = last_delivery_;
  last_delivery_ = arrival;

  const NodeId sender = from_;
  sim_->schedule_at(arrival, [sender, message, deliver]() { deliver(sender, message); });
  ++stats_.delivered;

  if (config_.duplicate_probability > 0.0 && rng_->next_bool(config_.duplicate_probability)) {
    // The copy trails the original by up to one extra jitter window.
    Time copy_arrival =
        arrival + 1 +
        (config_.jitter > 0
             ? static_cast<Time>(rng_->next_below(static_cast<std::uint64_t>(config_.jitter) + 1))
             : config_.latency);
    if (config_.fifo && copy_arrival < last_delivery_) copy_arrival = last_delivery_;
    last_delivery_ = std::max(last_delivery_, copy_arrival);
    sim_->schedule_at(copy_arrival,
                      [sender, message = std::move(message), deliver]() {
                        deliver(sender, message);
                      });
    ++stats_.duplicated;
  }
  return true;
}

NodeId Network::add_node(std::string name, ReceiveHandler handler) {
  const NodeId id = static_cast<NodeId>(names_.size());
  names_.push_back(std::move(name));
  handlers_.push_back(std::move(handler));
  return id;
}

void Network::set_handler(NodeId node, ReceiveHandler handler) {
  handlers_.at(node) = std::move(handler);
}

Channel& Network::link(NodeId from, NodeId to, ChannelConfig config) {
  if (from >= names_.size() || to >= names_.size()) {
    throw std::out_of_range("Network::link: unknown node");
  }
  runtime::checked_channel_config(config);
  auto& slot = channels_[{from, to}];
  slot = std::make_unique<Channel>(*sim_, rng_, from, to, config);
  return *slot;
}

void Network::link_bidirectional(NodeId a, NodeId b, ChannelConfig config) {
  link(a, b, config);
  link(b, a, config);
}

void Network::connect(NodeId from, NodeId to, ChannelConfig config) { link(from, to, config); }

void Network::connect_bidirectional(NodeId a, NodeId b, ChannelConfig config) {
  link_bidirectional(a, b, config);
}

void Network::set_loss(NodeId from, NodeId to, double probability) {
  channel(from, to).set_loss_probability(probability);
}

ChannelStats Network::channel_stats(NodeId from, NodeId to) const {
  const auto it = channels_.find({from, to});
  if (it == channels_.end()) {
    throw std::out_of_range("no channel " + names_.at(from) + " -> " + names_.at(to));
  }
  return it->second->stats();
}

Channel& Network::channel(NodeId from, NodeId to) {
  const auto it = channels_.find({from, to});
  if (it == channels_.end()) {
    throw std::out_of_range("no channel " + names_.at(from) + " -> " + names_.at(to));
  }
  return *it->second;
}

bool Network::has_channel(NodeId from, NodeId to) const {
  return channels_.contains({from, to});
}

bool Network::send(NodeId from, NodeId to, MessagePtr message) {
  Channel& ch = channel(from, to);
  const std::string type = message->type_name();
  const ChannelStats before = ch.stats();
  const bool accepted = ch.send(std::move(message), [this, to](NodeId sender, MessagePtr msg) {
    const std::string delivered_type = msg->type_name();
    if (tracing_) {
      trace_.push_back(TraceEntry{sim_->now(), sender, to, delivered_type, true, msg});
    }
    observer_.on_delivered(sim_->now(), sender, to, delivered_type);
    if (handlers_.at(to)) handlers_[to](sender, std::move(msg));
  });
  const ChannelStats& after = ch.stats();
  if (accepted) {
    observer_.on_sent(sim_->now(), from, to, type);
    if (after.duplicated > before.duplicated) observer_.on_duplicated(sim_->now(), from, to, type);
  } else {
    SA_DEBUG("network") << names_[from] << " -> " << names_[to] << " dropped " << type;
    if (tracing_) trace_.push_back(TraceEntry{sim_->now(), from, to, type, false, nullptr});
    observer_.on_dropped(sim_->now(), from, to, type,
                         after.dropped_partition > before.dropped_partition ? "partition"
                                                                            : "loss");
  }
  return accepted;
}

void Network::partition_node(NodeId node, bool partitioned) {
  for (auto& [key, channel] : channels_) {
    if (key.first == node || key.second == node) channel->set_partitioned(partitioned);
  }
}

void Network::partition_pair(NodeId a, NodeId b, bool partitioned) {
  if (has_channel(a, b)) channel(a, b).set_partitioned(partitioned);
  if (has_channel(b, a)) channel(b, a).set_partitioned(partitioned);
}

}  // namespace sa::sim
