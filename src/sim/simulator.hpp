// Deterministic discrete-event simulator.
//
// All simulated distributed behaviour in this repository — protocol message
// exchange, packet streaming, manager timeouts — runs on virtual time
// provided by this scheduler.  Events at equal timestamps fire in scheduling
// order (stable FIFO tie-break), so a given seed always produces the
// identical execution, which is what lets the protocol tests assert exact
// traces.
//
// The simulator IS the sim backend's runtime::Clock: layers above sa_graph
// program against that interface and receive this implementation through the
// SimRuntime adapter.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "runtime/clock.hpp"

namespace sa::sim {

/// Virtual time in microseconds (shared time base with the runtime layer).
using Time = runtime::Time;

using runtime::us;
using runtime::ms;
using runtime::seconds;

using EventId = runtime::TimerId;

class Simulator final : public runtime::Clock {
 public:
  Time now() const override { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (>= now). Returns an id
  /// usable with cancel().
  EventId schedule_at(Time t, std::function<void()> fn) override;

  /// Schedules `fn` `delay` microseconds from now.
  EventId schedule_after(Time delay, std::function<void()> fn) override;

  /// Cancels a pending event; returns false if it already fired or was
  /// cancelled. Safe to call from inside event handlers.
  bool cancel(EventId id) override;

  /// Runs the next pending event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains (or `max_events` fire). Returns events run.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with timestamp <= `deadline`, then advances now to
  /// `deadline`. Returns events run.
  std::size_t run_until(Time deadline);

  std::size_t pending_events() const { return alive_.size(); }

 private:
  struct Event {
    Time time;
    EventId id;  // also the FIFO tie-break: lower id scheduled earlier
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  Time now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> alive_;      ///< scheduled, not yet fired/cancelled
  std::unordered_set<EventId> cancelled_;  ///< cancelled, still in queue_
};

}  // namespace sa::sim
